//! Crash-safe component state store for the recursive-restartability
//! testbed: a CRC-framed append-only write-ahead journal plus
//! content-addressed snapshots, so a restarting component can
//! *rehydrate* to its last durable state instead of cold-booting.
//!
//! The paper's components are stateless-restartable by construction; in
//! the reproduction, real recovery time is dominated by re-deriving
//! lost in-flight state (the ses/str resync of §4.3 is the stand-in).
//! This crate makes that state durable so the *restart vs. rehydrate*
//! trade-off becomes a policy knob rather than an architectural given:
//!
//! * [`frame`] — record framing: CRC-32 frames, FNV-1a content hashes,
//!   and prefix replay that discards torn tails and bit rot.
//! * [`store`] — [`ComponentStore`] (journal + blobs + compaction +
//!   fault injection) and the station-wide [`StateStore`] hub.
//! * [`fixture`] — hex text serialization for committed crash-recovery
//!   fixtures.
//!
//! Design invariants (DESIGN.md §15):
//!
//! 1. **Prefix durability** — recovery trusts exactly the journal's
//!    longest valid prefix; bytes past the first damage are discarded.
//! 2. **Verified snapshots** — a snapshot reference is only honoured if
//!    its blob is present and re-hashes to the recorded content hash.
//! 3. **Graceful degradation** — damage shrinks the recovered state
//!    (fewer updates, older snapshot, or a cold start); it never
//!    produces wrong state or an error the caller must handle.
//! 4. **Bounded growth** — checkpointing compacts the journal to the
//!    new snapshot reference and prunes unreferenced blobs.

#![warn(missing_docs)]

pub mod fixture;
pub mod frame;
pub mod store;

pub use frame::{content_hash, crc32, replay, Record, RecordKind, Replay, StopReason};
pub use store::{ComponentStore, JournalFault, Recovery, RecoveryStats, StateStore};

//! Text serialization of a [`ComponentStore`] for committed fixtures.
//!
//! Journals are binary; committing them raw makes review and diffing
//! painful, so fixtures are a line-oriented hex format instead:
//!
//! ```text
//! # free-form comment lines
//! journal <hex bytes>
//! blob <16-hex content hash> <hex bytes>
//! ```
//!
//! The format is lossless for everything [`ComponentStore::from_parts`]
//! needs. `decode` is strict — a malformed fixture is a test-asset bug,
//! not a runtime condition — but reports errors as `Result` so the CI
//! fixture runner can print which line is bad.

use std::collections::BTreeMap;

use crate::store::ComponentStore;

/// Renders a store as fixture text, with a leading comment block.
pub fn encode(store: &ComponentStore, comment: &str) -> String {
    let mut out = String::new();
    for line in comment.lines() {
        out.push_str("# ");
        out.push_str(line);
        out.push('\n');
    }
    out.push_str("journal ");
    out.push_str(&to_hex(store.journal()));
    out.push('\n');
    for (hash, blob) in store.blobs() {
        out.push_str(&format!("blob {hash:016x} {}\n", to_hex(blob)));
    }
    out
}

/// Parses fixture text back into a store.
///
/// # Errors
///
/// Returns a message naming the offending line for unknown directives,
/// bad hex, or a missing journal.
pub fn decode(text: &str) -> Result<ComponentStore, String> {
    let mut journal: Option<Vec<u8>> = None;
    let mut blobs = BTreeMap::new();
    for (n, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("journal") => {
                let hex = parts.next().unwrap_or("");
                journal = Some(from_hex(hex).map_err(|e| format!("line {}: {e}", n + 1))?);
            }
            Some("blob") => {
                let hash = parts
                    .next()
                    .and_then(|h| u64::from_str_radix(h, 16).ok())
                    .ok_or_else(|| format!("line {}: bad blob hash", n + 1))?;
                let bytes = from_hex(parts.next().unwrap_or(""))
                    .map_err(|e| format!("line {}: {e}", n + 1))?;
                blobs.insert(hash, bytes);
            }
            Some(other) => return Err(format!("line {}: unknown directive {other:?}", n + 1)),
            None => {}
        }
    }
    let journal = journal.ok_or_else(|| "fixture has no journal line".to_string())?;
    Ok(ComponentStore::from_parts(journal, blobs))
}

fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

fn from_hex(hex: &str) -> Result<Vec<u8>, String> {
    if !hex.len().is_multiple_of(2) {
        return Err("odd-length hex".to_string());
    }
    (0..hex.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&hex[i..i + 2], 16).map_err(|_| format!("bad hex at byte {i}")))
        .collect()
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrips() {
        let mut s = ComponentStore::new();
        s.checkpoint(b"state-bytes");
        s.append_update(b"delta-1");
        let text = encode(&s, "roundtrip fixture\nsecond comment line");
        assert!(text.starts_with("# roundtrip fixture\n# second comment line\n"));
        let back = decode(&text).unwrap();
        assert_eq!(back.journal(), s.journal());
        assert_eq!(back.blobs(), s.blobs());
        assert_eq!(back.recover(), s.recover());
    }

    #[test]
    fn decode_rejects_malformed_fixtures() {
        assert!(decode("# only a comment").is_err());
        assert!(decode("journal zz").is_err());
        assert!(decode("journal abc").is_err());
        assert!(decode("blob nothex aa\njournal 52524a31").is_err());
        assert!(decode("frobnicate 123").is_err());
    }
}

//! Journal record framing: checksums, encoding, and prefix replay.
//!
//! A journal is a magic header followed by a sequence of CRC-framed
//! records. Each record is fully self-delimiting, so replay needs no
//! external index: it walks frames until the bytes run out or stop
//! checking out, and everything up to that point — the *valid prefix* —
//! is the durable truth. Everything after it (a torn tail from a crash
//! mid-write, or bit rot caught by the CRC) is discarded, never trusted.
//!
//! Frame layout, all integers little-endian:
//!
//! ```text
//! [len: u32] [crc: u32] [seq: u64] [kind: u8] [payload: len bytes]
//! ```
//!
//! `crc` covers `seq || kind || payload`, so a flipped bit anywhere in
//! the semantic content of the record — including its ordering — fails
//! the check. `len` is implicitly covered: a corrupted length either
//! points the CRC window at different bytes (mismatch) or runs past the
//! end of the journal (torn tail).

/// Magic bytes opening every journal (`RRJ` + format version 1).
pub const MAGIC: [u8; 4] = *b"RRJ1";

/// Fixed bytes per record before the payload: len + crc + seq + kind.
pub const HEADER_LEN: usize = 4 + 4 + 8 + 1;

/// What a journal record carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A content-addressed snapshot reference: the payload is the 8-byte
    /// FNV-1a content hash of the snapshot blob followed by its 8-byte
    /// length (see [`snapshot_payload`]).
    Snapshot,
    /// An incremental state update to replay on top of the last snapshot.
    Update,
}

impl RecordKind {
    fn to_byte(self) -> u8 {
        match self {
            RecordKind::Snapshot => 1,
            RecordKind::Update => 2,
        }
    }

    fn from_byte(b: u8) -> Option<RecordKind> {
        match b {
            1 => Some(RecordKind::Snapshot),
            2 => Some(RecordKind::Update),
            _ => None,
        }
    }
}

/// A decoded journal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Monotonically increasing sequence number (strictly increasing
    /// within a journal; replay treats a regression as corruption).
    pub seq: u64,
    /// What the record carries.
    pub kind: RecordKind,
    /// The record body.
    pub payload: Vec<u8>,
}

/// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
///
/// In-tree because the workspace resolves fully offline; the table is
/// built at first use from the standard reversed polynomial `0xEDB88320`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        let idx = ((crc ^ u32::from(b)) & 0xFF) as usize;
        crc = (crc >> 8) ^ CRC_TABLE[idx];
    }
    !crc
}

/// The 256-entry CRC-32 lookup table for polynomial `0xEDB88320`.
static CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// FNV-1a 64-bit content hash, used to address snapshot blobs.
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Encodes a snapshot record's payload: content hash + blob length.
pub fn snapshot_payload(hash: u64, blob_len: u64) -> Vec<u8> {
    let mut p = Vec::with_capacity(16);
    p.extend_from_slice(&hash.to_le_bytes());
    p.extend_from_slice(&blob_len.to_le_bytes());
    p
}

/// Decodes a snapshot record's payload back into (hash, blob length).
/// Returns `None` when the payload is not the expected 16 bytes.
pub fn parse_snapshot_payload(payload: &[u8]) -> Option<(u64, u64)> {
    if payload.len() != 16 {
        return None;
    }
    let mut hash = [0u8; 8];
    let mut len = [0u8; 8];
    hash.copy_from_slice(&payload[..8]);
    len.copy_from_slice(&payload[8..]);
    Some((u64::from_le_bytes(hash), u64::from_le_bytes(len)))
}

/// Appends one framed record to `journal`.
pub fn append_record(journal: &mut Vec<u8>, seq: u64, kind: RecordKind, payload: &[u8]) {
    let mut body = Vec::with_capacity(9 + payload.len());
    body.extend_from_slice(&seq.to_le_bytes());
    body.push(kind.to_byte());
    body.extend_from_slice(payload);
    let crc = crc32(&body);
    journal.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    journal.extend_from_slice(&crc.to_le_bytes());
    journal.extend_from_slice(&body);
}

/// Why replay stopped before the end of the journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Every byte parsed cleanly: the journal is whole.
    Clean,
    /// The journal is shorter than its magic header, or the header bytes
    /// are wrong — nothing in it can be trusted.
    BadMagic,
    /// The final frame is incomplete: the classic torn write, a crash
    /// between appending the header and flushing the payload.
    TornTail,
    /// A complete frame failed its CRC, or carried a malformed kind or a
    /// non-increasing sequence number — bit rot or an overwrite.
    CorruptRecord,
}

/// The outcome of replaying a journal's valid prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Replay {
    /// The records of the valid prefix, in append order.
    pub records: Vec<Record>,
    /// Why the walk stopped.
    pub stop: StopReason,
    /// Bytes of the valid prefix (magic included); the journal can be
    /// truncated to this length to discard the damaged tail durably.
    pub valid_len: usize,
    /// Bytes after the valid prefix that were discarded.
    pub discarded_bytes: usize,
}

/// Walks `journal` frame by frame, returning the longest valid prefix.
///
/// Replay never fails: damage is reported in [`Replay::stop`] and the
/// records before it are returned. A journal with bad magic yields no
/// records and a zero-length valid prefix.
pub fn replay(journal: &[u8]) -> Replay {
    if journal.len() < MAGIC.len() || journal[..MAGIC.len()] != MAGIC {
        return Replay {
            records: Vec::new(),
            stop: StopReason::BadMagic,
            valid_len: 0,
            discarded_bytes: journal.len(),
        };
    }
    let mut records = Vec::new();
    let mut at = MAGIC.len();
    let mut last_seq: Option<u64> = None;
    let stop = loop {
        if at == journal.len() {
            break StopReason::Clean;
        }
        if journal.len() - at < HEADER_LEN {
            break StopReason::TornTail;
        }
        let mut len4 = [0u8; 4];
        len4.copy_from_slice(&journal[at..at + 4]);
        let payload_len = u32::from_le_bytes(len4) as usize;
        let mut crc4 = [0u8; 4];
        crc4.copy_from_slice(&journal[at + 4..at + 8]);
        let want_crc = u32::from_le_bytes(crc4);
        let body_start = at + 8;
        let body_len = 9 + payload_len;
        if journal.len() - body_start < body_len {
            break StopReason::TornTail;
        }
        let body = &journal[body_start..body_start + body_len];
        if crc32(body) != want_crc {
            break StopReason::CorruptRecord;
        }
        let mut seq8 = [0u8; 8];
        seq8.copy_from_slice(&body[..8]);
        let seq = u64::from_le_bytes(seq8);
        let Some(kind) = RecordKind::from_byte(body[8]) else {
            break StopReason::CorruptRecord;
        };
        if last_seq.is_some_and(|prev| seq <= prev) {
            break StopReason::CorruptRecord;
        }
        last_seq = Some(seq);
        records.push(Record {
            seq,
            kind,
            payload: body[9..].to_vec(),
        });
        at = body_start + body_len;
    };
    Replay {
        discarded_bytes: journal.len() - at,
        records,
        stop,
        valid_len: at,
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The standard check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn content_hash_matches_fnv1a_vectors() {
        assert_eq!(content_hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(content_hash(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn roundtrip_replays_clean() {
        let mut j = MAGIC.to_vec();
        append_record(&mut j, 1, RecordKind::Snapshot, &snapshot_payload(42, 3));
        append_record(&mut j, 2, RecordKind::Update, b"delta");
        let r = replay(&j);
        assert_eq!(r.stop, StopReason::Clean);
        assert_eq!(r.valid_len, j.len());
        assert_eq!(r.discarded_bytes, 0);
        assert_eq!(r.records.len(), 2);
        assert_eq!(r.records[0].kind, RecordKind::Snapshot);
        assert_eq!(parse_snapshot_payload(&r.records[0].payload), Some((42, 3)));
        assert_eq!(r.records[1].payload, b"delta");
    }

    #[test]
    fn torn_tail_is_detected_and_prefix_survives() {
        let mut j = MAGIC.to_vec();
        append_record(&mut j, 1, RecordKind::Update, b"first");
        let whole = j.len();
        append_record(&mut j, 2, RecordKind::Update, b"second");
        // Crash mid-write: lose the last 3 bytes of the second frame.
        j.truncate(j.len() - 3);
        let r = replay(&j);
        assert_eq!(r.stop, StopReason::TornTail);
        assert_eq!(r.records.len(), 1);
        assert_eq!(r.valid_len, whole);
        assert_eq!(r.discarded_bytes, j.len() - whole);
    }

    #[test]
    fn bit_flip_fails_crc_and_stops_replay() {
        let mut j = MAGIC.to_vec();
        append_record(&mut j, 1, RecordKind::Update, b"aaaa");
        append_record(&mut j, 2, RecordKind::Update, b"bbbb");
        let first_end = MAGIC.len() + HEADER_LEN + 4;
        // Flip a payload bit in the second record.
        j[first_end + HEADER_LEN + 1] ^= 0x40;
        let r = replay(&j);
        assert_eq!(r.stop, StopReason::CorruptRecord);
        assert_eq!(r.records.len(), 1);
        assert_eq!(r.valid_len, first_end);
    }

    #[test]
    fn sequence_regression_is_corruption() {
        let mut j = MAGIC.to_vec();
        append_record(&mut j, 5, RecordKind::Update, b"x");
        append_record(&mut j, 5, RecordKind::Update, b"y");
        let r = replay(&j);
        assert_eq!(r.stop, StopReason::CorruptRecord);
        assert_eq!(r.records.len(), 1);
    }

    #[test]
    fn bad_magic_yields_nothing() {
        let r = replay(b"NOPE----");
        assert_eq!(r.stop, StopReason::BadMagic);
        assert!(r.records.is_empty());
        assert_eq!(r.valid_len, 0);
        let r = replay(b"RR");
        assert_eq!(r.stop, StopReason::BadMagic);
    }

    #[test]
    fn corrupted_length_is_caught() {
        let mut j = MAGIC.to_vec();
        append_record(&mut j, 1, RecordKind::Update, b"abcdef");
        append_record(&mut j, 2, RecordKind::Update, b"ghijkl");
        // Inflate the first record's length field: the CRC window shifts
        // (mismatch) or the frame runs off the end (torn tail) — either
        // way the prefix before it is all that survives.
        j[MAGIC.len()] = 0xFF;
        let r = replay(&j);
        assert!(matches!(
            r.stop,
            StopReason::TornTail | StopReason::CorruptRecord
        ));
        assert!(r.records.is_empty());
    }
}

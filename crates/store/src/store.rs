//! The component state store: per-component journals plus the
//! content-addressed snapshot blobs they reference.
//!
//! Write path: a component appends [`RecordKind::Update`] deltas as its
//! state mutates and periodically calls [`ComponentStore::checkpoint`]
//! with its full state. A checkpoint stores the state blob under its
//! content hash, appends a snapshot reference record, and *compacts*:
//! the journal is rewritten to start at that snapshot and blobs no
//! longer referenced are pruned, so journal growth is bounded by one
//! checkpoint interval of updates.
//!
//! Read path ([`ComponentStore::recover`]): replay the journal's valid
//! prefix, pick the newest snapshot reference whose blob is present and
//! verifies against its content hash, and return that state plus every
//! update after it. Damage — torn tails, CRC failures, a missing or
//! mismatched blob — degrades recovery (fewer replayed updates, or cold
//! start when nothing verifies) but never yields corrupt state.

use std::collections::BTreeMap;

use crate::frame::{
    append_record, content_hash, parse_snapshot_payload, replay, snapshot_payload, RecordKind,
    StopReason, MAGIC,
};

/// Durable state for one component: journal bytes plus snapshot blobs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ComponentStore {
    journal: Vec<u8>,
    blobs: BTreeMap<u64, Vec<u8>>,
    next_seq: u64,
}

/// An injectable journal fault, modelling what a crash mid-write or bit
/// rot does to the backing medium.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalFault {
    /// Lose the last `n` bytes (a torn write / lost tail).
    TruncateTail(usize),
    /// XOR the byte at `offset` past the magic with `0xFF` (bit rot).
    CorruptByte(usize),
}

/// What [`ComponentStore::recover`] reconstructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recovery {
    /// The verified snapshot state, or `None` for a cold start (no
    /// snapshot in the valid prefix verified against its blob).
    pub state: Option<Vec<u8>>,
    /// Update payloads to replay on top of `state`, in append order.
    pub updates: Vec<Vec<u8>>,
    /// Accounting for telemetry and cost models.
    pub stats: RecoveryStats,
}

/// Accounting for a recovery pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryStats {
    /// Journal records in the valid prefix that contributed to the
    /// recovered state (the chosen snapshot reference plus the updates
    /// replayed after it).
    pub replayed_records: u64,
    /// Size of the verified snapshot blob, 0 on cold start.
    pub snapshot_bytes: u64,
    /// Bytes replayed from update records.
    pub update_bytes: u64,
    /// Bytes discarded past the valid prefix (torn tail or corruption).
    pub discarded_bytes: u64,
    /// Whether the journal parsed end to end without damage.
    pub clean: bool,
}

impl ComponentStore {
    /// An empty store: a journal holding only the magic header.
    pub fn new() -> ComponentStore {
        ComponentStore {
            journal: MAGIC.to_vec(),
            blobs: BTreeMap::new(),
            next_seq: 1,
        }
    }

    /// Rebuilds a store from raw parts (fixture loading). `next_seq`
    /// resumes past the highest sequence number in the journal's valid
    /// prefix.
    pub fn from_parts(journal: Vec<u8>, blobs: BTreeMap<u64, Vec<u8>>) -> ComponentStore {
        let top = replay(&journal).records.last().map_or(0, |r| r.seq);
        ComponentStore {
            journal,
            blobs,
            next_seq: top + 1,
        }
    }

    /// Appends an incremental update record; returns its sequence number.
    pub fn append_update(&mut self, payload: &[u8]) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        append_record(&mut self.journal, seq, RecordKind::Update, payload);
        seq
    }

    /// Checkpoints the full component state: stores the blob under its
    /// content hash, appends a snapshot reference, and compacts the
    /// journal down to that single reference (pruning unreferenced
    /// blobs). Returns the snapshot's sequence number.
    pub fn checkpoint(&mut self, state: &[u8]) -> u64 {
        let hash = content_hash(state);
        self.blobs.insert(hash, state.to_vec());
        let seq = self.next_seq;
        self.next_seq += 1;
        let mut compacted = MAGIC.to_vec();
        append_record(
            &mut compacted,
            seq,
            RecordKind::Snapshot,
            &snapshot_payload(hash, state.len() as u64),
        );
        self.journal = compacted;
        self.blobs.retain(|&h, _| h == hash);
        seq
    }

    /// Reconstructs the last durable state from the journal's valid
    /// prefix. Infallible by design: damage shrinks the result (down to
    /// a cold start) rather than erroring.
    pub fn recover(&self) -> Recovery {
        let r = replay(&self.journal);
        // Newest snapshot reference whose blob is present and verifies.
        let chosen = r.records.iter().enumerate().rev().find_map(|(i, rec)| {
            if rec.kind != RecordKind::Snapshot {
                return None;
            }
            let (hash, len) = parse_snapshot_payload(&rec.payload)?;
            let blob = self.blobs.get(&hash)?;
            if blob.len() as u64 == len && content_hash(blob) == hash {
                Some((i, blob))
            } else {
                None
            }
        });
        let mut stats = RecoveryStats {
            discarded_bytes: r.discarded_bytes as u64,
            clean: r.stop == StopReason::Clean,
            ..RecoveryStats::default()
        };
        let (state, replay_from) = match chosen {
            Some((i, blob)) => {
                stats.snapshot_bytes = blob.len() as u64;
                stats.replayed_records = 1;
                (Some(blob.clone()), i + 1)
            }
            None => (None, 0),
        };
        let mut updates = Vec::new();
        for rec in &r.records[replay_from..] {
            if rec.kind == RecordKind::Update {
                stats.replayed_records += 1;
                stats.update_bytes += rec.payload.len() as u64;
                updates.push(rec.payload.clone());
            }
        }
        Recovery {
            state,
            updates,
            stats,
        }
    }

    /// Injects a fault into the journal bytes. Returns `true` when the
    /// fault landed (a truncation shortened the journal / the corrupted
    /// offset was in range).
    pub fn inject(&mut self, fault: JournalFault) -> bool {
        match fault {
            JournalFault::TruncateTail(n) => {
                // Never truncate into the magic: a lost tail cannot
                // un-write the file header that was durable long ago.
                let keep = self.journal.len().saturating_sub(n).max(MAGIC.len());
                let landed = keep < self.journal.len();
                self.journal.truncate(keep);
                landed
            }
            JournalFault::CorruptByte(offset) => {
                let at = MAGIC.len() + offset;
                if at < self.journal.len() {
                    self.journal[at] ^= 0xFF;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// The raw journal bytes (magic included).
    pub fn journal(&self) -> &[u8] {
        &self.journal
    }

    /// The snapshot blobs, keyed by content hash.
    pub fn blobs(&self) -> &BTreeMap<u64, Vec<u8>> {
        &self.blobs
    }

    /// Journal length in bytes.
    pub fn journal_len(&self) -> usize {
        self.journal.len()
    }
}

/// The station-wide store hub: one [`ComponentStore`] per component.
///
/// Lives *outside* the restartable components (the simulation shares it
/// via `Rc`, a real system via the filesystem) so it survives the very
/// restarts it exists to accelerate.
#[derive(Debug, Clone, Default)]
pub struct StateStore {
    components: BTreeMap<String, ComponentStore>,
}

impl StateStore {
    /// An empty hub.
    pub fn new() -> StateStore {
        StateStore::default()
    }

    /// The store for `component`, created empty on first access.
    pub fn component(&mut self, component: &str) -> &mut ComponentStore {
        self.components.entry(component.to_string()).or_default()
    }

    /// Read-only view of a component's store, if it has ever written.
    pub fn get(&self, component: &str) -> Option<&ComponentStore> {
        self.components.get(component)
    }

    /// Drops a component's durable state entirely (administrative reset).
    pub fn clear(&mut self, component: &str) {
        self.components.remove(component);
    }

    /// Component names with durable state, in sorted order.
    pub fn component_names(&self) -> impl Iterator<Item = &str> {
        self.components.keys().map(String::as_str)
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)]
mod tests {
    use super::*;

    #[test]
    fn empty_store_cold_starts() {
        let s = ComponentStore::new();
        let r = s.recover();
        assert_eq!(r.state, None);
        assert!(r.updates.is_empty());
        assert!(r.stats.clean);
        assert_eq!(r.stats.replayed_records, 0);
    }

    #[test]
    fn checkpoint_then_updates_recovers_exactly() {
        let mut s = ComponentStore::new();
        s.append_update(b"pre-checkpoint noise");
        s.checkpoint(b"STATE-v1");
        s.append_update(b"d1");
        s.append_update(b"d2");
        let r = s.recover();
        assert_eq!(r.state.as_deref(), Some(&b"STATE-v1"[..]));
        assert_eq!(r.updates, vec![b"d1".to_vec(), b"d2".to_vec()]);
        assert_eq!(r.stats.replayed_records, 3); // snapshot + 2 updates
        assert_eq!(r.stats.snapshot_bytes, 8);
        assert_eq!(r.stats.update_bytes, 4);
        assert!(r.stats.clean);
    }

    #[test]
    fn checkpoint_compacts_journal_and_prunes_blobs() {
        let mut s = ComponentStore::new();
        for i in 0..50 {
            s.append_update(format!("update-{i}").as_bytes());
        }
        let grown = s.journal_len();
        s.checkpoint(b"v1");
        assert!(s.journal_len() < grown, "compaction must shrink");
        s.checkpoint(b"v2");
        assert_eq!(s.blobs().len(), 1, "old snapshot blob pruned");
        assert_eq!(s.recover().state.as_deref(), Some(&b"v2"[..]));
    }

    #[test]
    fn identical_state_is_stored_once() {
        let mut s = ComponentStore::new();
        s.checkpoint(b"same");
        let seq1 = s.recover();
        s.checkpoint(b"same");
        assert_eq!(s.blobs().len(), 1, "content addressing dedups");
        let seq2 = s.recover();
        assert_eq!(seq1.state, seq2.state);
    }

    #[test]
    fn torn_tail_falls_back_to_last_durable_prefix() {
        let mut s = ComponentStore::new();
        s.checkpoint(b"base");
        s.append_update(b"keep");
        let durable = s.journal_len();
        s.append_update(b"torn-away-update-payload");
        let torn = s.journal_len() - durable - 4; // leave a partial frame
        assert!(s.inject(JournalFault::TruncateTail(torn)));
        let r = s.recover();
        assert_eq!(r.state.as_deref(), Some(&b"base"[..]));
        assert_eq!(r.updates, vec![b"keep".to_vec()]);
        assert!(!r.stats.clean);
        assert!(r.stats.discarded_bytes > 0);
    }

    #[test]
    fn corrupt_byte_stops_replay_at_damage() {
        let mut s = ComponentStore::new();
        s.checkpoint(b"base");
        s.append_update(b"good");
        let good_end = s.journal_len() - MAGIC.len();
        s.append_update(b"bad-after-flip");
        assert!(s.inject(JournalFault::CorruptByte(good_end + 10)));
        let r = s.recover();
        assert_eq!(r.state.as_deref(), Some(&b"base"[..]));
        assert_eq!(r.updates, vec![b"good".to_vec()]);
        assert!(!r.stats.clean);
    }

    #[test]
    fn corrupting_the_snapshot_record_degrades_to_cold_start() {
        let mut s = ComponentStore::new();
        s.checkpoint(b"only-state");
        assert!(s.inject(JournalFault::CorruptByte(2)));
        let r = s.recover();
        assert_eq!(r.state, None, "damaged snapshot ref must not be trusted");
        assert!(r.updates.is_empty());
    }

    #[test]
    fn missing_or_mismatched_blob_is_not_trusted() {
        let mut s = ComponentStore::new();
        s.checkpoint(b"precious");
        // Tamper with the blob behind the journal's back.
        let hash = *s.blobs().keys().next().unwrap();
        let mut blobs = s.blobs().clone();
        blobs.insert(hash, b"swapped!".to_vec());
        let tampered = ComponentStore::from_parts(s.journal().to_vec(), blobs);
        assert_eq!(tampered.recover().state, None);
        let gone = ComponentStore::from_parts(s.journal().to_vec(), BTreeMap::new());
        assert_eq!(gone.recover().state, None);
    }

    #[test]
    fn truncation_never_eats_the_magic() {
        let mut s = ComponentStore::new();
        s.append_update(b"x");
        s.inject(JournalFault::TruncateTail(usize::MAX));
        assert_eq!(s.journal(), MAGIC);
        assert!(s.recover().stats.clean);
    }

    #[test]
    fn from_parts_resumes_sequencing() {
        let mut s = ComponentStore::new();
        s.checkpoint(b"v1");
        s.append_update(b"a");
        let rebuilt = ComponentStore::from_parts(s.journal().to_vec(), s.blobs().clone());
        let mut rebuilt = rebuilt;
        rebuilt.append_update(b"b");
        let r = rebuilt.recover();
        assert_eq!(r.updates, vec![b"a".to_vec(), b"b".to_vec()]);
    }

    #[test]
    fn hub_isolates_components_and_survives_reset() {
        let mut hub = StateStore::new();
        hub.component("ses").checkpoint(b"ses-state");
        hub.component("str").checkpoint(b"str-state");
        assert_eq!(
            hub.component_names().collect::<Vec<_>>(),
            vec!["ses", "str"]
        );
        assert_eq!(
            hub.get("ses").unwrap().recover().state.as_deref(),
            Some(&b"ses-state"[..])
        );
        hub.clear("ses");
        assert!(hub.get("ses").is_none());
        assert!(hub.get("str").is_some());
    }
}

#![allow(clippy::disallowed_methods)]
//! The crash-recovery fixture pair ci.sh runs: a *clean* journal that
//! must replay end to end, and a *torn* journal (crash mid-append, then
//! bit rot further back) that must recover to the last durable prefix.
//!
//! Both fixtures are committed as hex text under `tests/store-fixtures/`
//! and double as a format-stability check: the same build recipe must
//! reproduce the committed bytes exactly, so any unintentional change to
//! the frame layout or CRC shows up as a fixture diff, not as silently
//! unreadable journals in the field. Re-record after an *intentional*
//! format change with `STORE_RECORD=1 cargo test -p rr-store --test
//! crash_fixtures`.

use std::path::PathBuf;

use rr_store::fixture;
use rr_store::{ComponentStore, JournalFault};

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/store-fixtures")
        .join(name)
}

/// The deterministic build recipe behind both fixtures: a session store
/// with one compacted checkpoint and a tail of incremental updates.
fn build_clean() -> ComponentStore {
    let mut s = ComponentStore::new();
    s.append_update(b"ephemeral warmup entry");
    s.checkpoint(b"session: opal pass 17, lock acquired, epoch 4213.7");
    for i in 0..6 {
        s.append_update(format!("track-update {i}: az/el refined").as_bytes());
    }
    s
}

/// The torn twin: the same store after a crash tears the final append
/// and bit rot flips a byte inside the 5th update record.
fn build_torn() -> ComponentStore {
    let mut s = build_clean();
    let before = s.journal_len();
    s.append_update(b"in-flight update lost to the crash");
    let appended = s.journal_len() - before;
    assert!(s.inject(JournalFault::TruncateTail(appended - 7)));
    // Bit rot inside the body of the 5th update (each update frame is
    // 17 + 29 bytes; the snapshot frame is 17 + 16).
    let fifth_update_body = (17 + 16) + 4 * (17 + 29) + 20;
    assert!(s.inject(JournalFault::CorruptByte(fifth_update_body)));
    s
}

fn check_fixture(name: &str, store: &ComponentStore, comment: &str) -> ComponentStore {
    let path = fixture_path(name);
    let text = fixture::encode(store, comment);
    if std::env::var("STORE_RECORD").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &text).unwrap();
    }
    let committed = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {path:?} ({e}); record with STORE_RECORD=1"));
    assert_eq!(
        committed, text,
        "{name}: journal format drifted from the committed fixture; if the \
         change is intentional, re-record with STORE_RECORD=1"
    );
    fixture::decode(&committed).unwrap_or_else(|e| panic!("{name}: {e}"))
}

#[test]
fn clean_fixture_replays_end_to_end() {
    let store = check_fixture(
        "clean.store",
        &build_clean(),
        "Clean journal: one compacted checkpoint + 6 update records.\n\
         Expected: full replay, snapshot + all updates, zero discarded bytes.",
    );
    let r = store.recover();
    assert!(r.stats.clean, "clean journal must parse end to end");
    assert_eq!(r.stats.discarded_bytes, 0);
    assert_eq!(
        r.state.as_deref(),
        Some(&b"session: opal pass 17, lock acquired, epoch 4213.7"[..])
    );
    assert_eq!(r.updates.len(), 6);
    assert_eq!(r.stats.replayed_records, 7); // snapshot + 6 updates
}

#[test]
fn torn_fixture_recovers_to_last_durable_prefix() {
    let store = check_fixture(
        "torn.store",
        &build_torn(),
        "Torn journal: the final append crashed mid-write (partial frame)\n\
         and a byte inside update 5 rotted. Expected: recovery stops at the\n\
         damage — snapshot + 4 updates survive, the rest is discarded.",
    );
    let r = store.recover();
    assert!(!r.stats.clean, "damage must be detected");
    assert!(r.stats.discarded_bytes > 0);
    assert_eq!(
        r.state.as_deref(),
        Some(&b"session: opal pass 17, lock acquired, epoch 4213.7"[..]),
        "the checkpoint predates the damage and must survive"
    );
    assert_eq!(
        r.updates.len(),
        4,
        "updates past the first damaged frame must be discarded"
    );
    assert_eq!(r.stats.replayed_records, 5);
}

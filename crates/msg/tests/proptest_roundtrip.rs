//! Property tests: every generatable message and envelope survives a
//! serialize → parse round trip, and the XML layer round-trips arbitrary
//! attribute/text content (including characters that need escaping).

use mercury_msg::{ComponentStatus, Element, Envelope, Message, RadioBand};
use proptest::prelude::*;

fn arb_status() -> impl Strategy<Value = ComponentStatus> {
    prop_oneof![
        Just(ComponentStatus::Ok),
        Just(ComponentStatus::Starting),
        Just(ComponentStatus::Degraded),
    ]
}

fn arb_band() -> impl Strategy<Value = RadioBand> {
    prop_oneof![Just(RadioBand::Vhf), Just(RadioBand::Uhf)]
}

fn arb_finite() -> impl Strategy<Value = f64> {
    // Any finite double, including negatives, zero and subnormals.
    prop::num::f64::NORMAL | prop::num::f64::SUBNORMAL | prop::num::f64::ZERO
}

fn arb_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_-]{0,12}"
}

fn arb_text() -> impl Strategy<Value = String> {
    // Includes XML-hostile characters.
    proptest::string::string_regex("[ -~]{0,24}").expect("regex")
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        any::<u64>().prop_map(|seq| Message::Ping { seq }),
        (any::<u64>(), arb_status()).prop_map(|(seq, status)| Message::Pong { seq, status }),
        arb_name().prop_map(|satellite| Message::TrackRequest { satellite }),
        (arb_finite(), arb_finite()).prop_map(|(azimuth_deg, elevation_deg)| {
            Message::PointAntenna { azimuth_deg, elevation_deg }
        }),
        (arb_name(), arb_finite()).prop_map(|(satellite, at_epoch_s)| {
            Message::EstimateRequest { satellite, at_epoch_s }
        }),
        (arb_finite(), arb_finite(), arb_finite(), arb_finite()).prop_map(
            |(azimuth_deg, elevation_deg, range_km, doppler_hz)| Message::EstimateReply {
                azimuth_deg,
                elevation_deg,
                range_km,
                doppler_hz,
            }
        ),
        (arb_finite(), arb_band())
            .prop_map(|(frequency_hz, band)| Message::TuneRadio { frequency_hz, band }),
        (arb_text(), arb_text()).prop_map(|(verb, arg)| Message::RadioCommand { verb, arg }),
        "[0-9a-f]{0,32}".prop_map(|hex| Message::SerialFrame { hex }),
        (arb_name(), any::<u64>(), "[0-9a-f]{0,32}").prop_map(|(satellite, frame, hex)| {
            Message::Telemetry { satellite, frame, hex }
        }),
        any::<u64>().prop_map(|incarnation| Message::SyncRequest { incarnation }),
        any::<u64>().prop_map(|incarnation| Message::SyncAck { incarnation }),
        (arb_name(), arb_status(), arb_finite(), arb_finite(), any::<u64>()).prop_map(
            |(component, status, uptime_s, aging, handled)| Message::Beacon {
                component,
                status,
                uptime_s,
                aging,
                handled,
            }
        ),
        any::<u64>().prop_map(|of| Message::Ack { of }),
    ]
}

proptest! {
    #[test]
    fn message_round_trips(m in arb_message()) {
        let wire = m.to_element().to_xml_string();
        let el = Element::parse(&wire).expect("reparse");
        let back = Message::from_element(&el).expect("decode");
        prop_assert_eq!(back, m);
    }

    #[test]
    fn envelope_round_trips(src in arb_name(), dst in arb_name(), id in any::<u64>(), m in arb_message()) {
        let env = Envelope::new(src, dst, id, m);
        let back = Envelope::parse(&env.to_xml_string()).expect("parse");
        prop_assert_eq!(back, env);
    }

    #[test]
    fn xml_attr_values_round_trip(value in arb_text()) {
        let el = Element::new("t").with_attr("v", value.clone());
        let back = Element::parse(&el.to_xml_string()).expect("parse");
        prop_assert_eq!(back.attr("v"), Some(value.as_str()));
    }

    #[test]
    fn xml_text_round_trips_modulo_whitespace(text in arb_text()) {
        let el = Element::new("t").with_text(text.clone());
        let back = Element::parse(&el.to_xml_string()).expect("parse");
        // Pure-whitespace runs are dropped by the parser (they carry no
        // message content); anything else must round-trip exactly.
        if text.trim().is_empty() {
            prop_assert_eq!(back.text(), "");
        } else {
            prop_assert_eq!(back.text(), text);
        }
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(input in "\\PC{0,64}") {
        let _ = Element::parse(&input);
    }

    #[test]
    fn nested_elements_round_trip(depth in 1usize..8, name in "[a-z]{1,8}") {
        let mut el = Element::new(name.clone());
        for _ in 0..depth {
            el = Element::new(name.clone()).with_child(el);
        }
        let back = Element::parse(&el.to_xml_string()).expect("parse");
        prop_assert_eq!(back, el);
    }
}

#![allow(clippy::disallowed_methods)]
//! Property tests: every generatable message and envelope survives a
//! serialize → parse round trip, and the XML layer round-trips arbitrary
//! attribute/text content (including characters that need escaping).

use mercury_msg::{ComponentStatus, Element, Envelope, Message, RadioBand};
use rr_sim::{check, SimRng};

fn arb_status(rng: &mut SimRng) -> ComponentStatus {
    *rng.choose(&[
        ComponentStatus::Ok,
        ComponentStatus::Starting,
        ComponentStatus::Degraded,
    ])
    .unwrap()
}

fn arb_band(rng: &mut SimRng) -> RadioBand {
    *rng.choose(&[RadioBand::Vhf, RadioBand::Uhf]).unwrap()
}

/// Any finite double, including negatives, zero and subnormals.
fn arb_finite(rng: &mut SimRng) -> f64 {
    loop {
        let x = f64::from_bits(rng.next_u64());
        if x.is_finite() {
            return x;
        }
    }
}

fn arb_name(rng: &mut SimRng) -> String {
    check::ident(rng, 13)
}

/// Printable ASCII, including XML-hostile characters.
fn arb_text(rng: &mut SimRng) -> String {
    check::printable(rng, 24)
}

fn arb_hex(rng: &mut SimRng, max_len: usize) -> String {
    const HEX: &[u8] = b"0123456789abcdef";
    let len = rng.next_below(max_len as u64 + 1) as usize;
    (0..len)
        .map(|_| HEX[rng.next_below(16) as usize] as char)
        .collect()
}

/// Arbitrary non-control characters (ASCII and beyond).
fn arb_unicode(rng: &mut SimRng, max_len: usize) -> String {
    let len = rng.next_below(max_len as u64 + 1) as usize;
    let mut s = String::new();
    while s.chars().count() < len {
        let c = match char::from_u32(rng.next_below(0x11_0000) as u32) {
            Some(c) if !c.is_control() => c,
            _ => continue,
        };
        s.push(c);
    }
    s
}

fn arb_message(rng: &mut SimRng) -> Message {
    match rng.next_below(14) {
        0 => Message::Ping {
            seq: rng.next_u64(),
        },
        1 => Message::Pong {
            seq: rng.next_u64(),
            status: arb_status(rng),
        },
        2 => Message::TrackRequest {
            satellite: arb_name(rng),
        },
        3 => Message::PointAntenna {
            azimuth_deg: arb_finite(rng),
            elevation_deg: arb_finite(rng),
        },
        4 => Message::EstimateRequest {
            satellite: arb_name(rng),
            at_epoch_s: arb_finite(rng),
        },
        5 => Message::EstimateReply {
            azimuth_deg: arb_finite(rng),
            elevation_deg: arb_finite(rng),
            range_km: arb_finite(rng),
            doppler_hz: arb_finite(rng),
        },
        6 => Message::TuneRadio {
            frequency_hz: arb_finite(rng),
            band: arb_band(rng),
        },
        7 => Message::RadioCommand {
            verb: arb_text(rng),
            arg: arb_text(rng),
        },
        8 => Message::SerialFrame {
            hex: arb_hex(rng, 32),
        },
        9 => Message::Telemetry {
            satellite: arb_name(rng),
            frame: rng.next_u64(),
            hex: arb_hex(rng, 32),
        },
        10 => Message::SyncRequest {
            incarnation: rng.next_u64(),
        },
        11 => Message::SyncAck {
            incarnation: rng.next_u64(),
        },
        12 => Message::Beacon {
            component: arb_name(rng),
            status: arb_status(rng),
            uptime_s: arb_finite(rng),
            aging: arb_finite(rng),
            handled: rng.next_u64(),
        },
        _ => Message::Ack { of: rng.next_u64() },
    }
}

#[test]
fn message_round_trips() {
    check::run("message_round_trips", 512, |rng| {
        let m = arb_message(rng);
        let wire = m.to_element().to_xml_string();
        let el = Element::parse(&wire).expect("reparse");
        let back = Message::from_element(&el).expect("decode");
        assert_eq!(back, m);
    });
}

#[test]
fn envelope_round_trips() {
    check::run("envelope_round_trips", 256, |rng| {
        let src = arb_name(rng);
        let dst = arb_name(rng);
        let id = rng.next_u64();
        let m = arb_message(rng);
        let env = Envelope::new(src, dst, id, m);
        let back = Envelope::parse(&env.to_xml_string()).expect("parse");
        assert_eq!(back, env);
    });
}

#[test]
fn xml_attr_values_round_trip() {
    check::run("xml_attr_values_round_trip", 256, |rng| {
        let value = arb_text(rng);
        let el = Element::new("t").with_attr("v", value.clone());
        let back = Element::parse(&el.to_xml_string()).expect("parse");
        assert_eq!(back.attr("v"), Some(value.as_str()));
    });
}

#[test]
fn xml_text_round_trips_modulo_whitespace() {
    check::run("xml_text_round_trips_modulo_whitespace", 256, |rng| {
        let text = arb_text(rng);
        let el = Element::new("t").with_text(text.clone());
        let back = Element::parse(&el.to_xml_string()).expect("parse");
        // Pure-whitespace runs are dropped by the parser (they carry no
        // message content); anything else must round-trip exactly.
        if text.trim().is_empty() {
            assert_eq!(back.text(), "");
        } else {
            assert_eq!(back.text(), text);
        }
    });
}

#[test]
fn parser_never_panics_on_arbitrary_input() {
    check::run("parser_never_panics_on_arbitrary_input", 512, |rng| {
        let input = arb_unicode(rng, 64);
        let _ = Element::parse(&input);
    });
}

#[test]
fn nested_elements_round_trip() {
    check::run("nested_elements_round_trip", 128, |rng| {
        let depth = 1 + rng.next_below(7) as usize;
        let name = {
            const ALPHA: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
            let len = 1 + rng.next_below(8) as usize;
            (0..len)
                .map(|_| ALPHA[rng.next_below(26) as usize] as char)
                .collect::<String>()
        };
        let mut el = Element::new(name.clone());
        for _ in 0..depth {
            el = Element::new(name.clone()).with_child(el);
        }
        let back = Element::parse(&el.to_xml_string()).expect("parse");
        assert_eq!(back, el);
    });
}

#![allow(clippy::disallowed_methods)]
//! Differential lock for the zero-copy XML codec.
//!
//! The parse path was rewritten to produce a borrowed [`ElementRef`] tree
//! (with [`Element::parse`] now defined as borrowed-parse + deep
//! `into_owned`). This suite keeps a **verbatim reference copy of the old
//! owned recursive-descent parser** and drives both implementations —
//! plus the borrowed path — through fixed malformed corpora, every
//! truncation of a representative document, random garbage, and random
//! valid documents, asserting *identical* `Result` values (same trees,
//! same error messages, same byte offsets). It also re-checks the two
//! hardening properties the rewrite must not lose: the
//! [`Envelope::MAX_WIRE_BYTES`] ceiling and non-ASCII hex rejection.

use mercury_msg::frame::{FrameError, TelemetryFrame};
use mercury_msg::xml::{Element, ElementRef, ParseXmlError, MAX_NESTING_DEPTH};
use mercury_msg::{Envelope, Message, MsgError};
use rr_sim::{check, SimRng};

// ------------------------------------------------- reference parser (old) --
// A faithful copy of the pre-rewrite owned parser, adapted only to build
// `Element` through its public API (the old code touched private fields).
// Do not "fix" or modernize this code: its job is to be the old behaviour.

struct RefParser<'a> {
    input: &'a str,
    pos: usize,
}

fn ref_parse(input: &str) -> Result<Element, ParseXmlError> {
    let mut p = RefParser { input, pos: 0 };
    p.skip_prolog();
    let el = p.parse_element(0)?;
    p.skip_misc();
    if !p.at_end() {
        return Err(p.error("trailing content after document element"));
    }
    Ok(el)
}

impl<'a> RefParser<'a> {
    fn error(&self, message: impl Into<String>) -> ParseXmlError {
        ParseXmlError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn at_end(&self) -> bool {
        self.pos >= self.input.len()
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn eat(&mut self, prefix: &str) -> bool {
        if self.rest().starts_with(prefix) {
            self.pos += prefix.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, prefix: &str) -> Result<(), ParseXmlError> {
        if self.eat(prefix) {
            Ok(())
        } else {
            Err(self.error(format!("expected {prefix:?}")))
        }
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.bump();
        }
    }

    fn skip_comment(&mut self) -> Result<bool, ParseXmlError> {
        if !self.eat("<!--") {
            return Ok(false);
        }
        match self.rest().find("-->") {
            Some(idx) => {
                self.pos += idx + 3;
                Ok(true)
            }
            None => Err(self.error("unterminated comment")),
        }
    }

    fn skip_misc(&mut self) {
        loop {
            self.skip_whitespace();
            match self.skip_comment() {
                Ok(true) => continue,
                _ => break,
            }
        }
    }

    fn skip_prolog(&mut self) {
        self.skip_whitespace();
        if self.eat("<?xml") {
            if let Some(idx) = self.rest().find("?>") {
                self.pos += idx + 2;
            } else {
                return;
            }
        }
        self.skip_misc();
    }

    fn parse_name(&mut self) -> Result<String, ParseXmlError> {
        let start = self.pos;
        match self.peek() {
            Some(c) if c.is_ascii_alphabetic() || c == '_' => {
                self.bump();
            }
            _ => return Err(self.error("expected name")),
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '-'))
        {
            self.bump();
        }
        Ok(self.input[start..self.pos].to_string())
    }

    fn parse_attr_value(&mut self) -> Result<String, ParseXmlError> {
        let quote = match self.bump() {
            Some(q @ ('"' | '\'')) => q,
            _ => return Err(self.error("expected quoted attribute value")),
        };
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated attribute value")),
                Some(c) if c == quote => {
                    self.bump();
                    return Ok(out);
                }
                Some('<') => return Err(self.error("'<' in attribute value")),
                Some('&') => out.push(self.parse_entity()?),
                Some(c) => {
                    out.push(c);
                    self.bump();
                }
            }
        }
    }

    fn parse_entity(&mut self) -> Result<char, ParseXmlError> {
        debug_assert_eq!(self.peek(), Some('&'));
        for (entity, ch) in [
            ("&amp;", '&'),
            ("&lt;", '<'),
            ("&gt;", '>'),
            ("&quot;", '"'),
            ("&apos;", '\''),
        ] {
            if self.eat(entity) {
                return Ok(ch);
            }
        }
        if self.eat("&#") {
            let hex = self.eat("x");
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric()) {
                self.bump();
            }
            let digits = &self.input[start..self.pos];
            self.expect(";")?;
            let code = u32::from_str_radix(digits, if hex { 16 } else { 10 })
                .map_err(|_| self.error("bad character reference"))?;
            return char::from_u32(code).ok_or_else(|| self.error("bad character reference"));
        }
        Err(self.error("unknown entity"))
    }

    fn parse_element(&mut self, depth: usize) -> Result<Element, ParseXmlError> {
        if depth >= MAX_NESTING_DEPTH {
            return Err(self.error(format!(
                "element nesting deeper than {MAX_NESTING_DEPTH} levels"
            )));
        }
        self.expect("<")?;
        let name = self.parse_name()?;
        let mut el = Element::new(name);
        loop {
            self.skip_whitespace();
            match self.peek() {
                Some('/') => {
                    self.expect("/")?;
                    self.expect(">")?;
                    return Ok(el);
                }
                Some('>') => {
                    self.bump();
                    break;
                }
                Some(c) if c.is_ascii_alphabetic() || c == '_' => {
                    let key = self.parse_name()?;
                    self.skip_whitespace();
                    self.expect("=")?;
                    self.skip_whitespace();
                    let value = self.parse_attr_value()?;
                    if el.attr(&key).is_some() {
                        return Err(self.error(format!("duplicate attribute {key:?}")));
                    }
                    el.set_attr(key, value);
                }
                _ => return Err(self.error("expected attribute, '>' or '/>'")),
            }
        }
        loop {
            if self.rest().starts_with("</") {
                self.expect("</")?;
                let close = self.parse_name()?;
                if close != el.name() {
                    return Err(self.error(format!(
                        "mismatched close tag: expected </{}>, found </{close}>",
                        el.name()
                    )));
                }
                self.skip_whitespace();
                self.expect(">")?;
                return Ok(el);
            }
            if self.skip_comment()? {
                continue;
            }
            match self.peek() {
                None => return Err(self.error(format!("unterminated element <{}>", el.name()))),
                Some('<') => {
                    let child = self.parse_element(depth + 1)?;
                    el.push_child(child);
                }
                Some(_) => {
                    let mut text = String::new();
                    loop {
                        match self.peek() {
                            None | Some('<') => break,
                            Some('&') => text.push(self.parse_entity()?),
                            Some(c) => {
                                text.push(c);
                                self.bump();
                            }
                        }
                    }
                    if !text.trim().is_empty() {
                        el.push_text(text);
                    }
                }
            }
        }
    }
}

// ----------------------------------------------------------- equivalence --

/// Asserts all three parse paths agree on `input`: the reference owned
/// parser, the rewritten [`Element::parse`], and the zero-copy
/// [`ElementRef::parse`] (compared after `into_owned`).
fn assert_all_paths_agree(input: &str) {
    let want = ref_parse(input);
    assert_eq!(
        Element::parse(input),
        want,
        "Element::parse diverged from reference on {input:?}"
    );
    assert_eq!(
        ElementRef::parse(input).map(ElementRef::into_owned),
        want,
        "ElementRef::parse diverged from reference on {input:?}"
    );
}

#[test]
fn fixed_malformed_corpus_matches_reference() {
    for input in [
        "",
        " ",
        "<",
        "<>",
        "</>",
        "<a",
        "<a ",
        "<a/",
        "<a>",
        "<a></b>",
        "<a></a",
        "<a b></a>",
        "<a b=></a>",
        "<a b=c/>",
        "<a b=\"c/>",
        "<a b=\"c\" b=\"d\"/>",
        "<a b=\"<\"/>",
        "<a>&bogus;</a>",
        "<a>&amp</a>",
        "<a>&#;</a>",
        "<a>&#x;</a>",
        "<a>&#xZZ;</a>",
        "<a>&#110000;</a>", // beyond char::MAX
        "<a>&#xD800;</a>",  // surrogate
        "<a><!-- unterminated</a>",
        "<a/><b/>",
        "<a/>trailing",
        "<?xml version=\"1.0\"?>",
        "<?xml unterminated",
        "<1tag/>",
        "< a/>",
        "<a Ω=\"v\"/>",
        "<a/>\u{feff}",
    ] {
        assert_all_paths_agree(input);
    }
}

#[test]
fn deep_nesting_rejected_identically() {
    let deep = "<d>".repeat(MAX_NESTING_DEPTH + 1);
    assert_all_paths_agree(&deep);
    let just_ok = format!(
        "{}{}",
        "<d>".repeat(MAX_NESTING_DEPTH - 1),
        "</d>".repeat(MAX_NESTING_DEPTH - 1)
    );
    assert_all_paths_agree(&just_ok);
}

/// Every char-boundary prefix of a representative document (attributes,
/// both quote styles, entities, numeric references, comments, nesting,
/// mixed text) produces the identical error from all three paths.
#[test]
fn every_truncation_matches_reference() {
    let wire = "<?xml version=\"1.0\"?><!-- c --><msg src=\"fd\" dst='rec' id=\"12\">\
                <set v=\"a&amp;b&#x41;\">text &lt;runs&gt;<inner x='y'/></set></msg>";
    for cut in 0..=wire.len() {
        if !wire.is_char_boundary(cut) {
            continue;
        }
        assert_all_paths_agree(&wire[..cut]);
    }
}

/// An alphabet biased toward XML structure so random strings exercise real
/// parser states, not just the "expected name" error.
fn arb_garbage(rng: &mut SimRng) -> String {
    const TOKENS: &[&str] = &[
        "<",
        ">",
        "/",
        "=",
        "\"",
        "'",
        "&",
        ";",
        " ",
        "a",
        "msg",
        "src",
        "&amp;",
        "&#x41;",
        "&#",
        "<!--",
        "-->",
        "<?xml",
        "?>",
        "</",
        "/>",
        "é",
        "\u{1F600}",
    ];
    let len = rng.next_below(40);
    let mut s = String::new();
    for _ in 0..len {
        s.push_str(TOKENS[rng.next_below(TOKENS.len() as u64) as usize]);
    }
    s
}

#[test]
fn random_garbage_matches_reference() {
    check::run("codec garbage differential", 512, |rng| {
        assert_all_paths_agree(&arb_garbage(rng));
    });
}

/// A random well-formed document: nested elements with attribute values and
/// text runs containing XML-hostile characters (escaped on serialization).
fn arb_tree(rng: &mut SimRng, depth: usize) -> Element {
    let mut el = Element::new(check::ident(rng, 8));
    for _ in 0..rng.next_below(3) {
        el.set_attr(check::ident(rng, 6), check::printable(rng, 12));
    }
    if depth < 3 {
        // Adjacent text runs merge on re-parse, so never emit two in a row.
        let mut last_was_text = false;
        for _ in 0..rng.next_below(3) {
            if !last_was_text && rng.chance(0.3) {
                let t = check::printable(rng, 10);
                if !t.trim().is_empty() {
                    el.push_text(t);
                    last_was_text = true;
                }
            } else {
                el.push_child(arb_tree(rng, depth + 1));
                last_was_text = false;
            }
        }
    }
    el
}

#[test]
fn random_valid_documents_match_reference() {
    check::run("codec valid-document differential", 256, |rng| {
        let doc = arb_tree(rng, 0);
        let wire = doc.to_xml_string();
        let want = ref_parse(&wire);
        assert_eq!(want.as_ref(), Ok(&doc), "reference must accept own output");
        assert_all_paths_agree(&wire);
    });
}

/// The full envelope decode path (now zero-copy) agrees with the old
/// two-step owned path: reference-parse then `Envelope::from_element`.
#[test]
fn envelope_parse_matches_reference_two_step() {
    check::run("envelope decode differential", 256, |rng| {
        let wire = if rng.chance(0.5) {
            let body = match rng.next_below(3) {
                0 => Message::Ping {
                    seq: rng.next_u64(),
                },
                1 => Message::Ack { of: rng.next_u64() },
                _ => Message::RadioCommand {
                    verb: check::ident(rng, 6),
                    arg: check::printable(rng, 12),
                },
            };
            Envelope::new(
                check::ident(rng, 6),
                check::ident(rng, 6),
                rng.next_u64(),
                body,
            )
            .to_xml_string()
        } else {
            arb_garbage(rng)
        };
        let want = ref_parse(&wire)
            .map_err(MsgError::Xml)
            .and_then(|el| Envelope::from_element(&el));
        assert_eq!(Envelope::parse(&wire), want, "on {wire:?}");
    });
}

// ------------------------------------------------------ hardening checks --

#[test]
fn oversized_wire_still_refused_before_parsing() {
    let padding = "x".repeat(Envelope::MAX_WIRE_BYTES);
    let wire =
        format!("<msg src=\"a\" dst=\"b\" id=\"1\" pad=\"{padding}\"><ping seq=\"1\"/></msg>");
    assert!(matches!(
        Envelope::parse(&wire),
        Err(MsgError::Oversized { bytes, limit })
            if bytes == wire.len() && limit == Envelope::MAX_WIRE_BYTES
    ));
    // At the ceiling exactly, parsing proceeds (and fails on schema, not size).
    let at_limit = "z".repeat(Envelope::MAX_WIRE_BYTES);
    assert!(!matches!(
        Envelope::parse(&at_limit),
        Err(MsgError::Oversized { .. })
    ));
}

#[test]
fn non_ascii_hex_hardening_holds() {
    for bad in ["éé", "日本", "a\u{0301}bc", "+f", "-1", " f", "f "] {
        assert_eq!(
            TelemetryFrame::from_hex(bad),
            Err(FrameError::BadHex),
            "{bad:?} must be refused"
        );
    }
    let frame = TelemetryFrame::new(3, vec![0, 255, 16]);
    assert_eq!(TelemetryFrame::from_hex(&frame.to_hex()), Ok(frame));
}

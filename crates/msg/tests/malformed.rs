#![allow(clippy::disallowed_methods)]
//! Malformed-input coverage for `msg::frame` and `msg::xml`/`msg::envelope`.
//!
//! The round-trip suites prove well-formed input survives; this one proves
//! hostile input is *refused* — truncated frames at every prefix length,
//! corrupted and non-ASCII hex, payloads that are not UTF-8, XML garbage,
//! and oversized envelopes — always with an error, never a panic.

use mercury_msg::frame::{crc32, FrameError, TelemetryFrame};
use mercury_msg::xml::Element;
use mercury_msg::{Envelope, Message, MsgError};

// ---------------------------------------------------------------- frames --

/// Every strict prefix of a valid frame fails to deframe (`Truncated` below
/// the 10-byte minimum, `BadCrc` or `LengthMismatch` above it) — and never
/// parses as a *different* valid frame.
#[test]
fn every_truncation_of_a_frame_is_rejected() {
    let frame = TelemetryFrame::new(7, b"science, 32 bytes of it exactly!".to_vec());
    let bytes = frame.to_bytes();
    for cut in 0..bytes.len() {
        let err = TelemetryFrame::from_bytes(&bytes[..cut])
            .expect_err("a strict prefix must not deframe");
        if cut < 10 {
            assert_eq!(err, FrameError::Truncated, "cut at {cut}");
        } else {
            assert!(
                matches!(
                    err,
                    FrameError::BadCrc { .. } | FrameError::LengthMismatch { .. }
                ),
                "cut at {cut}: {err:?}"
            );
        }
    }
}

/// Hex decoding rejects odd lengths, non-hex digits, and — without
/// panicking on the byte-pair slicing — multi-byte UTF-8 in any position.
#[test]
fn malformed_hex_is_rejected_not_panicked_on() {
    for bad in [
        "abc",      // odd length
        "zz",       // not hex digits
        "0g",       // half hex
        "éé",       // multi-byte chars, even byte length
        "aéb",      // multi-byte char straddling a pair boundary
        "日本語値", // wide chars, even byte length
    ] {
        assert_eq!(
            TelemetryFrame::from_hex(bad),
            Err(FrameError::BadHex),
            "{bad:?}"
        );
    }
}

/// A payload that is not valid UTF-8 is still bytes: it must round-trip
/// through both wire forms untouched, not get lossily re-coded.
#[test]
fn non_utf8_payload_round_trips() {
    let payload = vec![0xff, 0xfe, 0x00, 0x80, 0xc3, 0x28, 0xf0, 0x9f];
    assert!(std::str::from_utf8(&payload).is_err(), "premise");
    let frame = TelemetryFrame::new(1, payload.clone());
    assert_eq!(
        TelemetryFrame::from_bytes(&frame.to_bytes())
            .unwrap()
            .payload,
        payload
    );
    assert_eq!(
        TelemetryFrame::from_hex(&frame.to_hex()).unwrap().payload,
        payload
    );
}

/// Flipping any single hex digit of the wire form is caught (by the hex
/// decoder or the CRC), never silently accepted.
#[test]
fn corrupted_hex_wire_never_parses() {
    let frame = TelemetryFrame::new(3, b"opal".to_vec());
    let hex = frame.to_hex();
    for i in 0..hex.len() {
        let mut raw = hex.clone().into_bytes();
        raw[i] = if raw[i] == b'0' { b'1' } else { b'0' };
        let corrupted = String::from_utf8(raw).unwrap();
        assert!(
            TelemetryFrame::from_hex(&corrupted).is_err(),
            "digit {i} corrupted but still parsed"
        );
    }
}

/// The length field is validated even when an attacker recomputes the CRC.
#[test]
fn forged_length_with_valid_crc_is_rejected() {
    for declared in [0u16, 1, 2, 9, u16::MAX] {
        let mut body = Vec::new();
        body.extend_from_slice(&9u32.to_be_bytes());
        body.extend_from_slice(&declared.to_be_bytes());
        body.extend_from_slice(b"abcd"); // actual payload: 4 bytes
        let crc = crc32(&body);
        body.extend_from_slice(&crc.to_be_bytes());
        assert_eq!(
            TelemetryFrame::from_bytes(&body),
            Err(FrameError::LengthMismatch {
                declared: usize::from(declared),
                actual: 4
            })
        );
    }
}

// ------------------------------------------------------------------- xml --

/// Assorted garbage none of which is a well-formed document element.
#[test]
fn xml_garbage_is_rejected() {
    for bad in [
        "",
        "   ",
        "not xml at all",
        "<",
        "<a",
        "<a>",
        "<a></b>",
        "<a><b></a></b>",
        "<a attr></a>",
        "<a k=\"v\" k=\"w\"/>",
        "<a k='v\"/>",
        "<a>&bogus;</a>",
        "<a>&#xZZ;</a>",
        "<a/><b/>",
        "<a/>trailing",
        "<?xml version=\"1.0\"?>",
        "<!-- only a comment -->",
        "</a>",
        "<1tag/>",
    ] {
        assert!(Element::parse(bad).is_err(), "{bad:?} parsed");
    }
}

/// Nesting deeper than the parser's recursion cap is refused with an
/// ordinary parse error — a ~100k-deep document must not abort the process
/// with a stack overflow.
#[test]
fn deeply_nested_xml_is_an_error_not_a_stack_overflow() {
    use mercury_msg::xml::MAX_NESTING_DEPTH;
    for depth in [MAX_NESTING_DEPTH + 1, 10_000, 100_000] {
        let mut doc = String::with_capacity(depth * 7);
        for _ in 0..depth {
            doc.push_str("<a>");
        }
        for _ in 0..depth {
            doc.push_str("</a>");
        }
        let err = Element::parse(&doc).expect_err("deep nesting must be refused");
        assert!(
            err.message.contains("nesting"),
            "depth {depth}: unexpected error {err}"
        );
    }
    // And the cap itself is not off by one: exactly MAX_NESTING_DEPTH
    // levels still parse.
    let ok_depth = MAX_NESTING_DEPTH;
    let mut doc = String::new();
    for _ in 0..ok_depth {
        doc.push_str("<a>");
    }
    for _ in 0..ok_depth {
        doc.push_str("</a>");
    }
    assert!(Element::parse(&doc).is_ok(), "cap is off by one");
}

/// Unterminated constructs at every syntactic position: each must produce a
/// parse error describing the open construct, never hang or panic.
#[test]
fn unterminated_xml_is_rejected_with_an_error() {
    for (bad, needle) in [
        ("<a><b>", "unterminated element"),
        ("<a><b></b>", "unterminated element"),
        ("<a>text with no close", "unterminated element"),
        ("<a k=\"v", "unterminated attribute value"),
        ("<a k='v", "unterminated attribute value"),
        ("<!-- no close", "expected"),
        ("<a><!-- no close", "comment"),
        ("<a>&amp", "entity"),
        ("<a></a", "expected"),
        ("<a><b/>", "unterminated element"),
    ] {
        let err = Element::parse(bad).expect_err(bad);
        assert!(
            !err.message.is_empty() && err.message.contains(needle),
            "{bad:?}: expected error mentioning {needle:?}, got {err}"
        );
    }
}

/// Truncating a well-formed envelope at every char boundary never parses —
/// there is no prefix of a `<msg>` document that is itself one.
#[test]
fn every_truncation_of_an_envelope_is_rejected() {
    let wire = Envelope::new("fd", "rec", 9, Message::Ping { seq: 4 }).to_xml_string();
    for cut in 0..wire.len() {
        if !wire.is_char_boundary(cut) {
            continue;
        }
        assert!(
            Envelope::parse(&wire[..cut]).is_err(),
            "prefix of {cut} bytes parsed"
        );
    }
}

// -------------------------------------------------------------- envelope --

/// The size ceiling: a just-under-limit envelope parses, one past it is
/// refused with `Oversized` before any parse work.
#[test]
fn oversized_envelope_is_refused() {
    let frame_hex = "00".repeat((Envelope::MAX_WIRE_BYTES - 100) / 2);
    let big = Envelope::new(
        "pbcom",
        "fedr",
        1,
        Message::SerialFrame {
            hex: frame_hex.clone(),
        },
    )
    .to_xml_string();
    assert!(big.len() <= Envelope::MAX_WIRE_BYTES, "premise");
    // Under the limit: rejected on content (the hex is not a valid frame)
    // or accepted — but never on size.
    assert!(!matches!(
        Envelope::parse(&big),
        Err(MsgError::Oversized { .. })
    ));

    let huge = Envelope::new(
        "pbcom",
        "fedr",
        1,
        Message::SerialFrame {
            hex: "00".repeat(Envelope::MAX_WIRE_BYTES),
        },
    )
    .to_xml_string();
    let err = Envelope::parse(&huge).unwrap_err();
    match err {
        MsgError::Oversized { bytes, limit } => {
            assert_eq!(bytes, huge.len());
            assert_eq!(limit, Envelope::MAX_WIRE_BYTES);
        }
        other => panic!("expected Oversized, got {other:?}"),
    }
    assert!(err.to_string().contains("exceeds"));
}

/// Schema-level malformations on an otherwise well-formed `<msg>`.
#[test]
fn envelope_schema_violations_are_rejected() {
    for bad in [
        r#"<note src="a" dst="b" id="1"><ping seq="1"/></note>"#, // wrong root
        r#"<msg src="a" dst="b" id="-1"><ping seq="1"/></msg>"#,  // negative id
        r#"<msg src="a" dst="b" id="99999999999999999999"><ping seq="1"/></msg>"#, // id overflow
        r#"<msg src="a" dst="b" id="1"><nonsense/></msg>"#,       // unknown body
        r#"<msg src="a" dst="b" id="1">just text</msg>"#,         // no body element
    ] {
        assert!(Envelope::parse(bad).is_err(), "{bad:?} parsed");
    }
}

//! The Mercury message vocabulary.
//!
//! Every inter-component interaction in the ground station is one of these
//! messages, encoded as an XML element. The vocabulary covers:
//!
//! * **failure detection** — [`Message::Ping`] / [`Message::Pong`], the
//!   application-level liveness probes of §2.2 ("a successful response
//!   indicates the component's liveness with higher confidence than a
//!   network-level ICMP ping");
//! * **pass operations** — tracking, estimation and tuning traffic between
//!   `str`, `ses`, `rtu` and the radio front end;
//! * **radio I/O** — high-level radio commands (`fedr`) and raw serial frames
//!   (`pbcom`);
//! * **startup synchronization** — the ses/str handshake whose blocking
//!   behaviour causes the correlated failures consolidated away in §4.3;
//! * **health beacons** — the component health summaries proposed as future
//!   work in §7.

use std::fmt;

use crate::error::MsgError;
use crate::xml::{Element, XmlRead};

/// Component self-reported status carried in pongs and beacons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ComponentStatus {
    /// Up and processing normally.
    Ok,
    /// Booting or re-synchronizing; not yet serving requests.
    Starting,
    /// Alive but degraded (e.g. resource aging detected).
    Degraded,
}

impl ComponentStatus {
    fn as_str(self) -> &'static str {
        match self {
            ComponentStatus::Ok => "ok",
            ComponentStatus::Starting => "starting",
            ComponentStatus::Degraded => "degraded",
        }
    }

    fn parse(s: &str) -> Result<Self, MsgError> {
        match s {
            "ok" => Ok(ComponentStatus::Ok),
            "starting" => Ok(ComponentStatus::Starting),
            "degraded" => Ok(ComponentStatus::Degraded),
            other => Err(MsgError::schema(format!("unknown status {other:?}"))),
        }
    }
}

impl fmt::Display for ComponentStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The radio band a tune command selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RadioBand {
    /// 144–146 MHz amateur band (uplink for Stanford's satellites).
    Vhf,
    /// 435–438 MHz amateur band (downlink).
    Uhf,
}

impl RadioBand {
    fn as_str(self) -> &'static str {
        match self {
            RadioBand::Vhf => "vhf",
            RadioBand::Uhf => "uhf",
        }
    }

    fn parse(s: &str) -> Result<Self, MsgError> {
        match s {
            "vhf" => Ok(RadioBand::Vhf),
            "uhf" => Ok(RadioBand::Uhf),
            other => Err(MsgError::schema(format!("unknown band {other:?}"))),
        }
    }
}

impl fmt::Display for RadioBand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Tracker state reported in telemetry/status traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrackingState {
    /// Antenna parked, no pass in progress.
    Idle,
    /// Slewing to the predicted acquisition-of-signal position.
    Acquiring,
    /// Actively following the satellite.
    Tracking,
}

impl TrackingState {
    fn as_str(self) -> &'static str {
        match self {
            TrackingState::Idle => "idle",
            TrackingState::Acquiring => "acquiring",
            TrackingState::Tracking => "tracking",
        }
    }

    /// Parses the wire form (`idle` / `acquiring` / `tracking`).
    ///
    /// # Errors
    ///
    /// Returns [`MsgError::Schema`] for unknown values.
    pub fn parse(s: &str) -> Result<Self, MsgError> {
        match s {
            "idle" => Ok(TrackingState::Idle),
            "acquiring" => Ok(TrackingState::Acquiring),
            "tracking" => Ok(TrackingState::Tracking),
            other => Err(MsgError::schema(format!(
                "unknown tracking state {other:?}"
            ))),
        }
    }
}

impl fmt::Display for TrackingState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A Mercury command-language message.
///
/// ```
/// use mercury_msg::Message;
/// let m = Message::TuneRadio { frequency_hz: 437_100_000.0, band: mercury_msg::RadioBand::Uhf };
/// let el = m.to_element();
/// assert_eq!(Message::from_element(&el)?, m);
/// # Ok::<(), mercury_msg::MsgError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// "Are you alive?" — sent by the failure detector every second.
    Ping {
        /// Monotonic probe sequence number.
        seq: u64,
    },
    /// Liveness reply.
    Pong {
        /// Echoes the probe's sequence number.
        seq: u64,
        /// The component's self-reported status.
        status: ComponentStatus,
    },
    /// Operator-level request to run a pass against a satellite.
    TrackRequest {
        /// Satellite name (e.g. `opal`, `sapphire`).
        satellite: String,
    },
    /// Antenna pointing command issued by the tracker.
    PointAntenna {
        /// Azimuth in degrees clockwise from north.
        azimuth_deg: f64,
        /// Elevation in degrees above the horizon.
        elevation_deg: f64,
    },
    /// Request for a satellite state estimate (position + Doppler).
    EstimateRequest {
        /// Satellite name.
        satellite: String,
        /// Seconds since the scenario epoch at which the estimate is wanted.
        at_epoch_s: f64,
    },
    /// Satellite state estimate produced by `ses`.
    EstimateReply {
        /// Azimuth in degrees.
        azimuth_deg: f64,
        /// Elevation in degrees (negative = below horizon).
        elevation_deg: f64,
        /// Slant range in kilometres.
        range_km: f64,
        /// Downlink Doppler shift in hertz.
        doppler_hz: f64,
    },
    /// Radio tuning command issued by `rtu`.
    TuneRadio {
        /// Centre frequency in hertz (Doppler-corrected).
        frequency_hz: f64,
        /// Which radio to tune.
        band: RadioBand,
    },
    /// High-level radio command translated by `fedr` for the hardware.
    RadioCommand {
        /// The command verb (e.g. `FREQ`, `MODE`, `PTT`).
        verb: String,
        /// Verb argument.
        arg: String,
    },
    /// A raw serial frame crossing the `pbcom` serial/TCP bridge.
    SerialFrame {
        /// Frame payload as lowercase hex.
        hex: String,
    },
    /// A telemetry frame received from the satellite during a pass.
    Telemetry {
        /// Satellite name.
        satellite: String,
        /// Frame sequence number within the pass.
        frame: u64,
        /// Payload as lowercase hex.
        hex: String,
    },
    /// ses/str startup synchronization request (§4.3): a freshly restarted
    /// peer blocks until this handshake completes.
    SyncRequest {
        /// Incarnation number of the requester.
        incarnation: u64,
    },
    /// ses/str synchronization acknowledgement.
    SyncAck {
        /// Incarnation number being acknowledged.
        incarnation: u64,
    },
    /// Component health-summary beacon (future work, §7): a digest of
    /// internal metrics broadcast periodically.
    Beacon {
        /// Reporting component.
        component: String,
        /// Self-reported status.
        status: ComponentStatus,
        /// Seconds since this incarnation started.
        uptime_s: f64,
        /// Resource-aging score in `[0, 1]`; 1 means imminent failure.
        aging: f64,
        /// Messages handled this incarnation.
        handled: u64,
    },
    /// Generic acknowledgement of an envelope id.
    Ack {
        /// The envelope id being acknowledged.
        of: u64,
    },
    /// FD → REC failure report over the dedicated connection (§2.2).
    Failed {
        /// The component whose liveness pings went unanswered.
        component: String,
    },
    /// FD → REC batched failure report: every component whose ping timed
    /// out at the same instant of the same ping round. Reporting concurrent
    /// suspicions together lets REC plan one antichain of restart episodes
    /// instead of discovering overlaps restart-by-restart.
    FailedBatch {
        /// The suspected components, in FD's detection order. Never empty.
        components: Vec<String>,
    },
    /// FD → REC recovery notice: a previously failed component answers pings
    /// again.
    Alive {
        /// The component that came back.
        component: String,
    },
    /// Fault-injection hook used by the evaluation harness (the equivalent of
    /// the paper's instrumented failure campaigns): instructs a component to
    /// adopt a faulty behaviour, e.g. `poison` makes `fedr` corrupt its
    /// `pbcom` session so that only a joint restart cures the failure (§4.4).
    TestHook {
        /// The behaviour to adopt.
        action: String,
    },
}

fn req_attr<'a, E: XmlRead>(el: &'a E, key: &str) -> Result<&'a str, MsgError> {
    el.attr(key)
        .ok_or_else(|| MsgError::schema(format!("<{}> missing attribute {key:?}", el.name())))
}

fn req_u64<E: XmlRead>(el: &E, key: &str) -> Result<u64, MsgError> {
    let raw = req_attr(el, key)?;
    raw.parse().map_err(|_| {
        MsgError::schema(format!(
            "<{}> attribute {key}={raw:?} is not a u64",
            el.name()
        ))
    })
}

fn req_f64<E: XmlRead>(el: &E, key: &str) -> Result<f64, MsgError> {
    let raw = req_attr(el, key)?;
    let v: f64 = raw.parse().map_err(|_| {
        MsgError::schema(format!(
            "<{}> attribute {key}={raw:?} is not a number",
            el.name()
        ))
    })?;
    if v.is_finite() {
        Ok(v)
    } else {
        Err(MsgError::schema(format!(
            "<{}> attribute {key} is not finite",
            el.name()
        )))
    }
}

/// Formats an `f64` so that it round-trips exactly through `parse`.
fn fmt_f64(v: f64) -> String {
    // `{:?}` on f64 prints the shortest representation that parses back to
    // the same value.
    format!("{v:?}")
}

impl Message {
    /// Encodes the message as an XML element.
    pub fn to_element(&self) -> Element {
        match self {
            Message::Ping { seq } => Element::new("ping").with_attr("seq", seq.to_string()),
            Message::Pong { seq, status } => Element::new("pong")
                .with_attr("seq", seq.to_string())
                .with_attr("status", status.as_str()),
            Message::TrackRequest { satellite } => {
                Element::new("track").with_attr("sat", satellite.clone())
            }
            Message::PointAntenna {
                azimuth_deg,
                elevation_deg,
            } => Element::new("point")
                .with_attr("az", fmt_f64(*azimuth_deg))
                .with_attr("el", fmt_f64(*elevation_deg)),
            Message::EstimateRequest {
                satellite,
                at_epoch_s,
            } => Element::new("estimate")
                .with_attr("sat", satellite.clone())
                .with_attr("at", fmt_f64(*at_epoch_s)),
            Message::EstimateReply {
                azimuth_deg,
                elevation_deg,
                range_km,
                doppler_hz,
            } => Element::new("state")
                .with_attr("az", fmt_f64(*azimuth_deg))
                .with_attr("el", fmt_f64(*elevation_deg))
                .with_attr("range", fmt_f64(*range_km))
                .with_attr("doppler", fmt_f64(*doppler_hz)),
            Message::TuneRadio { frequency_hz, band } => Element::new("tune")
                .with_attr("freq", fmt_f64(*frequency_hz))
                .with_attr("band", band.as_str()),
            Message::RadioCommand { verb, arg } => Element::new("radio")
                .with_attr("verb", verb.clone())
                .with_attr("arg", arg.clone()),
            Message::SerialFrame { hex } => Element::new("serial").with_attr("hex", hex.clone()),
            Message::Telemetry {
                satellite,
                frame,
                hex,
            } => Element::new("telemetry")
                .with_attr("sat", satellite.clone())
                .with_attr("frame", frame.to_string())
                .with_attr("hex", hex.clone()),
            Message::SyncRequest { incarnation } => {
                Element::new("sync").with_attr("inc", incarnation.to_string())
            }
            Message::SyncAck { incarnation } => {
                Element::new("sync-ack").with_attr("inc", incarnation.to_string())
            }
            Message::Beacon {
                component,
                status,
                uptime_s,
                aging,
                handled,
            } => Element::new("beacon")
                .with_attr("component", component.clone())
                .with_attr("status", status.as_str())
                .with_attr("uptime", fmt_f64(*uptime_s))
                .with_attr("aging", fmt_f64(*aging))
                .with_attr("handled", handled.to_string()),
            Message::Ack { of } => Element::new("ack").with_attr("of", of.to_string()),
            Message::Failed { component } => {
                Element::new("failed").with_attr("component", component.clone())
            }
            Message::FailedBatch { components } => {
                Element::new("failed-batch").with_attr("components", components.join("+"))
            }
            Message::Alive { component } => {
                Element::new("alive").with_attr("component", component.clone())
            }
            Message::TestHook { action } => {
                Element::new("test-hook").with_attr("action", action.clone())
            }
        }
    }

    /// Decodes a message from an owned XML element. Equivalent to
    /// [`Message::decode`]; kept as the familiar named entry point.
    ///
    /// # Errors
    ///
    /// Returns [`MsgError::Schema`] if the element name is unknown or a
    /// required attribute is missing or malformed.
    pub fn from_element(el: &Element) -> Result<Message, MsgError> {
        Message::decode(el)
    }

    /// Decodes a message from any XML tree — the owned [`Element`] or the
    /// zero-copy [`crate::ElementRef`] straight off the wire.
    ///
    /// # Errors
    ///
    /// Returns [`MsgError::Schema`] if the element name is unknown or a
    /// required attribute is missing or malformed.
    pub fn decode<E: XmlRead>(el: &E) -> Result<Message, MsgError> {
        match el.name() {
            "ping" => Ok(Message::Ping {
                seq: req_u64(el, "seq")?,
            }),
            "pong" => Ok(Message::Pong {
                seq: req_u64(el, "seq")?,
                status: ComponentStatus::parse(req_attr(el, "status")?)?,
            }),
            "track" => Ok(Message::TrackRequest {
                satellite: req_attr(el, "sat")?.to_string(),
            }),
            "point" => Ok(Message::PointAntenna {
                azimuth_deg: req_f64(el, "az")?,
                elevation_deg: req_f64(el, "el")?,
            }),
            "estimate" => Ok(Message::EstimateRequest {
                satellite: req_attr(el, "sat")?.to_string(),
                at_epoch_s: req_f64(el, "at")?,
            }),
            "state" => Ok(Message::EstimateReply {
                azimuth_deg: req_f64(el, "az")?,
                elevation_deg: req_f64(el, "el")?,
                range_km: req_f64(el, "range")?,
                doppler_hz: req_f64(el, "doppler")?,
            }),
            "tune" => Ok(Message::TuneRadio {
                frequency_hz: req_f64(el, "freq")?,
                band: RadioBand::parse(req_attr(el, "band")?)?,
            }),
            "radio" => Ok(Message::RadioCommand {
                verb: req_attr(el, "verb")?.to_string(),
                arg: req_attr(el, "arg")?.to_string(),
            }),
            "serial" => Ok(Message::SerialFrame {
                hex: req_attr(el, "hex")?.to_string(),
            }),
            "telemetry" => Ok(Message::Telemetry {
                satellite: req_attr(el, "sat")?.to_string(),
                frame: req_u64(el, "frame")?,
                hex: req_attr(el, "hex")?.to_string(),
            }),
            "sync" => Ok(Message::SyncRequest {
                incarnation: req_u64(el, "inc")?,
            }),
            "sync-ack" => Ok(Message::SyncAck {
                incarnation: req_u64(el, "inc")?,
            }),
            "beacon" => Ok(Message::Beacon {
                component: req_attr(el, "component")?.to_string(),
                status: ComponentStatus::parse(req_attr(el, "status")?)?,
                uptime_s: req_f64(el, "uptime")?,
                aging: req_f64(el, "aging")?,
                handled: req_u64(el, "handled")?,
            }),
            "ack" => Ok(Message::Ack {
                of: req_u64(el, "of")?,
            }),
            "failed" => Ok(Message::Failed {
                component: req_attr(el, "component")?.to_string(),
            }),
            "failed-batch" => {
                let raw = req_attr(el, "components")?;
                if raw.is_empty() || raw.split('+').any(str::is_empty) {
                    return Err(MsgError::schema(
                        "<failed-batch> components must be a non-empty +-joined list",
                    ));
                }
                Ok(Message::FailedBatch {
                    components: raw.split('+').map(str::to_string).collect(),
                })
            }
            "alive" => Ok(Message::Alive {
                component: req_attr(el, "component")?.to_string(),
            }),
            "test-hook" => Ok(Message::TestHook {
                action: req_attr(el, "action")?.to_string(),
            }),
            other => Err(MsgError::schema(format!(
                "unknown message element <{other}>"
            ))),
        }
    }

    /// `true` for the failure-detection probe messages (ping/pong), which the
    /// bus prioritizes and which components must answer even while busy.
    pub fn is_liveness(&self) -> bool {
        matches!(self, Message::Ping { .. } | Message::Pong { .. })
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_element().to_xml_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(m: &Message) {
        let el = m.to_element();
        let wire = el.to_xml_string();
        let parsed = Element::parse(&wire).expect("reparse");
        let back = Message::from_element(&parsed).expect("decode");
        assert_eq!(&back, m, "wire: {wire}");
    }

    #[test]
    fn all_variants_round_trip() {
        let samples = vec![
            Message::Ping { seq: 0 },
            Message::Pong {
                seq: u64::MAX,
                status: ComponentStatus::Degraded,
            },
            Message::TrackRequest {
                satellite: "opal".into(),
            },
            Message::PointAntenna {
                azimuth_deg: 359.999,
                elevation_deg: -0.25,
            },
            Message::EstimateRequest {
                satellite: "sapphire".into(),
                at_epoch_s: 1234.5,
            },
            Message::EstimateReply {
                azimuth_deg: 12.0,
                elevation_deg: 80.0,
                range_km: 700.25,
                doppler_hz: -9123.0,
            },
            Message::TuneRadio {
                frequency_hz: 437_100_000.0,
                band: RadioBand::Uhf,
            },
            Message::RadioCommand {
                verb: "FREQ".into(),
                arg: "437100000".into(),
            },
            Message::SerialFrame {
                hex: "deadbeef".into(),
            },
            Message::Telemetry {
                satellite: "opal".into(),
                frame: 17,
                hex: "00ff".into(),
            },
            Message::SyncRequest { incarnation: 3 },
            Message::SyncAck { incarnation: 3 },
            Message::Beacon {
                component: "fedr".into(),
                status: ComponentStatus::Ok,
                uptime_s: 12.5,
                aging: 0.875,
                handled: 42,
            },
            Message::Ack { of: 99 },
            Message::Failed {
                component: "pbcom".into(),
            },
            Message::FailedBatch {
                components: vec!["fedr".into(), "pbcom".into()],
            },
            Message::Alive {
                component: "pbcom".into(),
            },
            Message::TestHook {
                action: "poison".into(),
            },
        ];
        for m in &samples {
            round_trip(m);
        }
    }

    #[test]
    fn float_attrs_round_trip_exactly() {
        let m = Message::EstimateReply {
            azimuth_deg: std::f64::consts::PI,
            elevation_deg: 1.0 / 3.0,
            range_km: 1e-17,
            doppler_hz: -0.0,
        };
        round_trip(&m);
    }

    #[test]
    fn is_liveness_classifies() {
        assert!(Message::Ping { seq: 1 }.is_liveness());
        assert!(Message::Pong {
            seq: 1,
            status: ComponentStatus::Ok
        }
        .is_liveness());
        assert!(!Message::Ack { of: 1 }.is_liveness());
    }

    #[test]
    fn decode_rejects_unknown_element() {
        let el = Element::new("warp-drive");
        let err = Message::from_element(&el).unwrap_err();
        assert!(err.to_string().contains("unknown message element"));
    }

    #[test]
    fn decode_rejects_missing_attribute() {
        let el = Element::new("ping");
        let err = Message::from_element(&el).unwrap_err();
        assert!(err.to_string().contains("missing attribute"));
    }

    #[test]
    fn decode_rejects_malformed_numbers() {
        let el = Element::new("ping").with_attr("seq", "-1");
        assert!(Message::from_element(&el).is_err());
        let el = Element::new("point")
            .with_attr("az", "north")
            .with_attr("el", "1");
        assert!(Message::from_element(&el).is_err());
        let el = Element::new("point")
            .with_attr("az", "inf")
            .with_attr("el", "1");
        assert!(Message::from_element(&el).is_err());
    }

    #[test]
    fn decode_rejects_bad_enums() {
        let el = Element::new("pong")
            .with_attr("seq", "1")
            .with_attr("status", "zombie");
        assert!(Message::from_element(&el).is_err());
        let el = Element::new("tune")
            .with_attr("freq", "1")
            .with_attr("band", "x-ray");
        assert!(Message::from_element(&el).is_err());
    }

    #[test]
    fn display_is_wire_form() {
        let m = Message::Ping { seq: 5 };
        assert_eq!(m.to_string(), r#"<ping seq="5"/>"#);
    }

    #[test]
    fn enum_displays() {
        assert_eq!(ComponentStatus::Ok.to_string(), "ok");
        assert_eq!(RadioBand::Uhf.to_string(), "uhf");
        assert_eq!(TrackingState::Tracking.to_string(), "tracking");
        assert_eq!(TrackingState::parse("idle").unwrap(), TrackingState::Idle);
        assert!(TrackingState::parse("spinning").is_err());
    }
}

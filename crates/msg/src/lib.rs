//! # mercury-msg — the Mercury ground station command language
//!
//! The Mercury ground station (§2.1 of *Reducing Recovery Time in a Small
//! Recursively Restartable System*, DSN-2002) is "controlled both remotely and
//! locally via a high-level, XML-based command language. Software components
//! are independently operating processes … and interoperate through passing of
//! messages composed in our XML command language."
//!
//! This crate implements that command language from scratch:
//!
//! * [`xml`] — a small, dependency-free XML subset: elements, attributes,
//!   text, escaping, comments. Enough to encode every Mercury message, small
//!   enough to audit.
//! * [`command`] — the message vocabulary: liveness pings and replies (the
//!   application-level failure-detection probes of §2.2), tracking, tuning,
//!   estimation, radio and serial traffic, the ses/str synchronization
//!   handshake, and health-summary beacons (future work, §7).
//! * [`envelope`] — addressed envelopes `<msg src=… dst=… id=…>` that the
//!   message bus routes between components.
//!
//! ## Example
//!
//! ```
//! use mercury_msg::{Envelope, Message};
//!
//! let env = Envelope::new("fd", "ses", 7, Message::Ping { seq: 42 });
//! let wire = env.to_xml_string();
//! let back = Envelope::parse(&wire)?;
//! assert_eq!(back, env);
//! # Ok::<(), mercury_msg::MsgError>(())
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::disallowed_methods))]
#![warn(missing_docs)]

pub mod command;
pub mod envelope;
pub mod error;
pub mod frame;
pub mod xml;

pub use command::{ComponentStatus, Message, RadioBand, TrackingState};
pub use envelope::Envelope;
pub use error::MsgError;
pub use frame::{crc32, FrameError, TelemetryFrame};
pub use xml::{Element, ElementRef, Node, NodeRef, ParseXmlError, XmlRead};

//! Addressed message envelopes routed by the software message bus.
//!
//! Components never talk to each other directly: every message travels inside
//! an envelope `<msg src=… dst=… id=…>…</msg>` over `mbus` (§2.1). The one
//! exception in the paper — the dedicated FD↔REC connection (§2.2) — uses the
//! same envelope format over its own channel.

use std::fmt;

use crate::command::Message;
use crate::error::MsgError;
use crate::xml::{Element, ElementRef, XmlRead};

/// An addressed command-language message.
///
/// ```
/// use mercury_msg::{Envelope, Message};
/// let env = Envelope::new("rtu", "fedr", 12, Message::RadioCommand {
///     verb: "FREQ".into(),
///     arg: "437100000".into(),
/// });
/// let wire = env.to_xml_string();
/// assert_eq!(Envelope::parse(&wire)?, env);
/// # Ok::<(), mercury_msg::MsgError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Name of the sending component.
    pub src: String,
    /// Name of the destination component.
    pub dst: String,
    /// Sender-assigned envelope id (used by [`Message::Ack`]).
    pub id: u64,
    /// The payload.
    pub body: Message,
}

impl Envelope {
    /// Hard ceiling on the wire form accepted by [`Envelope::parse`].
    ///
    /// The largest legitimate envelope is a `SerialFrame` carrying a
    /// hex-encoded maximum-size telemetry frame (~128 KiB of hex); anything
    /// past double that is a runaway or hostile sender, and refusing it up
    /// front keeps a single envelope from wedging the bus with unbounded
    /// parse work.
    pub const MAX_WIRE_BYTES: usize = 256 * 1024;

    /// Creates an envelope.
    pub fn new(src: impl Into<String>, dst: impl Into<String>, id: u64, body: Message) -> Envelope {
        Envelope {
            src: src.into(),
            dst: dst.into(),
            id,
            body,
        }
    }

    /// Encodes as an XML element.
    pub fn to_element(&self) -> Element {
        Element::new("msg")
            .with_attr("src", self.src.clone())
            .with_attr("dst", self.dst.clone())
            .with_attr("id", self.id.to_string())
            .with_child(self.body.to_element())
    }

    /// Serializes to the single-line wire form.
    pub fn to_xml_string(&self) -> String {
        self.to_element().to_xml_string()
    }

    /// Decodes an envelope from an owned XML element. Equivalent to
    /// [`Envelope::decode`]; kept as the familiar named entry point.
    ///
    /// # Errors
    ///
    /// Returns [`MsgError`] if the element is not a well-formed envelope.
    pub fn from_element(el: &Element) -> Result<Envelope, MsgError> {
        Envelope::decode(el)
    }

    /// Decodes an envelope from any XML tree — the owned [`Element`] or the
    /// zero-copy [`ElementRef`] straight off the wire.
    ///
    /// # Errors
    ///
    /// Returns [`MsgError`] if the element is not a well-formed envelope.
    pub fn decode<E: XmlRead>(el: &E) -> Result<Envelope, MsgError> {
        if el.name() != "msg" {
            return Err(MsgError::schema(format!(
                "expected <msg>, found <{}>",
                el.name()
            )));
        }
        let src = el
            .attr("src")
            .ok_or_else(|| MsgError::schema("<msg> missing attribute \"src\""))?;
        let dst = el
            .attr("dst")
            .ok_or_else(|| MsgError::schema("<msg> missing attribute \"dst\""))?;
        let id_raw = el
            .attr("id")
            .ok_or_else(|| MsgError::schema("<msg> missing attribute \"id\""))?;
        let id = id_raw
            .parse()
            .map_err(|_| MsgError::schema(format!("<msg> id={id_raw:?} is not a u64")))?;
        let mut bodies = el.child_elements();
        let body_el = bodies
            .next()
            .ok_or_else(|| MsgError::schema("<msg> has no body element"))?;
        if bodies.next().is_some() {
            return Err(MsgError::schema("<msg> has more than one body element"));
        }
        let body = Message::decode(body_el)?;
        Ok(Envelope {
            src: src.to_string(),
            dst: dst.to_string(),
            id,
            body,
        })
    }

    /// Parses an envelope from its wire form.
    ///
    /// # Errors
    ///
    /// Returns [`MsgError`] on malformed XML, schema violations, or a wire
    /// form exceeding [`Envelope::MAX_WIRE_BYTES`].
    pub fn parse(wire: &str) -> Result<Envelope, MsgError> {
        if wire.len() > Envelope::MAX_WIRE_BYTES {
            return Err(MsgError::Oversized {
                bytes: wire.len(),
                limit: Envelope::MAX_WIRE_BYTES,
            });
        }
        // Zero-copy path: the borrowed tree is decoded and dropped without
        // ever materializing an owned document.
        let el = ElementRef::parse(wire)?;
        Envelope::decode(&el)
    }

    /// A reply envelope: src/dst swapped, given id and body.
    pub fn reply_with(&self, id: u64, body: Message) -> Envelope {
        Envelope {
            src: self.dst.clone(),
            dst: self.src.clone(),
            id,
            body,
        }
    }
}

impl fmt::Display for Envelope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_xml_string())
    }
}

impl std::str::FromStr for Envelope {
    type Err = MsgError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Envelope::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::ComponentStatus;

    #[test]
    fn round_trip() {
        let env = Envelope::new("fd", "mbus", 1, Message::Ping { seq: 9 });
        let wire = env.to_xml_string();
        assert_eq!(
            wire,
            r#"<msg src="fd" dst="mbus" id="1"><ping seq="9"/></msg>"#
        );
        assert_eq!(Envelope::parse(&wire).unwrap(), env);
    }

    #[test]
    fn reply_swaps_addresses() {
        let env = Envelope::new("fd", "ses", 5, Message::Ping { seq: 2 });
        let reply = env.reply_with(
            6,
            Message::Pong {
                seq: 2,
                status: ComponentStatus::Ok,
            },
        );
        assert_eq!(reply.src, "ses");
        assert_eq!(reply.dst, "fd");
        assert_eq!(reply.id, 6);
    }

    #[test]
    fn rejects_wrong_root() {
        let err = Envelope::parse("<envelope/>").unwrap_err();
        assert!(err.to_string().contains("expected <msg>"));
    }

    #[test]
    fn rejects_missing_fields() {
        assert!(Envelope::parse(r#"<msg dst="a" id="1"><ping seq="1"/></msg>"#).is_err());
        assert!(Envelope::parse(r#"<msg src="a" id="1"><ping seq="1"/></msg>"#).is_err());
        assert!(Envelope::parse(r#"<msg src="a" dst="b"><ping seq="1"/></msg>"#).is_err());
        assert!(Envelope::parse(r#"<msg src="a" dst="b" id="x"><ping seq="1"/></msg>"#).is_err());
    }

    #[test]
    fn rejects_zero_or_two_bodies() {
        assert!(Envelope::parse(r#"<msg src="a" dst="b" id="1"/>"#).is_err());
        assert!(Envelope::parse(
            r#"<msg src="a" dst="b" id="1"><ping seq="1"/><ping seq="2"/></msg>"#
        )
        .is_err());
    }

    #[test]
    fn propagates_xml_errors() {
        let err = Envelope::parse("<msg src=").unwrap_err();
        assert!(matches!(err, MsgError::Xml(_)));
    }

    #[test]
    fn from_str_parses() {
        let env: Envelope = r#"<msg src="a" dst="b" id="1"><ack of="7"/></msg>"#
            .parse()
            .unwrap();
        assert_eq!(env.body, Message::Ack { of: 7 });
    }
}

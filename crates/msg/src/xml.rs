//! A small XML subset: elements, attributes, text and comments.
//!
//! Implemented from scratch so the workspace stays dependency-light. The
//! subset is exactly what the Mercury command language needs:
//!
//! * elements with attributes, child elements and text content
//! * standard entity escaping (`&amp; &lt; &gt; &quot; &apos;`)
//! * self-closing tags and comments (skipped)
//! * an optional leading `<?xml …?>` declaration (skipped)
//!
//! It deliberately does **not** implement namespaces, DTDs, CDATA or
//! processing instructions.
//!
//! There is one parser, and it is zero-copy: [`ElementRef::parse`] produces
//! a borrowed tree whose names are slices of the input and whose attribute
//! values and text runs borrow too, unless entity-unescaping forced an
//! owned copy. [`Element::parse`] is that parser plus a deep
//! [`ElementRef::into_owned`], so the two paths accept and reject exactly
//! the same inputs with exactly the same errors by construction. Decoders
//! that only *read* the tree (message and envelope decoding) are generic
//! over [`XmlRead`] and run on either representation.

use std::borrow::Cow;
use std::fmt;

/// A node in an XML document tree: an element or a text run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A child element.
    Element(Element),
    /// A text run (unescaped form).
    Text(String),
}

/// An XML element: name, attributes and children.
///
/// ```
/// use mercury_msg::Element;
/// let el = Element::new("ping").with_attr("seq", "42");
/// assert_eq!(el.to_string(), r#"<ping seq="42"/>"#);
/// let parsed = Element::parse(r#"<ping seq="42"/>"#)?;
/// assert_eq!(parsed, el);
/// # Ok::<(), mercury_msg::ParseXmlError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Element {
    name: String,
    attrs: Vec<(String, String)>,
    children: Vec<Node>,
}

impl Element {
    /// Creates an empty element.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a valid XML name (see [`is_valid_name`]).
    pub fn new(name: impl Into<String>) -> Element {
        let name = name.into();
        assert!(is_valid_name(&name), "invalid element name {name:?}");
        Element {
            name,
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    /// The element name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds or replaces an attribute.
    ///
    /// # Panics
    ///
    /// Panics if `key` is not a valid XML name.
    pub fn set_attr(&mut self, key: impl Into<String>, value: impl Into<String>) {
        let key = key.into();
        assert!(is_valid_name(&key), "invalid attribute name {key:?}");
        let value = value.into();
        if let Some(slot) = self.attrs.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.attrs.push((key, value));
        }
    }

    /// Builder-style [`set_attr`](Self::set_attr).
    #[must_use]
    pub fn with_attr(mut self, key: impl Into<String>, value: impl Into<String>) -> Element {
        self.set_attr(key, value);
        self
    }

    /// Looks up an attribute value.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// All attributes in insertion order.
    pub fn attrs(&self) -> impl Iterator<Item = (&str, &str)> {
        self.attrs.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Appends a child element.
    pub fn push_child(&mut self, child: Element) {
        self.children.push(Node::Element(child));
    }

    /// Builder-style [`push_child`](Self::push_child).
    #[must_use]
    pub fn with_child(mut self, child: Element) -> Element {
        self.push_child(child);
        self
    }

    /// Appends a text run.
    pub fn push_text(&mut self, text: impl Into<String>) {
        self.children.push(Node::Text(text.into()));
    }

    /// Builder-style [`push_text`](Self::push_text).
    #[must_use]
    pub fn with_text(mut self, text: impl Into<String>) -> Element {
        self.push_text(text);
        self
    }

    /// All child nodes in order.
    pub fn children(&self) -> &[Node] {
        &self.children
    }

    /// Child elements only, in order.
    pub fn child_elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(|n| match n {
            Node::Element(e) => Some(e),
            Node::Text(_) => None,
        })
    }

    /// The first child element with the given name.
    pub fn child(&self, name: &str) -> Option<&Element> {
        self.child_elements().find(|e| e.name == name)
    }

    /// Concatenated text content of direct text children (unescaped).
    pub fn text(&self) -> String {
        let mut out = String::new();
        for n in &self.children {
            if let Node::Text(t) = n {
                out.push_str(t);
            }
        }
        out
    }

    /// Serializes to a compact single-line XML string.
    pub fn to_xml_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serializes to an indented, human-readable form (two spaces per
    /// level) — used by diagnostic dumps, not the wire.
    ///
    /// ```
    /// use mercury_msg::Element;
    /// let el = Element::new("a").with_child(Element::new("b"));
    /// assert_eq!(el.to_pretty_string(), "<a>\n  <b/>\n</a>\n");
    /// ```
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        let indent = "  ".repeat(depth);
        out.push_str(&indent);
        out.push('<');
        out.push_str(&self.name);
        for (k, v) in &self.attrs {
            out.push(' ');
            out.push_str(k);
            out.push_str("=\"");
            escape_into(v, out);
            out.push('"');
        }
        if self.children.is_empty() {
            out.push_str("/>\n");
            return;
        }
        // Text-only elements stay on one line.
        if self.children.iter().all(|c| matches!(c, Node::Text(_))) {
            out.push('>');
            for child in &self.children {
                if let Node::Text(t) = child {
                    escape_into(t, out);
                }
            }
            out.push_str("</");
            out.push_str(&self.name);
            out.push_str(">\n");
            return;
        }
        out.push_str(">\n");
        for child in &self.children {
            match child {
                Node::Element(e) => e.write_pretty(out, depth + 1),
                Node::Text(t) => {
                    out.push_str(&"  ".repeat(depth + 1));
                    escape_into(t, out);
                    out.push('\n');
                }
            }
        }
        out.push_str(&indent);
        out.push_str("</");
        out.push_str(&self.name);
        out.push_str(">\n");
    }

    fn write(&self, out: &mut String) {
        out.push('<');
        out.push_str(&self.name);
        for (k, v) in &self.attrs {
            out.push(' ');
            out.push_str(k);
            out.push_str("=\"");
            escape_into(v, out);
            out.push('"');
        }
        if self.children.is_empty() {
            out.push_str("/>");
            return;
        }
        out.push('>');
        for child in &self.children {
            match child {
                Node::Element(e) => e.write(out),
                Node::Text(t) => escape_into(t, out),
            }
        }
        out.push_str("</");
        out.push_str(&self.name);
        out.push('>');
    }

    /// Parses a single XML element (optionally preceded by an `<?xml?>`
    /// declaration, comments and whitespace).
    ///
    /// # Errors
    ///
    /// Returns a [`ParseXmlError`] describing the first syntax error, with its
    /// byte offset.
    pub fn parse(input: &str) -> Result<Element, ParseXmlError> {
        ElementRef::parse(input).map(ElementRef::into_owned)
    }
}

/// A node in a borrowed XML tree: an element or a text run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeRef<'a> {
    /// A child element.
    Element(ElementRef<'a>),
    /// A text run (unescaped form; borrowed when no entity appeared).
    Text(Cow<'a, str>),
}

impl NodeRef<'_> {
    fn into_owned(self) -> Node {
        match self {
            NodeRef::Element(e) => Node::Element(e.into_owned()),
            NodeRef::Text(t) => Node::Text(t.into_owned()),
        }
    }
}

/// A borrowed view of a parsed XML element.
///
/// Element and attribute names are slices of the parse input; attribute
/// values and text runs are [`Cow`]s that borrow unless entity-unescaping
/// forced an owned copy. This is the representation the wire-decode hot
/// path uses — an envelope is parsed, decoded and dropped without copying
/// the document tree.
///
/// ```
/// use mercury_msg::ElementRef;
/// let el = ElementRef::parse(r#"<ping seq="42"/>"#)?;
/// assert_eq!(el.name(), "ping");
/// assert_eq!(el.attr("seq"), Some("42"));
/// # Ok::<(), mercury_msg::ParseXmlError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElementRef<'a> {
    name: &'a str,
    attrs: Vec<(&'a str, Cow<'a, str>)>,
    children: Vec<NodeRef<'a>>,
}

impl<'a> ElementRef<'a> {
    /// Parses a single XML element without copying the document tree
    /// (optionally preceded by an `<?xml?>` declaration, comments and
    /// whitespace). Accepts and rejects exactly the inputs
    /// [`Element::parse`] does, with identical errors — the owned parser is
    /// this one plus [`ElementRef::into_owned`].
    ///
    /// # Errors
    ///
    /// Returns a [`ParseXmlError`] describing the first syntax error, with
    /// its byte offset.
    pub fn parse(input: &'a str) -> Result<ElementRef<'a>, ParseXmlError> {
        let mut p = Parser::new(input);
        p.skip_prolog();
        let el = p.parse_element(0)?;
        p.skip_misc();
        if !p.at_end() {
            return Err(p.error("trailing content after document element"));
        }
        Ok(el)
    }

    /// The element name.
    pub fn name(&self) -> &'a str {
        self.name
    }

    /// Looks up an attribute value.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v.as_ref())
    }

    /// All attributes in document order.
    pub fn attrs(&self) -> impl Iterator<Item = (&str, &str)> {
        self.attrs.iter().map(|(k, v)| (*k, v.as_ref()))
    }

    /// All child nodes in order.
    pub fn children(&self) -> &[NodeRef<'a>] {
        &self.children
    }

    /// Child elements only, in order.
    pub fn child_elements(&self) -> impl Iterator<Item = &ElementRef<'a>> {
        self.children.iter().filter_map(|n| match n {
            NodeRef::Element(e) => Some(e),
            NodeRef::Text(_) => None,
        })
    }

    /// The first child element with the given name.
    pub fn child(&self, name: &str) -> Option<&ElementRef<'a>> {
        self.child_elements().find(|e| e.name == name)
    }

    /// Concatenated text content of direct text children (unescaped).
    pub fn text(&self) -> String {
        let mut out = String::new();
        for n in &self.children {
            if let NodeRef::Text(t) = n {
                out.push_str(t);
            }
        }
        out
    }

    /// Deep-copies into an owned [`Element`].
    pub fn into_owned(self) -> Element {
        Element {
            name: self.name.to_string(),
            attrs: self
                .attrs
                .into_iter()
                .map(|(k, v)| (k.to_string(), v.into_owned()))
                .collect(),
            children: self.children.into_iter().map(NodeRef::into_owned).collect(),
        }
    }
}

/// Read-only access shared by the owned [`Element`] and borrowed
/// [`ElementRef`] trees, so decoders (messages, envelopes) are written once
/// and run on either — in particular straight off the zero-copy parse.
pub trait XmlRead: Sized {
    /// The element name.
    fn name(&self) -> &str;
    /// Looks up an attribute value.
    fn attr(&self, key: &str) -> Option<&str>;
    /// Direct child elements, in order.
    fn child_elements(&self) -> impl Iterator<Item = &Self>;
}

impl XmlRead for Element {
    fn name(&self) -> &str {
        self.name()
    }
    fn attr(&self, key: &str) -> Option<&str> {
        self.attr(key)
    }
    fn child_elements(&self) -> impl Iterator<Item = &Self> {
        self.child_elements()
    }
}

impl XmlRead for ElementRef<'_> {
    fn name(&self) -> &str {
        self.name
    }
    fn attr(&self, key: &str) -> Option<&str> {
        self.attr(key)
    }
    fn child_elements(&self) -> impl Iterator<Item = &Self> {
        self.child_elements()
    }
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_xml_string())
    }
}

impl std::str::FromStr for Element {
    type Err = ParseXmlError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Element::parse(s)
    }
}

/// `true` if `name` is a valid element/attribute name in our subset:
/// `[A-Za-z_][A-Za-z0-9_.-]*`.
pub fn is_valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '-'))
}

/// Escapes text for inclusion in XML content or attribute values.
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    escape_into(text, &mut out);
    out
}

fn escape_into(text: &str, out: &mut String) {
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
}

/// Error produced when parsing malformed XML.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseXmlError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseXmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "xml parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseXmlError {}

/// Maximum element nesting depth [`Element::parse`] accepts.
///
/// Mercury envelopes are at most a handful of levels deep; the cap exists so
/// hostile input cannot drive the recursive-descent parser into unbounded
/// recursion and abort the process with a stack overflow — deep nesting must
/// be an ordinary [`ParseXmlError`] like every other malformation.
pub const MAX_NESTING_DEPTH: usize = 64;

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser { input, pos: 0 }
    }

    fn error(&self, message: impl Into<String>) -> ParseXmlError {
        ParseXmlError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn at_end(&self) -> bool {
        self.pos >= self.input.len()
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn eat(&mut self, prefix: &str) -> bool {
        if self.rest().starts_with(prefix) {
            self.pos += prefix.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, prefix: &str) -> Result<(), ParseXmlError> {
        if self.eat(prefix) {
            Ok(())
        } else {
            Err(self.error(format!("expected {prefix:?}")))
        }
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.bump();
        }
    }

    fn skip_comment(&mut self) -> Result<bool, ParseXmlError> {
        if !self.eat("<!--") {
            return Ok(false);
        }
        match self.rest().find("-->") {
            Some(idx) => {
                self.pos += idx + 3;
                Ok(true)
            }
            None => Err(self.error("unterminated comment")),
        }
    }

    fn skip_misc(&mut self) {
        loop {
            self.skip_whitespace();
            match self.skip_comment() {
                Ok(true) => continue,
                _ => break,
            }
        }
    }

    fn skip_prolog(&mut self) {
        self.skip_whitespace();
        if self.eat("<?xml") {
            if let Some(idx) = self.rest().find("?>") {
                self.pos += idx + 2;
            } else {
                // Leave the malformed declaration for parse_element to reject.
                return;
            }
        }
        self.skip_misc();
    }

    fn parse_name(&mut self) -> Result<&'a str, ParseXmlError> {
        let start = self.pos;
        match self.peek() {
            Some(c) if c.is_ascii_alphabetic() || c == '_' => {
                self.bump();
            }
            _ => return Err(self.error("expected name")),
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '-'))
        {
            self.bump();
        }
        Ok(&self.input[start..self.pos])
    }

    fn parse_attr_value(&mut self) -> Result<Cow<'a, str>, ParseXmlError> {
        let quote = match self.bump() {
            Some(q @ ('"' | '\'')) => q,
            _ => return Err(self.error("expected quoted attribute value")),
        };
        // Borrow the raw slice until an entity forces an owned unescape.
        let start = self.pos;
        let mut owned: Option<String> = None;
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated attribute value")),
                Some(c) if c == quote => {
                    let end = self.pos;
                    self.bump();
                    return Ok(match owned {
                        Some(s) => Cow::Owned(s),
                        None => Cow::Borrowed(&self.input[start..end]),
                    });
                }
                Some('<') => return Err(self.error("'<' in attribute value")),
                Some('&') => {
                    let mut s = match owned.take() {
                        Some(s) => s,
                        None => self.input[start..self.pos].to_string(),
                    };
                    s.push(self.parse_entity()?);
                    owned = Some(s);
                }
                Some(c) => {
                    self.bump();
                    if let Some(s) = owned.as_mut() {
                        s.push(c);
                    }
                }
            }
        }
    }

    fn parse_text(&mut self) -> Result<Cow<'a, str>, ParseXmlError> {
        let start = self.pos;
        let mut owned: Option<String> = None;
        loop {
            match self.peek() {
                None | Some('<') => break,
                Some('&') => {
                    let mut s = match owned.take() {
                        Some(s) => s,
                        None => self.input[start..self.pos].to_string(),
                    };
                    s.push(self.parse_entity()?);
                    owned = Some(s);
                }
                Some(c) => {
                    self.bump();
                    if let Some(s) = owned.as_mut() {
                        s.push(c);
                    }
                }
            }
        }
        Ok(match owned {
            Some(s) => Cow::Owned(s),
            None => Cow::Borrowed(&self.input[start..self.pos]),
        })
    }

    fn parse_entity(&mut self) -> Result<char, ParseXmlError> {
        debug_assert_eq!(self.peek(), Some('&'));
        for (entity, ch) in [
            ("&amp;", '&'),
            ("&lt;", '<'),
            ("&gt;", '>'),
            ("&quot;", '"'),
            ("&apos;", '\''),
        ] {
            if self.eat(entity) {
                return Ok(ch);
            }
        }
        // Numeric character references: &#NN; and &#xHH;
        if self.eat("&#") {
            let hex = self.eat("x");
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric()) {
                self.bump();
            }
            let digits = &self.input[start..self.pos];
            self.expect(";")?;
            let code = u32::from_str_radix(digits, if hex { 16 } else { 10 })
                .map_err(|_| self.error("bad character reference"))?;
            return char::from_u32(code).ok_or_else(|| self.error("bad character reference"));
        }
        Err(self.error("unknown entity"))
    }

    fn parse_element(&mut self, depth: usize) -> Result<ElementRef<'a>, ParseXmlError> {
        if depth >= MAX_NESTING_DEPTH {
            return Err(self.error(format!(
                "element nesting deeper than {MAX_NESTING_DEPTH} levels"
            )));
        }
        self.expect("<")?;
        let name = self.parse_name()?;
        let mut el = ElementRef {
            name,
            attrs: Vec::new(),
            children: Vec::new(),
        };
        loop {
            self.skip_whitespace();
            match self.peek() {
                Some('/') => {
                    self.expect("/")?;
                    self.expect(">")?;
                    return Ok(el);
                }
                Some('>') => {
                    self.bump();
                    break;
                }
                Some(c) if c.is_ascii_alphabetic() || c == '_' => {
                    let key = self.parse_name()?;
                    self.skip_whitespace();
                    self.expect("=")?;
                    self.skip_whitespace();
                    let value = self.parse_attr_value()?;
                    if el.attr(key).is_some() {
                        return Err(self.error(format!("duplicate attribute {key:?}")));
                    }
                    el.attrs.push((key, value));
                }
                _ => return Err(self.error("expected attribute, '>' or '/>'")),
            }
        }
        // Children until the matching close tag.
        loop {
            if self.rest().starts_with("</") {
                self.expect("</")?;
                let close = self.parse_name()?;
                if close != el.name {
                    return Err(self.error(format!(
                        "mismatched close tag: expected </{}>, found </{close}>",
                        el.name
                    )));
                }
                self.skip_whitespace();
                self.expect(">")?;
                return Ok(el);
            }
            if self.skip_comment()? {
                continue;
            }
            match self.peek() {
                None => return Err(self.error(format!("unterminated element <{}>", el.name))),
                Some('<') => {
                    let child = self.parse_element(depth + 1)?;
                    el.children.push(NodeRef::Element(child));
                }
                Some(_) => {
                    let text = self.parse_text()?;
                    // Ignore pure-whitespace runs between elements.
                    if !text.trim().is_empty() {
                        el.children.push(NodeRef::Text(text));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_serialize() {
        let el = Element::new("track")
            .with_attr("sat", "opal")
            .with_child(Element::new("az").with_text("121.5"))
            .with_child(Element::new("el").with_text("45.0"));
        assert_eq!(
            el.to_xml_string(),
            r#"<track sat="opal"><az>121.5</az><el>45.0</el></track>"#
        );
    }

    #[test]
    fn parse_round_trip() {
        let src = r#"<msg src="fd" dst="ses" id="7"><ping seq="42"/></msg>"#;
        let el = Element::parse(src).unwrap();
        assert_eq!(el.to_xml_string(), src);
        assert_eq!(el.child("ping").unwrap().attr("seq"), Some("42"));
    }

    #[test]
    fn escaping_round_trips() {
        let el = Element::new("note")
            .with_attr("title", r#"a<b&"c'd>"#)
            .with_text("x < y && y > z");
        let wire = el.to_xml_string();
        let back = Element::parse(&wire).unwrap();
        assert_eq!(back.attr("title"), Some(r#"a<b&"c'd>"#));
        assert_eq!(back.text(), "x < y && y > z");
    }

    #[test]
    fn numeric_character_references() {
        let el = Element::parse("<t>&#65;&#x42;</t>").unwrap();
        assert_eq!(el.text(), "AB");
    }

    #[test]
    fn prolog_comments_and_whitespace_skipped() {
        let src =
            "\n<?xml version=\"1.0\"?>\n<!-- hello -->\n<a b=\"1\">\n  <c/>\n</a>\n<!-- bye -->\n";
        let el = Element::parse(src).unwrap();
        assert_eq!(el.name(), "a");
        assert_eq!(el.attr("b"), Some("1"));
        assert!(el.child("c").is_some());
    }

    #[test]
    fn inner_comments_skipped() {
        let el = Element::parse("<a><!-- x --><b/><!-- y --></a>").unwrap();
        assert_eq!(el.child_elements().count(), 1);
    }

    #[test]
    fn whitespace_only_text_ignored_but_real_text_kept() {
        let el = Element::parse("<a>  <b/>  hello  </a>").unwrap();
        assert_eq!(el.children().len(), 2);
        assert_eq!(el.text().trim(), "hello");
    }

    #[test]
    fn single_quoted_attributes() {
        let el = Element::parse("<a b='x \"y\"'/>").unwrap();
        assert_eq!(el.attr("b"), Some("x \"y\""));
    }

    #[test]
    fn rejects_mismatched_close() {
        let err = Element::parse("<a></b>").unwrap_err();
        assert!(err.message.contains("mismatched"), "{err}");
    }

    #[test]
    fn rejects_trailing_garbage() {
        let err = Element::parse("<a/><b/>").unwrap_err();
        assert!(err.message.contains("trailing"), "{err}");
    }

    #[test]
    fn rejects_duplicate_attribute() {
        let err = Element::parse(r#"<a b="1" b="2"/>"#).unwrap_err();
        assert!(err.message.contains("duplicate"), "{err}");
    }

    #[test]
    fn rejects_unterminated() {
        assert!(Element::parse("<a><b></b>").is_err());
        assert!(Element::parse("<a b=\"x").is_err());
        assert!(Element::parse("<!-- never closed").is_err());
        assert!(Element::parse("<a>&bogus;</a>").is_err());
    }

    #[test]
    fn error_reports_offset() {
        let err = Element::parse("<a><b></c></a>").unwrap_err();
        assert!(err.offset > 0);
        assert!(err.to_string().contains("byte"));
    }

    #[test]
    fn set_attr_replaces() {
        let mut el = Element::new("a");
        el.set_attr("k", "1");
        el.set_attr("k", "2");
        assert_eq!(el.attr("k"), Some("2"));
        assert_eq!(el.attrs().count(), 1);
    }

    #[test]
    fn valid_name_rules() {
        assert!(is_valid_name("fedr"));
        assert!(is_valid_name("_x-1.y"));
        assert!(!is_valid_name(""));
        assert!(!is_valid_name("1abc"));
        assert!(!is_valid_name("a b"));
    }

    #[test]
    #[should_panic(expected = "invalid element name")]
    fn new_rejects_invalid_name() {
        Element::new("not ok");
    }

    #[test]
    fn pretty_print_round_trips() {
        let el = Element::parse(
            r#"<msg src="fd" dst="ses" id="7"><ping seq="42"/><note>hi</note></msg>"#,
        )
        .unwrap();
        let pretty = el.to_pretty_string();
        assert!(pretty.contains("\n  <ping seq=\"42\"/>\n"));
        assert!(pretty.contains("<note>hi</note>"));
        // Pretty output reparses to the same tree.
        assert_eq!(Element::parse(&pretty).unwrap(), el);
    }

    #[test]
    fn from_str_works() {
        let el: Element = "<a/>".parse().unwrap();
        assert_eq!(el.name(), "a");
    }
}

//! Telemetry frame encoding: the bits that actually cross the space link.
//!
//! Downlink data arrives at `pbcom` as raw serial bytes; `fedr` deframes and
//! validates them before promoting them to high-level [`Message::Telemetry`]
//! traffic (§2.1's "bidirectional proxy between XML command messages and
//! low-level radio commands"). A frame is:
//!
//! ```text
//! | seq: u32 BE | len: u16 BE | payload: len bytes | crc32: u32 BE |
//! ```
//!
//! with the CRC-32 (IEEE 802.3) computed over seq+len+payload. On the wire
//! (inside [`Message::SerialFrame`]) frames travel hex-encoded.
//!
//! [`Message::Telemetry`]: crate::Message::Telemetry
//! [`Message::SerialFrame`]: crate::Message::SerialFrame

use std::fmt;

/// CRC-32 (IEEE 802.3, reflected, init/xorout `0xFFFFFFFF`) computed
/// bit-by-bit — slow but dependency-free and obviously correct.
///
/// ```
/// use mercury_msg::frame::crc32;
/// // The classic test vector.
/// assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let lsb = crc & 1;
            crc >>= 1;
            if lsb != 0 {
                crc ^= 0xEDB8_8320;
            }
        }
    }
    !crc
}

/// A deframed telemetry frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryFrame {
    /// Frame sequence number within the pass.
    pub seq: u32,
    /// Payload bytes (science data).
    pub payload: Vec<u8>,
}

/// Why a byte string failed to deframe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer bytes than the fixed header + trailer.
    Truncated,
    /// The length field disagrees with the actual byte count.
    LengthMismatch {
        /// Length declared in the header.
        declared: usize,
        /// Bytes actually present for the payload.
        actual: usize,
    },
    /// The CRC check failed: the frame was corrupted in transit.
    BadCrc {
        /// CRC carried by the frame.
        carried: u32,
        /// CRC computed over the received bytes.
        computed: u32,
    },
    /// The hex wire encoding was malformed.
    BadHex,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame truncated"),
            FrameError::LengthMismatch { declared, actual } => {
                write!(
                    f,
                    "length field says {declared}, got {actual} payload bytes"
                )
            }
            FrameError::BadCrc { carried, computed } => {
                write!(
                    f,
                    "crc mismatch: frame carries {carried:08x}, computed {computed:08x}"
                )
            }
            FrameError::BadHex => write!(f, "malformed hex encoding"),
        }
    }
}

impl std::error::Error for FrameError {}

impl TelemetryFrame {
    /// Creates a frame.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds `u16::MAX` bytes.
    pub fn new(seq: u32, payload: impl Into<Vec<u8>>) -> TelemetryFrame {
        let payload = payload.into();
        assert!(payload.len() <= usize::from(u16::MAX), "payload too large");
        TelemetryFrame { seq, payload }
    }

    /// Serializes to raw bytes (header + payload + CRC).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(10 + self.payload.len());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&(self.payload.len() as u16).to_be_bytes());
        out.extend_from_slice(&self.payload);
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_be_bytes());
        out
    }

    /// Deserializes and validates a frame from raw bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`FrameError`] describing the defect.
    pub fn from_bytes(bytes: &[u8]) -> Result<TelemetryFrame, FrameError> {
        if bytes.len() < 10 {
            return Err(FrameError::Truncated);
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 4);
        let carried = u32::from_be_bytes(
            trailer
                .try_into()
                .unwrap_or_else(|_| unreachable!("split_at leaves exactly 4 bytes")),
        );
        let computed = crc32(body);
        if carried != computed {
            return Err(FrameError::BadCrc { carried, computed });
        }
        let seq = u32::from_be_bytes(
            body[0..4]
                .try_into()
                .unwrap_or_else(|_| unreachable!("slice is exactly 4 bytes")),
        );
        let declared = usize::from(u16::from_be_bytes(
            body[4..6]
                .try_into()
                .unwrap_or_else(|_| unreachable!("slice is exactly 2 bytes")),
        ));
        let actual = body.len() - 6;
        if declared != actual {
            return Err(FrameError::LengthMismatch { declared, actual });
        }
        Ok(TelemetryFrame {
            seq,
            payload: body[6..].to_vec(),
        })
    }

    /// Hex form for [`Message::SerialFrame`](crate::Message::SerialFrame).
    pub fn to_hex(&self) -> String {
        let bytes = self.to_bytes();
        let mut out = String::with_capacity(bytes.len() * 2);
        for b in bytes {
            out.push_str(&format!("{b:02x}"));
        }
        out
    }

    /// Parses the hex wire form.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::BadHex`] for malformed hex, otherwise any
    /// deframing error.
    pub fn from_hex(hex: &str) -> Result<TelemetryFrame, FrameError> {
        // Work on bytes: slicing the &str two chars at a time would panic on
        // a multi-byte code point straddling a pair boundary.
        if !hex.len().is_multiple_of(2) || !hex.is_ascii() {
            return Err(FrameError::BadHex);
        }
        let mut bytes = Vec::with_capacity(hex.len() / 2);
        for i in (0..hex.len()).step_by(2) {
            let b = u8::from_str_radix(&hex[i..i + 2], 16).map_err(|_| FrameError::BadHex)?;
            bytes.push(b);
        }
        TelemetryFrame::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn round_trip_bytes_and_hex() {
        let f = TelemetryFrame::new(42, b"opal science data".to_vec());
        assert_eq!(TelemetryFrame::from_bytes(&f.to_bytes()).unwrap(), f);
        assert_eq!(TelemetryFrame::from_hex(&f.to_hex()).unwrap(), f);
    }

    #[test]
    fn empty_payload_round_trips() {
        let f = TelemetryFrame::new(0, Vec::new());
        assert_eq!(f.to_bytes().len(), 10);
        assert_eq!(TelemetryFrame::from_bytes(&f.to_bytes()).unwrap(), f);
    }

    #[test]
    fn single_bit_flip_is_detected() {
        let f = TelemetryFrame::new(7, b"payload".to_vec());
        let mut bytes = f.to_bytes();
        for i in 0..bytes.len() {
            bytes[i] ^= 0x01;
            let err = TelemetryFrame::from_bytes(&bytes).unwrap_err();
            assert!(
                matches!(err, FrameError::BadCrc { .. }),
                "flip at byte {i} must be caught by the CRC, got {err:?}"
            );
            bytes[i] ^= 0x01;
        }
    }

    #[test]
    fn truncation_detected() {
        assert_eq!(
            TelemetryFrame::from_bytes(&[0; 9]),
            Err(FrameError::Truncated)
        );
        let f = TelemetryFrame::new(1, b"xyz".to_vec());
        let bytes = f.to_bytes();
        // Chop the payload but keep ≥10 bytes: CRC catches it.
        let chopped = &bytes[..bytes.len() - 1];
        assert!(TelemetryFrame::from_bytes(chopped).is_err());
    }

    #[test]
    fn length_mismatch_detected() {
        // Build a frame whose length field lies but whose CRC is recomputed
        // to match (an in-band protocol bug rather than link noise).
        let mut body = Vec::new();
        body.extend_from_slice(&1u32.to_be_bytes());
        body.extend_from_slice(&5u16.to_be_bytes()); // claims 5
        body.extend_from_slice(b"abc"); // has 3
        let crc = crc32(&body);
        body.extend_from_slice(&crc.to_be_bytes());
        assert_eq!(
            TelemetryFrame::from_bytes(&body),
            Err(FrameError::LengthMismatch {
                declared: 5,
                actual: 3
            })
        );
    }

    #[test]
    fn bad_hex_detected() {
        assert_eq!(TelemetryFrame::from_hex("abc"), Err(FrameError::BadHex));
        assert_eq!(TelemetryFrame::from_hex("zz"), Err(FrameError::BadHex));
    }

    #[test]
    fn errors_display() {
        let e = FrameError::BadCrc {
            carried: 1,
            computed: 2,
        };
        assert!(e.to_string().contains("crc mismatch"));
        assert!(FrameError::Truncated.to_string().contains("truncated"));
    }
}

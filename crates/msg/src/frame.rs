//! Telemetry frame encoding: the bits that actually cross the space link.
//!
//! Downlink data arrives at `pbcom` as raw serial bytes; `fedr` deframes and
//! validates them before promoting them to high-level [`Message::Telemetry`]
//! traffic (§2.1's "bidirectional proxy between XML command messages and
//! low-level radio commands"). A frame is:
//!
//! ```text
//! | seq: u32 BE | len: u16 BE | payload: len bytes | crc32: u32 BE |
//! ```
//!
//! with the CRC-32 (IEEE 802.3) computed over seq+len+payload. On the wire
//! (inside [`Message::SerialFrame`]) frames travel hex-encoded.
//!
//! [`Message::Telemetry`]: crate::Message::Telemetry
//! [`Message::SerialFrame`]: crate::Message::SerialFrame

use std::fmt;

/// The byte-at-a-time CRC-32 lookup table, derived at compile time from the
/// same reflected polynomial [`crc32_bitwise`] shifts out bit by bit.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE 802.3, reflected, init/xorout `0xFFFFFFFF`), table-driven:
/// one lookup per input byte instead of eight bit shifts.
///
/// ```
/// use mercury_msg::frame::crc32;
/// // The classic test vector.
/// assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &byte in data {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ u32::from(byte)) & 0xFF) as usize];
    }
    !crc
}

/// The bit-by-bit reference CRC-32 — slow but obviously correct. The
/// table-driven [`crc32`] is locked against it by an exhaustive-prefix
/// equivalence test; keep both in sync if the polynomial ever changes.
pub fn crc32_bitwise(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let lsb = crc & 1;
            crc >>= 1;
            if lsb != 0 {
                crc ^= 0xEDB8_8320;
            }
        }
    }
    !crc
}

/// Lowercase hex digit per nibble value.
const HEX_CHARS: &[u8; 16] = b"0123456789abcdef";

/// Nibble value per input byte; `-1` marks anything that is not a hex
/// digit. Accepts both cases, like the `from_str_radix` decode it replaced
/// — but not the sign characters `from_str_radix` tolerated, so `"+f"` is
/// [`FrameError::BadHex`] rather than a frame byte.
const HEX_NIBBLE: [i8; 256] = {
    let mut table = [-1i8; 256];
    let mut i = 0u8;
    loop {
        let v = match i {
            b'0'..=b'9' => (i - b'0') as i8,
            b'a'..=b'f' => (i - b'a' + 10) as i8,
            b'A'..=b'F' => (i - b'A' + 10) as i8,
            _ => -1,
        };
        table[i as usize] = v;
        if i == 255 {
            break;
        }
        i += 1;
    }
    table
};

/// A deframed telemetry frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryFrame {
    /// Frame sequence number within the pass.
    pub seq: u32,
    /// Payload bytes (science data).
    pub payload: Vec<u8>,
}

/// Why a byte string failed to deframe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer bytes than the fixed header + trailer.
    Truncated,
    /// The length field disagrees with the actual byte count.
    LengthMismatch {
        /// Length declared in the header.
        declared: usize,
        /// Bytes actually present for the payload.
        actual: usize,
    },
    /// The CRC check failed: the frame was corrupted in transit.
    BadCrc {
        /// CRC carried by the frame.
        carried: u32,
        /// CRC computed over the received bytes.
        computed: u32,
    },
    /// The hex wire encoding was malformed.
    BadHex,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame truncated"),
            FrameError::LengthMismatch { declared, actual } => {
                write!(
                    f,
                    "length field says {declared}, got {actual} payload bytes"
                )
            }
            FrameError::BadCrc { carried, computed } => {
                write!(
                    f,
                    "crc mismatch: frame carries {carried:08x}, computed {computed:08x}"
                )
            }
            FrameError::BadHex => write!(f, "malformed hex encoding"),
        }
    }
}

impl std::error::Error for FrameError {}

impl TelemetryFrame {
    /// Creates a frame.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds `u16::MAX` bytes.
    pub fn new(seq: u32, payload: impl Into<Vec<u8>>) -> TelemetryFrame {
        let payload = payload.into();
        assert!(payload.len() <= usize::from(u16::MAX), "payload too large");
        TelemetryFrame { seq, payload }
    }

    /// Serializes to raw bytes (header + payload + CRC).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(10 + self.payload.len());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&(self.payload.len() as u16).to_be_bytes());
        out.extend_from_slice(&self.payload);
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_be_bytes());
        out
    }

    /// Deserializes and validates a frame from raw bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`FrameError`] describing the defect.
    pub fn from_bytes(bytes: &[u8]) -> Result<TelemetryFrame, FrameError> {
        if bytes.len() < 10 {
            return Err(FrameError::Truncated);
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 4);
        let carried = u32::from_be_bytes(
            trailer
                .try_into()
                .unwrap_or_else(|_| unreachable!("split_at leaves exactly 4 bytes")),
        );
        let computed = crc32(body);
        if carried != computed {
            return Err(FrameError::BadCrc { carried, computed });
        }
        let seq = u32::from_be_bytes(
            body[0..4]
                .try_into()
                .unwrap_or_else(|_| unreachable!("slice is exactly 4 bytes")),
        );
        let declared = usize::from(u16::from_be_bytes(
            body[4..6]
                .try_into()
                .unwrap_or_else(|_| unreachable!("slice is exactly 2 bytes")),
        ));
        let actual = body.len() - 6;
        if declared != actual {
            return Err(FrameError::LengthMismatch { declared, actual });
        }
        Ok(TelemetryFrame {
            seq,
            payload: body[6..].to_vec(),
        })
    }

    /// Hex form for [`Message::SerialFrame`](crate::Message::SerialFrame).
    pub fn to_hex(&self) -> String {
        let bytes = self.to_bytes();
        let mut out = Vec::with_capacity(bytes.len() * 2);
        for b in bytes {
            out.push(HEX_CHARS[usize::from(b >> 4)]);
            out.push(HEX_CHARS[usize::from(b & 0xF)]);
        }
        String::from_utf8(out).unwrap_or_else(|_| unreachable!("hex digits are ASCII"))
    }

    /// Parses the hex wire form.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::BadHex`] for malformed hex, otherwise any
    /// deframing error.
    pub fn from_hex(hex: &str) -> Result<TelemetryFrame, FrameError> {
        // Work on bytes: indexing the &str two chars at a time would panic
        // on a multi-byte code point straddling a pair boundary.
        if !hex.len().is_multiple_of(2) || !hex.is_ascii() {
            return Err(FrameError::BadHex);
        }
        let raw = hex.as_bytes();
        let mut bytes = Vec::with_capacity(raw.len() / 2);
        for pair in raw.chunks_exact(2) {
            let hi = HEX_NIBBLE[usize::from(pair[0])];
            let lo = HEX_NIBBLE[usize::from(pair[1])];
            if hi < 0 || lo < 0 {
                return Err(FrameError::BadHex);
            }
            bytes.push(((hi as u8) << 4) | lo as u8);
        }
        TelemetryFrame::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn round_trip_bytes_and_hex() {
        let f = TelemetryFrame::new(42, b"opal science data".to_vec());
        assert_eq!(TelemetryFrame::from_bytes(&f.to_bytes()).unwrap(), f);
        assert_eq!(TelemetryFrame::from_hex(&f.to_hex()).unwrap(), f);
    }

    #[test]
    fn empty_payload_round_trips() {
        let f = TelemetryFrame::new(0, Vec::new());
        assert_eq!(f.to_bytes().len(), 10);
        assert_eq!(TelemetryFrame::from_bytes(&f.to_bytes()).unwrap(), f);
    }

    #[test]
    fn single_bit_flip_is_detected() {
        let f = TelemetryFrame::new(7, b"payload".to_vec());
        let mut bytes = f.to_bytes();
        for i in 0..bytes.len() {
            bytes[i] ^= 0x01;
            let err = TelemetryFrame::from_bytes(&bytes).unwrap_err();
            assert!(
                matches!(err, FrameError::BadCrc { .. }),
                "flip at byte {i} must be caught by the CRC, got {err:?}"
            );
            bytes[i] ^= 0x01;
        }
    }

    #[test]
    fn truncation_detected() {
        assert_eq!(
            TelemetryFrame::from_bytes(&[0; 9]),
            Err(FrameError::Truncated)
        );
        let f = TelemetryFrame::new(1, b"xyz".to_vec());
        let bytes = f.to_bytes();
        // Chop the payload but keep ≥10 bytes: CRC catches it.
        let chopped = &bytes[..bytes.len() - 1];
        assert!(TelemetryFrame::from_bytes(chopped).is_err());
    }

    #[test]
    fn length_mismatch_detected() {
        // Build a frame whose length field lies but whose CRC is recomputed
        // to match (an in-band protocol bug rather than link noise).
        let mut body = Vec::new();
        body.extend_from_slice(&1u32.to_be_bytes());
        body.extend_from_slice(&5u16.to_be_bytes()); // claims 5
        body.extend_from_slice(b"abc"); // has 3
        let crc = crc32(&body);
        body.extend_from_slice(&crc.to_be_bytes());
        assert_eq!(
            TelemetryFrame::from_bytes(&body),
            Err(FrameError::LengthMismatch {
                declared: 5,
                actual: 3
            })
        );
    }

    #[test]
    fn bad_hex_detected() {
        assert_eq!(TelemetryFrame::from_hex("abc"), Err(FrameError::BadHex));
        assert_eq!(TelemetryFrame::from_hex("zz"), Err(FrameError::BadHex));
        // Sign characters `from_str_radix` tolerated are hex no longer.
        let f = TelemetryFrame::new(3, b"x".to_vec());
        let mut wire = f.to_hex();
        wire.replace_range(0..1, "+");
        assert_eq!(TelemetryFrame::from_hex(&wire), Err(FrameError::BadHex));
        assert_eq!(TelemetryFrame::from_hex("\u{e9}f"), Err(FrameError::BadHex));
    }

    #[test]
    fn uppercase_hex_accepted() {
        let f = TelemetryFrame::new(9, b"\xde\xad\xbe\xef".to_vec());
        assert_eq!(
            TelemetryFrame::from_hex(&f.to_hex().to_uppercase()).unwrap(),
            f
        );
    }

    #[test]
    fn table_crc_matches_bitwise_reference() {
        // Every prefix of a structured buffer plus the known vectors: the
        // table is exactly the bitwise recurrence, eight bits at a time.
        let mut buf = Vec::new();
        for i in 0..1024u32 {
            buf.push((i.wrapping_mul(2_654_435_761) >> 13) as u8);
        }
        for len in 0..buf.len() {
            assert_eq!(
                crc32(&buf[..len]),
                crc32_bitwise(&buf[..len]),
                "prefix {len}"
            );
        }
        assert_eq!(crc32_bitwise(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn errors_display() {
        let e = FrameError::BadCrc {
            carried: 1,
            computed: 2,
        };
        assert!(e.to_string().contains("crc mismatch"));
        assert!(FrameError::Truncated.to_string().contains("truncated"));
    }
}

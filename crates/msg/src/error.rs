//! Error type for message encoding and decoding.

use std::fmt;

use crate::xml::ParseXmlError;

/// An error decoding a Mercury message from its XML wire form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MsgError {
    /// The input was not well-formed XML.
    Xml(ParseXmlError),
    /// The XML was well-formed but did not match the message schema.
    Schema {
        /// What was wrong (e.g. a missing attribute or unknown element).
        message: String,
    },
    /// The wire form exceeded the envelope size ceiling and was refused
    /// before parsing.
    Oversized {
        /// Bytes received.
        bytes: usize,
        /// The configured ceiling ([`Envelope::MAX_WIRE_BYTES`]).
        ///
        /// [`Envelope::MAX_WIRE_BYTES`]: crate::Envelope::MAX_WIRE_BYTES
        limit: usize,
    },
}

impl MsgError {
    /// Creates a schema error.
    pub fn schema(message: impl Into<String>) -> MsgError {
        MsgError::Schema {
            message: message.into(),
        }
    }
}

impl fmt::Display for MsgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MsgError::Xml(e) => write!(f, "malformed message xml: {e}"),
            MsgError::Schema { message } => write!(f, "message schema violation: {message}"),
            MsgError::Oversized { bytes, limit } => {
                write!(
                    f,
                    "envelope of {bytes} bytes exceeds the {limit}-byte limit"
                )
            }
        }
    }
}

impl std::error::Error for MsgError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MsgError::Xml(e) => Some(e),
            MsgError::Schema { .. } | MsgError::Oversized { .. } => None,
        }
    }
}

impl From<ParseXmlError> for MsgError {
    fn from(e: ParseXmlError) -> Self {
        MsgError::Xml(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error as _;
        let xml_err = crate::xml::Element::parse("<a").unwrap_err();
        let e = MsgError::from(xml_err);
        assert!(e.to_string().contains("malformed"));
        assert!(e.source().is_some());

        let s = MsgError::schema("missing attribute seq");
        assert!(s.to_string().contains("missing attribute"));
        assert!(s.source().is_none());
    }
}

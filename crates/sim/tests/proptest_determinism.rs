#![allow(clippy::disallowed_methods)]
//! Property tests for the simulation kernel's core guarantees:
//! determinism (same seed ⇒ identical run), fault-script independence from
//! insertion order, and statistics invariants.

use rr_sim::{
    check, Actor, Context, Event, FaultKind, FaultScript, Sim, SimDuration, SimTime, Summary,
};

/// A small network of chattering actors driven by RNG and timers — enough
/// nondeterminism bait to catch ordering bugs.
struct Chatter {
    peers: Vec<String>,
    sent: u32,
}

impl Actor<u32> for Chatter {
    fn on_event(&mut self, ev: Event<u32>, ctx: &mut Context<'_, u32>) {
        match ev {
            Event::Start => {
                // A seed-dependent mark so traces can be compared across
                // seeds (lifecycle events alone are seed-independent).
                let fingerprint = ctx.rng().next_u64();
                ctx.trace_mark(format!("fingerprint:{fingerprint:016x}"));
                ctx.set_timer(SimDuration::from_millis(50), 1);
            }
            Event::Timer { .. } => {
                if self.sent < 200 {
                    self.sent += 1;
                    let peers = self.peers.clone();
                    if let Some(peer) = ctx.rng().choose(&peers) {
                        if let Some(pid) = ctx.lookup(peer) {
                            let jitter = ctx.rng().next_below(20);
                            ctx.send_after(pid, SimDuration::from_millis(10 + jitter), self.sent);
                        }
                    }
                    let gap = 30 + ctx.rng().next_below(40);
                    ctx.set_timer(SimDuration::from_millis(gap), 1);
                }
            }
            Event::Message { src, payload } => {
                // Bounce some traffic back.
                if payload % 3 == 0 {
                    ctx.send_after(src, SimDuration::from_millis(5), payload + 1);
                }
            }
        }
    }
}

fn run_network(seed: u64, kills: &[(u64, usize)], horizon_ms: u64) -> (u64, String) {
    let names = ["a", "b", "c", "d"];
    let mut sim: Sim<u32> = Sim::new(seed);
    for name in names {
        let peers: Vec<String> = names
            .iter()
            .filter(|n| **n != name)
            .map(|n| n.to_string())
            .collect();
        let p = peers.clone();
        sim.spawn(name, move || {
            Box::new(Chatter {
                peers: p.clone(),
                sent: 0,
            })
        });
    }
    for &(at_ms, idx) in kills {
        let pid = sim.lookup(names[idx % names.len()]).unwrap();
        sim.kill_after(SimDuration::from_millis(at_ms), pid);
        sim.respawn_after(SimDuration::from_millis(at_ms + 100), pid);
    }
    sim.run_until(SimTime::from_nanos(horizon_ms * 1_000_000));
    (sim.events_processed(), sim.trace().render())
}

/// Bit-for-bit determinism: identical seeds and inputs give identical
/// event counts and traces.
#[test]
fn same_seed_same_trace() {
    check::run("same_seed_same_trace", 24, |rng| {
        let seed = rng.next_u64();
        let kills: Vec<(u64, usize)> =
            check::vec_of(rng, 0, 5, |r| (r.next_below(5_000), r.next_u64() as usize));
        let a = run_network(seed, &kills, 10_000);
        let b = run_network(seed, &kills, 10_000);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    });
}

/// Different seeds almost surely diverge (sanity check that the RNG is
/// actually threading through).
#[test]
fn different_seeds_diverge() {
    check::run("different_seeds_diverge", 16, |rng| {
        let seed = rng.next_u64();
        let a = run_network(seed, &[], 10_000);
        let b = run_network(seed.wrapping_add(1), &[], 10_000);
        // Event counts can coincide, but full traces should not.
        assert_ne!(a.1, b.1);
    });
}

/// Fault scripts sort by time regardless of insertion order, and apply
/// identically.
#[test]
fn fault_script_order_independent() {
    check::run("fault_script_order_independent", 64, |rng| {
        let mut times: Vec<u64> = check::vec_of(rng, 1, 9, |r| r.next_below(10_000));
        let mut fwd = FaultScript::new();
        for &t in &times {
            fwd.push(SimTime::from_nanos(t), "a", FaultKind::Crash);
        }
        times.reverse();
        let mut rev = FaultScript::new();
        for &t in &times {
            rev.push(SimTime::from_nanos(t), "a", FaultKind::Crash);
        }
        let f: Vec<_> = fwd.faults().iter().map(|f| f.at).collect();
        let r: Vec<_> = rev.faults().iter().map(|f| f.at).collect();
        assert_eq!(f, r);
    });
}

/// Summary invariants: min ≤ p50 ≤ p90 ≤ p99 ≤ max, and the mean lies
/// within [min, max].
#[test]
fn summary_orderings() {
    check::run("summary_orderings", 128, |rng| {
        let values: Vec<f64> = check::vec_of(rng, 1, 199, |r| r.uniform(0.0, 1e6));
        let s = Summary::of(&values);
        assert!(s.min <= s.p50 + 1e-9);
        assert!(s.p50 <= s.p90 + 1e-9);
        assert!(s.p90 <= s.p99 + 1e-9);
        assert!(s.p99 <= s.max + 1e-9);
        assert!(s.mean >= s.min - 1e-9 && s.mean <= s.max + 1e-9);
        assert!(s.std_dev >= 0.0);
    });
}

/// Exponential sampling is scale-covariant: samples with mean m scale
/// like samples with mean 1.
#[test]
fn exponential_scaling() {
    use rr_sim::{Dist, SimRng};
    check::run("exponential_scaling", 64, |rng| {
        let mean = rng.uniform(0.1, 1e4);
        let seed = rng.next_u64();
        let mut r1 = SimRng::new(seed);
        let mut r2 = SimRng::new(seed);
        let unit = Dist::exponential(1.0);
        let scaled = Dist::exponential(mean);
        for _ in 0..32 {
            let a = unit.sample_secs(&mut r1) * mean;
            let b = scaled.sample_secs(&mut r2);
            assert!((a - b).abs() < 1e-6 * mean.max(1.0), "{a} vs {b}");
        }
    });
}

#![allow(clippy::disallowed_methods)]
//! Property tests pinning `stats` to naive reference implementations.
//!
//! `Summary`'s percentiles and `OnlineStats::merge` feed every number the
//! harness reports (and now every telemetry histogram), so they are checked
//! here against slow, obviously-correct references for every small sample
//! size n = 1..=64 — the regime where off-by-one errors in rank arithmetic
//! actually show up.

use rr_sim::stats::percentile;
use rr_sim::{check, OnlineStats, SimRng, Summary};

/// The naive reference: walk the empirical CDF step by step. For quantile
/// `q` over `n` sorted points, the R-7 definition places the result a
/// fraction of the way between the two order statistics straddling rank
/// `q * (n - 1)`; this implementation finds that pair by linear scan
/// instead of index arithmetic.
fn reference_percentile(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let rank = q * (n - 1) as f64;
    // Linear scan for the straddling pair (k, k + 1).
    let mut k = 0;
    while k + 1 < n - 1 && (k + 1) as f64 <= rank {
        k += 1;
    }
    let frac = rank - k as f64;
    sorted[k] * (1.0 - frac) + sorted[k + 1] * frac
}

fn sample(rng: &mut SimRng, n: usize) -> Vec<f64> {
    (0..n).map(|_| rng.uniform(-50.0, 50.0)).collect()
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
}

#[test]
fn percentile_matches_naive_reference_for_all_small_n() {
    for n in 1..=64usize {
        check::run(&format!("percentile/n={n}"), 16, |rng| {
            let mut v = sample(rng, n);
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for q in [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
                let got = percentile(&v, q);
                let want = reference_percentile(&v, q);
                assert!(close(got, want), "n={n} q={q}: got {got}, reference {want}");
            }
        });
    }
}

#[test]
fn percentile_is_exact_on_order_statistics() {
    // q = i / (n - 1) must return sorted[i] exactly: rank arithmetic that is
    // off by one-half a step fails this for some (n, i).
    for n in 2..=64usize {
        let v: Vec<f64> = (0..n).map(|i| (i * i) as f64).collect();
        for (i, &x) in v.iter().enumerate() {
            let q = i as f64 / (n - 1) as f64;
            let got = percentile(&v, q);
            assert!(close(got, x), "n={n} i={i}: got {got}, want {x}");
        }
    }
}

#[test]
fn median_matches_the_classical_definition() {
    for n in 1..=64usize {
        check::run(&format!("median/n={n}"), 16, |rng| {
            let mut v = sample(rng, n);
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let classical = if n % 2 == 1 {
                v[n / 2]
            } else {
                (v[n / 2 - 1] + v[n / 2]) / 2.0
            };
            let got = percentile(&v, 0.5);
            assert!(close(got, classical), "n={n}: got {got}, want {classical}");
        });
    }
}

#[test]
fn summary_percentiles_are_ordered_and_bounded() {
    check::run("summary ordering", 256, |rng| {
        let n = 1 + rng.next_below(64) as usize;
        let v = sample(rng, n);
        let s = Summary::of(&v);
        assert!(s.min <= s.p50 + 1e-12, "{s}");
        assert!(s.p50 <= s.p90 + 1e-12, "{s}");
        assert!(s.p90 <= s.p99 + 1e-12, "{s}");
        assert!(s.p99 <= s.max + 1e-12, "{s}");
        assert!(s.min <= s.mean + 1e-12 && s.mean <= s.max + 1e-12, "{s}");
    });
}

#[test]
fn merge_matches_single_pass_at_every_split() {
    for n in 1..=64usize {
        check::run(&format!("merge/n={n}"), 8, |rng| {
            let v = sample(rng, n);
            let single: OnlineStats = v.iter().copied().collect();
            for split in 0..=n {
                let left: OnlineStats = v[..split].iter().copied().collect();
                let right: OnlineStats = v[split..].iter().copied().collect();
                let mut merged = left;
                merged.merge(&right);
                assert_eq!(merged.count(), single.count(), "n={n} split={split}");
                assert!(
                    close(merged.mean(), single.mean()),
                    "n={n} split={split}: mean {} vs {}",
                    merged.mean(),
                    single.mean()
                );
                assert!(
                    close(merged.sample_variance(), single.sample_variance()),
                    "n={n} split={split}: var {} vs {}",
                    merged.sample_variance(),
                    single.sample_variance()
                );
                assert_eq!(merged.min(), single.min(), "n={n} split={split}");
                assert_eq!(merged.max(), single.max(), "n={n} split={split}");
            }
        });
    }
}

#[test]
fn merge_is_associative_over_three_chunks() {
    check::run("merge associativity", 128, |rng| {
        let n = 3 + rng.next_below(61) as usize;
        let v = sample(rng, n);
        let a = rng.next_below(n as u64) as usize;
        let b = a + rng.next_below((n - a) as u64 + 1) as usize;
        let (s1, s2, s3): (OnlineStats, OnlineStats, OnlineStats) = (
            v[..a].iter().copied().collect(),
            v[a..b].iter().copied().collect(),
            v[b..].iter().copied().collect(),
        );
        // (s1 + s2) + s3 vs s1 + (s2 + s3).
        let mut left = s1;
        left.merge(&s2);
        left.merge(&s3);
        let mut tail = s2;
        tail.merge(&s3);
        let mut right = s1;
        right.merge(&tail);
        assert_eq!(left.count(), right.count());
        assert!(close(left.mean(), right.mean()));
        assert!(close(
            left.population_variance(),
            right.population_variance()
        ));
    });
}

#![allow(clippy::disallowed_methods)]
//! Differential lock between [`TimerWheel`] and the reference `BinaryHeap`
//! the engine used before the hot-path overhaul.
//!
//! The wheel's contract is that it pops in **exactly** `(time, seq)` order —
//! bit-for-bit the order `BinaryHeap<Reverse<(time, seq)>>` produces — because
//! every golden trace and telemetry snapshot in the repository depends on
//! that order. These suites drive both structures through identical
//! randomized schedule/cancel/drain interleavings (≥256 cases each) and
//! assert identical observable behaviour, plus targeted properties for
//! same-tick FIFO stability and the engine's `run_until` deadline boundary.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use rr_sim::{check, Actor, Context, Event, Sim, SimDuration, SimRng, SimTime, TimerWheel};

/// The event queue the engine used before the timing wheel: a min-heap on
/// `(time, seq, payload)` with the same idempotent lazy-cancel surface as
/// the wheel — cancel is a no-op unless the seq is live, tombstones are
/// keyed by `(time, seq)` (counted, in case a cancelled entry is reinserted
/// at the same time and cancelled again) and struck when the entry drains.
#[derive(Default)]
struct RefHeap {
    heap: BinaryHeap<Reverse<(u64, u64, u64)>>,
    cancelled: HashMap<(u64, u64), u32>,
    live: HashMap<u64, u64>,
    len: usize,
}

impl RefHeap {
    fn schedule(&mut self, time: SimTime, seq: u64, value: u64) {
        self.heap.push(Reverse((time.as_nanos(), seq, value)));
        self.live.insert(seq, time.as_nanos());
        self.len += 1;
    }

    fn cancel(&mut self, seq: u64) {
        if let Some(time) = self.live.remove(&seq) {
            *self.cancelled.entry((time, seq)).or_insert(0) += 1;
            self.len -= 1;
        }
    }

    fn take_tombstone(&mut self, key: (u64, u64)) -> bool {
        match self.cancelled.get_mut(&key) {
            Some(count) => {
                *count -= 1;
                if *count == 0 {
                    self.cancelled.remove(&key);
                }
                true
            }
            None => false,
        }
    }

    fn pop(&mut self) -> Option<(SimTime, u64, u64)> {
        while let Some(Reverse((time, seq, value))) = self.heap.pop() {
            if self.take_tombstone((time, seq)) {
                continue;
            }
            self.live.remove(&seq);
            self.len -= 1;
            return Some((SimTime::from_nanos(time), seq, value));
        }
        None
    }

    fn peek(&mut self) -> Option<(SimTime, u64)> {
        loop {
            let &Reverse((time, seq, _)) = self.heap.peek()?;
            if self.take_tombstone((time, seq)) {
                self.heap.pop();
                continue;
            }
            return Some((SimTime::from_nanos(time), seq));
        }
    }

    fn len(&self) -> usize {
        self.len
    }
}

/// Draws an event time that stresses every wheel path: the current tick,
/// near ticks, each level boundary, and the beyond-horizon overflow rung.
fn arbitrary_time(rng: &mut SimRng, base: u64) -> SimTime {
    let nanos = match rng.next_below(8) {
        // Same-tick and sub-tick times (the sorted `current` bucket).
        0 => base + rng.next_below(1 << 16),
        // A few ticks out (level 0).
        1 => base + rng.next_below(1 << 22),
        // Mid-wheel levels.
        2 => base + rng.next_below(1 << 34),
        3 => base + rng.next_below(1 << 46),
        // Top level and just inside the horizon.
        4 => base + rng.next_below(1 << 51),
        // Beyond the 2^52-ns horizon: the calendar overflow rung.
        5 => base + (1 << 52) + rng.next_below(1 << 53),
        // Exactly on a tick or level boundary.
        6 => {
            let level = rng.next_below(6) as u32;
            base + (1u64 << (16 + 6 * level)) + rng.next_below(3)
        }
        // Dense collisions: tiny range so many events share exact times.
        _ => base + rng.next_below(4),
    };
    SimTime::from_nanos(nanos)
}

/// Drives the wheel and the reference heap through one random interleaving
/// of schedule / cancel / drain / peek operations — including the cancel
/// edge cases (cancel-after-pop, double-cancel, cancel of a never-scheduled
/// seq, reinsertion of a cancelled or popped seq, possibly at its old exact
/// time) — and asserts they agree after every step.
fn differential_case(rng: &mut SimRng) {
    let mut wheel = TimerWheel::new();
    let mut heap = RefHeap::default();
    let mut next_seq = 0u64;
    // (seq, time) scheduled and not yet popped/cancelled.
    let mut live: Vec<(u64, u64)> = Vec::new();
    // (seq, old time) popped or cancelled — legal to cancel again (no-op)
    // or to reinsert, possibly at the exact old time.
    let mut retired: Vec<(u64, u64)> = Vec::new();
    let mut last_popped = SimTime::ZERO;

    let ops = 40 + rng.next_below(120);
    for _ in 0..ops {
        match rng.next_below(12) {
            // Schedule (weighted heaviest so queues actually grow).
            0..=4 => {
                let n = 1 + rng.next_below(16);
                for _ in 0..n {
                    // Occasionally schedule at or before the last popped
                    // time — legal, and must keep exact order.
                    let base = if rng.chance(0.1) {
                        last_popped.as_nanos()
                    } else {
                        last_popped.as_nanos() + rng.next_below(1 << 20)
                    };
                    let time = arbitrary_time(rng, base);
                    let seq = next_seq;
                    next_seq += 1;
                    wheel.schedule(time, seq, seq);
                    heap.schedule(time, seq, seq);
                    live.push((seq, time.as_nanos()));
                }
            }
            // Cancel a random live entry.
            5..=6 => {
                if !live.is_empty() {
                    let i = rng.next_below(live.len() as u64) as usize;
                    let (seq, time) = live.swap_remove(i);
                    wheel.cancel(seq);
                    heap.cancel(seq);
                    retired.push((seq, time));
                }
            }
            // Drain a few entries, asserting identical pops.
            7..=8 => {
                let n = 1 + rng.next_below(24);
                for _ in 0..n {
                    let got = wheel.pop();
                    let want = heap.pop();
                    assert_eq!(got, want, "wheel and heap disagree on pop");
                    let Some((time, seq, _)) = got else { break };
                    assert!(time >= last_popped, "time went backwards");
                    last_popped = time;
                    live.retain(|&(s, _)| s != seq);
                    retired.push((seq, time.as_nanos()));
                }
            }
            // Rogue cancel: an already-popped or already-cancelled seq, or
            // one that was never scheduled. Must be a no-op on both sides.
            9 => {
                let seq = if retired.is_empty() || rng.chance(0.25) {
                    next_seq + 1_000_000 // never scheduled
                } else {
                    retired[rng.next_below(retired.len() as u64) as usize].0
                };
                wheel.cancel(seq);
                heap.cancel(seq);
            }
            // Reinsert a retired seq — sometimes at the exact time it used
            // to occupy, so a still-pending tombstone is adjacent to the
            // fresh entry and must not strike it.
            10 => {
                if let Some(i) =
                    (!retired.is_empty()).then(|| rng.next_below(retired.len() as u64) as usize)
                {
                    let (seq, old_time) = retired.swap_remove(i);
                    let time = if old_time >= last_popped.as_nanos() && rng.chance(0.5) {
                        SimTime::from_nanos(old_time)
                    } else {
                        arbitrary_time(rng, last_popped.as_nanos())
                    };
                    wheel.schedule(time, seq, seq);
                    heap.schedule(time, seq, seq);
                    live.push((seq, time.as_nanos()));
                }
            }
            // Peek must agree and must not consume.
            _ => {
                assert_eq!(wheel.peek(), heap.peek(), "peek disagrees");
                assert_eq!(wheel.peek(), heap.peek(), "peek is not stable");
            }
        }
        assert_eq!(wheel.len(), heap.len(), "live-entry counts diverged");
        assert_eq!(wheel.is_empty(), heap.len() == 0);
    }

    // Full drain: the tails must be identical too.
    loop {
        let got = wheel.pop();
        let want = heap.pop();
        assert_eq!(got, want, "wheel and heap disagree during final drain");
        if got.is_none() {
            break;
        }
    }
    assert!(wheel.is_empty());
}

#[test]
fn wheel_matches_reference_heap_on_random_interleavings() {
    check::run("wheel/heap differential", 256, differential_case);
}

#[test]
fn cancel_edges_match_reference_heap() {
    // Heavy cancel churn in one tick: every seq is scheduled, cancelled,
    // sometimes reinserted at the same exact time, cancelled again, and
    // rogue-cancelled after popping — the accounting must never drift and
    // pops must match the reference heap exactly.
    check::run("wheel cancel edges", 256, |rng| {
        let mut wheel = TimerWheel::new();
        let mut heap = RefHeap::default();
        let tick_base = rng.next_below(1 << 40) & !0xFFFF;
        let n = 4 + rng.next_below(48);
        for seq in 0..n {
            let time = SimTime::from_nanos(tick_base + rng.next_below(16) * 512);
            wheel.schedule(time, seq, seq);
            heap.schedule(time, seq, seq);
            if rng.chance(0.6) {
                wheel.cancel(seq);
                heap.cancel(seq);
                // Double-cancel: must be a no-op.
                if rng.chance(0.5) {
                    wheel.cancel(seq);
                    heap.cancel(seq);
                }
                // Reinsert, half the time at the exact cancelled time.
                if rng.chance(0.5) {
                    let again = if rng.chance(0.5) {
                        time
                    } else {
                        SimTime::from_nanos(tick_base + rng.next_below(16) * 512)
                    };
                    wheel.schedule(again, seq, seq);
                    heap.schedule(again, seq, seq);
                }
            }
            assert_eq!(wheel.len(), heap.len(), "counts diverged mid-build");
        }
        loop {
            let got = wheel.pop();
            assert_eq!(got, heap.pop(), "pop disagrees");
            assert_eq!(wheel.len(), heap.len(), "counts diverged mid-drain");
            let Some((_, seq, _)) = got else { break };
            // Cancel-after-pop: a no-op, on both sides.
            if rng.chance(0.3) {
                wheel.cancel(seq);
                heap.cancel(seq);
            }
        }
        assert!(wheel.is_empty());
    });
}

#[test]
fn same_tick_pops_are_fifo_stable() {
    // Many events at the *same exact time* must pop in schedule (seq) order,
    // and events within one 2^16-ns tick must order by exact nanosecond.
    check::run("wheel same-tick FIFO", 256, |rng| {
        let mut wheel = TimerWheel::new();
        let tick_base = rng.next_below(1 << 40) & !0xFFFF;
        let n = 2 + rng.next_below(64);
        let mut expect: Vec<(u64, u64)> = Vec::new();
        for seq in 0..n {
            // Collisions on purpose: only 8 distinct in-tick offsets.
            let time = tick_base + rng.next_below(8) * 512;
            wheel.schedule(SimTime::from_nanos(time), seq, seq);
            expect.push((time, seq));
        }
        expect.sort_unstable();
        for (time, seq) in expect {
            assert_eq!(wheel.pop(), Some((SimTime::from_nanos(time), seq, seq)));
        }
        assert_eq!(wheel.pop(), None);
    });
}

/// An actor that sets one timer per requested delay and records fire times.
struct DeadlineProbe {
    delays: Vec<u64>,
    fired: std::rc::Rc<std::cell::RefCell<Vec<u64>>>,
}

impl Actor<()> for DeadlineProbe {
    fn on_event(&mut self, ev: Event<()>, ctx: &mut Context<'_, ()>) {
        match ev {
            Event::Start => {
                for (key, &nanos) in self.delays.iter().enumerate() {
                    ctx.set_timer(SimDuration::from_nanos(nanos), key as u64);
                }
            }
            Event::Timer { key } => {
                assert_eq!(ctx.now().as_nanos(), self.delays[key as usize]);
                self.fired.borrow_mut().push(self.delays[key as usize]);
            }
            Event::Message { .. } => {}
        }
    }
}

#[test]
fn run_until_deadline_boundary_is_inclusive() {
    // `Sim::run_until(d)` processes events at exactly `d` and leaves later
    // ones queued — the boundary the wheel's `peek_time` now drives. Timers
    // landing on either side of a random deadline must split exactly.
    check::run("run_until deadline boundary", 256, |rng| {
        let deadline = 1 + rng.next_below(1 << 30);
        let mut delays: Vec<u64> = (0..24)
            .map(|_| match rng.next_below(4) {
                0 => deadline,                                    // exactly at
                1 => 1 + rng.next_below(deadline),                // at or before
                _ => deadline + 1 + rng.next_below(deadline * 2), // strictly after
            })
            .collect();
        delays.sort_unstable();
        delays.dedup(); // one timer key per distinct delay keeps the probe simple

        let fired = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut sim: Sim<()> = Sim::new(rng.next_u64());
        let (delays_f, fired_f) = (delays.clone(), fired.clone());
        sim.spawn("probe", move || {
            Box::new(DeadlineProbe {
                delays: delays_f.clone(),
                fired: fired_f.clone(),
            })
        });

        sim.run_until(SimTime::from_nanos(deadline));
        let expect_before: Vec<u64> = delays.iter().copied().filter(|&d| d <= deadline).collect();
        assert_eq!(*fired.borrow(), expect_before, "inclusive boundary");
        assert_eq!(sim.now(), SimTime::from_nanos(deadline));

        // The remainder fires on a full run, in order.
        sim.run();
        assert_eq!(*fired.borrow(), delays, "tail after deadline");
    });
}

#[test]
fn run_until_zero_width_window_processes_exact_matches() {
    // A deadline equal to `now` still delivers events scheduled at `now`.
    let fired = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
    let mut sim: Sim<()> = Sim::new(7);
    let fired_f = fired.clone();
    sim.spawn("probe", move || {
        Box::new(DeadlineProbe {
            delays: vec![0, 1],
            fired: fired_f.clone(),
        })
    });
    // Start is delivered at t=0; the key-0 timer also lands at t=0.
    sim.run_until(SimTime::ZERO);
    assert_eq!(*fired.borrow(), vec![0]);
    assert_eq!(sim.now(), SimTime::ZERO);
    sim.run_until(SimTime::from_nanos(1));
    assert_eq!(*fired.borrow(), vec![0, 1]);
}

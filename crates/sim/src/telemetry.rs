//! Recovery-episode telemetry: a metrics registry and a structured event
//! stream.
//!
//! The paper's argument is built on *measured* recovery time (§4.1, Tables
//! 1–4), so the pipeline that produces those numbers deserves first-class,
//! always-on instrumentation. This module provides the sink the rest of the
//! workspace records into:
//!
//! - **counters** (monotonic `u64`, optionally labelled per component),
//! - **gauges** (last-write-wins `f64`),
//! - **fixed-bucket duration histograms** over [`SimDuration`] with exact
//!   running moments ([`DurationHistogram`]),
//! - an **episode-event stream** ([`EpisodeEvent`]) recording each recovery
//!   episode's lifecycle: injected → suspected → planned → merged →
//!   restarting → ready → cured / quarantined, with cause attribution
//!   carried through LCA merge promotion.
//!
//! The registry also performs the §4.1 bookkeeping online: an injection
//! opens a per-component timer, restarts track the (possibly merged)
//! restart set, and the episode's recovery time is the span from injection
//! to the instant the *last* member of the *final* restart set reported
//! ready — exactly the definition `mercury::measure::measure_recovery`
//! recovers from the trace after the fact, so the two agree.
//!
//! A disabled registry ([`Registry::disabled`]) is a pure no-op sink: every
//! `record_*` method returns before formatting or allocating anything, so
//! instrumented hot paths cost one branch when telemetry is off.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use crate::hash::FxHashMap;
use crate::intern::{intern, CompId};
use crate::stats::{Histogram, OnlineStats};
use crate::time::{SimDuration, SimTime};
use crate::vclock::VectorClock;

/// Default bucket range for recovery-time histograms: 0–60 s in 2 s steps,
/// wide enough for every Table 1–4 value with room for escalated episodes.
pub const RECOVERY_BUCKETS: (f64, f64, usize) = (0.0, 60.0, 30);

/// Default bucket range for message-latency histograms (FD ping RTT):
/// 0–1 s in 25 ms steps.
pub const LATENCY_BUCKETS: (f64, f64, usize) = (0.0, 1.0, 40);

/// Lifecycle stage of one [`EpisodeEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EpisodeStage {
    /// A fault was injected into the component (experiment ground truth).
    Injected,
    /// The failure detector convicted the component.
    Suspected,
    /// The recoverer planned a restart episode targeting a cell.
    Planned,
    /// The episode was absorbed into another by promotion to the LCA.
    Merged,
    /// The restart of the episode's cell was issued.
    Restarting,
    /// Every member of the episode's restart set reported ready.
    Ready,
    /// The cure was confirmed and the episode closed.
    Cured,
    /// The restart policy gave up and quarantined the component.
    Quarantined,
    /// Admission control parked the restart request in the deferral queue
    /// (it will run later, when recovery capacity frees up).
    Deferred,
    /// Admission control dropped the restart request entirely (a duplicate
    /// of an already-queued or in-flight request under overload).
    Shed,
}

impl EpisodeStage {
    /// Stable lowercase name used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            EpisodeStage::Injected => "injected",
            EpisodeStage::Suspected => "suspected",
            EpisodeStage::Planned => "planned",
            EpisodeStage::Merged => "merged",
            EpisodeStage::Restarting => "restarting",
            EpisodeStage::Ready => "ready",
            EpisodeStage::Cured => "cured",
            EpisodeStage::Quarantined => "quarantined",
            EpisodeStage::Deferred => "deferred",
            EpisodeStage::Shed => "shed",
        }
    }
}

/// One entry in the episode-event stream.
#[derive(Debug, Clone, PartialEq)]
pub struct EpisodeEvent {
    /// When the event happened (virtual time).
    pub at: SimTime,
    /// The component (or episode owner) the event is about.
    pub component: String,
    /// The lifecycle stage reached.
    pub stage: EpisodeStage,
    /// Free-form attribution detail: restart set, origins, attempt, cause.
    pub detail: String,
}

/// A fixed-bucket histogram over [`SimDuration`] paired with exact running
/// moments, so exporters can report both a mean and a distribution.
#[derive(Debug, Clone)]
pub struct DurationHistogram {
    stats: OnlineStats,
    histogram: Histogram,
}

impl DurationHistogram {
    /// An empty histogram with `buckets` equal-width buckets spanning
    /// `[lo_s, hi_s)` seconds.
    pub fn new(lo_s: f64, hi_s: f64, buckets: usize) -> DurationHistogram {
        DurationHistogram {
            stats: OnlineStats::new(),
            histogram: Histogram::new(lo_s, hi_s, buckets),
        }
    }

    /// Records one duration.
    pub fn observe(&mut self, d: SimDuration) {
        let secs = d.as_secs_f64();
        self.stats.push(secs);
        self.histogram.add(secs);
    }

    /// Number of recorded durations.
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// Mean of the recorded durations, in seconds (0 when empty).
    pub fn mean_s(&self) -> f64 {
        if self.stats.count() == 0 {
            0.0
        } else {
            self.stats.mean()
        }
    }

    /// The exact running moments.
    pub fn stats(&self) -> &OnlineStats {
        &self.stats
    }

    /// The bucketed distribution.
    pub fn histogram(&self) -> &Histogram {
        &self.histogram
    }
}

/// Metric identity: a static metric name plus an optional label (the
/// component, interned; [`intern`] of the empty string for unlabelled
/// metrics). Hot-path lookups hash two words instead of a `String`;
/// exporters re-sort by resolved name so output order never depends on
/// interning order.
type MetricKey = (&'static str, CompId);

/// A metric map's entries resolved and sorted by `(name, label)` — the
/// exact order the old `BTreeMap<(&str, String), _>` representation
/// iterated in, which the exporters' byte-level goldens lock.
fn sorted_metrics<V>(map: &FxHashMap<MetricKey, V>) -> Vec<(&'static str, &'static str, &V)> {
    let mut rows: Vec<_> = map
        .iter()
        .map(|(&(name, label), v)| (name, label.resolve(), v))
        .collect();
    rows.sort_unstable_by_key(|&(name, label, _)| (name, label));
    rows
}

/// An in-flight episode the registry is timing (mirrors the REC's view).
#[derive(Debug, Clone)]
struct OpenEpisode {
    /// Suspected components this episode answers (merged origins included).
    origins: BTreeSet<String>,
    /// The current restart set (every component the cell restart touches).
    components: BTreeSet<String>,
    /// When the latest restart of this episode was issued.
    restarted_at: SimTime,
    /// Members that reported ready at or after `restarted_at`.
    ready: BTreeSet<String>,
    /// Set when `ready` covers `components`: the episode's recovery end.
    completed_at: Option<SimTime>,
}

/// The telemetry sink: counters, gauges, duration histograms, and the
/// episode-event stream, all with deterministic (sorted) iteration order.
///
/// Cloning a registry snapshots it; the clone shares nothing with the
/// original.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    enabled: bool,
    counters: FxHashMap<MetricKey, u64>,
    gauges: FxHashMap<MetricKey, f64>,
    durations: FxHashMap<MetricKey, DurationHistogram>,
    events: Vec<EpisodeEvent>,
    /// One vector-clock snapshot per entry of `events`, in lock step. Kept
    /// beside the stream (rather than inside [`EpisodeEvent`]) so the JSON
    /// export and every existing consumer of `events()` stay byte-identical.
    clocks: Vec<VectorClock>,
    /// The live clock of each telemetry key (component or episode owner);
    /// recording an event ticks the key, protocol edges join clocks.
    procs: FxHashMap<CompId, VectorClock>,
    injections: BTreeMap<String, SimTime>,
    open: BTreeMap<String, OpenEpisode>,
    /// Origins absorbed by an LCA merge before the absorbing episode's own
    /// restart was recorded; folded in by the next `record_restarting`.
    pending_merges: BTreeMap<String, BTreeSet<String>>,
}

impl Registry {
    /// A registry that records everything.
    pub fn new() -> Registry {
        Registry {
            enabled: true,
            ..Registry::default()
        }
    }

    /// A no-op sink: every `record_*`/`incr`/`observe` call returns
    /// immediately, without formatting or allocating.
    pub fn disabled() -> Registry {
        Registry::default()
    }

    /// Whether this registry records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    // ------------------------------------------------------------ metrics --

    /// Increments the unlabelled counter `name`.
    pub fn incr(&mut self, name: &'static str) {
        self.incr_by(name, "", 1);
    }

    /// Increments the counter `name` labelled with `label`.
    pub fn incr_labeled(&mut self, name: &'static str, label: &str) {
        self.incr_by(name, label, 1);
    }

    /// Adds `by` to the counter `(name, label)`.
    pub fn incr_by(&mut self, name: &'static str, label: &str, by: u64) {
        if !self.enabled {
            return;
        }
        *self.counters.entry((name, intern(label))).or_insert(0) += by;
    }

    /// Current value of the counter `(name, label)` (0 if never touched).
    pub fn counter(&self, name: &'static str, label: &str) -> u64 {
        self.counters
            .get(&(name, intern(label)))
            .copied()
            .unwrap_or(0)
    }

    /// Sets the gauge `(name, label)` to `value` (last write wins).
    pub fn set_gauge(&mut self, name: &'static str, label: &str, value: f64) {
        if !self.enabled {
            return;
        }
        self.gauges.insert((name, intern(label)), value);
    }

    /// Current value of the gauge `(name, label)`, if ever set.
    pub fn gauge(&self, name: &'static str, label: &str) -> Option<f64> {
        self.gauges.get(&(name, intern(label))).copied()
    }

    /// Records `d` into the histogram `(name, label)`, creating it with the
    /// `(lo_s, hi_s, buckets)` spec on first use.
    pub fn observe(
        &mut self,
        name: &'static str,
        label: &str,
        d: SimDuration,
        spec: (f64, f64, usize),
    ) {
        if !self.enabled {
            return;
        }
        self.durations
            .entry((name, intern(label)))
            .or_insert_with(|| DurationHistogram::new(spec.0, spec.1, spec.2))
            .observe(d);
    }

    /// The histogram `(name, label)`, if anything was recorded into it.
    pub fn duration(&self, name: &'static str, label: &str) -> Option<&DurationHistogram> {
        self.durations.get(&(name, intern(label)))
    }

    /// All duration histograms, in sorted `(name, label)` order.
    pub fn durations(&self) -> impl Iterator<Item = (&'static str, &str, &DurationHistogram)> {
        sorted_metrics(&self.durations).into_iter()
    }

    /// All counters, in sorted `(name, label)` order.
    pub fn counters(&self) -> impl Iterator<Item = ((&'static str, &str), u64)> {
        sorted_metrics(&self.counters)
            .into_iter()
            .map(|(name, label, v)| ((name, label), *v))
    }

    /// All gauges, in sorted `(name, label)` order.
    pub fn gauges(&self) -> impl Iterator<Item = ((&'static str, &str), f64)> {
        sorted_metrics(&self.gauges)
            .into_iter()
            .map(|(name, label, v)| ((name, label), *v))
    }

    /// The episode-event stream, in recording order.
    pub fn events(&self) -> &[EpisodeEvent] {
        &self.events
    }

    /// The vector-clock snapshot stamped on each event, in lock step with
    /// [`Registry::events`].
    pub fn clocks(&self) -> &[VectorClock] {
        &self.clocks
    }

    /// The episode-event stream zipped with its clock snapshots — the input
    /// the happens-before trace verifier consumes.
    pub fn clocked_events(&self) -> impl Iterator<Item = (&EpisodeEvent, &VectorClock)> {
        self.events.iter().zip(self.clocks.iter())
    }

    // ----------------------------------------------------------- episodes --

    /// Folds `from`'s live clock into `into`'s — a causal edge between two
    /// telemetry keys. A no-op if `from` has never recorded anything.
    fn clock_join(&mut self, into: &str, from: &str) {
        if !self.enabled || into == from {
            return;
        }
        let Some(src) = self.procs.get(&intern(from)).cloned() else {
            return;
        };
        self.procs.entry(intern(into)).or_default().join(&src);
    }

    /// Appends a raw episode event without any bookkeeping; the building
    /// block the `record_*` helpers use, public for recorders (like the
    /// threaded supervisor) that do their own episode accounting. Ticks the
    /// key's vector clock and stamps the event with the snapshot.
    pub fn record_stage(
        &mut self,
        at: SimTime,
        component: &str,
        stage: EpisodeStage,
        detail: &str,
    ) {
        if !self.enabled {
            return;
        }
        let id = intern(component);
        let clock = {
            let proc_clock = self.procs.entry(id).or_default();
            proc_clock.tick_id(id);
            proc_clock.clone()
        };
        self.events.push(EpisodeEvent {
            at,
            component: component.to_string(),
            stage,
            detail: detail.to_string(),
        });
        self.clocks.push(clock);
    }

    /// A fault was injected into `component`: opens its §4.1 recovery timer
    /// (the earliest un-recovered injection wins if faults pile up).
    pub fn record_injected(&mut self, at: SimTime, component: &str, kind: &str) {
        if !self.enabled {
            return;
        }
        self.incr_labeled("faults_injected", component);
        self.record_stage(at, component, EpisodeStage::Injected, kind);
        self.injections.entry(component.to_string()).or_insert(at);
    }

    /// The failure detector convicted `component`.
    pub fn record_suspected(&mut self, at: SimTime, component: &str) {
        if !self.enabled {
            return;
        }
        self.incr_labeled("fd_suspicions", component);
        self.record_stage(at, component, EpisodeStage::Suspected, "");
    }

    /// The recoverer planned an episode: restart `cell` to answer `origins`.
    pub fn record_planned(&mut self, at: SimTime, cell: &str, origins: &[String]) {
        if !self.enabled {
            return;
        }
        self.incr("episodes_planned");
        // The plan is causally downstream of every suspicion it answers.
        for origin in origins {
            self.clock_join(cell, origin);
        }
        let detail = format!("origins={}", origins.join("+"));
        self.record_stage(at, cell, EpisodeStage::Planned, &detail);
    }

    /// Episode `from` was absorbed into `into` by LCA promotion.
    pub fn record_merged(&mut self, at: SimTime, from: &str, into: &str) {
        if !self.enabled {
            return;
        }
        self.incr("episodes_merged");
        let detail = format!("into={into}");
        self.record_stage(at, from, EpisodeStage::Merged, &detail);
        // The absorbing episode's next event happens after the merge.
        self.clock_join(into, from);
        // Retire the absorbed episode and re-attribute its origins to the
        // absorbing one (directly if it is already open, else via the
        // pending-merge stash its next `record_restarting` drains).
        let mut origins: BTreeSet<String> = BTreeSet::new();
        origins.insert(from.to_string());
        if let Some(absorbed) = self.open.remove(from) {
            origins.extend(absorbed.origins);
        }
        if let Some(owner) = self.open.get_mut(into) {
            owner.origins.extend(origins);
        } else {
            self.pending_merges
                .entry(into.to_string())
                .or_default()
                .extend(origins);
        }
    }

    /// A restart of `owner`'s cell was issued for `origins`, restarting
    /// every component in `components`; `attempt` counts escalations.
    pub fn record_restarting(
        &mut self,
        at: SimTime,
        owner: &str,
        components: &[String],
        origins: &[String],
        attempt: u32,
    ) {
        if !self.enabled {
            return;
        }
        self.incr("restarts_issued");
        for c in components {
            self.incr_labeled("component_restarts", c);
        }
        // The restart happens after every suspicion it answers, and every
        // member of the restart set reboots after (because of) it.
        for origin in origins {
            self.clock_join(owner, origin);
        }
        let detail = format!("attempt={attempt} set={}", components.join("+"));
        self.record_stage(at, owner, EpisodeStage::Restarting, &detail);
        for c in components {
            self.clock_join(c, owner);
        }
        let episode = self
            .open
            .entry(owner.to_string())
            .or_insert_with(|| OpenEpisode {
                origins: BTreeSet::new(),
                components: BTreeSet::new(),
                restarted_at: at,
                ready: BTreeSet::new(),
                completed_at: None,
            });
        episode.origins.extend(origins.iter().cloned());
        if let Some(merged) = self.pending_merges.remove(owner) {
            episode.origins.extend(merged);
        }
        episode.components = components.iter().cloned().collect();
        episode.restarted_at = at;
        episode.ready.clear();
        episode.completed_at = None;
    }

    /// `component` reported functionally ready (its `ready:` mark). When
    /// this completes an episode's restart set, the episode's recovery end
    /// is *this* instant — the same endpoint §4.1 reads off the trace.
    pub fn record_component_ready(&mut self, at: SimTime, component: &str) {
        if !self.enabled {
            return;
        }
        // The member coming up is a local event on its own clock, even when
        // it completes no episode.
        let id = intern(component);
        self.procs.entry(id).or_default().tick_id(id);
        let mut completed: Vec<(String, String, Vec<String>)> = Vec::new();
        for (owner, episode) in self.open.iter_mut() {
            if episode.completed_at.is_some()
                || !episode.components.contains(component)
                || at < episode.restarted_at
            {
                continue;
            }
            episode.ready.insert(component.to_string());
            if episode.ready.len() == episode.components.len() {
                episode.completed_at = Some(at);
                let members: Vec<String> = episode.components.iter().cloned().collect();
                completed.push((owner.clone(), format!("set={}", members.join("+")), members));
            }
        }
        for (owner, detail, members) in completed {
            // The episode is ready only once every member is: the Ready
            // event causally follows each member's own ready tick.
            for member in &members {
                self.clock_join(&owner, member);
            }
            self.record_stage(at, &owner, EpisodeStage::Ready, &detail);
        }
    }

    /// The cure of `owner`'s episode was confirmed: closes it and records
    /// one recovery-time observation per injected origin, measured from the
    /// injection to the instant the final restart set finished booting.
    pub fn record_cured(&mut self, at: SimTime, owner: &str) {
        if !self.enabled {
            return;
        }
        self.incr("episodes_cured");
        let Some(episode) = self.open.remove(owner) else {
            self.record_stage(at, owner, EpisodeStage::Cured, "");
            return;
        };
        let end = episode.completed_at.unwrap_or(at);
        let mut timed = Vec::new();
        for origin in &episode.origins {
            if let Some(injected_at) = self.injections.remove(origin) {
                let d = end.saturating_since(injected_at);
                self.observe("recovery_time", origin, d, RECOVERY_BUCKETS);
                timed.push(format!("{origin}={:.3}s", d.as_secs_f64()));
            }
        }
        self.record_stage(at, owner, EpisodeStage::Cured, &timed.join(" "));
    }

    /// Admission control deferred `component`'s restart request: it sits in
    /// the deferral queue until recovery capacity frees up. The injection
    /// timer stays open — deferral delay counts against recovery time.
    pub fn record_deferred(&mut self, at: SimTime, component: &str, detail: &str) {
        if !self.enabled {
            return;
        }
        self.incr("admission_deferred");
        self.incr_labeled("admission_deferred_component", component);
        self.record_stage(at, component, EpisodeStage::Deferred, detail);
    }

    /// Admission control shed `component`'s restart request (dropped it
    /// without queueing — safe only because another queued or in-flight
    /// episode already covers the component).
    pub fn record_shed(&mut self, at: SimTime, component: &str, detail: &str) {
        if !self.enabled {
            return;
        }
        self.incr("admission_shed");
        self.incr_labeled("admission_shed_component", component);
        self.record_stage(at, component, EpisodeStage::Shed, detail);
    }

    /// The restart policy gave up on `component`: the episode ends
    /// unrecovered and its origins' timers are discarded.
    pub fn record_quarantined(&mut self, at: SimTime, component: &str, reason: &str) {
        if !self.enabled {
            return;
        }
        self.incr("episodes_gaveup");
        if let Some(episode) = self.open.remove(component) {
            for origin in &episode.origins {
                self.injections.remove(origin);
            }
        }
        self.injections.remove(component);
        self.record_stage(at, component, EpisodeStage::Quarantined, reason);
    }

    // ---------------------------------------------------------- exporters --

    /// Serializes the registry as a single deterministic JSON object with
    /// `counters`, `gauges`, `durations` and `events` members.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"counters\":{");
        for (i, (name, label, v)) in sorted_metrics(&self.counters).into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{v}", json_string(&metric_id(name, label)));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, label, v)) in sorted_metrics(&self.gauges).into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{}:{}",
                json_string(&metric_id(name, label)),
                json_f64(*v)
            );
        }
        out.push_str("},\"durations\":{");
        for (i, (name, label, h)) in sorted_metrics(&self.durations).into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{}:{{\"count\":{},\"mean_s\":{},\"min_s\":{},\"max_s\":{},\"underflow\":{},\"overflow\":{},\"buckets\":[",
                json_string(&metric_id(name, label)),
                h.count(),
                json_f64(h.mean_s()),
                json_f64(if h.count() == 0 { 0.0 } else { h.stats().min() }),
                json_f64(if h.count() == 0 { 0.0 } else { h.stats().max() }),
                h.histogram().underflow(),
                h.histogram().overflow(),
            );
            for (j, b) in h.histogram().buckets().iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{b}");
            }
            out.push_str("]}");
        }
        out.push_str("},\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"t_s\":{},\"component\":{},\"stage\":{},\"detail\":{}}}",
                json_f64(e.at.as_secs_f64()),
                json_string(&e.component),
                json_string(e.stage.name()),
                json_string(&e.detail),
            );
        }
        out.push_str("]}");
        out
    }

    /// Serializes the metrics (not the event stream) in the Prometheus text
    /// exposition format, with every metric prefixed `rr_`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last = "";
        for (name, label, v) in sorted_metrics(&self.counters) {
            if name != last {
                let _ = writeln!(out, "# TYPE rr_{name} counter");
                last = name;
            }
            let _ = writeln!(out, "rr_{name}{} {v}", prom_label(label));
        }
        last = "";
        for (name, label, v) in sorted_metrics(&self.gauges) {
            if name != last {
                let _ = writeln!(out, "# TYPE rr_{name} gauge");
                last = name;
            }
            let _ = writeln!(out, "rr_{name}{} {v}", prom_label(label));
        }
        last = "";
        for (name, label, h) in sorted_metrics(&self.durations) {
            if name != last {
                let _ = writeln!(out, "# TYPE rr_{name}_seconds histogram");
                last = name;
            }
            let hist = h.histogram();
            let lo = hist.lo();
            let width = (hist.hi() - hist.lo()) / hist.buckets().len() as f64;
            let mut cumulative = hist.underflow();
            for (i, b) in hist.buckets().iter().enumerate() {
                cumulative += b;
                let le = lo + width * (i as f64 + 1.0);
                let _ = writeln!(
                    out,
                    "rr_{name}_seconds_bucket{} {cumulative}",
                    prom_bucket_label(label, &format!("{le}")),
                );
            }
            let _ = writeln!(
                out,
                "rr_{name}_seconds_bucket{} {}",
                prom_bucket_label(label, "+Inf"),
                h.count(),
            );
            let _ = writeln!(
                out,
                "rr_{name}_seconds_sum{} {}",
                prom_label(label),
                h.mean_s() * h.count() as f64,
            );
            let _ = writeln!(
                out,
                "rr_{name}_seconds_count{} {}",
                prom_label(label),
                h.count()
            );
        }
        out
    }
}

/// `name` or `name{label}`, the flat key both exporters use.
fn metric_id(name: &str, label: &str) -> String {
    if label.is_empty() {
        name.to_string()
    } else {
        format!("{name}{{{label}}}")
    }
}

/// `{component="x"}` or the empty string.
fn prom_label(label: &str) -> String {
    if label.is_empty() {
        String::new()
    } else {
        format!("{{component=\"{label}\"}}")
    }
}

/// Bucket label set: component (if any) plus `le`.
fn prom_bucket_label(label: &str, le: &str) -> String {
    if label.is_empty() {
        format!("{{le=\"{le}\"}}")
    } else {
        format!("{{component=\"{label}\",le=\"{le}\"}}")
    }
}

/// A JSON string literal with the required escapes.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A finite JSON number (JSON has no NaN/Inf; those become 0).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let mut r = Registry::disabled();
        r.incr("x");
        r.incr_labeled("y", "rtu");
        r.set_gauge("g", "", 1.0);
        r.observe("d", "", SimDuration::from_secs(1), RECOVERY_BUCKETS);
        r.record_injected(t(1.0), "rtu", "kill");
        r.record_restarting(t(2.0), "R_rtu", &["rtu".into()], &["rtu".into()], 1);
        r.record_component_ready(t(3.0), "rtu");
        r.record_cured(t(5.0), "R_rtu");
        assert_eq!(r.counter("x", ""), 0);
        assert!(r.events().is_empty());
        assert_eq!(
            r.to_json(),
            "{\"counters\":{},\"gauges\":{},\"durations\":{},\"events\":[]}"
        );
    }

    #[test]
    fn recovery_time_spans_injection_to_last_ready() {
        let mut r = Registry::new();
        r.record_injected(t(10.0), "rtu", "kill");
        r.record_suspected(t(11.0), "rtu");
        r.record_restarting(t(12.0), "R_rtu", &["rtu".into()], &["rtu".into()], 1);
        r.record_component_ready(t(14.5), "rtu");
        // Cure confirmation lands later; the measured span still ends at the
        // ready instant, matching measure_recovery.
        r.record_cured(t(18.0), "R_rtu");
        let h = r.duration("recovery_time", "rtu").expect("observed");
        assert_eq!(h.count(), 1);
        assert!((h.mean_s() - 4.5).abs() < 1e-9, "mean {}", h.mean_s());
    }

    #[test]
    fn escalated_restart_resets_the_ready_set() {
        let mut r = Registry::new();
        r.record_injected(t(0.0), "fedr", "kill");
        r.record_restarting(t(1.0), "R_fedr", &["fedr".into()], &["fedr".into()], 1);
        r.record_component_ready(t(2.0), "fedr");
        // Not cured: escalation restarts a bigger cell.
        r.record_restarting(
            t(5.0),
            "R_fedr",
            &["fedr".into(), "pbcom".into()],
            &["fedr".into()],
            2,
        );
        r.record_component_ready(t(6.0), "fedr");
        r.record_component_ready(t(7.0), "pbcom");
        r.record_cured(t(9.0), "R_fedr");
        let h = r.duration("recovery_time", "fedr").expect("observed");
        assert!((h.mean_s() - 7.0).abs() < 1e-9, "mean {}", h.mean_s());
        assert_eq!(r.counter("restarts_issued", ""), 2);
        assert_eq!(r.counter("component_restarts", "pbcom"), 1);
    }

    #[test]
    fn merged_episode_attributes_both_origins() {
        let mut r = Registry::new();
        r.record_injected(t(0.0), "fedr", "kill");
        r.record_injected(t(0.5), "pbcom", "kill");
        r.record_restarting(t(1.0), "R_fedr", &["fedr".into()], &["fedr".into()], 1);
        r.record_merged(t(1.5), "R_fedr", "R_joint");
        r.record_restarting(
            t(1.5),
            "R_joint",
            &["fedr".into(), "pbcom".into()],
            &["pbcom".into()],
            1,
        );
        r.record_component_ready(t(3.0), "fedr");
        r.record_component_ready(t(4.0), "pbcom");
        r.record_cured(t(6.0), "R_joint");
        let fedr = r.duration("recovery_time", "fedr").expect("fedr timed");
        let pbcom = r.duration("recovery_time", "pbcom").expect("pbcom timed");
        assert!((fedr.mean_s() - 4.0).abs() < 1e-9);
        assert!((pbcom.mean_s() - 3.5).abs() < 1e-9);
        assert_eq!(r.counter("episodes_merged", ""), 1);
    }

    #[test]
    fn quarantine_discards_the_timer() {
        let mut r = Registry::new();
        r.record_injected(t(0.0), "ses", "kill");
        r.record_restarting(t(1.0), "R_ses", &["ses".into()], &["ses".into()], 1);
        r.record_quarantined(t(2.0), "R_ses", "escalation-limit");
        r.record_quarantined(t(2.0), "ses", "escalation-limit");
        assert!(r.duration("recovery_time", "ses").is_none());
        assert_eq!(r.counter("episodes_gaveup", ""), 2);
        // A later cure of an unknown episode must not panic or observe.
        r.record_cured(t(3.0), "R_ses");
        assert!(r.duration("recovery_time", "ses").is_none());
    }

    #[test]
    fn defer_keeps_the_timer_open_and_shed_counts() {
        let mut r = Registry::new();
        r.record_injected(t(0.0), "rtu", "kill");
        r.record_deferred(t(1.0), "rtu", "slack=120.0s queue=1");
        r.record_shed(t(2.0), "rtu", "duplicate");
        // The deferred request eventually runs; recovery time still spans
        // from the injection, so deferral delay is charged to MTTR.
        r.record_restarting(t(10.0), "R_rtu", &["rtu".into()], &["rtu".into()], 0);
        r.record_component_ready(t(12.0), "rtu");
        r.record_cured(t(14.0), "R_rtu");
        assert_eq!(r.counter("admission_deferred", ""), 1);
        assert_eq!(r.counter("admission_shed", ""), 1);
        assert_eq!(r.counter("admission_shed_component", "rtu"), 1);
        let h = r.duration("recovery_time", "rtu").expect("observed");
        assert!((h.mean_s() - 12.0).abs() < 1e-9, "mean {}", h.mean_s());
        let stages: Vec<_> = r.events().iter().map(|e| e.stage).collect();
        assert!(stages.contains(&EpisodeStage::Deferred));
        assert!(stages.contains(&EpisodeStage::Shed));
        let json = r.to_json();
        assert!(json.contains("\"stage\":\"deferred\""), "{json}");
        assert!(json.contains("\"stage\":\"shed\""), "{json}");
    }

    #[test]
    fn exporters_are_deterministic_and_well_formed() {
        let mut r = Registry::new();
        r.incr_labeled("component_restarts", "rtu");
        r.set_gauge("availability", "", 0.993);
        r.observe(
            "fd_ping_latency",
            "rtu",
            SimDuration::from_millis(12),
            LATENCY_BUCKETS,
        );
        r.record_stage(t(1.0), "rtu", EpisodeStage::Suspected, "a \"quote\"");
        let json = r.to_json();
        assert!(json.contains("\"component_restarts{rtu}\":1"), "{json}");
        assert!(json.contains("\\\"quote\\\""), "{json}");
        assert_eq!(json, r.clone().to_json());
        let prom = r.to_prometheus();
        assert!(
            prom.contains("# TYPE rr_component_restarts counter"),
            "{prom}"
        );
        assert!(
            prom.contains("rr_fd_ping_latency_seconds_count{component=\"rtu\"} 1"),
            "{prom}"
        );
    }
}

//! A hierarchical timing wheel: the simulator's event queue.
//!
//! The engine's previous queue was a `BinaryHeap`, which pays an `O(log n)`
//! sift of ~48-byte elements on every push **and** every pop, with the
//! comparisons chasing cache lines all the way down. A timing wheel files
//! each event into a bucket chosen by simple bit arithmetic — `O(1)` pushes,
//! amortized `O(1)` pops — which is what makes a 100k-timer simulation run
//! at memory speed instead of comparison speed.
//!
//! ## Layout
//!
//! Virtual time is quantized into **ticks** of `2^16` ns (~65.5 µs). The
//! wheel has [`LEVELS`] = 6 levels of [`SLOTS`] = 64 slots; level `L` slot
//! `i` holds entries whose tick agrees with the current tick above bit
//! `6·(L+1)` and has `i` in bits `[6L, 6L+6)` — i.e. slots are indexed by
//! *absolute* tick bits, not relative offsets, so re-filing needs no index
//! arithmetic. Six levels cover `2^36` ticks ≈ 52 days of virtual time;
//! anything farther out goes to a **calendar overflow rung** (a plain vec,
//! re-filed wholesale on the rare occasion the horizon catches up — the
//! classic calendar-queue fallback).
//!
//! Per-level occupancy bitmaps (`u64`, one bit per slot) make "find the next
//! non-empty slot" a single `trailing_zeros`. Payloads are stored **inline**
//! in the bucket entries: cascades move whole entries, but those moves are
//! sequential and prefetch-friendly, whereas an out-of-line slab costs a
//! random (cache-missing) read on every pop — at 10^5–10^6 pending events
//! the streaming copies are measurably cheaper than the pointer chase.
//!
//! ## Ordering
//!
//! Pop order is **exactly** `(time, seq)` — identical to the reference
//! `BinaryHeap` ordering the engine used before (`seq` is the schedule-order
//! tiebreak that makes simulations deterministic). Entries sharing the
//! current tick live in a `current` bucket sorted by `(time, seq)`, so
//! within-tick ordering is exact, not just FIFO-per-tick. A differential
//! property suite (`crates/sim/tests/wheel_differential.rs`) drives this
//! wheel and the reference heap with identical randomized
//! schedule/cancel/drain interleavings and asserts identical behaviour.
//!
//! Cancellation is lazy: [`TimerWheel::cancel`] records a tombstone and the
//! entry is discarded when its bucket drains — the engine itself never
//! cancels, but chaos harnesses and the differential suite do. Cancellation
//! is **idempotent**: cancelling a seq that was already popped, already
//! cancelled, or never scheduled is a no-op. The wheel keeps a live-seq
//! index to decide that, but builds it only on the *first* cancel — until
//! then schedules and pops pay no hash traffic for it, so the engine's
//! no-cancel hot path is unchanged.

use crate::hash::FxHashMap;
use crate::time::SimTime;

/// log2 of the tick length in nanoseconds (one tick = 65.536 µs).
const TICK_BITS: u32 = 16;
/// log2 of the slot count per level.
const SLOT_BITS: u32 = 6;
/// Slots per level.
pub const SLOTS: usize = 1 << SLOT_BITS;
/// Wheel levels; `SLOT_BITS * LEVELS` bits of tick are representable.
pub const LEVELS: usize = 6;
/// Mask of the in-wheel tick bits; ticks differing from `now` beyond this
/// go to the overflow rung.
const HORIZON_MASK: u64 = (1 << (SLOT_BITS * LEVELS as u32)) - 1;
const SLOT_MASK: u64 = (SLOTS - 1) as u64;

/// Drained slot buffers above this capacity (in entries) are freed rather
/// than recycled. Recycling keeps the steady-state hot path allocation-free,
/// but without a cap every slot ratchets toward its historical peak
/// occupancy and a long churn workload at millions of pending events ends
/// up thrashing caches over hundreds of idle megabytes. The value trades
/// idle footprint against allocator traffic: measured at 4M pending events
/// it beats both a tight 1k cap (which frees and re-faults the multi-MB
/// cascade buckets every rotation) and a 256k cap (which hoards them).
const RECYCLE_CAP: usize = 16_384;

/// A bucketed entry with its payload inline (see the module docs for why
/// inline beats an out-of-line slab here).
#[derive(Debug)]
struct Entry<T> {
    /// Exact event time in nanoseconds (not quantized).
    time: u64,
    /// Schedule-order tiebreak; unique per entry.
    seq: u64,
    /// The scheduled payload.
    value: T,
}

impl<T> Entry<T> {
    #[inline]
    fn key(&self) -> (u64, u64) {
        (self.time, self.seq)
    }
    #[inline]
    fn tick(&self) -> u64 {
        self.time >> TICK_BITS
    }
}

/// The hierarchical timing wheel. See the module docs for the layout.
///
/// `seq` values passed to [`schedule`](TimerWheel::schedule) must be unique
/// among the *live* entries (the engine uses its monotone event counter);
/// re-using a seq after its entry popped or was cancelled is legal.
/// [`cancel`](TimerWheel::cancel) is idempotent: cancelling a seq that is
/// not live (already popped, already cancelled, never scheduled) is a no-op.
#[derive(Debug)]
pub struct TimerWheel<T> {
    /// Tick up to which events have been migrated into `current`.
    now_tick: u64,
    /// Entries with tick ≤ `now_tick`, sorted by `(time, seq)` descending
    /// so the minimum pops from the end.
    current: Vec<Entry<T>>,
    /// Flat `[level][slot]` buckets (index `level·SLOTS + slot`), unsorted.
    /// Flattening removes a pointer chase on every file and cascade.
    slots: Vec<Vec<Entry<T>>>,
    /// One occupancy bit per slot per level.
    occupancy: [u64; LEVELS],
    /// Beyond-horizon entries, unsorted.
    overflow: Vec<Entry<T>>,
    /// Minimum tick in `overflow` (meaningless when `overflow` is empty).
    overflow_min: u64,
    /// Tombstones for lazily-deleted entries, keyed by the entry's exact
    /// `(time, seq)` so a tombstone can never strike a *re-scheduled* entry
    /// that reuses a cancelled seq at a different time. Counted, because a
    /// cancel → reinsert-at-the-same-time → cancel chain produces two
    /// pending tombstones with the same key.
    cancelled: FxHashMap<(u64, u64), u32>,
    /// Live-seq index (`seq → time`), built lazily by the first [`cancel`]
    /// and maintained from then on. `None` until a cancel happens, so the
    /// no-cancel hot path pays one predictable branch and no hash ops.
    ///
    /// [`cancel`]: TimerWheel::cancel
    live: Option<FxHashMap<u64, u64>>,
    /// Live (scheduled, not yet popped or cancelled) entry count.
    len: usize,
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        TimerWheel::new()
    }
}

impl<T> TimerWheel<T> {
    /// Creates an empty wheel positioned at `t = 0`.
    pub fn new() -> TimerWheel<T> {
        TimerWheel {
            now_tick: 0,
            current: Vec::new(),
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupancy: [0; LEVELS],
            overflow: Vec::new(),
            overflow_min: u64::MAX,
            cancelled: FxHashMap::default(),
            live: None,
            len: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no live entries remain.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `value` at `time` with tiebreak `seq`.
    ///
    /// Times at or before the last popped event are legal and keep exact
    /// `(time, seq)` pop order (they land in the sorted current bucket).
    pub fn schedule(&mut self, time: SimTime, seq: u64, value: T) {
        self.len += 1;
        if let Some(live) = self.live.as_mut() {
            live.insert(seq, time.as_nanos());
        }
        self.file(Entry {
            time: time.as_nanos(),
            seq,
            value,
        });
    }

    /// Lazily cancels the entry scheduled with `seq`.
    ///
    /// Idempotent: if `seq` is not live — already popped, already cancelled,
    /// or never scheduled — this is a no-op and the length accounting is
    /// untouched. The cancelled entry's payload is dropped when its bucket
    /// drains; re-scheduling the same seq afterwards (even in the same tick)
    /// creates a fresh live entry the old tombstone cannot strike.
    ///
    /// The first cancel on a wheel builds the live-seq index with one O(n)
    /// sweep over the buckets; later cancels are O(1).
    pub fn cancel(&mut self, seq: u64) {
        if self.live.is_none() {
            // Tombstones only ever exist after a cancel, so on the first
            // cancel every physical entry is live.
            debug_assert!(self.cancelled.is_empty());
            let index = self
                .current
                .iter()
                .chain(self.slots.iter().flatten())
                .chain(self.overflow.iter())
                .map(|e| (e.seq, e.time))
                .collect();
            self.live = Some(index);
        }
        if let Some(time) = self.live.as_mut().and_then(|live| live.remove(&seq)) {
            *self.cancelled.entry((time, seq)).or_insert(0) += 1;
            self.len -= 1;
        }
    }

    /// Consumes one pending tombstone for `key`, if any.
    fn take_tombstone(&mut self, key: (u64, u64)) -> bool {
        match self.cancelled.get_mut(&key) {
            Some(count) => {
                *count -= 1;
                if *count == 0 {
                    self.cancelled.remove(&key);
                }
                true
            }
            None => false,
        }
    }

    /// The `(time, seq)` of the next live entry, without removing it.
    ///
    /// Takes `&mut self` because finding the next entry may cascade buckets
    /// and discard tombstoned entries; neither affects observable order.
    pub fn peek(&mut self) -> Option<(SimTime, u64)> {
        loop {
            self.refile_overflow();
            while let Some(e) = self.current.last() {
                let key = (e.time, e.seq);
                // `is_empty` first: the no-cancellation case (the engine
                // never cancels) must not pay a hash probe per pop.
                if !self.cancelled.is_empty() && self.take_tombstone(key) {
                    // Tombstoned: drop the entry (and its payload) here.
                    self.current.pop();
                } else {
                    return Some((SimTime::from_nanos(key.0), key.1));
                }
            }
            if !self.advance() {
                return None;
            }
        }
    }

    /// The time of the next live entry (see [`TimerWheel::peek`]).
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.peek().map(|(t, _)| t)
    }

    /// Removes and returns the next entry in `(time, seq)` order.
    pub fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        self.peek()?;
        let e = self
            .current
            .pop()
            .unwrap_or_else(|| unreachable!("peek() found a live head"));
        self.len -= 1;
        if let Some(live) = self.live.as_mut() {
            live.remove(&e.seq);
        }
        Some((SimTime::from_nanos(e.time), e.seq, e.value))
    }

    /// Files an entry relative to `now_tick`.
    fn file(&mut self, e: Entry<T>) {
        let t = e.tick();
        if t <= self.now_tick {
            // Within (or before) the current tick: exact sorted insert.
            let pos = self
                .current
                .binary_search_by(|probe| e.key().cmp(&probe.key()))
                .unwrap_or_else(|pos| pos);
            self.current.insert(pos, e);
            return;
        }
        let diff = t ^ self.now_tick;
        if diff > HORIZON_MASK {
            self.overflow_min = self.overflow_min.min(t);
            self.overflow.push(e);
            return;
        }
        // Highest differing bit picks the level; the tick's own bits at that
        // level pick the slot.
        let level = ((63 - diff.leading_zeros()) / SLOT_BITS) as usize;
        let slot = ((t >> (SLOT_BITS * level as u32)) & SLOT_MASK) as usize;
        self.slots[(level << SLOT_BITS) | slot].push(e);
        self.occupancy[level] |= 1 << slot;
    }

    /// Moves overflow entries that now fit the wheel (or are already due)
    /// into their proper buckets.
    fn refile_overflow(&mut self) {
        if self.overflow.is_empty() {
            return;
        }
        // If the minimum does not fit, nothing does: all overflow ticks are
        // ≥ the minimum, and "fits" means sharing the current 2^36-tick
        // block, which is upward-closed between now and any larger tick.
        let fits = self.overflow_min <= self.now_tick
            || (self.overflow_min ^ self.now_tick) <= HORIZON_MASK;
        if !fits {
            return;
        }
        let drained = std::mem::take(&mut self.overflow);
        self.overflow_min = u64::MAX;
        for e in drained {
            let t = e.tick();
            if t > self.now_tick && (t ^ self.now_tick) > HORIZON_MASK {
                self.overflow_min = self.overflow_min.min(t);
                self.overflow.push(e);
            } else {
                self.file(e);
            }
        }
    }

    /// Advances `now_tick` to the next occupied tick and migrates that
    /// bucket toward `current`. Returns `false` when the wheel is empty.
    /// Only called with `current` empty.
    fn advance(&mut self) -> bool {
        for level in 0..LEVELS {
            let shift = SLOT_BITS * level as u32;
            let cur_idx = ((self.now_tick >> shift) & SLOT_MASK) as u32;
            // The slot holding `now_tick` itself is always empty at every
            // level (level 0 drains it; higher levels cannot index it), so
            // search strictly above.
            let above = if cur_idx == 63 {
                0
            } else {
                !0u64 << (cur_idx + 1)
            };
            let occ = self.occupancy[level] & above;
            if occ == 0 {
                continue;
            }
            let slot = occ.trailing_zeros() as usize;
            // Take the bucket but give its (emptied) buffer back afterwards:
            // slot vectors are drained and refilled constantly in steady
            // state, and recycling their capacity keeps the hot path free of
            // allocator traffic. Re-filing during the drain never targets
            // the slot being drained (cascades only move entries to strictly
            // lower levels), so the temporary empty bucket is never visible.
            let mut entries = std::mem::take(&mut self.slots[(level << SLOT_BITS) | slot]);
            self.occupancy[level] &= !(1 << slot);
            if level == 0 {
                // A level-0 slot holds exactly one tick, and `current` is
                // empty here (advance only runs once it has drained), so the
                // whole bucket moves by pointer swap — no per-entry copies.
                self.now_tick = ((self.now_tick >> SLOT_BITS) << SLOT_BITS) | slot as u64;
                debug_assert!(self.current.is_empty());
                std::mem::swap(&mut self.current, &mut entries);
                if self.current.len() > 1 {
                    self.current
                        .sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
                }
            } else {
                // Cascade: jump to the slot's earliest tick and re-file its
                // entries one level (or more) down; the earliest lands in
                // `current`.
                let min_tick = entries
                    .iter()
                    .map(Entry::tick)
                    .min()
                    .unwrap_or_else(|| unreachable!("occupied slot is non-empty"));
                self.now_tick = min_tick;
                for e in entries.drain(..) {
                    self.file(e);
                }
            }
            if entries.capacity() > RECYCLE_CAP {
                entries = Vec::new();
            }
            self.slots[(level << SLOT_BITS) | slot] = entries;
            return true;
        }
        if !self.overflow.is_empty() {
            // Whole wheel drained: jump the horizon to the overflow rung.
            self.now_tick = self.overflow_min;
            self.refile_overflow();
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(nanos: u64) -> SimTime {
        SimTime::from_nanos(nanos)
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut w = TimerWheel::new();
        w.schedule(t(500), 0, "a");
        w.schedule(t(100), 1, "b");
        w.schedule(t(100), 2, "c");
        w.schedule(t(90_000_000), 3, "d");
        assert_eq!(w.pop(), Some((t(100), 1, "b")));
        assert_eq!(w.pop(), Some((t(100), 2, "c")));
        assert_eq!(w.pop(), Some((t(500), 0, "a")));
        assert_eq!(w.pop(), Some((t(90_000_000), 3, "d")));
        assert_eq!(w.pop(), None);
        assert!(w.is_empty());
    }

    #[test]
    fn same_tick_orders_by_exact_time() {
        // Two events in the same 65.5 µs tick must still order by exact
        // nanosecond time.
        let mut w = TimerWheel::new();
        w.schedule(t(60_000), 0, "late");
        w.schedule(t(1_000), 1, "early");
        assert_eq!(w.pop(), Some((t(1_000), 1, "early")));
        assert_eq!(w.pop(), Some((t(60_000), 0, "late")));
    }

    #[test]
    fn far_future_goes_through_overflow() {
        let mut w = TimerWheel::new();
        // ~58 days: beyond the 52-day wheel horizon.
        let far = 5_000_000 * 1_000_000_000u64;
        w.schedule(t(far), 0, "far");
        w.schedule(t(10), 1, "near");
        assert_eq!(w.pop(), Some((t(10), 1, "near")));
        assert_eq!(w.peek_time(), Some(t(far)));
        assert_eq!(w.pop(), Some((t(far), 0, "far")));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn overflow_interleaves_with_wheel_entries() {
        let mut w = TimerWheel::new();
        let far = 5_000_000 * 1_000_000_000u64;
        w.schedule(t(far + 5), 0, "far+5");
        w.schedule(t(10), 1, "near");
        assert_eq!(w.pop(), Some((t(10), 1, "near")));
        // Scheduled after the far entry but earlier in time: must pop first.
        w.schedule(t(far), 2, "far");
        assert_eq!(w.pop(), Some((t(far), 2, "far")));
        assert_eq!(w.pop(), Some((t(far + 5), 0, "far+5")));
    }

    #[test]
    fn cancel_removes_entries_lazily() {
        let mut w = TimerWheel::new();
        w.schedule(t(100), 0, "a");
        w.schedule(t(200), 1, "b");
        w.schedule(t(300), 2, "c");
        w.cancel(1);
        assert_eq!(w.len(), 2);
        assert_eq!(w.pop(), Some((t(100), 0, "a")));
        assert_eq!(w.pop(), Some((t(300), 2, "c")));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn cancel_after_pop_is_a_noop() {
        let mut w = TimerWheel::new();
        w.schedule(t(100), 0, "a");
        w.schedule(t(200), 1, "b");
        assert_eq!(w.pop(), Some((t(100), 0, "a")));
        // Seq 0 already popped: cancelling it must not touch the accounting.
        w.cancel(0);
        assert_eq!(w.len(), 1);
        assert_eq!(w.pop(), Some((t(200), 1, "b")));
        assert_eq!(w.pop(), None);
        assert!(w.is_empty());
    }

    #[test]
    fn double_cancel_is_a_noop() {
        let mut w = TimerWheel::new();
        w.schedule(t(100), 0, "a");
        w.schedule(t(200), 1, "b");
        w.cancel(0);
        w.cancel(0);
        w.cancel(0);
        assert_eq!(w.len(), 1);
        assert_eq!(w.pop(), Some((t(200), 1, "b")));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn cancel_of_unknown_seq_is_a_noop() {
        let mut w = TimerWheel::new();
        w.cancel(99);
        assert!(w.is_empty());
        w.schedule(t(100), 0, "a");
        w.cancel(99);
        assert_eq!(w.len(), 1);
        assert_eq!(w.pop(), Some((t(100), 0, "a")));
    }

    #[test]
    fn cancel_then_reinsert_same_tick_pops_the_fresh_entry() {
        let mut w = TimerWheel::new();
        // Old and new entry share the 2^16-ns tick but not the exact time:
        // the tombstone must kill only the old physical entry.
        w.schedule(t(2_000), 7, "old");
        w.cancel(7);
        w.schedule(t(1_000), 7, "new");
        assert_eq!(w.len(), 1);
        assert_eq!(w.pop(), Some((t(1_000), 7, "new")));
        assert_eq!(w.pop(), None);
        assert!(w.is_empty());
    }

    #[test]
    fn cancel_reinsert_later_time_still_pops_fresh_entry() {
        let mut w = TimerWheel::new();
        w.schedule(t(1_000), 7, "old");
        w.cancel(7);
        // Reinsert later than the tombstoned entry: the tombstone drains
        // first (same bucket), and the fresh entry must survive it.
        w.schedule(t(2_000), 7, "new");
        w.schedule(t(1_500), 8, "mid");
        assert_eq!(w.pop(), Some((t(1_500), 8, "mid")));
        assert_eq!(w.pop(), Some((t(2_000), 7, "new")));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn cancel_head_updates_peek() {
        let mut w = TimerWheel::new();
        w.schedule(t(100), 0, "a");
        w.schedule(t(200), 1, "b");
        w.cancel(0);
        assert_eq!(w.peek_time(), Some(t(200)));
        assert_eq!(w.pop(), Some((t(200), 1, "b")));
    }

    #[test]
    fn schedule_at_or_before_current_tick_stays_ordered() {
        let mut w = TimerWheel::new();
        w.schedule(t(1_000_000), 0, "a");
        assert_eq!(w.pop(), Some((t(1_000_000), 0, "a")));
        // Past the popped tick boundary but before any pending entry.
        w.schedule(t(2_000_000), 1, "c");
        w.schedule(t(1_000_001), 2, "b");
        assert_eq!(w.pop(), Some((t(1_000_001), 2, "b")));
        assert_eq!(w.pop(), Some((t(2_000_000), 1, "c")));
    }

    #[test]
    fn peek_is_stable_and_does_not_remove() {
        let mut w = TimerWheel::new();
        w.schedule(t(7_777), 3, "x");
        assert_eq!(w.peek(), Some((t(7_777), 3)));
        assert_eq!(w.peek(), Some((t(7_777), 3)));
        assert_eq!(w.len(), 1);
        assert_eq!(w.pop(), Some((t(7_777), 3, "x")));
    }

    #[test]
    fn repeated_fill_and_drain_rounds_stay_ordered() {
        let mut w = TimerWheel::new();
        for round in 0..10u64 {
            for i in 0..100u64 {
                w.schedule(t(round * 1_000_000 + i), round * 100 + i, i);
            }
            for i in 0..100u64 {
                let (_, _, v) = w.pop().unwrap_or_else(|| unreachable!("entry missing"));
                assert_eq!(v, i);
            }
        }
        assert!(w.is_empty());
    }

    #[test]
    fn level_boundaries_cascade_correctly() {
        // Exercise ticks straddling each level boundary.
        let mut w = TimerWheel::new();
        let mut seq = 0u64;
        let mut times = Vec::new();
        for level in 0..6u32 {
            let base = 1u64 << (16 + 6 * level);
            for delta in [0u64, 1, 63, 64, 65] {
                let time = base + delta * 37;
                times.push(time);
                w.schedule(t(time), seq, time);
                seq += 1;
            }
        }
        times.sort_unstable();
        for expect in times {
            let (got, _, v) = w.pop().unwrap_or_else(|| unreachable!("entry missing"));
            assert_eq!(got.as_nanos(), expect);
            assert_eq!(v, expect);
        }
        assert!(w.pop().is_none());
    }
}

//! Virtual time: instants and durations in integer nanoseconds.
//!
//! Using an integer representation (rather than `f64` seconds) guarantees
//! exact event ordering and therefore bit-for-bit reproducible simulations —
//! a property the test suite checks (see the determinism property tests).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

const NANOS_PER_SEC: u64 = 1_000_000_000;
const NANOS_PER_MILLI: u64 = 1_000_000;

/// An instant in virtual time, measured in nanoseconds since simulation start.
///
/// ```
/// use rr_sim::{SimDuration, SimTime};
/// let t = SimTime::ZERO + SimDuration::from_secs(3);
/// assert_eq!(t.as_secs_f64(), 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, measured in nanoseconds.
///
/// ```
/// use rr_sim::SimDuration;
/// let d = SimDuration::from_millis(1500);
/// assert_eq!(d.as_secs_f64(), 1.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after the epoch.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `secs` seconds after the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * NANOS_PER_SEC)
    }

    /// Creates an instant from fractional seconds after the epoch.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid time: {secs}");
        SimTime((secs * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The exact duration since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is after `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "SimTime::since: earlier ({earlier}) is after self ({self})"
        );
        SimDuration(self.0 - earlier.0)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * NANOS_PER_MILLI)
    }

    /// Creates a duration of `secs` whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * NANOS_PER_SEC)
    }

    /// Creates a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration: {secs}");
        SimDuration((secs * NANOS_PER_SEC as f64).round() as u64)
    }

    /// The duration in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration in fractional seconds (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// `true` if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scales the duration by a non-negative factor, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "invalid factor: {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .unwrap_or_else(|| panic!("SimTime overflow")),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .unwrap_or_else(|| panic!("SimTime underflow")),
        )
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_add(rhs.0)
                .unwrap_or_else(|| panic!("SimDuration overflow")),
        )
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .unwrap_or_else(|| panic!("SimDuration underflow")),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u32> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u32) -> SimDuration {
        SimDuration(
            self.0
                .checked_mul(rhs as u64)
                .unwrap_or_else(|| panic!("SimDuration overflow")),
        )
    }
}

impl Div<u32> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u32) -> SimDuration {
        SimDuration(self.0 / rhs as u64)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl From<std::time::Duration> for SimDuration {
    fn from(d: std::time::Duration) -> Self {
        SimDuration(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
    }
}

impl From<SimDuration> for std::time::Duration {
    fn from(d: SimDuration) -> Self {
        std::time::Duration::from_nanos(d.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_millis(250);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn from_secs_f64_rounds_to_nanos() {
        let d = SimDuration::from_secs_f64(1.5);
        assert_eq!(d.as_nanos(), 1_500_000_000);
        let t = SimTime::from_secs_f64(0.000_000_001);
        assert_eq!(t.as_nanos(), 1);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(1));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "earlier")]
    fn since_panics_when_reversed() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        let _ = a.since(b);
    }

    #[test]
    fn mul_div_scale() {
        let d = SimDuration::from_secs(4);
        assert_eq!(d * 3, SimDuration::from_secs(12));
        assert_eq!(d / 4, SimDuration::from_secs(1));
        assert_eq!(d.mul_f64(0.25), SimDuration::from_secs(1));
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(10));
    }

    #[test]
    fn std_duration_conversion() {
        let d = SimDuration::from_millis(1250);
        let std: std::time::Duration = d.into();
        assert_eq!(std.as_millis(), 1250);
        assert_eq!(SimDuration::from(std), d);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_secs_f64(1.25).to_string(), "t=1.250s");
        assert_eq!(SimDuration::from_secs_f64(0.5).to_string(), "0.500s");
    }

    #[test]
    fn ordering_is_exact() {
        let a = SimTime::from_nanos(1);
        let b = SimTime::from_nanos(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }
}

//! Summary statistics for experiment results.
//!
//! The paper reports mean recovery times over 100 trials and argues (§3.2)
//! that MTTF/MTTR are only meaningful because the underlying distributions
//! have small coefficients of variation. [`OnlineStats`] (Welford's algorithm)
//! and [`Summary`] give the harness exactly those quantities: mean, standard
//! deviation, coefficient of variation, percentiles and a normal-approximation
//! 95% confidence interval.

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// ```
/// use rr_sim::OnlineStats;
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert!((s.population_std_dev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not finite.
    pub fn push(&mut self, x: f64) {
        assert!(x.is_finite(), "non-finite observation {x}");
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Smallest observation.
    ///
    /// # Panics
    ///
    /// Panics if no observations have been added.
    pub fn min(&self) -> f64 {
        assert!(self.n > 0, "min of empty stats");
        self.min
    }

    /// Largest observation.
    ///
    /// # Panics
    ///
    /// Panics if no observations have been added.
    pub fn max(&self) -> f64 {
        assert!(self.n > 0, "max of empty stats");
        self.max
    }

    /// Population variance (divides by n).
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample variance (divides by n−1; 0 when fewer than two observations).
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample standard deviation.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Coefficient of variation (sample std dev / mean; 0 for zero mean).
    /// The paper's §3.2 assumption is that this is small for both failure and
    /// recovery time distributions.
    pub fn coefficient_of_variation(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.sample_std_dev() / m
        }
    }

    /// Half-width of the normal-approximation 95% confidence interval of the
    /// mean.
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.sample_std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = OnlineStats::new();
        s.extend(iter);
        s
    }
}

/// A full summary of a sample, including percentiles (requires retaining the
/// observations, unlike [`OnlineStats`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Coefficient of variation.
    pub cov: f64,
    /// Minimum.
    pub min: f64,
    /// Median (p50).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
    /// Half-width of the 95% confidence interval of the mean.
    pub ci95: f64,
}

impl Summary {
    /// Summarizes a sample.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or contains non-finite entries.
    pub fn of(values: &[f64]) -> Summary {
        assert!(!values.is_empty(), "summary of empty sample");
        let stats: OnlineStats = values.iter().copied().collect();
        let mut sorted = values.to_vec();
        assert!(
            values.iter().all(|v| v.is_finite()),
            "summary of non-finite sample"
        );
        sorted.sort_by(f64::total_cmp);
        Summary {
            count: values.len(),
            mean: stats.mean(),
            std_dev: stats.sample_std_dev(),
            cov: stats.coefficient_of_variation(),
            min: sorted[0],
            p50: percentile(&sorted, 0.50),
            p90: percentile(&sorted, 0.90),
            p99: percentile(&sorted, 0.99),
            max: sorted
                .last()
                .copied()
                .unwrap_or_else(|| unreachable!("asserted non-empty above")),
            ci95: stats.ci95_half_width(),
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.3} ±{:.3} (95% CI) sd={:.3} cov={:.3} min={:.3} p50={:.3} p90={:.3} p99={:.3} max={:.3}",
            self.count, self.mean, self.ci95, self.std_dev, self.cov,
            self.min, self.p50, self.p90, self.p99, self.max
        )
    }
}

/// A fixed-bucket histogram over a value range, with an ASCII rendering —
/// used to show recovery-time distributions next to their means (the §3.2
/// "small coefficient of variation" claim, made visible).
///
/// ```
/// use rr_sim::stats::Histogram;
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// for x in [1.0, 1.5, 6.0, 9.9, 12.0] {
///     h.add(x);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `buckets` equal-width bins.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty/non-finite or `buckets` is zero.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Histogram {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "bad range [{lo}, {hi})"
        );
        assert!(buckets > 0, "need at least one bucket");
        Histogram {
            lo,
            hi,
            buckets: vec![0; buckets],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not finite.
    pub fn add(&mut self, x: f64) {
        assert!(x.is_finite(), "non-finite observation {x}");
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.buckets.len() as f64;
            let idx = (((x - self.lo) / w) as usize).min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Total observations (including under/overflow).
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range's upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Per-bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// The range's inclusive lower bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// The range's exclusive upper bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Renders the histogram as ASCII, one bucket per line, bars scaled to
    /// `width` characters at the fullest bucket.
    pub fn render(&self, width: usize) -> String {
        let max = self.buckets.iter().copied().max().unwrap_or(0).max(1);
        let w = (self.hi - self.lo) / self.buckets.len() as f64;
        let mut out = String::new();
        for (i, &count) in self.buckets.iter().enumerate() {
            let b_lo = self.lo + w * i as f64;
            let bar = "#".repeat((count as usize * width) / max as usize);
            out.push_str(&format!(
                "[{:>7.2}, {:>7.2}) |{bar:<width$}| {count}\n",
                b_lo,
                b_lo + w
            ));
        }
        if self.underflow > 0 {
            out.push_str(&format!("  below {:>7.2}: {}\n", self.lo, self.underflow));
        }
        if self.overflow > 0 {
            out.push_str(&format!("  at/above {:>7.2}: {}\n", self.hi, self.overflow));
        }
        out
    }
}

/// Linear-interpolation percentile of an already-sorted slice.
///
/// # Panics
///
/// Panics if `sorted` is empty or `q` is outside `[0, 1]`.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0,1]");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [1.5, 2.5, 2.5, 2.75, 3.25, 4.75];
        let s: OnlineStats = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.sample_variance() - var).abs() < 1e-12);
        assert_eq!(s.count(), 6);
        assert_eq!(s.min(), 1.5);
        assert_eq!(s.max(), 4.75);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.coefficient_of_variation(), 0.0);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn merge_equals_single_pass() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() + 2.0).collect();
        let (a, b) = xs.split_at(37);
        let mut sa: OnlineStats = a.iter().copied().collect();
        let sb: OnlineStats = b.iter().copied().collect();
        sa.merge(&sb);
        let all: OnlineStats = xs.iter().copied().collect();
        assert!((sa.mean() - all.mean()).abs() < 1e-12);
        assert!((sa.sample_variance() - all.sample_variance()).abs() < 1e-9);
        assert_eq!(sa.count(), all.count());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: OnlineStats = [1.0, 2.0].into_iter().collect();
        let before = s;
        s.merge(&OnlineStats::new());
        assert_eq!(s, before);
        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn percentile_interpolates() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&sorted, 1.0), 4.0);
        assert_eq!(percentile(&sorted, 0.5), 2.5);
        assert_eq!(percentile(&[7.0], 0.5), 7.0);
    }

    #[test]
    fn summary_fields_consistent() {
        let xs: Vec<f64> = (1..=100).map(f64::from).collect();
        let s = Summary::of(&xs);
        assert_eq!(s.count, 100);
        assert_eq!(s.mean, 50.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.p50, 50.5);
        assert!(s.p90 > s.p50 && s.p99 > s.p90);
        assert!(s.ci95 > 0.0);
    }

    #[test]
    fn cov_is_small_for_tight_samples() {
        let xs = vec![24.7, 24.8, 24.75, 24.72, 24.77];
        let s = Summary::of(&xs);
        assert!(s.cov < 0.01, "cov {}", s.cov);
    }

    #[test]
    fn histogram_buckets_and_render() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.0, 1.9, 2.0, 5.5, 5.5, 5.5, -1.0, 10.0, 99.0] {
            h.add(x);
        }
        assert_eq!(h.buckets(), &[2, 1, 3, 0, 0]);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 9);
        let r = h.render(20);
        assert_eq!(r.lines().count(), 7, "5 buckets + under + over:\n{r}");
        assert!(r.contains("| 3"));
        // The fullest bucket gets the full bar width.
        assert!(r.contains(&"#".repeat(20)));
    }

    #[test]
    #[should_panic(expected = "bad range")]
    fn histogram_rejects_empty_range() {
        Histogram::new(5.0, 5.0, 3);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn summary_of_empty_panics() {
        Summary::of(&[]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn push_rejects_nan() {
        OnlineStats::new().push(f64::NAN);
    }
}

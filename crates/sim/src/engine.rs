//! The discrete-event simulation kernel: processes, messages, timers, faults.
//!
//! A [`Sim`] owns a set of processes (actors) and a time-ordered event queue.
//! Processes model the independently-restartable JVM processes of the Mercury
//! ground station: they communicate only by message passing, they can crash
//! (losing all state) or hang (fail-silent while resident), and they can be
//! respawned from a factory — the simulated equivalent of `SIGKILL` followed
//! by a supervised restart.
//!
//! Determinism: events are ordered by `(time, sequence-number)`, where the
//! sequence number is assigned at scheduling time, so ties are broken by
//! scheduling order and a run is a pure function of the seed and the inputs.

use std::collections::hash_map::Entry;
use std::fmt;

use crate::hash::{FxHashMap, FxHashSet};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::trace::{Trace, TraceKind};
use crate::wheel::TimerWheel;

/// Identifies a simulated process. Stable across crashes and restarts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(u32);

impl ProcessId {
    /// The id as a plain index (useful for keying per-process tables).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// The lifecycle state of a simulated process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProcessState {
    /// Running and processing events normally.
    Running,
    /// Crashed: state lost, all incoming events silently dropped
    /// (fail-silent, like a dead JVM).
    Crashed,
    /// Hung: actor state is still resident but the process consumes no
    /// events. Indistinguishable from `Crashed` to observers — which is the
    /// point: application-level liveness pings detect both.
    Hung,
    /// Zombie: the process still answers whatever the
    /// [zombie filter](Sim::set_zombie_filter) admits (typically liveness
    /// pings) but silently drops all other traffic and its own timers. It
    /// looks alive to a ping-based detector while doing no useful work —
    /// the failure mode application-level liveness checks exist to catch.
    Zombie,
}

/// Wire-level quality of a network link: the degraded-communication fault
/// model. A link can lose, delay, jitter and duplicate messages without
/// either endpoint failing — the regime in which naive failure detectors
/// produce false positives and restart storms.
///
/// Install with [`Sim::set_link_quality`] (per pair) or
/// [`Sim::set_default_link_quality`] (every link). All randomness comes from
/// a per-link stream derived from the simulation seed, so degraded runs stay
/// bit-for-bit reproducible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkQuality {
    /// Probability in `[0, 1]` that each message is dropped.
    pub loss: f64,
    /// Fixed extra latency added to every message.
    pub delay: SimDuration,
    /// Additional uniform random latency in `[0, jitter]` per message.
    pub jitter: SimDuration,
    /// Probability in `[0, 1]` that a message is delivered twice (the copy
    /// samples its own delay and jitter).
    pub duplicate: f64,
}

impl LinkQuality {
    /// A perfect link: no loss, no extra delay, no duplication.
    pub const PERFECT: LinkQuality = LinkQuality {
        loss: 0.0,
        delay: SimDuration::ZERO,
        jitter: SimDuration::ZERO,
        duplicate: 0.0,
    };

    /// A link that drops each message independently with probability `loss`.
    pub fn lossy(loss: f64) -> LinkQuality {
        LinkQuality {
            loss,
            ..LinkQuality::PERFECT
        }
    }

    /// Builder: sets the fixed extra delay.
    #[must_use]
    pub fn with_delay(mut self, delay: SimDuration) -> LinkQuality {
        self.delay = delay;
        self
    }

    /// Builder: sets the jitter bound.
    #[must_use]
    pub fn with_jitter(mut self, jitter: SimDuration) -> LinkQuality {
        self.jitter = jitter;
        self
    }

    /// Builder: sets the duplication probability.
    #[must_use]
    pub fn with_duplicate(mut self, duplicate: f64) -> LinkQuality {
        self.duplicate = duplicate;
        self
    }

    /// `true` if the link applies no wire effects at all.
    pub fn is_perfect(&self) -> bool {
        self.loss <= 0.0 && self.delay.is_zero() && self.jitter.is_zero() && self.duplicate <= 0.0
    }
}

impl Default for LinkQuality {
    fn default() -> Self {
        LinkQuality::PERFECT
    }
}

/// An event delivered to an actor.
#[derive(Debug)]
pub enum Event<M> {
    /// The process has just (re)started. Delivered once per incarnation.
    Start,
    /// A message from another process.
    Message {
        /// The sending process.
        src: ProcessId,
        /// The message payload.
        payload: M,
    },
    /// A timer previously set via [`Context::set_timer`] has fired.
    Timer {
        /// The caller-chosen key identifying which timer fired.
        key: u64,
    },
}

/// A simulated process: reacts to [`Event`]s using the capabilities offered by
/// [`Context`].
///
/// Actors own all of their state. A crash discards the actor value; a respawn
/// constructs a fresh one from the factory passed to [`Sim::spawn`], which is
/// exactly the "unequivocally return software to its start state" property
/// (§3) that makes restarts an effective cure for transient failures.
pub trait Actor<M> {
    /// Handles one event. `ctx` provides the current time, messaging, timers,
    /// randomness and tracing.
    fn on_event(&mut self, ev: Event<M>, ctx: &mut Context<'_, M>);
}

/// Boxed actor constructor used to (re)create a process's state.
pub type ActorFactory<M> = Box<dyn FnMut() -> Box<dyn Actor<M>>>;

struct ProcEntry<M> {
    name: String,
    state: ProcessState,
    /// Bumped on every respawn; guards stale timers from firing into a new
    /// incarnation.
    incarnation: u64,
    actor: Option<Box<dyn Actor<M>>>,
    factory: ActorFactory<M>,
    rng: SimRng,
}

enum Action<M> {
    Deliver {
        dst: ProcessId,
        ev: Event<M>,
        /// For timers: only deliver if the destination is still in this
        /// incarnation.
        incarnation: Option<u64>,
        /// Wire effects (loss, delay, duplication) were already applied; do
        /// not roll them again on redelivery.
        degraded: bool,
    },
    Kill(ProcessId),
    Hang(ProcessId),
    Zombify(ProcessId),
    Respawn(ProcessId),
}

/// The simulation kernel. See the [crate docs](crate) for an example.
///
/// The event queue is a hierarchical [`TimerWheel`] keyed by
/// `(time, schedule-seq)`, which pops in exactly the order the previous
/// `BinaryHeap` implementation did (a differential property suite in
/// `crates/sim/tests/wheel_differential.rs` locks the equivalence) at
/// `O(1)` per event instead of `O(log n)`.
pub struct Sim<M> {
    now: SimTime,
    seq: u64,
    queue: TimerWheel<Action<M>>,
    procs: Vec<ProcEntry<M>>,
    by_name: FxHashMap<String, ProcessId>,
    root_rng: SimRng,
    trace: Trace,
    events_processed: u64,
    /// Severed links: messages between these unordered pairs are dropped
    /// (network-partition fault injection).
    severed: FxHashSet<(ProcessId, ProcessId)>,
    /// Per-pair wire-quality overrides (unordered pairs).
    link_qualities: FxHashMap<(ProcessId, ProcessId), LinkQuality>,
    /// Quality applied to links without an explicit override.
    default_link_quality: Option<LinkQuality>,
    /// Lazily-created per-link random streams driving wire effects.
    link_rngs: FxHashMap<(ProcessId, ProcessId), SimRng>,
    /// Which message payloads a zombie process still answers.
    zombie_filter: Option<ZombieFilter<M>>,
    /// Processes that crash again immediately on every respawn.
    persistent_crash: FxHashSet<ProcessId>,
    /// Payload cloner, installed when duplication-capable link quality is
    /// configured (requires `M: Clone`).
    cloner: Option<PayloadCloner<M>>,
}

/// Predicate selecting the payloads a zombie process still answers.
type ZombieFilter<M> = Box<dyn Fn(&M) -> bool>;

/// Deep-copies a payload when a degraded link duplicates a message.
type PayloadCloner<M> = Box<dyn Fn(&M) -> M>;

/// Canonical unordered key for a process pair.
fn pair_key(a: ProcessId, b: ProcessId) -> (ProcessId, ProcessId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Stream key for a link's private RNG: a stable function of the pair, so the
/// stream is the same regardless of direction or when the link first degrades.
fn link_stream(key: (ProcessId, ProcessId)) -> u64 {
    0x11CC_0000_0000_0000 ^ ((key.0 .0 as u64) << 32) ^ key.1 .0 as u64
}

impl<M> fmt::Debug for Sim<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.now)
            .field("processes", &self.procs.len())
            .field("queued", &self.queue.len())
            .field("events_processed", &self.events_processed)
            .finish()
    }
}

impl<M> Sim<M> {
    /// Creates an empty simulation seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Sim {
            now: SimTime::ZERO,
            seq: 0,
            queue: TimerWheel::new(),
            procs: Vec::new(),
            by_name: FxHashMap::default(),
            root_rng: SimRng::new(seed),
            trace: Trace::new(),
            events_processed: 0,
            severed: FxHashSet::default(),
            link_qualities: FxHashMap::default(),
            default_link_quality: None,
            link_rngs: FxHashMap::default(),
            zombie_filter: None,
            persistent_crash: FxHashSet::default(),
            cloner: None,
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Spawns a new process named `name`, built by `factory`, and delivers
    /// [`Event::Start`] to it at the current time.
    ///
    /// # Panics
    ///
    /// Panics if a process with the same name already exists.
    pub fn spawn(
        &mut self,
        name: impl Into<String>,
        mut factory: impl FnMut() -> Box<dyn Actor<M>> + 'static,
    ) -> ProcessId {
        let name = name.into();
        let id = ProcessId(self.procs.len() as u32);
        match self.by_name.entry(name.clone()) {
            Entry::Occupied(_) => panic!("process name {name:?} already in use"),
            Entry::Vacant(v) => {
                v.insert(id);
            }
        }
        let actor = factory();
        let rng = self.root_rng.split(0x5EED_0000 + id.0 as u64);
        self.procs.push(ProcEntry {
            name: name.clone(),
            state: ProcessState::Running,
            incarnation: 0,
            actor: Some(actor),
            factory: Box::new(factory),
            rng,
        });
        self.trace
            .record(self.now, Some(id), TraceKind::Spawned, name);
        self.schedule(
            SimDuration::ZERO,
            Action::Deliver {
                dst: id,
                ev: Event::Start,
                incarnation: Some(0),
                degraded: false,
            },
        );
        id
    }

    /// Looks up a process id by name.
    pub fn lookup(&self, name: &str) -> Option<ProcessId> {
        self.by_name.get(name).copied()
    }

    /// The name a process was spawned with.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not identify a spawned process.
    pub fn name(&self, id: ProcessId) -> &str {
        &self.procs[id.index()].name
    }

    /// The current lifecycle state of a process.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not identify a spawned process.
    pub fn state(&self, id: ProcessId) -> ProcessState {
        self.procs[id.index()].state
    }

    /// All spawned process ids, in spawn order.
    pub fn process_ids(&self) -> impl Iterator<Item = ProcessId> + '_ {
        (0..self.procs.len() as u32).map(ProcessId)
    }

    /// Read access to the structured event log.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Appends a mark to the trace from outside any actor (e.g. the harness).
    pub fn mark(&mut self, label: impl Into<String>) {
        self.trace.record(self.now, None, TraceKind::Mark, label);
    }

    /// Crashes `id` after `delay`: its state is discarded and it silently
    /// drops all events until respawned. This is the simulated `SIGKILL` used
    /// by the paper's fault-injection experiments (§4.1).
    pub fn kill_after(&mut self, delay: SimDuration, id: ProcessId) {
        self.schedule(delay, Action::Kill(id));
    }

    /// Crashes `id` at the current time. See [`Sim::kill_after`].
    pub fn kill(&mut self, id: ProcessId) {
        self.kill_after(SimDuration::ZERO, id);
    }

    /// Hangs `id` after `delay`: fail-silent but state-resident (a wedged
    /// process). Observationally identical to a crash; cured by respawn.
    pub fn hang_after(&mut self, delay: SimDuration, id: ProcessId) {
        self.schedule(delay, Action::Hang(id));
    }

    /// Restarts `id` after `delay`: a fresh actor is built from the factory
    /// and receives [`Event::Start`]. The delay models the component's boot
    /// time.
    pub fn respawn_after(&mut self, delay: SimDuration, id: ProcessId) {
        self.schedule(delay, Action::Respawn(id));
    }

    /// Severs or heals the network link between two processes. While a link
    /// is severed, messages between the pair (either direction) are silently
    /// dropped at delivery time — a network partition, observationally
    /// identical to the far side having crashed (which is exactly why
    /// fail-silent detectors cannot tell the difference).
    pub fn set_link(&mut self, a: ProcessId, b: ProcessId, up: bool) {
        let key = pair_key(a, b);
        if up {
            self.severed.remove(&key);
        } else {
            self.severed.insert(key);
        }
    }

    /// `true` if the link between `a` and `b` is currently up.
    pub fn link_up(&self, a: ProcessId, b: ProcessId) -> bool {
        !self.severed.contains(&pair_key(a, b))
    }

    /// Severs every link touching `id` (fully isolates the process).
    pub fn isolate(&mut self, id: ProcessId) {
        for other in 0..self.procs.len() as u32 {
            let other = ProcessId(other);
            if other != id {
                self.set_link(id, other, false);
            }
        }
    }

    /// Heals every link touching `id`.
    pub fn heal(&mut self, id: ProcessId) {
        for other in 0..self.procs.len() as u32 {
            let other = ProcessId(other);
            if other != id {
                self.set_link(id, other, true);
            }
        }
    }

    /// Turns `id` into a zombie after `delay`: the process keeps answering
    /// whatever the [zombie filter](Sim::set_zombie_filter) admits (e.g.
    /// liveness pings) and silently drops everything else, including its own
    /// timers. This models a process alive enough to satisfy a naive
    /// ping-based failure detector while doing no useful work.
    pub fn zombie_after(&mut self, delay: SimDuration, id: ProcessId) {
        self.schedule(delay, Action::Zombify(id));
    }

    /// Turns `id` into a zombie at the current time. See
    /// [`Sim::zombie_after`].
    pub fn zombie(&mut self, id: ProcessId) {
        self.zombie_after(SimDuration::ZERO, id);
    }

    /// Installs the predicate deciding which message payloads a
    /// [zombie](Sim::zombie_after) still answers. Without a filter, a zombie
    /// drops everything and is observationally identical to a hang.
    pub fn set_zombie_filter(&mut self, filter: impl Fn(&M) -> bool + 'static) {
        self.zombie_filter = Some(Box::new(filter));
    }

    /// Marks (or unmarks) `id` as persistently crashed: every respawn is
    /// followed by an immediate crash, so restarts never cure it. This is
    /// the "hard" failure used to exercise escalation and give-up paths.
    pub fn set_persistent_crash(&mut self, id: ProcessId, enabled: bool) {
        if enabled {
            self.persistent_crash.insert(id);
        } else {
            self.persistent_crash.remove(&id);
        }
    }

    /// `true` if `id` is marked persistently crashed.
    pub fn is_persistent_crash(&self, id: ProcessId) -> bool {
        self.persistent_crash.contains(&id)
    }

    /// Removes the per-pair quality override between `a` and `b` (a default
    /// quality, if set, still applies).
    pub fn clear_link_quality(&mut self, a: ProcessId, b: ProcessId) {
        self.link_qualities.remove(&pair_key(a, b));
    }

    /// The effective wire quality of the link between `a` and `b`: the
    /// per-pair override if present, else the default, else `None`.
    pub fn link_quality(&self, a: ProcessId, b: ProcessId) -> Option<LinkQuality> {
        self.link_qualities
            .get(&pair_key(a, b))
            .copied()
            .or(self.default_link_quality)
    }

    /// Sends `payload` from `src` to `dst` after `delay`, from outside any
    /// actor (e.g. initial stimulus from the harness).
    pub fn send_external(
        &mut self,
        src: ProcessId,
        dst: ProcessId,
        delay: SimDuration,
        payload: M,
    ) {
        self.schedule(
            delay,
            Action::Deliver {
                dst,
                ev: Event::Message { src, payload },
                incarnation: None,
                degraded: false,
            },
        );
    }

    fn schedule(&mut self, delay: SimDuration, action: Action<M>) {
        let time = self.now + delay;
        let seq = self.seq;
        self.seq += 1;
        self.queue.schedule(time, seq, action);
    }

    /// Processes the next event, if any. Returns `false` when the queue is
    /// empty.
    pub fn step(&mut self) -> bool {
        let Some((time, _seq, action)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(time >= self.now, "time went backwards");
        self.now = time;
        self.events_processed += 1;
        match action {
            Action::Deliver {
                dst,
                ev,
                incarnation,
                degraded,
            } => self.deliver(dst, ev, incarnation, degraded),
            Action::Kill(id) => self.do_kill(id),
            Action::Hang(id) => self.do_hang(id),
            Action::Zombify(id) => self.do_zombify(id),
            Action::Respawn(id) => self.do_respawn(id),
        }
        true
    }

    /// Runs until the event queue is empty. Returns the number of events
    /// processed.
    pub fn run(&mut self) -> u64 {
        let start = self.events_processed;
        while self.step() {}
        self.events_processed - start
    }

    /// Runs until the queue is empty or virtual time would pass `deadline`,
    /// then sets the clock to `deadline` if it was reached. Events scheduled
    /// exactly at `deadline` are processed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let start = self.events_processed;
        while let Some(head_time) = self.queue.peek_time() {
            if head_time > deadline {
                break;
            }
            self.step();
        }
        if self.now < deadline {
            self.now = deadline;
        }
        self.events_processed - start
    }

    /// Runs for `d` of virtual time. See [`Sim::run_until`].
    pub fn run_for(&mut self, d: SimDuration) -> u64 {
        let deadline = self.now + d;
        self.run_until(deadline)
    }

    fn deliver(&mut self, dst: ProcessId, ev: Event<M>, incarnation: Option<u64>, degraded: bool) {
        if let Event::Message { src, .. } = &ev {
            let src = *src;
            // Fast paths: with no severed links there is nothing to look up,
            // and with no configured link quality there is no wire effect to
            // roll (per-link RNG streams are only ever drawn when an
            // imperfect quality is installed, so skipping the lookups cannot
            // shift any random stream).
            if !self.severed.is_empty() && !self.link_up(src, dst) {
                self.trace.record(
                    self.now,
                    Some(dst),
                    TraceKind::Dropped,
                    format!("partition:{src}->{dst}"),
                );
                return;
            }
            if !degraded && (self.default_link_quality.is_some() || !self.link_qualities.is_empty())
            {
                if let Some(q) = self.link_quality(src, dst) {
                    if !q.is_perfect() {
                        let key = pair_key(src, dst);
                        let mut rng = self
                            .link_rngs
                            .remove(&key)
                            .unwrap_or_else(|| self.root_rng.split(link_stream(key)));
                        // Fixed draw order (loss, jitter, duplicate, dup
                        // jitter) keeps the per-link stream reproducible
                        // regardless of which effects are enabled.
                        let lost = rng.chance(q.loss);
                        let extra = q.delay + q.jitter.mul_f64(rng.next_f64());
                        let duplicated = rng.chance(q.duplicate);
                        let dup_extra = q.delay + q.jitter.mul_f64(rng.next_f64());
                        self.link_rngs.insert(key, rng);
                        if duplicated {
                            if let (Some(cloner), Event::Message { src, payload }) =
                                (&self.cloner, &ev)
                            {
                                let copy = Event::Message {
                                    src: *src,
                                    payload: cloner(payload),
                                };
                                self.schedule(
                                    dup_extra,
                                    Action::Deliver {
                                        dst,
                                        ev: copy,
                                        incarnation,
                                        degraded: true,
                                    },
                                );
                            }
                        }
                        if lost {
                            self.trace.record(
                                self.now,
                                Some(dst),
                                TraceKind::Dropped,
                                format!("loss:{src}->{dst}"),
                            );
                            return;
                        }
                        if !extra.is_zero() {
                            self.schedule(
                                extra,
                                Action::Deliver {
                                    dst,
                                    ev,
                                    incarnation,
                                    degraded: true,
                                },
                            );
                            return;
                        }
                    }
                }
            }
        }
        let entry = &mut self.procs[dst.index()];
        if let Some(inc) = incarnation {
            if inc != entry.incarnation {
                return; // stale timer / start event from a previous incarnation
            }
        }
        match entry.state {
            ProcessState::Running => {}
            // A zombie answers only what its filter admits; everything else
            // — including its own timers — vanishes.
            ProcessState::Zombie => {
                let answers = matches!(&ev, Event::Message { payload, .. }
                    if self.zombie_filter.as_ref().is_some_and(|f| f(payload)));
                if !answers {
                    let label = format!("zombie:{}", entry.name);
                    self.trace
                        .record(self.now, Some(dst), TraceKind::Dropped, label);
                    return;
                }
            }
            ProcessState::Crashed | ProcessState::Hung => {
                self.trace
                    .record(self.now, Some(dst), TraceKind::Dropped, entry.name.clone());
                return;
            }
        }
        let entry = &mut self.procs[dst.index()];
        let Some(mut actor) = entry.actor.take() else {
            return;
        };
        let taken_incarnation = entry.incarnation;
        let mut ctx = Context { sim: self, id: dst };
        actor.on_event(ev, &mut ctx);
        // Restore the actor unless the process killed or respawned itself
        // while handling the event.
        let entry = &mut self.procs[dst.index()];
        if entry.incarnation == taken_incarnation && entry.actor.is_none() {
            entry.actor = Some(actor);
        }
    }

    fn do_kill(&mut self, id: ProcessId) {
        let entry = &mut self.procs[id.index()];
        if entry.state == ProcessState::Crashed {
            return;
        }
        entry.state = ProcessState::Crashed;
        entry.actor = None;
        let name = entry.name.clone();
        self.trace
            .record(self.now, Some(id), TraceKind::Crashed, name);
    }

    fn do_hang(&mut self, id: ProcessId) {
        let entry = &mut self.procs[id.index()];
        if entry.state != ProcessState::Running {
            return;
        }
        entry.state = ProcessState::Hung;
        let name = entry.name.clone();
        self.trace.record(self.now, Some(id), TraceKind::Hung, name);
    }

    fn do_zombify(&mut self, id: ProcessId) {
        let entry = &mut self.procs[id.index()];
        if entry.state != ProcessState::Running {
            return;
        }
        entry.state = ProcessState::Zombie;
        let name = entry.name.clone();
        self.trace
            .record(self.now, Some(id), TraceKind::Zombified, name);
    }

    fn do_respawn(&mut self, id: ProcessId) {
        let entry = &mut self.procs[id.index()];
        entry.incarnation += 1;
        entry.state = ProcessState::Running;
        entry.actor = Some((entry.factory)());
        let inc = entry.incarnation;
        let name = entry.name.clone();
        self.trace
            .record(self.now, Some(id), TraceKind::Restarted, name);
        self.schedule(
            SimDuration::ZERO,
            Action::Deliver {
                dst: id,
                ev: Event::Start,
                incarnation: Some(inc),
                degraded: false,
            },
        );
        if self.persistent_crash.contains(&id) {
            // A hard failure: the component dies again the instant it comes
            // back, so restarts alone can never cure it.
            self.schedule(SimDuration::ZERO, Action::Kill(id));
        }
    }
}

impl<M: Clone + 'static> Sim<M> {
    /// Degrades the link between `a` and `b` (both directions): every message
    /// crossing it is subject to `quality`'s loss, delay, jitter and
    /// duplication, driven by a per-link random stream derived from the
    /// simulation seed.
    pub fn set_link_quality(&mut self, a: ProcessId, b: ProcessId, quality: LinkQuality) {
        self.ensure_cloner();
        self.link_qualities.insert(pair_key(a, b), quality);
    }

    /// Applies `quality` to every link without a per-pair override; `None`
    /// restores perfect default links.
    pub fn set_default_link_quality(&mut self, quality: Option<LinkQuality>) {
        if quality.is_some() {
            self.ensure_cloner();
        }
        self.default_link_quality = quality;
    }

    fn ensure_cloner(&mut self) {
        if self.cloner.is_none() {
            self.cloner = Some(Box::new(M::clone));
        }
    }
}

/// Capabilities handed to an actor while it handles an event.
pub struct Context<'a, M> {
    sim: &'a mut Sim<M>,
    id: ProcessId,
}

impl<M> fmt::Debug for Context<'_, M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Context").field("id", &self.id).finish()
    }
}

impl<M> Context<'_, M> {
    /// The id of the process handling the event.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now
    }

    /// Looks up a process id by name.
    pub fn lookup(&self, name: &str) -> Option<ProcessId> {
        self.sim.lookup(name)
    }

    /// The name of any process.
    pub fn name_of(&self, id: ProcessId) -> &str {
        self.sim.name(id)
    }

    /// The lifecycle state of any process (used by the recoverer; ordinary
    /// components should rely on pings, not this omniscient view).
    pub fn state_of(&self, id: ProcessId) -> ProcessState {
        self.sim.state(id)
    }

    /// Sends `payload` to `dst` after `delay`.
    pub fn send_after(&mut self, dst: ProcessId, delay: SimDuration, payload: M) {
        let src = self.id;
        self.sim.schedule(
            delay,
            Action::Deliver {
                dst,
                ev: Event::Message { src, payload },
                incarnation: None,
                degraded: false,
            },
        );
    }

    /// Sends `payload` to `dst` with no delay (delivered after currently
    /// queued same-time events).
    pub fn send(&mut self, dst: ProcessId, payload: M) {
        self.send_after(dst, SimDuration::ZERO, payload);
    }

    /// Sets a timer that fires [`Event::Timer`] with `key` after `delay`.
    /// Timers die with the incarnation that set them: if this process is
    /// killed or respawned first, the timer is silently discarded.
    pub fn set_timer(&mut self, delay: SimDuration, key: u64) {
        let inc = self.sim.procs[self.id.index()].incarnation;
        let dst = self.id;
        self.sim.schedule(
            delay,
            Action::Deliver {
                dst,
                ev: Event::Timer { key },
                incarnation: Some(inc),
                degraded: false,
            },
        );
    }

    /// This process's private random stream.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.sim.procs[self.id.index()].rng
    }

    /// Records a mark in the trace attributed to this process.
    pub fn trace_mark(&mut self, label: impl Into<String>) {
        let id = self.id;
        let now = self.sim.now;
        self.sim.trace.record(now, Some(id), TraceKind::Mark, label);
    }

    /// Records a structured trace event attributed to this process — used
    /// by the recovery module for episode begin/end/merge events, which are
    /// first-class trace records rather than free-form marks.
    pub fn trace_event(&mut self, kind: TraceKind, label: impl Into<String>) {
        let id = self.id;
        let now = self.sim.now;
        self.sim.trace.record(now, Some(id), kind, label);
    }

    /// Crashes another process (or this one) after `delay`. Used by fault
    /// injectors and by components whose failure provably induces a peer
    /// failure (e.g. repeated `fedr` crashes aging `pbcom`, §4.2).
    pub fn kill_after(&mut self, delay: SimDuration, id: ProcessId) {
        self.sim.kill_after(delay, id);
    }

    /// Hangs another process (or this one) after `delay`.
    pub fn hang_after(&mut self, delay: SimDuration, id: ProcessId) {
        self.sim.hang_after(delay, id);
    }

    /// Respawns a process after `delay` — the recoverer's restart primitive.
    pub fn respawn_after(&mut self, delay: SimDuration, id: ProcessId) {
        self.sim.respawn_after(delay, id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Msg {
        Ping,
        Pong,
    }

    /// Replies Pong to every Ping.
    struct Responder;
    impl Actor<Msg> for Responder {
        fn on_event(&mut self, ev: Event<Msg>, ctx: &mut Context<'_, Msg>) {
            if let Event::Message {
                src,
                payload: Msg::Ping,
            } = ev
            {
                ctx.send_after(src, SimDuration::from_millis(10), Msg::Pong);
            }
        }
    }

    /// Pings the responder every second and counts replies.
    struct Pinger {
        target: &'static str,
        pongs: std::rc::Rc<std::cell::Cell<u32>>,
    }
    impl Actor<Msg> for Pinger {
        fn on_event(&mut self, ev: Event<Msg>, ctx: &mut Context<'_, Msg>) {
            match ev {
                Event::Start => ctx.set_timer(SimDuration::from_secs(1), 0),
                Event::Timer { .. } => {
                    let dst = ctx.lookup(self.target).unwrap();
                    ctx.send(dst, Msg::Ping);
                    ctx.set_timer(SimDuration::from_secs(1), 0);
                }
                Event::Message {
                    payload: Msg::Pong, ..
                } => {
                    self.pongs.set(self.pongs.get() + 1);
                }
                Event::Message { .. } => {}
            }
        }
    }

    fn ping_sim() -> (Sim<Msg>, ProcessId, std::rc::Rc<std::cell::Cell<u32>>) {
        let mut sim = Sim::new(1);
        let responder = sim.spawn("responder", || Box::new(Responder));
        let pongs = std::rc::Rc::new(std::cell::Cell::new(0));
        let p = pongs.clone();
        sim.spawn("pinger", move || {
            Box::new(Pinger {
                target: "responder",
                pongs: p.clone(),
            })
        });
        (sim, responder, pongs)
    }

    #[test]
    fn messages_flow_and_time_advances() {
        let (mut sim, _, pongs) = ping_sim();
        sim.run_until(SimTime::from_secs(5));
        // Pings at t=1..=5, replies 10ms later; the t=5 reply arrives at 5.01.
        assert_eq!(pongs.get(), 4);
        assert_eq!(sim.now(), SimTime::from_secs(5));
    }

    #[test]
    fn crashed_process_drops_messages() {
        let (mut sim, responder, pongs) = ping_sim();
        // Run past t=2.01 so the t=2 ping's reply has landed.
        sim.run_until(SimTime::from_secs_f64(2.5));
        let before = pongs.get();
        assert_eq!(before, 2);
        sim.kill(responder);
        sim.run_until(SimTime::from_secs(6));
        assert_eq!(pongs.get(), before, "dead responder must not reply");
        assert_eq!(sim.state(responder), ProcessState::Crashed);
    }

    #[test]
    fn hung_process_is_fail_silent_but_state_resident() {
        let (mut sim, responder, pongs) = ping_sim();
        sim.run_until(SimTime::from_secs_f64(2.5));
        sim.hang_after(SimDuration::ZERO, responder);
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(pongs.get(), 2);
        assert_eq!(sim.state(responder), ProcessState::Hung);
    }

    #[test]
    fn respawn_restores_service() {
        let (mut sim, responder, pongs) = ping_sim();
        sim.run_until(SimTime::from_secs(2));
        sim.kill(responder);
        sim.respawn_after(SimDuration::from_secs(2), responder); // back at t=4
        sim.run_until(SimTime::from_secs(10));
        assert_eq!(sim.state(responder), ProcessState::Running);
        // Pings at 1 (answered), 2..4 dropped (dead 2..4), 4..=9 answered-ish:
        // respawn lands exactly at t=4; the t=4 ping is scheduled before the
        // respawn in the same instant? Both occur at t=4 — order by seq: the
        // pinger timer was scheduled at t=3 (seq earlier than respawn set at
        // t=2)... we only assert that replies resumed.
        assert!(pongs.get() >= 6, "pongs after recovery: {}", pongs.get());
    }

    #[test]
    fn stale_timers_do_not_fire_into_new_incarnation() {
        struct OneShot {
            fired: std::rc::Rc<std::cell::Cell<u32>>,
        }
        impl Actor<Msg> for OneShot {
            fn on_event(&mut self, ev: Event<Msg>, ctx: &mut Context<'_, Msg>) {
                match ev {
                    Event::Start => ctx.set_timer(SimDuration::from_secs(10), 7),
                    Event::Timer { key } => {
                        assert_eq!(key, 7);
                        self.fired.set(self.fired.get() + 1);
                    }
                    _ => {}
                }
            }
        }
        let fired = std::rc::Rc::new(std::cell::Cell::new(0));
        let f = fired.clone();
        let mut sim: Sim<Msg> = Sim::new(3);
        let p = sim.spawn("oneshot", move || Box::new(OneShot { fired: f.clone() }));
        sim.run_until(SimTime::from_secs(1));
        sim.kill(p);
        sim.respawn_after(SimDuration::from_secs(1), p); // new incarnation at t=2
        sim.run_until(SimTime::from_secs(30));
        // Old timer (set at t=0, fires t=10) must be dropped; the new
        // incarnation's timer (set at t=2, fires t=12) fires once.
        assert_eq!(fired.get(), 1);
    }

    #[test]
    fn respawn_loses_state() {
        struct Counter {
            seen: u32,
            out: std::rc::Rc<std::cell::Cell<u32>>,
        }
        impl Actor<Msg> for Counter {
            fn on_event(&mut self, ev: Event<Msg>, _ctx: &mut Context<'_, Msg>) {
                if matches!(ev, Event::Message { .. }) {
                    self.seen += 1;
                    self.out.set(self.seen);
                }
            }
        }
        let out = std::rc::Rc::new(std::cell::Cell::new(0));
        let o = out.clone();
        let mut sim: Sim<Msg> = Sim::new(4);
        let p = sim.spawn("counter", move || {
            Box::new(Counter {
                seen: 0,
                out: o.clone(),
            })
        });
        let src = sim.spawn("src", || Box::new(Responder));
        sim.send_external(src, p, SimDuration::from_secs(1), Msg::Ping);
        sim.send_external(src, p, SimDuration::from_secs(2), Msg::Ping);
        sim.run_until(SimTime::from_secs(3));
        assert_eq!(out.get(), 2);
        sim.kill(p);
        sim.respawn_after(SimDuration::from_secs(1), p);
        sim.send_external(src, p, SimDuration::from_secs(5), Msg::Ping);
        sim.run();
        assert_eq!(
            out.get(),
            1,
            "restart must reset the counter to its start state"
        );
    }

    #[test]
    fn deterministic_event_counts() {
        let run = |seed| {
            let (mut sim, responder, _) = ping_sim();
            let _ = seed;
            sim.kill_after(SimDuration::from_secs_f64(2.5), responder);
            sim.respawn_after(SimDuration::from_secs_f64(4.25), responder);
            sim.run_until(SimTime::from_secs(20));
            (sim.events_processed(), sim.trace().len())
        };
        assert_eq!(run(1), run(1));
    }

    #[test]
    #[should_panic(expected = "already in use")]
    fn duplicate_names_rejected() {
        let mut sim: Sim<Msg> = Sim::new(5);
        sim.spawn("x", || Box::new(Responder));
        sim.spawn("x", || Box::new(Responder));
    }

    #[test]
    fn run_until_advances_clock_even_without_events() {
        let mut sim: Sim<Msg> = Sim::new(6);
        sim.run_until(SimTime::from_secs(42));
        assert_eq!(sim.now(), SimTime::from_secs(42));
    }

    #[test]
    fn lookup_and_names() {
        let mut sim: Sim<Msg> = Sim::new(7);
        let a = sim.spawn("alpha", || Box::new(Responder));
        assert_eq!(sim.lookup("alpha"), Some(a));
        assert_eq!(sim.lookup("beta"), None);
        assert_eq!(sim.name(a), "alpha");
    }

    #[test]
    fn kill_is_idempotent() {
        let mut sim: Sim<Msg> = Sim::new(8);
        let a = sim.spawn("a", || Box::new(Responder));
        sim.kill(a);
        sim.kill(a);
        sim.run();
        let crashes = sim
            .trace()
            .iter()
            .filter(|e| e.kind == TraceKind::Crashed)
            .count();
        assert_eq!(crashes, 1);
    }

    #[test]
    fn partition_drops_messages_both_ways_until_healed() {
        let (mut sim, responder, pongs) = ping_sim();
        sim.run_until(SimTime::from_secs_f64(2.5));
        assert_eq!(pongs.get(), 2);
        let pinger = sim.lookup("pinger").unwrap();
        sim.set_link(pinger, responder, false);
        assert!(!sim.link_up(pinger, responder));
        sim.run_until(SimTime::from_secs_f64(6.5));
        // Both processes are Running, but no pings get through: a partition
        // is observationally identical to a crash.
        assert_eq!(pongs.get(), 2);
        assert_eq!(sim.state(responder), ProcessState::Running);
        sim.set_link(pinger, responder, true);
        sim.run_until(SimTime::from_secs_f64(10.5));
        assert!(
            pongs.get() >= 5,
            "pings resume after healing: {}",
            pongs.get()
        );
    }

    #[test]
    fn isolate_and_heal_cover_all_links() {
        let (mut sim, responder, pongs) = ping_sim();
        let pinger = sim.lookup("pinger").unwrap();
        sim.isolate(responder);
        assert!(!sim.link_up(pinger, responder));
        sim.run_until(SimTime::from_secs(4));
        assert_eq!(pongs.get(), 0);
        sim.heal(responder);
        assert!(sim.link_up(pinger, responder));
        sim.run_until(SimTime::from_secs(8));
        assert!(pongs.get() > 0);
    }

    #[test]
    fn zombie_answers_filtered_messages_only() {
        let (mut sim, responder, pongs) = ping_sim();
        sim.set_zombie_filter(|m| matches!(m, Msg::Ping));
        sim.run_until(SimTime::from_secs_f64(2.5));
        assert_eq!(pongs.get(), 2);
        sim.zombie(responder);
        sim.run_until(SimTime::from_secs_f64(6.5));
        // The zombie responder still answers pings: observationally alive.
        assert_eq!(sim.state(responder), ProcessState::Zombie);
        assert!(
            pongs.get() >= 5,
            "zombie must keep answering pings: {}",
            pongs.get()
        );
    }

    #[test]
    fn zombie_without_filter_is_fail_silent() {
        let (mut sim, responder, pongs) = ping_sim();
        sim.run_until(SimTime::from_secs_f64(2.5));
        sim.zombie(responder);
        sim.run_until(SimTime::from_secs(6));
        assert_eq!(pongs.get(), 2, "no filter: the zombie drops everything");
        let zombie_drops = sim
            .trace()
            .iter()
            .filter(|e| e.kind == TraceKind::Dropped && e.label.starts_with("zombie:"))
            .count();
        assert!(zombie_drops > 0);
    }

    #[test]
    fn zombie_timers_are_dropped() {
        let (mut sim, _responder, pongs) = ping_sim();
        sim.set_zombie_filter(|m| matches!(m, Msg::Ping));
        let pinger = sim.lookup("pinger").unwrap();
        sim.run_until(SimTime::from_secs_f64(2.5));
        sim.zombie(pinger);
        sim.run_until(SimTime::from_secs(8));
        // The pinger's periodic timer dies with zombification, so no more
        // pings are sent even though the responder is healthy.
        assert_eq!(pongs.get(), 2);
    }

    #[test]
    fn respawn_cures_zombie() {
        let (mut sim, responder, pongs) = ping_sim();
        sim.run_until(SimTime::from_secs_f64(2.5));
        sim.zombie(responder);
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(pongs.get(), 2);
        sim.respawn_after(SimDuration::ZERO, responder);
        sim.run_until(SimTime::from_secs(9));
        assert_eq!(sim.state(responder), ProcessState::Running);
        assert!(
            pongs.get() >= 5,
            "service resumes after respawn: {}",
            pongs.get()
        );
    }

    #[test]
    fn total_loss_drops_every_message() {
        let (mut sim, responder, pongs) = ping_sim();
        let pinger = sim.lookup("pinger").unwrap();
        sim.set_link_quality(pinger, responder, LinkQuality::lossy(1.0));
        sim.run_until(SimTime::from_secs(6));
        assert_eq!(pongs.get(), 0);
        assert!(sim
            .trace()
            .iter()
            .any(|e| e.kind == TraceKind::Dropped && e.label.starts_with("loss:")));
        // Both endpoints stayed healthy: pure wire loss.
        assert_eq!(sim.state(responder), ProcessState::Running);
    }

    #[test]
    fn link_delay_shifts_delivery() {
        let mut sim: Sim<Msg> = Sim::new(11);
        let responder = sim.spawn("responder", || Box::new(Responder));
        let probe = sim.spawn("probe", || Box::new(Responder));
        let q = LinkQuality::PERFECT.with_delay(SimDuration::from_millis(250));
        sim.set_link_quality(probe, responder, q);
        sim.send_external(probe, responder, SimDuration::ZERO, Msg::Ping);
        sim.run();
        // Ping delayed 250ms, reply sent 10ms later, delayed another 250ms.
        assert_eq!(sim.now(), SimTime::from_secs_f64(0.510));
    }

    #[test]
    fn duplication_delivers_copies() {
        let (mut sim, responder, pongs) = ping_sim();
        let pinger = sim.lookup("pinger").unwrap();
        let q = LinkQuality::PERFECT.with_duplicate(1.0);
        sim.set_link_quality(pinger, responder, q);
        sim.run_until(SimTime::from_secs_f64(1.5));
        // One ping duplicated into two, each pong duplicated into two: four.
        assert_eq!(pongs.get(), 4);
    }

    #[test]
    fn degraded_links_are_deterministic() {
        let run = |seed: u64| {
            let mut sim: Sim<Msg> = Sim::new(seed);
            let responder = sim.spawn("responder", || Box::new(Responder));
            let pongs = std::rc::Rc::new(std::cell::Cell::new(0));
            let p = pongs.clone();
            sim.spawn("pinger", move || {
                Box::new(Pinger {
                    target: "responder",
                    pongs: p.clone(),
                })
            });
            let pinger = sim.lookup("pinger").unwrap();
            let q = LinkQuality::lossy(0.4)
                .with_jitter(SimDuration::from_millis(50))
                .with_duplicate(0.2);
            sim.set_link_quality(pinger, responder, q);
            sim.run_until(SimTime::from_secs(60));
            (pongs.get(), sim.trace().len(), sim.events_processed())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
        let (pongs, _, _) = run(42);
        assert!(pongs > 0, "some pings must survive 40% loss");
        assert!(pongs < 59, "some pings must be lost");
    }

    #[test]
    fn default_link_quality_applies_everywhere_and_clears() {
        let (mut sim, _responder, pongs) = ping_sim();
        sim.set_default_link_quality(Some(LinkQuality::lossy(1.0)));
        sim.run_until(SimTime::from_secs(4));
        assert_eq!(pongs.get(), 0);
        sim.set_default_link_quality(None);
        sim.run_until(SimTime::from_secs(8));
        assert!(pongs.get() > 0, "healed default link carries traffic again");
    }

    #[test]
    fn per_pair_quality_overrides_default() {
        let (mut sim, responder, pongs) = ping_sim();
        let pinger = sim.lookup("pinger").unwrap();
        sim.set_default_link_quality(Some(LinkQuality::lossy(1.0)));
        sim.set_link_quality(pinger, responder, LinkQuality::PERFECT);
        sim.run_until(SimTime::from_secs(4));
        assert_eq!(pongs.get(), 3, "perfect override wins over lossy default");
        sim.clear_link_quality(pinger, responder);
        let before = pongs.get();
        sim.run_until(SimTime::from_secs(8));
        assert_eq!(
            pongs.get(),
            before,
            "cleared override falls back to lossy default"
        );
    }

    #[test]
    fn persistent_crash_defeats_respawn_until_cleared() {
        let mut sim: Sim<Msg> = Sim::new(12);
        let p = sim.spawn("victim", || Box::new(Responder));
        sim.set_persistent_crash(p, true);
        assert!(sim.is_persistent_crash(p));
        sim.kill(p);
        sim.respawn_after(SimDuration::from_secs(1), p);
        sim.run();
        assert_eq!(sim.state(p), ProcessState::Crashed, "re-killed on respawn");
        sim.set_persistent_crash(p, false);
        sim.respawn_after(SimDuration::from_secs(1), p);
        sim.run();
        assert_eq!(
            sim.state(p),
            ProcessState::Running,
            "cleared mark lets restart stick"
        );
    }

    #[test]
    fn per_process_rng_streams_are_stable() {
        struct RngUser {
            out: std::rc::Rc<std::cell::Cell<u64>>,
        }
        impl Actor<Msg> for RngUser {
            fn on_event(&mut self, ev: Event<Msg>, ctx: &mut Context<'_, Msg>) {
                if matches!(ev, Event::Start) {
                    self.out.set(ctx.rng().next_u64());
                }
            }
        }
        let draw = |seed: u64| {
            let out = std::rc::Rc::new(std::cell::Cell::new(0));
            let o = out.clone();
            let mut sim: Sim<Msg> = Sim::new(seed);
            sim.spawn("r", move || Box::new(RngUser { out: o.clone() }));
            sim.run();
            out.get()
        };
        assert_eq!(draw(9), draw(9));
        assert_ne!(draw(9), draw(10));
    }
}

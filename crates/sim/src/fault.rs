//! Fault injection scripts.
//!
//! The paper's evaluation (§4.1) injects failures by sending `SIGKILL` to a
//! chosen component and measuring time-to-recover. A [`FaultScript`] is the
//! declarative equivalent: a list of (time, target, kind) records applied to a
//! [`Sim`] before it runs. Scripts can be written by hand for
//! targeted experiments or generated from failure-time distributions for
//! long-horizon availability runs.

use serde::{Deserialize, Serialize};

use crate::dist::Dist;
use crate::engine::Sim;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// The kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// Crash: process state is lost and the process goes silent
    /// (the simulated `SIGKILL`).
    Crash,
    /// Hang: process goes silent but keeps its state (a wedged process —
    /// deadlock, livelock, infinite loop). Detected and cured identically.
    Hang,
}

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScriptedFault {
    /// When to inject.
    pub at: SimTime,
    /// The name of the target process.
    pub target: String,
    /// What to inject.
    pub kind: FaultKind,
}

/// A time-ordered collection of faults to inject into a simulation.
///
/// ```
/// use rr_sim::{FaultKind, FaultScript, SimTime};
/// let script = FaultScript::new()
///     .with_fault(SimTime::from_secs(100), "rtu", FaultKind::Crash)
///     .with_fault(SimTime::from_secs(50), "ses", FaultKind::Hang);
/// assert_eq!(script.faults()[0].target, "ses"); // sorted by time
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultScript {
    faults: Vec<ScriptedFault>,
}

impl FaultScript {
    /// Creates an empty script.
    pub fn new() -> Self {
        FaultScript::default()
    }

    /// Adds a fault, keeping the script sorted by injection time.
    pub fn push(&mut self, at: SimTime, target: impl Into<String>, kind: FaultKind) {
        let fault = ScriptedFault {
            at,
            target: target.into(),
            kind,
        };
        let idx = self.faults.partition_point(|f| f.at <= fault.at);
        self.faults.insert(idx, fault);
    }

    /// Builder-style [`push`](Self::push).
    #[must_use]
    pub fn with_fault(mut self, at: SimTime, target: impl Into<String>, kind: FaultKind) -> Self {
        self.push(at, target, kind);
        self
    }

    /// The scheduled faults, sorted by time.
    pub fn faults(&self) -> &[ScriptedFault] {
        &self.faults
    }

    /// Generates a script of crash faults for `target` with inter-arrival
    /// times drawn from `inter_arrival`, covering `[0, horizon)`.
    ///
    /// This is how the synthetic Table 1 failure processes are produced: an
    /// exponential inter-arrival with the paper's per-component MTTF.
    pub fn poisson_like(
        target: &str,
        inter_arrival: &Dist,
        horizon: SimTime,
        rng: &mut SimRng,
    ) -> FaultScript {
        let mut script = FaultScript::new();
        let mut t = SimTime::ZERO;
        loop {
            let gap = inter_arrival.sample(rng);
            if gap.is_zero() {
                // Degenerate distribution; avoid an infinite loop.
                break;
            }
            t += gap;
            if t >= horizon {
                break;
            }
            script.push(t, target, FaultKind::Crash);
        }
        script
    }

    /// Merges another script into this one, preserving time order.
    pub fn merge(&mut self, other: FaultScript) {
        for f in other.faults {
            let idx = self.faults.partition_point(|g| g.at <= f.at);
            self.faults.insert(idx, f);
        }
    }

    /// Schedules every fault onto `sim`. Targets that do not exist are
    /// reported as errors rather than silently skipped.
    ///
    /// # Errors
    ///
    /// Returns the names of any targets not present in the simulation.
    pub fn apply<M>(&self, sim: &mut Sim<M>) -> Result<(), UnknownTargets> {
        let mut unknown = Vec::new();
        for f in &self.faults {
            let Some(id) = sim.lookup(&f.target) else {
                if !unknown.contains(&f.target) {
                    unknown.push(f.target.clone());
                }
                continue;
            };
            let delay = f.at.saturating_since(sim.now());
            match f.kind {
                FaultKind::Crash => sim.kill_after(delay, id),
                FaultKind::Hang => sim.hang_after(delay, id),
            }
        }
        if unknown.is_empty() {
            Ok(())
        } else {
            Err(UnknownTargets(unknown))
        }
    }
}

impl Extend<ScriptedFault> for FaultScript {
    fn extend<T: IntoIterator<Item = ScriptedFault>>(&mut self, iter: T) {
        for f in iter {
            self.push(f.at, f.target, f.kind);
        }
    }
}

impl FromIterator<ScriptedFault> for FaultScript {
    fn from_iter<T: IntoIterator<Item = ScriptedFault>>(iter: T) -> Self {
        let mut s = FaultScript::new();
        s.extend(iter);
        s
    }
}

/// Error: a fault script referenced processes that are not in the simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownTargets(pub Vec<String>);

impl std::fmt::Display for UnknownTargets {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown fault targets: {}", self.0.join(", "))
    }
}

impl std::error::Error for UnknownTargets {}

/// Add two durations of jitter around scheduled injections — occasionally
/// useful in ablations to decouple faults from timer phase. Returns a new
/// script with each fault time shifted by a uniform offset in `±jitter`.
pub fn jittered(script: &FaultScript, jitter: SimDuration, rng: &mut SimRng) -> FaultScript {
    let mut out = FaultScript::new();
    for f in script.faults() {
        let span = 2.0 * jitter.as_secs_f64();
        let offset = rng.next_f64() * span - jitter.as_secs_f64();
        let base = f.at.as_secs_f64();
        let t = SimTime::from_secs_f64((base + offset).max(0.0));
        out.push(t, f.target.clone(), f.kind);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Actor, Context, Event, ProcessState};

    struct Nop;
    impl Actor<()> for Nop {
        fn on_event(&mut self, _ev: Event<()>, _ctx: &mut Context<'_, ()>) {}
    }

    #[test]
    fn push_keeps_time_order() {
        let s = FaultScript::new()
            .with_fault(SimTime::from_secs(5), "b", FaultKind::Crash)
            .with_fault(SimTime::from_secs(1), "a", FaultKind::Hang)
            .with_fault(SimTime::from_secs(3), "c", FaultKind::Crash);
        let order: Vec<_> = s.faults().iter().map(|f| f.target.as_str()).collect();
        assert_eq!(order, vec!["a", "c", "b"]);
    }

    #[test]
    fn apply_schedules_kills_and_hangs() {
        let mut sim: Sim<()> = Sim::new(1);
        let a = sim.spawn("a", || Box::new(Nop));
        let b = sim.spawn("b", || Box::new(Nop));
        let script = FaultScript::new()
            .with_fault(SimTime::from_secs(1), "a", FaultKind::Crash)
            .with_fault(SimTime::from_secs(2), "b", FaultKind::Hang);
        script.apply(&mut sim).unwrap();
        sim.run();
        assert_eq!(sim.state(a), ProcessState::Crashed);
        assert_eq!(sim.state(b), ProcessState::Hung);
    }

    #[test]
    fn apply_reports_unknown_targets() {
        let mut sim: Sim<()> = Sim::new(2);
        sim.spawn("a", || Box::new(Nop));
        let script = FaultScript::new()
            .with_fault(SimTime::from_secs(1), "ghost", FaultKind::Crash)
            .with_fault(SimTime::from_secs(2), "ghost", FaultKind::Crash)
            .with_fault(SimTime::from_secs(2), "phantom", FaultKind::Hang);
        let err = script.apply(&mut sim).unwrap_err();
        assert_eq!(err.0, vec!["ghost".to_string(), "phantom".to_string()]);
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn poisson_like_respects_horizon_and_mean() {
        let mut rng = SimRng::new(3);
        let horizon = SimTime::from_secs(100_000);
        let script = FaultScript::poisson_like("x", &Dist::exponential(100.0), horizon, &mut rng);
        assert!(script.faults().iter().all(|f| f.at < horizon));
        // Expect ~1000 faults; allow generous tolerance.
        let n = script.faults().len();
        assert!((850..1150).contains(&n), "faults: {n}");
    }

    #[test]
    fn poisson_like_handles_degenerate_zero_gap() {
        let mut rng = SimRng::new(4);
        let script = FaultScript::poisson_like(
            "x",
            &Dist::constant(0.0),
            SimTime::from_secs(10),
            &mut rng,
        );
        assert!(script.faults().is_empty());
    }

    #[test]
    fn merge_interleaves() {
        let mut a = FaultScript::new().with_fault(SimTime::from_secs(1), "a", FaultKind::Crash);
        let b = FaultScript::new()
            .with_fault(SimTime::from_secs(0), "b", FaultKind::Crash)
            .with_fault(SimTime::from_secs(2), "c", FaultKind::Crash);
        a.merge(b);
        let order: Vec<_> = a.faults().iter().map(|f| f.target.as_str()).collect();
        assert_eq!(order, vec!["b", "a", "c"]);
    }

    #[test]
    fn jittered_stays_non_negative_and_same_len() {
        let script = FaultScript::new()
            .with_fault(SimTime::from_secs_f64(0.1), "a", FaultKind::Crash)
            .with_fault(SimTime::from_secs(10), "a", FaultKind::Crash);
        let mut rng = SimRng::new(5);
        let j = jittered(&script, SimDuration::from_secs(1), &mut rng);
        assert_eq!(j.faults().len(), 2);
        assert!(j.faults().iter().all(|f| f.at >= SimTime::ZERO));
    }

    #[test]
    fn from_iterator_collects_sorted() {
        let faults = vec![
            ScriptedFault { at: SimTime::from_secs(2), target: "b".into(), kind: FaultKind::Crash },
            ScriptedFault { at: SimTime::from_secs(1), target: "a".into(), kind: FaultKind::Crash },
        ];
        let script: FaultScript = faults.into_iter().collect();
        assert_eq!(script.faults()[0].target, "a");
    }
}

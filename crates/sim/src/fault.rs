//! Fault injection scripts.
//!
//! The paper's evaluation (§4.1) injects failures by sending `SIGKILL` to a
//! chosen component and measuring time-to-recover. A [`FaultScript`] is the
//! declarative equivalent: a list of (time, target, kind) records applied to a
//! [`Sim`] before it runs. Scripts can be written by hand for
//! targeted experiments or generated from failure-time distributions for
//! long-horizon availability runs.

use crate::dist::Dist;
use crate::engine::Sim;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// The kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Crash: process state is lost and the process goes silent
    /// (the simulated `SIGKILL`).
    Crash,
    /// Hang: process goes silent but keeps its state (a wedged process —
    /// deadlock, livelock, infinite loop). Detected and cured identically.
    Hang,
    /// Zombie: the process keeps answering liveness pings (whatever the
    /// simulation's [zombie filter](Sim::set_zombie_filter) admits) but
    /// drops all real work and its own timers. Invisible to naive
    /// ping-based detection.
    Zombie,
    /// Hard crash: like [`Crash`](FaultKind::Crash), but the process dies
    /// again on every respawn — restarts never cure it, forcing the
    /// recovery machinery through escalation and give-up.
    HardCrash,
}

impl FaultKind {
    /// Every fault kind, in a stable order.
    pub const ALL: [FaultKind; 4] = [
        FaultKind::Crash,
        FaultKind::Hang,
        FaultKind::Zombie,
        FaultKind::HardCrash,
    ];

    /// The canonical text name used by the script format.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::Crash => "crash",
            FaultKind::Hang => "hang",
            FaultKind::Zombie => "zombie",
            FaultKind::HardCrash => "hard-crash",
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for FaultKind {
    type Err = ScriptParseError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        FaultKind::ALL
            .into_iter()
            .find(|k| k.as_str() == s)
            .ok_or_else(|| ScriptParseError {
                line: 0,
                message: format!("unknown fault kind {s:?}"),
            })
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq)]
pub struct ScriptedFault {
    /// When to inject.
    pub at: SimTime,
    /// The name of the target process.
    pub target: String,
    /// What to inject.
    pub kind: FaultKind,
}

/// A time-ordered collection of faults to inject into a simulation.
///
/// ```
/// use rr_sim::{FaultKind, FaultScript, SimTime};
/// let script = FaultScript::new()
///     .with_fault(SimTime::from_secs(100), "rtu", FaultKind::Crash)
///     .with_fault(SimTime::from_secs(50), "ses", FaultKind::Hang);
/// assert_eq!(script.faults()[0].target, "ses"); // sorted by time
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultScript {
    faults: Vec<ScriptedFault>,
}

impl FaultScript {
    /// Creates an empty script.
    pub fn new() -> Self {
        FaultScript::default()
    }

    /// Adds a fault, keeping the script sorted by injection time.
    pub fn push(&mut self, at: SimTime, target: impl Into<String>, kind: FaultKind) {
        let fault = ScriptedFault {
            at,
            target: target.into(),
            kind,
        };
        let idx = self.faults.partition_point(|f| f.at <= fault.at);
        self.faults.insert(idx, fault);
    }

    /// Builder-style [`push`](Self::push).
    #[must_use]
    pub fn with_fault(mut self, at: SimTime, target: impl Into<String>, kind: FaultKind) -> Self {
        self.push(at, target, kind);
        self
    }

    /// The scheduled faults, sorted by time.
    pub fn faults(&self) -> &[ScriptedFault] {
        &self.faults
    }

    /// Serializes the script to its text format: one fault per line,
    /// `<nanos> <kind> <target>`, in time order. Times are integer
    /// nanoseconds so the round-trip through [`FaultScript::parse`] is
    /// exact.
    ///
    /// ```
    /// use rr_sim::{FaultKind, FaultScript, SimTime};
    /// let script = FaultScript::new()
    ///     .with_fault(SimTime::from_secs(2), "rtu", FaultKind::Zombie);
    /// let text = script.to_text();
    /// assert_eq!(text, "2000000000 zombie rtu\n");
    /// assert_eq!(FaultScript::parse(&text).unwrap(), script);
    /// ```
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for f in &self.faults {
            out.push_str(&format!("{} {} {}\n", f.at.as_nanos(), f.kind, f.target));
        }
        out
    }

    /// Parses the text format produced by [`FaultScript::to_text`]. Blank
    /// lines and lines starting with `#` are ignored; targets may contain
    /// spaces.
    ///
    /// # Errors
    ///
    /// Returns a [`ScriptParseError`] naming the first malformed line.
    pub fn parse(text: &str) -> Result<FaultScript, ScriptParseError> {
        let mut script = FaultScript::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |message: String| ScriptParseError {
                line: idx + 1,
                message,
            };
            let mut parts = line.splitn(3, ' ');
            let at = parts
                .next()
                .unwrap_or_else(|| unreachable!("splitn yields at least one part"))
                .parse::<u64>()
                .map_err(|e| err(format!("bad time: {e}")))?;
            let kind = parts
                .next()
                .ok_or_else(|| err("missing fault kind".into()))?
                .parse::<FaultKind>()
                .map_err(|e| err(e.message))?;
            let target = parts
                .next()
                .map(str::trim)
                .filter(|t| !t.is_empty())
                .ok_or_else(|| err("missing target".into()))?;
            script.push(SimTime::from_nanos(at), target, kind);
        }
        Ok(script)
    }

    /// Generates a script of crash faults for `target` with inter-arrival
    /// times drawn from `inter_arrival`, covering `[0, horizon)`.
    ///
    /// This is how the synthetic Table 1 failure processes are produced: an
    /// exponential inter-arrival with the paper's per-component MTTF.
    pub fn poisson_like(
        target: &str,
        inter_arrival: &Dist,
        horizon: SimTime,
        rng: &mut SimRng,
    ) -> FaultScript {
        let mut script = FaultScript::new();
        let mut t = SimTime::ZERO;
        loop {
            let gap = inter_arrival.sample(rng);
            if gap.is_zero() {
                // Degenerate distribution; avoid an infinite loop.
                break;
            }
            t += gap;
            if t >= horizon {
                break;
            }
            script.push(t, target, FaultKind::Crash);
        }
        script
    }

    /// Merges another script into this one, preserving time order.
    pub fn merge(&mut self, other: FaultScript) {
        for f in other.faults {
            let idx = self.faults.partition_point(|g| g.at <= f.at);
            self.faults.insert(idx, f);
        }
    }

    /// Schedules every fault onto `sim`. Targets that do not exist are
    /// reported as errors rather than silently skipped.
    ///
    /// # Errors
    ///
    /// Returns the names of any targets not present in the simulation.
    pub fn apply<M>(&self, sim: &mut Sim<M>) -> Result<(), UnknownTargets> {
        let mut unknown = Vec::new();
        for f in &self.faults {
            let Some(id) = sim.lookup(&f.target) else {
                if !unknown.contains(&f.target) {
                    unknown.push(f.target.clone());
                }
                continue;
            };
            let delay = f.at.saturating_since(sim.now());
            match f.kind {
                FaultKind::Crash => sim.kill_after(delay, id),
                FaultKind::Hang => sim.hang_after(delay, id),
                FaultKind::Zombie => sim.zombie_after(delay, id),
                FaultKind::HardCrash => {
                    // The persistence mark is set now but only matters once
                    // the scheduled crash lands.
                    sim.set_persistent_crash(id, true);
                    sim.kill_after(delay, id);
                }
            }
        }
        if unknown.is_empty() {
            Ok(())
        } else {
            Err(UnknownTargets(unknown))
        }
    }
}

impl Extend<ScriptedFault> for FaultScript {
    fn extend<T: IntoIterator<Item = ScriptedFault>>(&mut self, iter: T) {
        for f in iter {
            self.push(f.at, f.target, f.kind);
        }
    }
}

impl FromIterator<ScriptedFault> for FaultScript {
    fn from_iter<T: IntoIterator<Item = ScriptedFault>>(iter: T) -> Self {
        let mut s = FaultScript::new();
        s.extend(iter);
        s
    }
}

/// Error: a fault-script text document was malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptParseError {
    /// 1-based line number of the malformed line (0 when no line applies,
    /// e.g. a bare [`FaultKind`] parse).
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl std::fmt::Display for ScriptParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fault script line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ScriptParseError {}

/// Error: a fault script referenced processes that are not in the simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownTargets(pub Vec<String>);

impl std::fmt::Display for UnknownTargets {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown fault targets: {}", self.0.join(", "))
    }
}

impl std::error::Error for UnknownTargets {}

/// Add two durations of jitter around scheduled injections — occasionally
/// useful in ablations to decouple faults from timer phase. Returns a new
/// script with each fault time shifted by a uniform offset in `±jitter`.
pub fn jittered(script: &FaultScript, jitter: SimDuration, rng: &mut SimRng) -> FaultScript {
    let mut out = FaultScript::new();
    for f in script.faults() {
        let span = 2.0 * jitter.as_secs_f64();
        let offset = rng.next_f64() * span - jitter.as_secs_f64();
        let base = f.at.as_secs_f64();
        let t = SimTime::from_secs_f64((base + offset).max(0.0));
        out.push(t, f.target.clone(), f.kind);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Actor, Context, Event, ProcessState};

    struct Nop;
    impl Actor<()> for Nop {
        fn on_event(&mut self, _ev: Event<()>, _ctx: &mut Context<'_, ()>) {}
    }

    #[test]
    fn push_keeps_time_order() {
        let s = FaultScript::new()
            .with_fault(SimTime::from_secs(5), "b", FaultKind::Crash)
            .with_fault(SimTime::from_secs(1), "a", FaultKind::Hang)
            .with_fault(SimTime::from_secs(3), "c", FaultKind::Crash);
        let order: Vec<_> = s.faults().iter().map(|f| f.target.as_str()).collect();
        assert_eq!(order, vec!["a", "c", "b"]);
    }

    #[test]
    fn apply_schedules_kills_and_hangs() {
        let mut sim: Sim<()> = Sim::new(1);
        let a = sim.spawn("a", || Box::new(Nop));
        let b = sim.spawn("b", || Box::new(Nop));
        let script = FaultScript::new()
            .with_fault(SimTime::from_secs(1), "a", FaultKind::Crash)
            .with_fault(SimTime::from_secs(2), "b", FaultKind::Hang);
        script.apply(&mut sim).unwrap();
        sim.run();
        assert_eq!(sim.state(a), ProcessState::Crashed);
        assert_eq!(sim.state(b), ProcessState::Hung);
    }

    #[test]
    fn apply_reports_unknown_targets() {
        let mut sim: Sim<()> = Sim::new(2);
        sim.spawn("a", || Box::new(Nop));
        let script = FaultScript::new()
            .with_fault(SimTime::from_secs(1), "ghost", FaultKind::Crash)
            .with_fault(SimTime::from_secs(2), "ghost", FaultKind::Crash)
            .with_fault(SimTime::from_secs(2), "phantom", FaultKind::Hang);
        let err = script.apply(&mut sim).unwrap_err();
        assert_eq!(err.0, vec!["ghost".to_string(), "phantom".to_string()]);
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn poisson_like_respects_horizon_and_mean() {
        let mut rng = SimRng::new(3);
        let horizon = SimTime::from_secs(100_000);
        let script = FaultScript::poisson_like("x", &Dist::exponential(100.0), horizon, &mut rng);
        assert!(script.faults().iter().all(|f| f.at < horizon));
        // Expect ~1000 faults; allow generous tolerance.
        let n = script.faults().len();
        assert!((850..1150).contains(&n), "faults: {n}");
    }

    #[test]
    fn poisson_like_handles_degenerate_zero_gap() {
        let mut rng = SimRng::new(4);
        let script =
            FaultScript::poisson_like("x", &Dist::constant(0.0), SimTime::from_secs(10), &mut rng);
        assert!(script.faults().is_empty());
    }

    #[test]
    fn merge_interleaves() {
        let mut a = FaultScript::new().with_fault(SimTime::from_secs(1), "a", FaultKind::Crash);
        let b = FaultScript::new()
            .with_fault(SimTime::from_secs(0), "b", FaultKind::Crash)
            .with_fault(SimTime::from_secs(2), "c", FaultKind::Crash);
        a.merge(b);
        let order: Vec<_> = a.faults().iter().map(|f| f.target.as_str()).collect();
        assert_eq!(order, vec!["b", "a", "c"]);
    }

    #[test]
    fn jittered_stays_non_negative_and_same_len() {
        let script = FaultScript::new()
            .with_fault(SimTime::from_secs_f64(0.1), "a", FaultKind::Crash)
            .with_fault(SimTime::from_secs(10), "a", FaultKind::Crash);
        let mut rng = SimRng::new(5);
        let j = jittered(&script, SimDuration::from_secs(1), &mut rng);
        assert_eq!(j.faults().len(), 2);
        assert!(j.faults().iter().all(|f| f.at >= SimTime::ZERO));
    }

    #[test]
    fn apply_schedules_zombies_and_hard_crashes() {
        let mut sim: Sim<()> = Sim::new(6);
        let z = sim.spawn("z", || Box::new(Nop));
        let h = sim.spawn("h", || Box::new(Nop));
        let script = FaultScript::new()
            .with_fault(SimTime::from_secs(1), "z", FaultKind::Zombie)
            .with_fault(SimTime::from_secs(2), "h", FaultKind::HardCrash);
        script.apply(&mut sim).unwrap();
        sim.run();
        assert_eq!(sim.state(z), ProcessState::Zombie);
        assert_eq!(sim.state(h), ProcessState::Crashed);
        assert!(sim.is_persistent_crash(h));
        // A restart does not stick: the hard crash re-kills immediately.
        sim.respawn_after(SimDuration::from_secs(1), h);
        sim.run();
        assert_eq!(sim.state(h), ProcessState::Crashed);
    }

    #[test]
    fn text_round_trip_covers_every_kind() {
        let mut script = FaultScript::new();
        for (i, kind) in FaultKind::ALL.into_iter().enumerate() {
            script.push(SimTime::from_secs(i as u64 + 1), format!("comp-{i}"), kind);
        }
        let text = script.to_text();
        for kind in FaultKind::ALL {
            assert!(text.contains(kind.as_str()), "missing {kind} in {text:?}");
        }
        assert_eq!(FaultScript::parse(&text).unwrap(), script);
    }

    #[test]
    fn text_round_trip_preserves_same_time_order() {
        // Two faults at the identical instant: serialization and re-parsing
        // must keep their relative order (the engine breaks ties by
        // scheduling order, so this is behaviourally observable).
        let t = SimTime::from_secs_f64(1.25);
        let script = FaultScript::new()
            .with_fault(t, "first", FaultKind::Crash)
            .with_fault(t, "second", FaultKind::Hang);
        let reparsed = FaultScript::parse(&script.to_text()).unwrap();
        assert_eq!(reparsed, script);
        let order: Vec<_> = reparsed
            .faults()
            .iter()
            .map(|f| f.target.as_str())
            .collect();
        assert_eq!(order, vec!["first", "second"]);
    }

    #[test]
    fn parse_skips_comments_and_blanks_and_allows_spacey_targets() {
        let text = "# a fault schedule\n\n1000000000 crash a b c\n  \n# done\n";
        let script = FaultScript::parse(text).unwrap();
        assert_eq!(script.faults().len(), 1);
        assert_eq!(script.faults()[0].target, "a b c");
        assert_eq!(script.faults()[0].at, SimTime::from_secs(1));
    }

    #[test]
    fn parse_reports_malformed_lines() {
        let bad_time = FaultScript::parse("soon crash a").unwrap_err();
        assert_eq!(bad_time.line, 1);
        assert!(bad_time.to_string().contains("bad time"));

        let bad_kind = FaultScript::parse("# header\n5 explode a").unwrap_err();
        assert_eq!(bad_kind.line, 2);
        assert!(bad_kind.message.contains("explode"));

        let no_target = FaultScript::parse("5 crash").unwrap_err();
        assert!(no_target.message.contains("missing target"));

        let blank_target = FaultScript::parse("5 crash  ").unwrap_err();
        assert!(blank_target.message.contains("missing target"));
    }

    #[test]
    fn random_scripts_round_trip() {
        crate::check::run("fault::random_scripts_round_trip", 64, |rng| {
            let mut script = FaultScript::new();
            let n = rng.next_below(20) as usize;
            for _ in 0..n {
                let at = SimTime::from_nanos(rng.next_below(1 << 40));
                let target = crate::check::ident(rng, 8);
                let kind = *rng.choose(&FaultKind::ALL).unwrap();
                script.push(at, target, kind);
            }
            let reparsed = FaultScript::parse(&script.to_text()).unwrap();
            assert_eq!(reparsed, script);
        });
    }

    #[test]
    fn from_iterator_collects_sorted() {
        let faults = vec![
            ScriptedFault {
                at: SimTime::from_secs(2),
                target: "b".into(),
                kind: FaultKind::Crash,
            },
            ScriptedFault {
                at: SimTime::from_secs(1),
                target: "a".into(),
                kind: FaultKind::Crash,
            },
        ];
        let script: FaultScript = faults.into_iter().collect();
        assert_eq!(script.faults()[0].target, "a");
    }
}

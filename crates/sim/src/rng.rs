//! Seeded, splittable pseudo-random number generation.
//!
//! The simulator needs *reproducible* randomness: the same seed must produce
//! the same failure times, jitter and oracle mistakes on every run, on every
//! platform. We therefore implement a small xoshiro256** generator (public
//! domain algorithm by Blackman & Vigna) seeded through SplitMix64, rather
//! than relying on `StdRng`, whose algorithm is allowed to change between
//! `rand` releases.
//!
//! Each simulated process receives its own *stream* ([`SimRng::split`]), so
//! adding randomness consumption in one component does not perturb the draws
//! seen by another — experiments stay comparable across code changes.

/// A deterministic, splittable PRNG (xoshiro256** seeded via SplitMix64).
///
/// ```
/// use rr_sim::SimRng;
/// let mut a = SimRng::new(7);
/// let mut b = SimRng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derives an independent child stream keyed by `stream`.
    ///
    /// Two splits of the same generator with different keys produce
    /// statistically independent sequences; the same key always produces the
    /// same stream. The parent generator is not advanced.
    pub fn split(&self, stream: u64) -> SimRng {
        // Mix the parent state with the stream key through SplitMix64 so
        // nearby keys yield unrelated streams.
        let mut sm = self.s[0] ^ self.s[2] ^ stream.wrapping_mul(0xD605_BBB5_8C8A_BC2D);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Returns the next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform float in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below: bound must be positive");
        // Lemire's rejection method: unbiased without division in the common case.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "bad range [{lo}, {hi})"
        );
        lo + (hi - lo) * self.next_f64()
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Picks a uniformly random element of `slice`, or `None` if it is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.next_below(slice.len() as u64) as usize])
        }
    }

    /// Fisher–Yates shuffles `slice` in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(1234);
        let mut b = SimRng::new(1234);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_streams_are_independent_and_stable() {
        let root = SimRng::new(99);
        let mut s1 = root.split(1);
        let mut s2 = root.split(2);
        let mut s1_again = root.split(1);
        assert_eq!(s1.next_u64(), s1_again.next_u64());
        assert_ne!(s1.next_u64(), s2.next_u64());
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SimRng::new(5);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_f64_mean_near_half() {
        let mut rng = SimRng::new(6);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn next_below_is_in_range_and_roughly_uniform() {
        let mut rng = SimRng::new(7);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.next_below(10) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    #[should_panic(expected = "bound")]
    fn next_below_zero_panics() {
        SimRng::new(0).next_below(0);
    }

    #[test]
    fn chance_matches_probability() {
        let mut rng = SimRng::new(8);
        let hits = (0..100_000).filter(|_| rng.chance(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "hits {hits}");
        assert!(!SimRng::new(9).chance(0.0));
        assert!(SimRng::new(9).chance(1.0));
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = SimRng::new(10);
        assert_eq!(rng.choose::<u8>(&[]), None);
        let items = [1, 2, 3];
        assert!(items.contains(rng.choose(&items).unwrap()));

        let mut v: Vec<u32> = (0..100).collect();
        let orig = v.clone();
        rng.shuffle(&mut v);
        assert_ne!(v, orig, "100-element shuffle left order unchanged");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = SimRng::new(11);
        for _ in 0..1000 {
            let x = rng.uniform(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
        assert_eq!(rng.uniform(4.0, 4.0), 4.0);
    }
}

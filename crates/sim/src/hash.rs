//! A fast, deterministic, dependency-free hasher for hot-path maps.
//!
//! `std`'s default `SipHash` is keyed per-process and costs ~1ns per word of
//! input even for tiny keys; the simulator's hot maps are keyed by `u32`
//! handles ([`crate::CompId`]), small tuples and short strings, where a
//! multiply-rotate hash is several times faster and — unlike `SipHash` —
//! produces the same table order in every run, which the deterministic
//! engine cares about. The construction is the well-known `FxHash`
//! (Firefox's `rustc-hash`): fold each 8-byte word into the state with a
//! rotate, xor and a multiply by a large odd constant.
//!
//! None of these maps are exposed to adversarial keys, so the lack of DoS
//! resistance is fine; anything parsing untrusted input keeps `SipHash`.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The multiply-rotate hash state. See the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

/// The FxHash multiply constant (a large odd number with good bit mixing,
/// `pi` in hex).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(
                chunk
                    .try_into()
                    .unwrap_or_else(|_| unreachable!("chunks_exact yields 8-byte chunks")),
            );
            self.add_to_hash(word);
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            // Pack the remainder into the HIGH bytes and the length into the
            // low byte: a difference in the previous chunk reaches only the
            // low bits of this round (via the rotate), so keeping the
            // remainder's difference in the high bits prevents the two from
            // cancelling — the dominant collision mode for families of
            // similar strings. The length byte distinguishes "ab" from
            // "ab\0".
            let mut word = [0u8; 8];
            word[8 - rest.len()..].copy_from_slice(rest);
            word[0] |= rest.len() as u8;
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` keyed through [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed through [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        BuildHasherDefault::<FxHasher>::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(&42u32), hash_of(&42u32));
        assert_eq!(hash_of(&"pbcom"), hash_of(&"pbcom"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        assert_ne!(hash_of(&1u32), hash_of(&2u32));
        assert_ne!(hash_of(&"ab"), hash_of(&"ba"));
        assert_ne!(hash_of(&"ab"), hash_of(&"ab\0"));
        assert_ne!(hash_of(&("fd", 1u32)), hash_of(&("fd", 2u32)));
    }

    #[test]
    fn maps_and_sets_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(7, "seven");
        assert_eq!(m.get(&7), Some(&"seven"));
        let mut s: FxHashSet<(u32, u32)> = FxHashSet::default();
        assert!(s.insert((1, 2)));
        assert!(!s.insert((1, 2)));
    }

    #[test]
    fn integer_keys_never_collide() {
        // The hot-path keys are u32/u64 handles: a single multiply by an odd
        // constant, which is injective mod 2^64.
        let mut seen = std::collections::HashSet::new();
        for i in 0..100_000u32 {
            assert!(seen.insert(hash_of(&i)));
        }
    }

    #[test]
    fn long_keys_spread_enough() {
        // FxHash is not collision-free on similar strings (a top-bit
        // difference can cancel against the next word's low bits), but the
        // rate must stay far below anything that would degrade a map. String
        // keys are only hashed at the intern boundary anyway.
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000 {
            seen.insert(hash_of(&format!("component-name-{i}")));
        }
        assert!(seen.len() >= 980, "only {} distinct of 1000", seen.len());
    }
}

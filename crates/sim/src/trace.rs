//! Structured event log.
//!
//! Every lifecycle transition (spawn, crash, hang, restart) and every
//! domain-level mark emitted by a component is appended to the [`Trace`]. The
//! experiment harness measures recovery intervals exactly the way the paper
//! does (§4.1): "We log the time when the signal is sent; once the component
//! determines it is functionally ready, it logs a timestamped message. The
//! difference between these two times is what we consider to be the recovery
//! time."

use std::fmt;

use crate::engine::ProcessId;
use crate::time::SimTime;

/// The kind of a trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// A process was created.
    Spawned,
    /// A process crashed (fail-silent, state lost).
    Crashed,
    /// A process hung (fail-silent, state resident).
    Hung,
    /// A process became a zombie (answers pings, does no work).
    Zombified,
    /// A process was restarted from its factory.
    Restarted,
    /// An event addressed to a dead process was dropped.
    Dropped,
    /// A domain-level mark (e.g. `ready:ses`, `detect:rtu`).
    Mark,
    /// A recovery episode was opened (label: `owner:cell`).
    EpisodeBegin,
    /// A recovery episode closed (label: `owner:cured` or `owner:gaveup`).
    EpisodeEnd,
    /// An episode was absorbed into another by promotion to the least
    /// common ancestor (label: `from->into`).
    EpisodeMerge,
}

impl fmt::Display for TraceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TraceKind::Spawned => "spawned",
            TraceKind::Crashed => "crashed",
            TraceKind::Hung => "hung",
            TraceKind::Zombified => "zombified",
            TraceKind::Restarted => "restarted",
            TraceKind::Dropped => "dropped",
            TraceKind::Mark => "mark",
            TraceKind::EpisodeBegin => "episode-begin",
            TraceKind::EpisodeEnd => "episode-end",
            TraceKind::EpisodeMerge => "episode-merge",
        };
        f.write_str(s)
    }
}

/// One record in the trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// When the event happened.
    pub time: SimTime,
    /// The process it is attributed to, if any.
    pub pid: Option<ProcessId>,
    /// What happened.
    pub kind: TraceKind,
    /// Free-form detail: the process name for lifecycle events, the label for
    /// marks.
    pub label: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.time, self.kind, self.label)
    }
}

/// An append-only, queryable log of [`TraceEvent`]s.
///
/// ```
/// use rr_sim::{Sim, SimDuration, TraceKind};
/// let mut sim: Sim<()> = Sim::new(1);
/// sim.mark("experiment-start");
/// assert_eq!(sim.trace().iter().filter(|e| e.kind == TraceKind::Mark).count(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends a record.
    pub fn record(
        &mut self,
        time: SimTime,
        pid: Option<ProcessId>,
        kind: TraceKind,
        label: impl Into<String>,
    ) {
        self.events.push(TraceEvent {
            time,
            pid,
            kind,
            label: label.into(),
        });
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if no records have been appended.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates over all records in order.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Times of all marks with exactly the label `label`.
    pub fn mark_times<'a>(&'a self, label: &'a str) -> impl Iterator<Item = SimTime> + 'a {
        self.events
            .iter()
            .filter(move |e| e.kind == TraceKind::Mark && e.label == label)
            .map(|e| e.time)
    }

    /// The first mark with label `label` at or after `t`, if any.
    pub fn first_mark_at_or_after(&self, t: SimTime, label: &str) -> Option<SimTime> {
        self.mark_times(label).find(|&mt| mt >= t)
    }

    /// The last record matching `kind` and `label`, if any.
    pub fn last(&self, kind: TraceKind, label: &str) -> Option<&TraceEvent> {
        self.events
            .iter()
            .rev()
            .find(|e| e.kind == kind && e.label == label)
    }

    /// Records within the half-open window `[from, to)`.
    pub fn window<'a>(
        &'a self,
        from: SimTime,
        to: SimTime,
    ) -> impl Iterator<Item = &'a TraceEvent> + 'a {
        self.events
            .iter()
            .filter(move |e| e.time >= from && e.time < to)
    }

    /// Renders the whole trace, one event per line (debugging aid).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TraceEvent;
    type IntoIter = std::slice::Iter<'a, TraceEvent>;
    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    fn sample() -> Trace {
        let mut tr = Trace::new();
        tr.record(t(0.0), None, TraceKind::Spawned, "ses");
        tr.record(t(1.0), None, TraceKind::Crashed, "ses");
        tr.record(t(1.9), None, TraceKind::Mark, "detect:ses");
        tr.record(t(2.0), None, TraceKind::Restarted, "ses");
        tr.record(t(7.3), None, TraceKind::Mark, "ready:ses");
        tr.record(t(9.0), None, TraceKind::Mark, "ready:str");
        tr
    }

    #[test]
    fn mark_times_filters_by_label() {
        let tr = sample();
        let times: Vec<_> = tr.mark_times("ready:ses").collect();
        assert_eq!(times, vec![t(7.3)]);
    }

    #[test]
    fn first_mark_at_or_after_respects_threshold() {
        let tr = sample();
        assert_eq!(tr.first_mark_at_or_after(t(0.0), "ready:ses"), Some(t(7.3)));
        assert_eq!(tr.first_mark_at_or_after(t(7.3), "ready:ses"), Some(t(7.3)));
        assert_eq!(tr.first_mark_at_or_after(t(7.4), "ready:ses"), None);
    }

    #[test]
    fn window_is_half_open() {
        let tr = sample();
        let in_window: Vec<_> = tr.window(t(1.0), t(2.0)).map(|e| e.kind).collect();
        assert_eq!(in_window, vec![TraceKind::Crashed, TraceKind::Mark]);
    }

    #[test]
    fn last_finds_most_recent() {
        let mut tr = sample();
        tr.record(t(10.0), None, TraceKind::Crashed, "ses");
        assert_eq!(tr.last(TraceKind::Crashed, "ses").unwrap().time, t(10.0));
        assert!(tr.last(TraceKind::Crashed, "mbus").is_none());
    }

    #[test]
    fn render_is_line_per_event() {
        let tr = sample();
        let rendered = tr.render();
        assert_eq!(rendered.lines().count(), tr.len());
        assert!(rendered.contains("mark ready:ses"));
    }

    #[test]
    fn empty_and_len() {
        let tr = Trace::new();
        assert!(tr.is_empty());
        assert_eq!(tr.len(), 0);
        assert_eq!(sample().len(), 6);
    }
}

//! Probability distributions for failure inter-arrival times and timing jitter.
//!
//! The paper models component failures with rough MTTF estimates (Table 1) and
//! asserts that recovery-time distributions have small coefficients of
//! variation (§3.2). [`Dist`] covers the shapes used by the experiments:
//! exponential inter-arrivals for failures, truncated normals for boot-time
//! jitter, and degenerate/uniform helpers for calibration and tests.

use crate::rng::SimRng;
use crate::time::SimDuration;

/// A probability distribution over non-negative durations (seconds).
///
/// Samples are clamped to be non-negative, since they model times.
///
/// ```
/// use rr_sim::{Dist, SimRng};
/// let mut rng = SimRng::new(1);
/// let d = Dist::exponential(600.0); // MTTF of 10 minutes
/// let x = d.sample_secs(&mut rng);
/// assert!(x >= 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Dist {
    /// Always the same value. Used for calibrated constants.
    Constant {
        /// The value returned by every sample, in seconds.
        value: f64,
    },
    /// Uniform on `[lo, hi)`.
    Uniform {
        /// Inclusive lower bound in seconds.
        lo: f64,
        /// Exclusive upper bound in seconds.
        hi: f64,
    },
    /// Exponential with the given mean (i.e. rate `1/mean`). The memoryless
    /// distribution classically used for failure inter-arrival times.
    Exponential {
        /// Mean of the distribution in seconds.
        mean: f64,
    },
    /// Normal with the given mean and standard deviation, truncated at zero.
    /// Models boot-time jitter: tightly concentrated around the mean, which is
    /// exactly the small-coefficient-of-variation assumption of §3.2.
    Normal {
        /// Mean in seconds.
        mean: f64,
        /// Standard deviation in seconds.
        std_dev: f64,
    },
    /// Log-normal parameterized by the underlying normal's `mu`/`sigma`.
    /// Useful for heavy-tailed ablations.
    LogNormal {
        /// Mean of the underlying normal.
        mu: f64,
        /// Standard deviation of the underlying normal.
        sigma: f64,
    },
}

impl Dist {
    /// A distribution that always yields `value` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `value` is negative or not finite.
    pub fn constant(value: f64) -> Dist {
        assert!(
            value.is_finite() && value >= 0.0,
            "invalid constant {value}"
        );
        Dist::Constant { value }
    }

    /// A uniform distribution on `[lo, hi)` seconds.
    ///
    /// # Panics
    ///
    /// Panics if the range is invalid or contains negative values.
    pub fn uniform(lo: f64, hi: f64) -> Dist {
        assert!(
            lo.is_finite() && hi.is_finite() && 0.0 <= lo && lo <= hi,
            "invalid uniform range [{lo}, {hi})"
        );
        Dist::Uniform { lo, hi }
    }

    /// An exponential distribution with the given mean in seconds.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not strictly positive and finite.
    pub fn exponential(mean: f64) -> Dist {
        assert!(
            mean.is_finite() && mean > 0.0,
            "invalid exponential mean {mean}"
        );
        Dist::Exponential { mean }
    }

    /// A zero-truncated normal distribution.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is negative or `std_dev` is negative or either is not
    /// finite.
    pub fn normal(mean: f64, std_dev: f64) -> Dist {
        assert!(
            mean.is_finite() && std_dev.is_finite() && mean >= 0.0 && std_dev >= 0.0,
            "invalid normal({mean}, {std_dev})"
        );
        Dist::Normal { mean, std_dev }
    }

    /// A log-normal distribution with underlying normal `(mu, sigma)`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or either parameter is not finite.
    pub fn log_normal(mu: f64, sigma: f64) -> Dist {
        assert!(
            mu.is_finite() && sigma.is_finite() && sigma >= 0.0,
            "invalid log_normal({mu}, {sigma})"
        );
        Dist::LogNormal { mu, sigma }
    }

    /// The theoretical mean of the distribution, in seconds.
    pub fn mean(&self) -> f64 {
        match *self {
            Dist::Constant { value } => value,
            Dist::Uniform { lo, hi } => (lo + hi) / 2.0,
            Dist::Exponential { mean } => mean,
            // Truncation at zero slightly raises the mean; for the tight
            // distributions we use (std_dev << mean) the effect is negligible,
            // so we report the untruncated mean.
            Dist::Normal { mean, .. } => mean,
            Dist::LogNormal { mu, sigma } => (mu + sigma * sigma / 2.0).exp(),
        }
    }

    /// Draws one sample, in seconds (always non-negative).
    pub fn sample_secs(&self, rng: &mut SimRng) -> f64 {
        let x = match *self {
            Dist::Constant { value } => value,
            Dist::Uniform { lo, hi } => rng.uniform(lo, hi),
            Dist::Exponential { mean } => {
                // Inverse CDF; guard against ln(0).
                let u = loop {
                    let u = rng.next_f64();
                    if u > 0.0 {
                        break u;
                    }
                };
                -mean * u.ln()
            }
            Dist::Normal { mean, std_dev } => mean + std_dev * sample_standard_normal(rng),
            Dist::LogNormal { mu, sigma } => (mu + sigma * sample_standard_normal(rng)).exp(),
        };
        x.max(0.0)
    }

    /// Draws one sample as a [`SimDuration`].
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        SimDuration::from_secs_f64(self.sample_secs(rng))
    }
}

/// One draw from N(0, 1) via the Box–Muller transform.
fn sample_standard_normal(rng: &mut SimRng) -> f64 {
    let u1 = loop {
        let u = rng.next_f64();
        if u > 0.0 {
            break u;
        }
    };
    let u2 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical_mean(d: &Dist, n: usize, seed: u64) -> f64 {
        let mut rng = SimRng::new(seed);
        (0..n).map(|_| d.sample_secs(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn constant_always_same() {
        let d = Dist::constant(3.5);
        let mut rng = SimRng::new(1);
        for _ in 0..10 {
            assert_eq!(d.sample_secs(&mut rng), 3.5);
        }
        assert_eq!(d.mean(), 3.5);
    }

    #[test]
    fn uniform_mean_and_bounds() {
        let d = Dist::uniform(2.0, 4.0);
        let mut rng = SimRng::new(2);
        for _ in 0..1000 {
            let x = d.sample_secs(&mut rng);
            assert!((2.0..4.0).contains(&x));
        }
        assert!((empirical_mean(&d, 50_000, 3) - 3.0).abs() < 0.02);
    }

    #[test]
    fn exponential_mean_converges() {
        let d = Dist::exponential(10.0);
        let m = empirical_mean(&d, 200_000, 4);
        assert!((m - 10.0).abs() < 0.15, "mean {m}");
    }

    #[test]
    fn exponential_is_memoryless_ish() {
        // P(X > 2m) should be about e^-2.
        let d = Dist::exponential(1.0);
        let mut rng = SimRng::new(5);
        let n = 100_000;
        let tail = (0..n).filter(|_| d.sample_secs(&mut rng) > 2.0).count() as f64 / n as f64;
        assert!((tail - (-2.0f64).exp()).abs() < 0.01, "tail {tail}");
    }

    #[test]
    fn normal_mean_and_spread() {
        let d = Dist::normal(20.0, 0.5);
        let m = empirical_mean(&d, 100_000, 6);
        assert!((m - 20.0).abs() < 0.02, "mean {m}");
        let mut rng = SimRng::new(7);
        // ~99.7% of samples within 3 sigma.
        let outliers = (0..10_000)
            .filter(|_| (d.sample_secs(&mut rng) - 20.0).abs() > 1.5)
            .count();
        assert!(outliers < 100, "outliers {outliers}");
    }

    #[test]
    fn normal_truncates_at_zero() {
        let d = Dist::normal(0.1, 5.0);
        let mut rng = SimRng::new(8);
        for _ in 0..1000 {
            assert!(d.sample_secs(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn log_normal_mean_matches_formula() {
        let d = Dist::log_normal(1.0, 0.25);
        let m = empirical_mean(&d, 200_000, 9);
        assert!(
            (m - d.mean()).abs() / d.mean() < 0.02,
            "mean {m} vs {}",
            d.mean()
        );
    }

    #[test]
    fn sample_duration_is_rounded_sample() {
        let d = Dist::constant(1.25);
        let mut rng = SimRng::new(10);
        assert_eq!(d.sample(&mut rng), SimDuration::from_millis(1250));
    }

    #[test]
    #[should_panic(expected = "invalid exponential mean")]
    fn exponential_rejects_zero_mean() {
        Dist::exponential(0.0);
    }

    #[test]
    #[should_panic(expected = "invalid uniform range")]
    fn uniform_rejects_reversed_range() {
        Dist::uniform(4.0, 2.0);
    }
}

//! # rr-sim — deterministic discrete-event simulation substrate
//!
//! This crate provides the simulation kernel on which the Mercury ground
//! station (and the recursive-restartability experiments from the DSN-2002
//! paper *Reducing Recovery Time in a Small Recursively Restartable System*)
//! runs. The paper's evaluation kills real JVM processes with `SIGKILL` and
//! measures wall-clock recovery; we reproduce the same observable behaviour in
//! virtual time so that a 100-trial experiment that took the authors hours
//! runs in milliseconds, deterministically.
//!
//! The kernel is a classic event-driven simulator:
//!
//! * [`SimTime`] / [`SimDuration`] — virtual time in integer nanoseconds, so
//!   event ordering is exact and runs are bit-for-bit reproducible.
//! * [`Sim`] — the event queue and process table. Processes are actors
//!   implementing [`Actor`]; they exchange messages of a user-chosen type and
//!   set timers.
//! * fail-silent faults — [`Sim::kill`] crashes a process (its state is lost
//!   and it silently drops incoming traffic, exactly like a crashed JVM),
//!   [`Sim::hang_after`] wedges it (state retained, still deaf), and
//!   [`Sim::respawn_after`] restarts it from its factory.
//! * [`rng::SimRng`] — a seeded, splittable PRNG; [`dist::Dist`] — the
//!   probability distributions used for failure inter-arrivals and timing
//!   jitter.
//! * [`stats`] — the summary statistics the experiment harness reports
//!   (mean, standard deviation, coefficient of variation, percentiles,
//!   confidence intervals).
//! * [`trace`] — a structured event log used both for debugging and for
//!   measuring recovery intervals.
//!
//! ## Example
//!
//! ```
//! use rr_sim::{Actor, Context, Event, Sim, SimDuration};
//!
//! struct Echo;
//! impl Actor<String> for Echo {
//!     fn on_event(&mut self, ev: Event<String>, ctx: &mut Context<'_, String>) {
//!         if let Event::Message { src, payload } = ev {
//!             ctx.send_after(src, SimDuration::from_secs_f64(0.1), payload);
//!         }
//!     }
//! }
//!
//! struct Probe { replies: u32 }
//! impl Actor<String> for Probe {
//!     fn on_event(&mut self, ev: Event<String>, _ctx: &mut Context<'_, String>) {
//!         if let Event::Message { .. } = ev { self.replies += 1; }
//!     }
//! }
//!
//! let mut sim = Sim::new(42);
//! let echo = sim.spawn("echo", || Box::new(Echo));
//! let probe = sim.spawn("probe", || Box::new(Probe { replies: 0 }));
//! sim.send_external(probe, echo, SimDuration::ZERO, "ping".to_string());
//! sim.run();
//! assert_eq!(sim.now().as_secs_f64(), 0.1);
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::disallowed_methods))]
#![warn(missing_docs)]

pub mod check;
pub mod dist;
pub mod engine;
pub mod fault;
pub mod hash;
pub mod intern;
pub mod rng;
pub mod stats;
pub mod telemetry;
pub mod time;
pub mod trace;
pub mod vclock;
pub mod wheel;

pub use dist::Dist;
pub use engine::{Actor, Context, Event, LinkQuality, ProcessId, ProcessState, Sim};
pub use fault::{FaultKind, FaultScript, ScriptParseError, ScriptedFault};
pub use hash::{FxHashMap, FxHashSet, FxHasher};
pub use intern::{intern, CompId};
pub use rng::SimRng;
pub use stats::{Histogram, OnlineStats, Summary};
pub use telemetry::{DurationHistogram, EpisodeEvent, EpisodeStage, Registry};
pub use time::{SimDuration, SimTime};
pub use trace::{Trace, TraceEvent, TraceKind};
pub use vclock::{Causality, VectorClock};
pub use wheel::TimerWheel;

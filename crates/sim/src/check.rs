//! Minimal, dependency-free property testing driven by [`SimRng`].
//!
//! The repository builds fully offline, so it cannot depend on `proptest`.
//! This module provides the small subset the test suites actually need: run
//! a property over many pseudo-randomly generated cases, and on failure
//! report the case index and seed so the exact input can be replayed with
//! [`replay`].
//!
//! ```
//! use rr_sim::{check, SimRng};
//!
//! check::run("addition commutes", 64, |rng| {
//!     let a = rng.next_below(1000);
//!     let b = rng.next_below(1000);
//!     assert_eq!(a + b, b + a);
//! });
//! ```

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crate::rng::SimRng;

/// Base seed mixed into every case seed. Changing it reshuffles all
/// generated inputs (the equivalent of a new `proptest` run).
const BASE_SEED: u64 = 0x5EED_CA5E_0000_0000;

/// Derives the deterministic seed for case `case` of property `name`.
fn case_seed(name: &str, case: u64) -> u64 {
    // FNV-1a over the property name, mixed with the case index, so distinct
    // properties explore distinct inputs.
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    BASE_SEED ^ h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Runs `prop` against `cases` independently seeded generators.
///
/// # Panics
///
/// Re-raises the property's panic, prefixed (on stderr) with the failing
/// case index and seed for replay.
pub fn run(name: &str, cases: u64, mut prop: impl FnMut(&mut SimRng)) {
    for case in 0..cases {
        let seed = case_seed(name, case);
        let mut rng = SimRng::new(seed);
        let outcome = catch_unwind(AssertUnwindSafe(|| prop(&mut rng)));
        if let Err(payload) = outcome {
            eprintln!(
                "property {name:?} failed on case {case}/{cases} \
                 (replay seed {seed:#018x})"
            );
            resume_unwind(payload);
        }
    }
}

/// Re-runs `prop` once with the seed printed by a failing [`run`].
pub fn replay(seed: u64, mut prop: impl FnMut(&mut SimRng)) {
    let mut rng = SimRng::new(seed);
    prop(&mut rng);
}

/// A `Vec` of `len in [min, max]` elements drawn by `gen`.
///
/// # Panics
///
/// Panics if `min > max`.
pub fn vec_of<T>(
    rng: &mut SimRng,
    min: usize,
    max: usize,
    mut gen: impl FnMut(&mut SimRng) -> T,
) -> Vec<T> {
    assert!(min <= max, "vec_of: min {min} > max {max}");
    let len = min + rng.next_below((max - min + 1) as u64) as usize;
    (0..len).map(|_| gen(rng)).collect()
}

/// A lowercase identifier of 1 to `max_len` characters: `[a-z][a-z0-9_-]*`.
///
/// # Panics
///
/// Panics if `max_len` is zero.
pub fn ident(rng: &mut SimRng, max_len: usize) -> String {
    assert!(max_len > 0, "ident: max_len must be positive");
    const HEAD: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
    const TAIL: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_-";
    let len = 1 + rng.next_below(max_len as u64) as usize;
    let mut s = String::with_capacity(len);
    s.push(HEAD[rng.next_below(HEAD.len() as u64) as usize] as char);
    for _ in 1..len {
        s.push(TAIL[rng.next_below(TAIL.len() as u64) as usize] as char);
    }
    s
}

/// A string of 0 to `max_len` printable ASCII characters (space through `~`).
pub fn printable(rng: &mut SimRng, max_len: usize) -> String {
    let len = rng.next_below(max_len as u64 + 1) as usize;
    (0..len)
        .map(|_| (b' ' + rng.next_below(95) as u8) as char)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_executes_every_case() {
        let mut n = 0;
        run("counting", 17, |_| n += 1);
        assert_eq!(n, 17);
    }

    #[test]
    fn cases_are_deterministic_across_runs() {
        let mut first: Vec<u64> = Vec::new();
        run("det", 8, |rng| first.push(rng.next_u64()));
        let mut second: Vec<u64> = Vec::new();
        run("det", 8, |rng| second.push(rng.next_u64()));
        assert_eq!(first, second);
    }

    #[test]
    fn distinct_properties_get_distinct_inputs() {
        let mut a = Vec::new();
        run("prop-a", 4, |rng| a.push(rng.next_u64()));
        let mut b = Vec::new();
        run("prop-b", 4, |rng| b.push(rng.next_u64()));
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failures_propagate() {
        run("failing", 4, |_| panic!("boom"));
    }

    #[test]
    fn replay_reproduces_case_inputs() {
        let mut recorded = Vec::new();
        run("replayable", 3, |rng| recorded.push(rng.next_u64()));
        let seed = case_seed("replayable", 2);
        replay(seed, |rng| assert_eq!(rng.next_u64(), recorded[2]));
    }

    #[test]
    fn generators_respect_shapes() {
        run("shapes", 64, |rng| {
            let v = vec_of(rng, 2, 5, |r| r.next_below(10));
            assert!((2..=5).contains(&v.len()));
            let id = ident(rng, 12);
            assert!(!id.is_empty() && id.len() <= 12);
            assert!(id.as_bytes()[0].is_ascii_lowercase());
            let p = printable(rng, 24);
            assert!(p.len() <= 24);
            assert!(p.bytes().all(|b| (b' '..=b'~').contains(&b)));
        });
    }
}

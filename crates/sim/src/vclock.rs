//! Vector clocks for causal ordering of telemetry events.
//!
//! The telemetry [`Registry`](crate::telemetry::Registry) stamps every
//! episode event with a [`VectorClock`] snapshot so a recorded stream can be
//! checked *post-hoc* for happens-before violations (the `rr-model` trace
//! verifier). Each telemetry key — a component or episode owner — is one
//! logical process; recording an event ticks its process entry, and the
//! protocol edges (plan, merge, restart, ready) join clocks so causality
//! flows along the episode graph.
//!
//! Clocks compare with the classic partial order: `a` happens before `b`
//! when every entry of `a` is ≤ the matching entry of `b` and at least one
//! is strictly smaller. Incomparable clocks are [`Causality::Concurrent`].

use std::collections::BTreeMap;
use std::fmt;

/// The causal relation between two vector clocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Causality {
    /// The clocks are identical.
    Equal,
    /// The left clock happens strictly before the right.
    Before,
    /// The left clock happens strictly after the right.
    After,
    /// Neither clock dominates the other.
    Concurrent,
}

/// A vector clock: one monotone counter per logical process, keyed by name.
///
/// Entries absent from the map are implicitly zero, so clocks over different
/// process sets still compare correctly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VectorClock {
    entries: BTreeMap<String, u64>,
}

impl VectorClock {
    /// The zero clock.
    pub fn new() -> VectorClock {
        VectorClock::default()
    }

    /// Advances `process`'s entry by one (inserting it at 1 if absent).
    pub fn tick(&mut self, process: &str) {
        *self.entries.entry(process.to_string()).or_insert(0) += 1;
    }

    /// `process`'s entry (zero if absent).
    pub fn get(&self, process: &str) -> u64 {
        self.entries.get(process).copied().unwrap_or(0)
    }

    /// Pointwise maximum with `other` — the causal join.
    pub fn join(&mut self, other: &VectorClock) {
        for (process, &theirs) in &other.entries {
            let ours = self.entries.entry(process.clone()).or_insert(0);
            *ours = (*ours).max(theirs);
        }
    }

    /// The named entries, in key order. Absent entries are zero.
    pub fn entries(&self) -> impl Iterator<Item = (&str, u64)> {
        self.entries.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// `true` when every entry of `self` is ≥ the matching entry of
    /// `other` (i.e. `self` causally knows everything `other` does).
    pub fn dominates(&self, other: &VectorClock) -> bool {
        other
            .entries
            .iter()
            .all(|(process, &theirs)| self.get(process) >= theirs)
    }

    /// Strict happens-before: `self` ≤ `other` pointwise and `self ≠ other`.
    pub fn happens_before(&self, other: &VectorClock) -> bool {
        other.dominates(self) && self != other
    }

    /// The causal relation between `self` and `other`.
    pub fn compare(&self, other: &VectorClock) -> Causality {
        match (other.dominates(self), self.dominates(other)) {
            (true, true) => Causality::Equal,
            (true, false) => Causality::Before,
            (false, true) => Causality::After,
            (false, false) => Causality::Concurrent,
        }
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (process, count)) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{process}:{count}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_clocks_are_equal() {
        assert_eq!(
            VectorClock::new().compare(&VectorClock::new()),
            Causality::Equal
        );
    }

    #[test]
    fn tick_orders_same_process() {
        let mut a = VectorClock::new();
        a.tick("x");
        let mut b = a.clone();
        b.tick("x");
        assert!(a.happens_before(&b));
        assert!(!b.happens_before(&a));
        assert_eq!(a.compare(&b), Causality::Before);
        assert_eq!(b.compare(&a), Causality::After);
    }

    #[test]
    fn independent_ticks_are_concurrent() {
        let mut a = VectorClock::new();
        a.tick("x");
        let mut b = VectorClock::new();
        b.tick("y");
        assert_eq!(a.compare(&b), Causality::Concurrent);
        assert!(!a.happens_before(&b));
        assert!(!b.happens_before(&a));
    }

    #[test]
    fn join_restores_order() {
        let mut a = VectorClock::new();
        a.tick("x");
        let mut b = VectorClock::new();
        b.tick("y");
        // b learns of a (a message from x to y), then advances.
        b.join(&a);
        b.tick("y");
        assert!(a.happens_before(&b));
    }

    #[test]
    fn missing_entries_read_as_zero() {
        let mut a = VectorClock::new();
        a.tick("x");
        assert_eq!(a.get("x"), 1);
        assert_eq!(a.get("never"), 0);
        assert!(a.dominates(&VectorClock::new()));
    }

    #[test]
    fn display_is_sorted_and_compact() {
        let mut c = VectorClock::new();
        c.tick("b");
        c.tick("a");
        c.tick("b");
        assert_eq!(c.to_string(), "{a:1 b:2}");
    }
}

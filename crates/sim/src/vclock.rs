//! Vector clocks for causal ordering of telemetry events.
//!
//! The telemetry [`Registry`](crate::telemetry::Registry) stamps every
//! episode event with a [`VectorClock`] snapshot so a recorded stream can be
//! checked *post-hoc* for happens-before violations (the `rr-model` trace
//! verifier). Each telemetry key — a component or episode owner — is one
//! logical process; recording an event ticks its process entry, and the
//! protocol edges (plan, merge, restart, ready) join clocks so causality
//! flows along the episode graph.
//!
//! Clocks compare with the classic partial order: `a` happens before `b`
//! when every entry of `a` is ≤ the matching entry of `b` and at least one
//! is strictly smaller. Incomparable clocks are [`Causality::Concurrent`].
//!
//! Internally entries are keyed by interned [`CompId`] handles in a small
//! sorted vec — a clone is one flat `memcpy` instead of a `BTreeMap` of
//! `String`s, which matters because the registry snapshots a clock onto
//! every episode event. Rendering ([`VectorClock::entries`], `Display`)
//! sorts by the *resolved name* so output never depends on interning order
//! (which varies across runs and threads).

use std::fmt;

use crate::intern::{intern, CompId};

/// The causal relation between two vector clocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Causality {
    /// The clocks are identical.
    Equal,
    /// The left clock happens strictly before the right.
    Before,
    /// The left clock happens strictly after the right.
    After,
    /// Neither clock dominates the other.
    Concurrent,
}

/// A vector clock: one monotone counter per logical process.
///
/// Entries absent from the clock are implicitly zero, so clocks over
/// different process sets still compare correctly. Entries are stored
/// sorted by handle with no zero entries, so the representation is
/// canonical and the derived equality is exact.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VectorClock {
    entries: Vec<(CompId, u64)>,
}

impl VectorClock {
    /// The zero clock.
    pub fn new() -> VectorClock {
        VectorClock::default()
    }

    #[inline]
    fn position(&self, id: CompId) -> Result<usize, usize> {
        self.entries.binary_search_by_key(&id, |&(k, _)| k)
    }

    /// Advances `process`'s entry by one (inserting it at 1 if absent).
    pub fn tick(&mut self, process: &str) {
        self.tick_id(intern(process));
    }

    /// [`VectorClock::tick`] for a pre-interned handle.
    pub fn tick_id(&mut self, id: CompId) {
        match self.position(id) {
            Ok(i) => self.entries[i].1 += 1,
            Err(i) => self.entries.insert(i, (id, 1)),
        }
    }

    /// `process`'s entry (zero if absent).
    pub fn get(&self, process: &str) -> u64 {
        self.get_id(intern(process))
    }

    /// [`VectorClock::get`] for a pre-interned handle.
    pub fn get_id(&self, id: CompId) -> u64 {
        match self.position(id) {
            Ok(i) => self.entries[i].1,
            Err(_) => 0,
        }
    }

    /// Pointwise maximum with `other` — the causal join.
    pub fn join(&mut self, other: &VectorClock) {
        for &(id, theirs) in &other.entries {
            match self.position(id) {
                Ok(i) => self.entries[i].1 = self.entries[i].1.max(theirs),
                Err(i) => self.entries.insert(i, (id, theirs)),
            }
        }
    }

    /// The named entries, sorted by process name. Absent entries are zero.
    pub fn entries(&self) -> impl Iterator<Item = (&'static str, u64)> {
        let mut named: Vec<(&'static str, u64)> = self
            .entries
            .iter()
            .map(|&(id, v)| (id.resolve(), v))
            .collect();
        named.sort_unstable_by_key(|&(name, _)| name);
        named.into_iter()
    }

    /// `true` when every entry of `self` is ≥ the matching entry of
    /// `other` (i.e. `self` causally knows everything `other` does).
    pub fn dominates(&self, other: &VectorClock) -> bool {
        other
            .entries
            .iter()
            .all(|&(id, theirs)| self.get_id(id) >= theirs)
    }

    /// Strict happens-before: `self` ≤ `other` pointwise and `self ≠ other`.
    pub fn happens_before(&self, other: &VectorClock) -> bool {
        other.dominates(self) && self != other
    }

    /// The causal relation between `self` and `other`.
    pub fn compare(&self, other: &VectorClock) -> Causality {
        match (other.dominates(self), self.dominates(other)) {
            (true, true) => Causality::Equal,
            (true, false) => Causality::Before,
            (false, true) => Causality::After,
            (false, false) => Causality::Concurrent,
        }
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (process, count)) in self.entries().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{process}:{count}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_clocks_are_equal() {
        assert_eq!(
            VectorClock::new().compare(&VectorClock::new()),
            Causality::Equal
        );
    }

    #[test]
    fn tick_orders_same_process() {
        let mut a = VectorClock::new();
        a.tick("x");
        let mut b = a.clone();
        b.tick("x");
        assert!(a.happens_before(&b));
        assert!(!b.happens_before(&a));
        assert_eq!(a.compare(&b), Causality::Before);
        assert_eq!(b.compare(&a), Causality::After);
    }

    #[test]
    fn independent_ticks_are_concurrent() {
        let mut a = VectorClock::new();
        a.tick("x");
        let mut b = VectorClock::new();
        b.tick("y");
        assert_eq!(a.compare(&b), Causality::Concurrent);
        assert!(!a.happens_before(&b));
        assert!(!b.happens_before(&a));
    }

    #[test]
    fn join_restores_order() {
        let mut a = VectorClock::new();
        a.tick("x");
        let mut b = VectorClock::new();
        b.tick("y");
        // b learns of a (a message from x to y), then advances.
        b.join(&a);
        b.tick("y");
        assert!(a.happens_before(&b));
    }

    #[test]
    fn missing_entries_read_as_zero() {
        let mut a = VectorClock::new();
        a.tick("x");
        assert_eq!(a.get("x"), 1);
        assert_eq!(a.get("never"), 0);
        assert!(a.dominates(&VectorClock::new()));
    }

    #[test]
    fn display_is_sorted_and_compact() {
        let mut c = VectorClock::new();
        c.tick("b");
        c.tick("a");
        c.tick("b");
        assert_eq!(c.to_string(), "{a:1 b:2}");
    }

    #[test]
    fn display_sorts_by_name_not_interning_order() {
        // Intern in reverse-alphabetical order; the rendering must still be
        // alphabetical (interning order is a per-process accident).
        let mut c = VectorClock::new();
        c.tick("zz-vclock-order");
        c.tick("aa-vclock-order");
        c.tick("mm-vclock-order");
        assert_eq!(
            c.to_string(),
            "{aa-vclock-order:1 mm-vclock-order:1 zz-vclock-order:1}"
        );
        let names: Vec<&str> = c.entries().map(|(n, _)| n).collect();
        assert_eq!(
            names,
            vec!["aa-vclock-order", "mm-vclock-order", "zz-vclock-order"]
        );
    }

    #[test]
    fn id_api_matches_string_api() {
        let mut a = VectorClock::new();
        a.tick("vclock-id-api");
        let mut b = VectorClock::new();
        b.tick_id(intern("vclock-id-api"));
        assert_eq!(a, b);
        assert_eq!(a.get_id(intern("vclock-id-api")), 1);
    }

    #[test]
    fn join_inserts_and_maxes() {
        let mut a = VectorClock::new();
        a.tick("x");
        a.tick("x");
        a.tick("y");
        let mut b = VectorClock::new();
        b.tick("x");
        b.tick("z");
        b.join(&a);
        assert_eq!(b.get("x"), 2);
        assert_eq!(b.get("y"), 1);
        assert_eq!(b.get("z"), 1);
    }
}

//! Component-name interning: `u32` handles instead of `String`s on hot paths.
//!
//! Every layer of the system keys something by component name — telemetry
//! metric labels, vector-clock entries, restart-policy history, model-checker
//! signatures. Cloning and hashing those `String`s dominates the per-event
//! cost once the engine itself is fast. [`intern`] maps each distinct name to
//! a dense [`CompId`] handle exactly once per process; afterwards the handle
//! is `Copy`, hashes as a single `u32`, compares in one instruction and
//! resolves back to a `&'static str` without allocation.
//!
//! Interned strings are leaked (once per *distinct* name per process — the
//! simulator's vocabulary is a few dozen component names, so the leak is
//! bounded and deliberate). The pool is process-global so ids are stable
//! within a run, but **assignment order depends on which thread interns
//! first**: no output may depend on the numeric order of `CompId`s. Anything
//! user-visible (exports, `Display`) must sort by the *resolved string*, as
//! [`crate::VectorClock`] and the telemetry exporters do.

use std::fmt;
use std::sync::{OnceLock, RwLock};

use crate::hash::FxHashMap;

/// A dense handle for an interned component name.
///
/// Obtain one with [`intern`]; get the name back with [`CompId::resolve`].
/// Equality and hashing are on the handle, so two `CompId`s are equal iff
/// their source strings are equal (within one process).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CompId(u32);

/// The process-global intern pool.
struct Pool {
    by_name: FxHashMap<&'static str, CompId>,
    names: Vec<&'static str>,
}

fn pool() -> &'static RwLock<Pool> {
    static POOL: OnceLock<RwLock<Pool>> = OnceLock::new();
    POOL.get_or_init(|| {
        RwLock::new(Pool {
            by_name: FxHashMap::default(),
            names: Vec::new(),
        })
    })
}

/// Interns `name`, returning its stable per-process handle.
///
/// The first interning of a distinct name leaks one copy of it; subsequent
/// calls are a read-locked hash lookup.
pub fn intern(name: &str) -> CompId {
    // Fast path: already interned (shared lock only).
    {
        let pool = pool().read().unwrap_or_else(|e| e.into_inner());
        if let Some(&id) = pool.by_name.get(name) {
            return id;
        }
    }
    let mut pool = pool().write().unwrap_or_else(|e| e.into_inner());
    // Re-check: another thread may have interned between the locks.
    if let Some(&id) = pool.by_name.get(name) {
        return id;
    }
    let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
    let id = CompId(u32::try_from(pool.names.len()).unwrap_or_else(|_| {
        unreachable!("more than u32::MAX distinct interned names in one process")
    }));
    pool.names.push(leaked);
    pool.by_name.insert(leaked, id);
    id
}

impl CompId {
    /// The interned string this handle stands for.
    pub fn resolve(self) -> &'static str {
        let pool = pool().read().unwrap_or_else(|e| e.into_inner());
        pool.names.get(self.0 as usize).copied().unwrap_or_else(|| {
            unreachable!("CompId constructed outside intern()");
        })
    }

    /// The raw handle value (for diagnostics; **not** stable across runs).
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for CompId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.resolve())
    }
}

impl From<&str> for CompId {
    fn from(name: &str) -> CompId {
        intern(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let id = intern("pbcom-test-roundtrip");
        assert_eq!(id.resolve(), "pbcom-test-roundtrip");
        assert_eq!(id.to_string(), "pbcom-test-roundtrip");
    }

    #[test]
    fn same_name_same_id() {
        assert_eq!(intern("fedr-test-stable"), intern("fedr-test-stable"));
    }

    #[test]
    fn distinct_names_distinct_ids() {
        assert_ne!(intern("intern-test-a"), intern("intern-test-b"));
    }

    #[test]
    fn from_str_interns() {
        let id: CompId = "intern-test-from".into();
        assert_eq!(id, intern("intern-test-from"));
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(|| {
                    (0..64)
                        .map(|i| intern(&format!("intern-race-{i}")))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let results: Vec<Vec<CompId>> = handles
            .into_iter()
            .map(|h| h.join().expect("thread panicked"))
            .collect();
        for ids in &results[1..] {
            assert_eq!(ids, &results[0], "all threads must agree on ids");
        }
        for (i, id) in results[0].iter().enumerate() {
            assert_eq!(id.resolve(), format!("intern-race-{i}"));
        }
    }

    #[test]
    fn property_round_trip_and_injectivity() {
        // The pool hashes names with FxHasher, which *does* collide on
        // strings (~2% at these lengths); the map's equality probing must
        // keep interning bijective regardless. Random idents stress exactly
        // that: resolve() inverts intern(), and id equality tracks string
        // equality in both directions.
        use crate::hash::FxHashMap;
        let mut by_name: FxHashMap<String, CompId> = FxHashMap::default();
        crate::check::run("interner bijectivity", 256, |rng| {
            for _ in 0..8 {
                let name = format!("prop-{}", crate::check::ident(rng, 20));
                let id = intern(&name);
                assert_eq!(id.resolve(), name, "resolve must invert intern");
                assert_eq!(intern(&name), id, "re-interning must be stable");
                match by_name.get(&name) {
                    Some(&prev) => assert_eq!(prev, id),
                    None => {
                        assert!(
                            by_name.values().all(|&other| other != id),
                            "distinct names {name:?} share an id"
                        );
                        by_name.insert(name, id);
                    }
                }
            }
        });
    }
}

//! Fault-script sanity lints (`RRL5xx`).

use std::str::FromStr;

use rr_sim::FaultKind;

use crate::catalog;
use crate::diag::{Diagnostic, Report};
use crate::fd::FdParams;

/// What the script will run against: the component names faults may target,
/// which of them are recovery infrastructure, and (optionally) the FD
/// configuration to judge observability against.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScriptContext<'a> {
    /// Every process a fault may legitimately target.
    pub components: &'a [String],
    /// The subset that is recovery infrastructure (FD, recoverer): faulting
    /// these exercises the watchdog, not tree recovery.
    pub infrastructure: &'a [String],
    /// FD timing, when known — enables the zombie-observability check.
    pub fd: Option<&'a FdParams>,
}

/// Lints a fault script **in its text form** against a [`ScriptContext`]:
/// parse failures ([`RRL501`]), unknown targets ([`RRL502`]), times going
/// backwards between lines ([`RRL503`]) — checked on the raw text because
/// [`rr_sim::FaultScript::parse`] silently re-sorts — zombie faults no
/// detector can observe ([`RRL504`]), and faults aimed at the recovery
/// infrastructure itself ([`RRL505`]).
///
/// [`RRL501`]: catalog::SCRIPT_MALFORMED
/// [`RRL502`]: catalog::SCRIPT_UNKNOWN_TARGET
/// [`RRL503`]: catalog::SCRIPT_TIME_REGRESSION
/// [`RRL504`]: catalog::SCRIPT_ZOMBIE_UNOBSERVABLE
/// [`RRL505`]: catalog::SCRIPT_INFRASTRUCTURE_TARGET
pub fn lint_fault_script(text: &str, ctx: &ScriptContext<'_>) -> Report {
    let mut report = Report::new();
    if let Err(err) = rr_sim::FaultScript::parse(text) {
        report.push(Diagnostic::new(
            &catalog::SCRIPT_MALFORMED,
            format!("script:{}", err.line),
            err.message,
        ));
        return report; // the remaining checks need a parseable script
    }
    let mut prev: Option<(usize, u64)> = None;
    let mut flagged_unknown: Vec<&str> = Vec::new();
    let mut flagged_infra: Vec<&str> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let line_no = idx + 1;
        // parse() succeeded, so every record is well-formed.
        let mut parts = line.splitn(3, ' ');
        let at: u64 = parts
            .next()
            .and_then(|t| t.parse().ok())
            .unwrap_or_else(|| unreachable!("parse() accepted line {line_no}"));
        let kind = parts
            .next()
            .and_then(|k| FaultKind::from_str(k).ok())
            .unwrap_or_else(|| unreachable!("parse() accepted line {line_no}"));
        let target = parts
            .next()
            .map(str::trim)
            .unwrap_or_else(|| unreachable!("parse() accepted line {line_no}"));

        if let Some((prev_line, prev_at)) = prev {
            if at < prev_at {
                report.push(Diagnostic::new(
                    &catalog::SCRIPT_TIME_REGRESSION,
                    format!("script:{line_no}"),
                    format!("time {at}ns is earlier than line {prev_line}'s {prev_at}ns"),
                ));
            }
        }
        prev = Some((line_no, at));

        let known = ctx.components.iter().any(|c| c == target);
        let infra = ctx.infrastructure.iter().any(|c| c == target);
        if !known && !infra && !flagged_unknown.contains(&target) {
            flagged_unknown.push(target);
            report.push(Diagnostic::new(
                &catalog::SCRIPT_UNKNOWN_TARGET,
                format!("script:{line_no}"),
                format!("target {target:?} is not a component of the station"),
            ));
        }
        if infra && !flagged_infra.contains(&target) {
            flagged_infra.push(target);
            report.push(Diagnostic::new(
                &catalog::SCRIPT_INFRASTRUCTURE_TARGET,
                format!("script:{line_no}"),
                format!("target {target:?} is part of the recovery infrastructure"),
            ));
        }
        if kind == FaultKind::Zombie {
            if let Some(fd) = ctx.fd {
                if !fd.beacons_enabled() {
                    report.push(Diagnostic::new(
                        &catalog::SCRIPT_ZOMBIE_UNOBSERVABLE,
                        format!("script:{line_no}"),
                        format!(
                            "zombie fault on {target:?} with beacon_timeout_s = 0: \
                             no detector will ever notice it"
                        ),
                    ));
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn hardened_fd() -> FdParams {
        FdParams {
            ping_period_s: 1.0,
            ping_timeout_s: 0.4,
            suspicion_threshold: 8,
            suspicion_window: 8,
            beacon_period_s: 5.0,
            beacon_timeout_s: 25.0,
        }
    }

    #[test]
    fn clean_script_passes() {
        let comps = names(&["fedr", "rtu"]);
        let infra = names(&["fd", "rec"]);
        let fd = hardened_fd();
        let ctx = ScriptContext {
            components: &comps,
            infrastructure: &infra,
            fd: Some(&fd),
        };
        let text = "# warm-up, then a crash and an observable zombie\n\
                    1000000000 crash fedr\n\
                    2000000000 zombie rtu\n";
        assert!(lint_fault_script(text, &ctx).is_clean());
    }

    #[test]
    fn malformed_script_denied_with_line() {
        let ctx = ScriptContext::default();
        let report = lint_fault_script("1000 crash a\n5 explode b\n", &ctx);
        assert_eq!(report.codes(), vec!["RRL501"]);
        assert_eq!(report.diagnostics()[0].path, "script:2");
        assert!(report.has_deny());
    }

    #[test]
    fn unknown_target_denied_once_per_target() {
        let comps = names(&["fedr"]);
        let ctx = ScriptContext {
            components: &comps,
            ..ScriptContext::default()
        };
        let text = "1 crash ghost\n2 crash ghost\n3 crash fedr\n";
        let report = lint_fault_script(text, &ctx);
        assert_eq!(report.codes(), vec!["RRL502"]);
        assert_eq!(report.diagnostics()[0].path, "script:1");
    }

    #[test]
    fn time_regression_warns() {
        let comps = names(&["a", "b"]);
        let ctx = ScriptContext {
            components: &comps,
            ..ScriptContext::default()
        };
        let report = lint_fault_script("5 crash a\n3 crash b\n", &ctx);
        assert_eq!(report.codes(), vec!["RRL503"]);
        assert!(!report.has_deny());
        assert_eq!(report.diagnostics()[0].path, "script:2");
    }

    #[test]
    fn unobservable_zombie_denied() {
        let comps = names(&["rtu"]);
        let paper_fd = FdParams {
            beacon_timeout_s: 0.0,
            ..hardened_fd()
        };
        let ctx = ScriptContext {
            components: &comps,
            infrastructure: &[],
            fd: Some(&paper_fd),
        };
        let report = lint_fault_script("1 zombie rtu\n", &ctx);
        assert_eq!(report.codes(), vec!["RRL504"]);
        assert!(report.has_deny());
        // Without FD knowledge the check cannot fire.
        let blind = ScriptContext {
            components: &comps,
            ..ScriptContext::default()
        };
        assert!(lint_fault_script("1 zombie rtu\n", &blind).is_clean());
    }

    #[test]
    fn infrastructure_target_warns() {
        let comps = names(&["fedr"]);
        let infra = names(&["fd", "rec"]);
        let ctx = ScriptContext {
            components: &comps,
            infrastructure: &infra,
            fd: None,
        };
        let report = lint_fault_script("1 crash fd\n2 crash fd\n", &ctx);
        assert_eq!(report.codes(), vec!["RRL505"]);
        assert!(!report.has_deny());
    }
}

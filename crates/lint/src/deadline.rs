//! Deadline/admission-policy feasibility lints (`RRL8xx`).
//!
//! The deadline-aware admission controller (PR 6) promises three things: a
//! recovery admitted against a pass deadline can finish before the pass, a
//! deferred recovery that ages out is actually admitted, and a first report
//! of a faulty component is never shed. Each promise has a static
//! feasibility condition on the configuration; these lints check them before
//! the station runs.

use rr_core::tree::RestartTree;

use crate::catalog;
use crate::diag::{Diagnostic, Report};

/// The admission-control and deadline knobs the linter reasons about,
/// decoupled from `StationConfig` so the checks stay dependency-free.
#[derive(Debug, Clone, PartialEq)]
pub struct DeadlineParams {
    /// Whether the admission controller is switched on. The capacity/aging
    /// lints only apply when it is; the pass-feasibility lint always does.
    pub admission_enabled: bool,
    /// Restart launches admitted per capacity window.
    pub admission_capacity: u32,
    /// Length of the capacity window, in seconds.
    pub admission_window_s: f64,
    /// Deferral-queue retry period, in seconds.
    pub admission_retry_s: f64,
    /// Age at which a deferred restart runs unconditionally, in seconds.
    pub defer_max_age_s: f64,
    /// Advisory deferral-queue bound (entries, one per component).
    pub defer_queue_limit: usize,
    /// Shortest pass window the station commits to serving, in seconds.
    pub min_pass_window_s: f64,
    /// REC's per-restart completion deadline, in seconds.
    pub restart_deadline_s: f64,
    /// Mean failure-to-report detection latency, in seconds.
    pub mean_detection_s: f64,
}

/// Lints the deadline/admission policy: a worst-case recovery must fit
/// inside the shortest committed pass window ([`RRL801`]), the admitted
/// spacing must honour the aging promise ([`RRL802`]), and the deferral
/// queue must hold one entry per component ([`RRL803`]). Pass `None` for
/// `tree` to check only the tree-independent rules.
///
/// [`RRL801`]: catalog::DEADLINE_PASS_INFEASIBLE
/// [`RRL802`]: catalog::DEADLINE_AGING_UNHONORABLE
/// [`RRL803`]: catalog::DEADLINE_QUEUE_UNDERPROVISIONED
pub fn lint_deadline(params: &DeadlineParams, tree: Option<&RestartTree>) -> Report {
    let mut report = Report::new();
    // Detection plus the restart deadline bounds one worst-case recovery
    // episode end to end; if that exceeds the shortest pass window, even an
    // ideally scheduled recovery started at window open misses the pass.
    let worst_recovery = params.mean_detection_s + params.restart_deadline_s;
    if !params.min_pass_window_s.is_finite()
        || params.min_pass_window_s <= 0.0
        || worst_recovery >= params.min_pass_window_s
    {
        report.push(Diagnostic::new(
            &catalog::DEADLINE_PASS_INFEASIBLE,
            "deadline.min_pass_window_s",
            format!(
                "worst-case recovery (detection {:.1}s + restart deadline {:.1}s) does \
                 not fit inside the {}s minimum pass window",
                params.mean_detection_s, params.restart_deadline_s, params.min_pass_window_s
            ),
        ));
    }
    if params.admission_enabled {
        // Under a saturated capacity window, deferred entries drain one per
        // `window / capacity` seconds; an aging bound below that spacing is
        // a promise the drain timer cannot keep.
        let spacing = params.admission_window_s / f64::from(params.admission_capacity.max(1));
        if spacing.is_finite() && spacing > params.defer_max_age_s {
            report.push(Diagnostic::new(
                &catalog::DEADLINE_AGING_UNHONORABLE,
                "deadline.defer_max_age_s",
                format!(
                    "admitted-restart spacing {spacing:.1}s (window {}s / capacity {}) \
                     exceeds the {}s aging bound",
                    params.admission_window_s, params.admission_capacity, params.defer_max_age_s
                ),
            ));
        }
        if let Some(tree) = tree {
            let components = tree.components().len();
            if params.defer_queue_limit < components {
                report.push(Diagnostic::new(
                    &catalog::DEADLINE_QUEUE_UNDERPROVISIONED,
                    "deadline.defer_queue_limit",
                    format!(
                        "deferral queue bound {} is below the tree's {} components",
                        params.defer_queue_limit, components
                    ),
                ));
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_core::tree::TreeSpec;

    fn sane() -> DeadlineParams {
        DeadlineParams {
            admission_enabled: true,
            admission_capacity: 2,
            admission_window_s: 120.0,
            admission_retry_s: 5.0,
            defer_max_age_s: 240.0,
            defer_queue_limit: 16,
            min_pass_window_s: 300.0,
            restart_deadline_s: 45.0,
            mean_detection_s: 0.9,
        }
    }

    fn tree() -> RestartTree {
        TreeSpec::cell("root")
            .with_component("a")
            .with_child(TreeSpec::cell("leaf").with_components(["b", "c"]))
            .build()
            .unwrap()
    }

    #[test]
    fn sane_params_are_clean() {
        assert!(lint_deadline(&sane(), Some(&tree())).is_clean());
        assert!(lint_deadline(&sane(), None).is_clean());
    }

    #[test]
    fn infeasible_pass_window_denied() {
        let params = DeadlineParams {
            min_pass_window_s: 40.0, // < 0.9 + 45.0
            ..sane()
        };
        let report = lint_deadline(&params, None);
        assert_eq!(report.codes(), vec!["RRL801"]);
        assert!(report.has_deny());
        let nan = DeadlineParams {
            min_pass_window_s: f64::NAN,
            ..sane()
        };
        assert!(lint_deadline(&nan, None).fired("RRL801"));
    }

    #[test]
    fn unhonorable_aging_warns() {
        let params = DeadlineParams {
            admission_capacity: 1,
            admission_window_s: 600.0,
            defer_max_age_s: 100.0, // < 600/1
            ..sane()
        };
        let report = lint_deadline(&params, None);
        assert_eq!(report.codes(), vec!["RRL802"]);
        assert!(!report.has_deny());
        // Disabled admission silences the capacity rules.
        let disabled = DeadlineParams {
            admission_enabled: false,
            ..params
        };
        assert!(lint_deadline(&disabled, None).is_clean());
    }

    #[test]
    fn underprovisioned_queue_warns_only_with_tree() {
        let params = DeadlineParams {
            defer_queue_limit: 2, // tree has 3 components
            ..sane()
        };
        assert_eq!(
            lint_deadline(&params, Some(&tree())).codes(),
            vec!["RRL803"]
        );
        assert!(lint_deadline(&params, None).is_clean());
    }
}

//! MTTF/MTTR algebra lints (`RRL3xx`): the paper's §3.2 inequalities for
//! restart groups, checked against annotated claims.
//!
//! A restart group `G = {c1..cn}` fails whenever any member fails and is not
//! recovered until its slowest member is, so any claimed figures must obey
//! `MTTF_G <= min MTTF_ci` and `MTTR_G >= max MTTR_ci`. Claims usually come
//! from design documents or availability dashboards; the linter rejects ones
//! the algebra rules out before they mislead anyone.

use crate::catalog;
use crate::diag::{Diagnostic, Report};

/// Relative slack for floating-point comparisons: claims within one part in
/// 10⁹ of the bound are accepted.
const REL_TOL: f64 = 1e-9;

/// Measured or modeled figures for one member component of a group.
#[derive(Debug, Clone, PartialEq)]
pub struct MemberStat {
    /// Component name.
    pub name: String,
    /// Mean time to failure, seconds.
    pub mttf_s: f64,
    /// Mean time to recover, seconds.
    pub mttr_s: f64,
}

/// A claimed (MTTF, MTTR) figure for a restart group, with the member data
/// it must be consistent with.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupClaim {
    /// Group name (e.g. a restart cell's label).
    pub group: String,
    /// Claimed group MTTF, seconds.
    pub mttf_s: f64,
    /// Claimed group MTTR, seconds.
    pub mttr_s: f64,
    /// The group's members. A claim with no members is vacuous and skipped.
    pub members: Vec<MemberStat>,
}

/// Lints group claims against the paper's inequalities:
/// `MTTF_G <= min MTTF_ci` ([`RRL301`]) and `MTTR_G >= max MTTR_ci`
/// ([`RRL302`]).
///
/// [`RRL301`]: catalog::ALGEBRA_MTTF_OVERCLAIMED
/// [`RRL302`]: catalog::ALGEBRA_MTTR_UNDERCLAIMED
pub fn lint_algebra(claims: &[GroupClaim]) -> Report {
    let mut report = Report::new();
    for claim in claims {
        let Some(min_mttf) = claim
            .members
            .iter()
            .map(|m| m.mttf_s)
            .min_by(f64::total_cmp)
        else {
            continue;
        };
        let max_mttr = claim
            .members
            .iter()
            .map(|m| m.mttr_s)
            .max_by(f64::total_cmp)
            .unwrap_or_else(|| unreachable!("non-empty: min_mttf exists"));
        let path = format!("algebra/{}", claim.group);
        if claim.mttf_s > min_mttf * (1.0 + REL_TOL) {
            let weakest = claim
                .members
                .iter()
                .min_by(|a, b| a.mttf_s.total_cmp(&b.mttf_s))
                .unwrap_or_else(|| unreachable!("non-empty"));
            report.push(Diagnostic::new(
                &catalog::ALGEBRA_MTTF_OVERCLAIMED,
                path.clone(),
                format!(
                    "claimed MTTF {}s exceeds member {:?}'s MTTF {}s",
                    claim.mttf_s, weakest.name, min_mttf
                ),
            ));
        }
        if claim.mttr_s < max_mttr * (1.0 - REL_TOL) {
            let slowest = claim
                .members
                .iter()
                .max_by(|a, b| a.mttr_s.total_cmp(&b.mttr_s))
                .unwrap_or_else(|| unreachable!("non-empty"));
            report.push(Diagnostic::new(
                &catalog::ALGEBRA_MTTR_UNDERCLAIMED,
                path,
                format!(
                    "claimed MTTR {}s is below member {:?}'s MTTR {}s",
                    claim.mttr_s, slowest.name, max_mttr
                ),
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn member(name: &str, mttf_s: f64, mttr_s: f64) -> MemberStat {
        MemberStat {
            name: name.into(),
            mttf_s,
            mttr_s,
        }
    }

    fn claim(mttf_s: f64, mttr_s: f64) -> GroupClaim {
        GroupClaim {
            group: "R_[a,b]".into(),
            mttf_s,
            mttr_s,
            members: vec![member("a", 600.0, 5.0), member("b", 3600.0, 12.0)],
        }
    }

    #[test]
    fn consistent_claim_is_clean() {
        // Exactly at the bounds is fine: the inequalities are not strict.
        assert!(lint_algebra(&[claim(600.0, 12.0)]).is_clean());
        assert!(lint_algebra(&[claim(550.0, 20.0)]).is_clean());
    }

    #[test]
    fn overclaimed_mttf_denied() {
        let report = lint_algebra(&[claim(601.0, 12.0)]);
        assert_eq!(report.codes(), vec!["RRL301"]);
        assert!(report.has_deny());
        assert!(report.diagnostics()[0].message.contains("\"a\""));
    }

    #[test]
    fn underclaimed_mttr_denied() {
        let report = lint_algebra(&[claim(600.0, 11.9)]);
        assert_eq!(report.codes(), vec!["RRL302"]);
        assert!(report.diagnostics()[0].message.contains("\"b\""));
    }

    #[test]
    fn both_violations_fire_together() {
        let report = lint_algebra(&[claim(10_000.0, 1.0)]);
        assert_eq!(report.codes(), vec!["RRL301", "RRL302"]);
    }

    #[test]
    fn memberless_claim_is_skipped() {
        let vacuous = GroupClaim {
            group: "empty".into(),
            mttf_s: f64::INFINITY,
            mttr_s: 0.0,
            members: Vec::new(),
        };
        assert!(lint_algebra(&[vacuous]).is_clean());
    }

    #[test]
    fn tolerance_absorbs_rounding() {
        assert!(lint_algebra(&[claim(600.0 * (1.0 + 1e-12), 12.0)]).is_clean());
    }
}

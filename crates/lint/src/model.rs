//! Failure-model and oracle suspicion-map lints (`RRL2xx`).

use rr_core::model::FailureModel;
use rr_core::schedule::Suspicion;
use rr_core::tree::RestartTree;

use crate::catalog;
use crate::diag::{Diagnostic, Report};
use crate::tree::cell_path;

/// Lints a failure model against the tree it describes: every mode's
/// components must be attached ([`RRL201`]), every attached component should
/// appear in some mode ([`RRL202`]), and an empty model is vacuous
/// ([`RRL203`]).
///
/// [`RRL201`]: catalog::MODEL_UNKNOWN_COMPONENT
/// [`RRL202`]: catalog::MODEL_UNCOVERED_COMPONENT
/// [`RRL203`]: catalog::MODEL_EMPTY
pub fn lint_model(model: &FailureModel, tree: &RestartTree) -> Report {
    let mut report = Report::new();
    if model.modes().is_empty() {
        // Every component is trivially uncovered; the single warning
        // subsumes the per-component ones.
        report.push(Diagnostic::new(
            &catalog::MODEL_EMPTY,
            "model",
            "the failure model has no modes",
        ));
        return report;
    }
    if let Err(missing) = model.validate_against(tree) {
        for name in missing {
            report.push(Diagnostic::new(
                &catalog::MODEL_UNKNOWN_COMPONENT,
                format!("model/{name}"),
                format!(
                    "component {name:?} appears in a failure mode but is not attached to the tree"
                ),
            ));
        }
    }
    for component in tree.components() {
        let mentioned = model
            .modes()
            .iter()
            .any(|m| m.trigger == component || m.cure_set.contains(&component));
        if !mentioned {
            let cell = tree
                .cell_of_component(&component)
                .unwrap_or_else(|| unreachable!("components() returns attached names"));
            report.push(Diagnostic::new(
                &catalog::MODEL_UNCOVERED_COMPONENT,
                cell_path(tree, cell),
                format!("component {component:?} appears in no failure mode"),
            ));
        }
    }
    report
}

/// Lints an oracle's suspicion set against the tree: every target cell must
/// be live ([`RRL211`]), every suspected component attached ([`RRL212`]),
/// and each target cell must actually cover its component ([`RRL213`]).
///
/// [`RRL211`]: catalog::SUSPICION_UNKNOWN_CELL
/// [`RRL212`]: catalog::SUSPICION_UNKNOWN_COMPONENT
/// [`RRL213`]: catalog::SUSPICION_CELL_MISSES_COMPONENT
pub fn lint_suspicions(tree: &RestartTree, suspicions: &[Suspicion]) -> Report {
    let mut report = Report::new();
    for (i, s) in suspicions.iter().enumerate() {
        let path = format!("suspicion[{i}]");
        let cell_ok = tree.contains(s.cell);
        if !cell_ok {
            report.push(Diagnostic::new(
                &catalog::SUSPICION_UNKNOWN_CELL,
                path.clone(),
                format!(
                    "suspicion of {:?} targets {}, not a live cell",
                    s.component, s.cell
                ),
            ));
        }
        let comp_cell = tree.cell_of_component(&s.component);
        if comp_cell.is_none() {
            report.push(Diagnostic::new(
                &catalog::SUSPICION_UNKNOWN_COMPONENT,
                path.clone(),
                format!(
                    "suspected component {:?} is not attached to the tree",
                    s.component
                ),
            ));
        }
        if let (true, Some(comp_cell)) = (cell_ok, comp_cell) {
            if !tree.is_ancestor_or_self(s.cell, comp_cell) {
                report.push(Diagnostic::new(
                    &catalog::SUSPICION_CELL_MISSES_COMPONENT,
                    path,
                    format!(
                        "target cell {:?} does not cover component {:?} (attached under {:?})",
                        tree.label(s.cell),
                        s.component,
                        tree.label(comp_cell),
                    ),
                ));
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_core::model::FailureMode;
    use rr_core::tree::TreeSpec;

    fn tree() -> RestartTree {
        TreeSpec::cell("root")
            .with_child(TreeSpec::cell("R_a").with_component("a"))
            .with_child(TreeSpec::cell("R_b").with_component("b"))
            .build()
            .unwrap()
    }

    #[test]
    fn covering_model_is_clean() {
        let model = FailureModel::new()
            .with_mode(FailureMode::solo("a-crash", "a", 1.0).unwrap())
            .with_mode(FailureMode::correlated("b-joint", "b", ["a", "b"], 0.5).unwrap());
        assert!(lint_model(&model, &tree()).is_clean());
    }

    #[test]
    fn unknown_component_denied() {
        let model =
            FailureModel::new().with_mode(FailureMode::solo("ghost", "ghost", 1.0).unwrap());
        let report = lint_model(&model, &tree());
        assert!(report.fired("RRL201"));
        assert!(report.has_deny());
    }

    #[test]
    fn uncovered_component_warns() {
        let model = FailureModel::new().with_mode(FailureMode::solo("a-crash", "a", 1.0).unwrap());
        let report = lint_model(&model, &tree());
        assert_eq!(report.codes(), vec!["RRL202"]);
        assert!(!report.has_deny());
        assert_eq!(report.diagnostics()[0].path, "root/R_b");
    }

    #[test]
    fn empty_model_warns_once() {
        let report = lint_model(&FailureModel::new(), &tree());
        assert_eq!(report.codes(), vec!["RRL203"]);
        assert!(!report.has_deny());
    }

    #[test]
    fn valid_suspicions_are_clean() {
        let t = tree();
        let s = Suspicion::covering(&t, "a", &["a"]).unwrap();
        let wide = Suspicion {
            component: "b".into(),
            cell: t.root(),
        };
        assert!(lint_suspicions(&t, &[s, wide]).is_clean());
    }

    #[test]
    fn stale_cell_denied() {
        let t = tree();
        let mut bigger = tree();
        let extra = bigger.add_cell(bigger.root(), "extra").unwrap();
        let s = Suspicion {
            component: "a".into(),
            cell: extra,
        };
        assert_eq!(lint_suspicions(&t, &[s]).codes(), vec!["RRL211"]);
    }

    #[test]
    fn unknown_component_suspicion_denied() {
        let t = tree();
        let s = Suspicion {
            component: "ghost".into(),
            cell: t.root(),
        };
        assert_eq!(lint_suspicions(&t, &[s]).codes(), vec!["RRL212"]);
    }

    #[test]
    fn disjoint_cell_denied() {
        let t = tree();
        let s = Suspicion {
            component: "a".into(),
            cell: t.cell_of_component("b").unwrap(),
        };
        assert_eq!(lint_suspicions(&t, &[s]).codes(), vec!["RRL213"]);
    }
}

//! Checkpoint/rehydrate-policy feasibility lints (`RRL9xx`).
//!
//! The crash-safe state store (PR 8) lets a component *rehydrate* from a
//! verified checkpoint instead of cold-booting. That is only sound — and
//! only worth the journaling overhead — under two static conditions: a
//! checkpoint write must finish before the next one is due, and the
//! worst-case replay (snapshot plus one interval of update records) must
//! beat the cold re-derivation it replaces. A third structural condition
//! ties the policy to the tree: a rehydrating component must actually be
//! restartable, i.e. attached to some cell. These lints check all three
//! before the station runs.

use rr_core::tree::RestartTree;

use crate::catalog;
use crate::diag::{Diagnostic, Report};

/// One component with a `Rehydrate` recovery mode.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointComponent {
    /// Component name (as attached to the restart tree).
    pub name: String,
    /// Seconds between checkpoints for this component.
    pub checkpoint_interval_s: f64,
    /// Seconds the cold path takes to re-derive the same state (for the
    /// ses/str pair: the peer's resync service time). Rehydration competes
    /// against this.
    pub cold_rederive_s: f64,
}

/// The store/checkpoint knobs the linter reasons about, decoupled from
/// `StationConfig` so the checks stay dependency-free.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointParams {
    /// Session-state snapshot size, in KiB.
    pub session_state_kb: f64,
    /// Store read/write throughput, in KiB/s.
    pub store_throughput_kbps: f64,
    /// Size of one incremental update record, in KiB.
    pub store_update_kb: f64,
    /// Seconds between incremental update records.
    pub store_update_period_s: f64,
    /// Every component configured to rehydrate. Empty means the policy is
    /// off and the report is trivially clean.
    pub components: Vec<CheckpointComponent>,
}

impl CheckpointParams {
    /// Seconds one checkpoint write occupies the store.
    fn write_s(&self) -> f64 {
        self.session_state_kb / self.store_throughput_kbps
    }

    /// Worst-case rehydrate replay: the snapshot plus a full interval's
    /// accumulation of update records, pushed back through the store.
    fn replay_s(&self, interval_s: f64) -> f64 {
        let updates = (interval_s / self.store_update_period_s).ceil();
        (self.session_state_kb + updates * self.store_update_kb) / self.store_throughput_kbps
    }
}

/// Lints the checkpoint/rehydrate policy: a checkpoint write must fit
/// inside its interval ([`RRL901`]), the worst-case replay must beat the
/// cold path ([`RRL902`]), and every rehydrating component must be attached
/// to the tree ([`RRL903`]). Pass `None` for `tree` to check only the
/// tree-independent rules.
///
/// [`RRL901`]: catalog::CHECKPOINT_WRITE_OVERRUN
/// [`RRL902`]: catalog::CHECKPOINT_REPLAY_REGRESSIVE
/// [`RRL903`]: catalog::CHECKPOINT_COMPONENT_DETACHED
pub fn lint_checkpoint(params: &CheckpointParams, tree: Option<&RestartTree>) -> Report {
    let mut report = Report::new();
    let write_s = params.write_s();
    for comp in &params.components {
        let interval = comp.checkpoint_interval_s;
        // Negated conjunction: NaN anywhere (interval or the shared store
        // knobs feeding write_s) fails the feasible case and fires the deny.
        if !(write_s.is_finite() && interval.is_finite() && interval > write_s) {
            report.push(Diagnostic::new(
                &catalog::CHECKPOINT_WRITE_OVERRUN,
                format!("checkpoint.{}.checkpoint_interval_s", comp.name),
                format!(
                    "a {:.2}s checkpoint write ({} KiB at {} KiB/s) cannot finish \
                     inside the {interval}s interval for {:?}",
                    write_s, params.session_state_kb, params.store_throughput_kbps, comp.name
                ),
            ));
            // Replay arithmetic is meaningless on top of an infeasible
            // write; skip the advisory rule for this component.
            continue;
        }
        let replay_s = params.replay_s(interval);
        if !(replay_s.is_finite()
            && comp.cold_rederive_s.is_finite()
            && replay_s < comp.cold_rederive_s)
        {
            report.push(Diagnostic::new(
                &catalog::CHECKPOINT_REPLAY_REGRESSIVE,
                format!("checkpoint.{}.cold_rederive_s", comp.name),
                format!(
                    "worst-case replay {replay_s:.2}s is no faster than the {:.2}s cold \
                     re-derivation for {:?}; rehydration buys nothing here",
                    comp.cold_rederive_s, comp.name
                ),
            ));
        }
        if let Some(tree) = tree {
            if !tree.components().iter().any(|c| c == &comp.name) {
                report.push(Diagnostic::new(
                    &catalog::CHECKPOINT_COMPONENT_DETACHED,
                    format!("checkpoint.{}", comp.name),
                    format!(
                        "{:?} has a rehydrate policy but no restart cell in the tree",
                        comp.name
                    ),
                ));
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_core::tree::TreeSpec;

    fn sane() -> CheckpointParams {
        CheckpointParams {
            session_state_kb: 256.0,
            store_throughput_kbps: 2048.0,
            store_update_kb: 2.0,
            store_update_period_s: 2.0,
            components: vec![CheckpointComponent {
                name: "ses".into(),
                checkpoint_interval_s: 60.0,
                cold_rederive_s: 3.35,
            }],
        }
    }

    fn tree() -> RestartTree {
        TreeSpec::cell("root")
            .with_component("ses")
            .with_child(TreeSpec::cell("leaf").with_component("str"))
            .build()
            .unwrap()
    }

    #[test]
    fn sane_params_are_clean() {
        assert!(lint_checkpoint(&sane(), Some(&tree())).is_clean());
        assert!(lint_checkpoint(&sane(), None).is_clean());
        // No rehydrating components: trivially clean whatever the knobs.
        let off = CheckpointParams {
            store_throughput_kbps: f64::NAN,
            components: vec![],
            ..sane()
        };
        assert!(lint_checkpoint(&off, Some(&tree())).is_clean());
    }

    #[test]
    fn overrunning_write_denied() {
        // 16 MiB of state through a 2 MiB/s store is an 8s write; a 5s
        // interval can never drain it.
        let mut params = CheckpointParams {
            session_state_kb: 16.0 * 1024.0,
            ..sane()
        };
        params.components[0].checkpoint_interval_s = 5.0;
        let report = lint_checkpoint(&params, None);
        assert_eq!(report.codes(), vec!["RRL901"]);
        assert!(report.has_deny());
        // NaN knobs fall through the same negated conjunction.
        let mut nan = sane();
        nan.components[0].checkpoint_interval_s = f64::NAN;
        assert!(lint_checkpoint(&nan, None).fired("RRL901"));
        let poisoned = CheckpointParams {
            store_throughput_kbps: f64::NAN,
            ..sane()
        };
        assert!(lint_checkpoint(&poisoned, None).fired("RRL901"));
    }

    #[test]
    fn regressive_replay_warns() {
        // Same 16 MiB of state with a roomy interval: the write fits, but
        // an 8s+ replay loses to the 3.35s cold resync.
        let mut params = CheckpointParams {
            session_state_kb: 16.0 * 1024.0,
            ..sane()
        };
        params.components[0].checkpoint_interval_s = 600.0;
        let report = lint_checkpoint(&params, None);
        assert_eq!(report.codes(), vec!["RRL902"]);
        assert!(!report.has_deny());
        // A component with nothing to re-derive makes journaling pointless.
        let mut futile = sane();
        futile.components[0].cold_rederive_s = 0.0;
        assert!(lint_checkpoint(&futile, None).fired("RRL902"));
    }

    #[test]
    fn detached_component_denied_only_with_tree() {
        let mut params = sane();
        params.components.push(CheckpointComponent {
            name: "ghost".into(),
            checkpoint_interval_s: 60.0,
            cold_rederive_s: 3.35,
        });
        let report = lint_checkpoint(&params, Some(&tree()));
        assert_eq!(report.codes(), vec!["RRL903"]);
        assert!(report.has_deny());
        assert!(lint_checkpoint(&params, None).is_clean());
    }
}

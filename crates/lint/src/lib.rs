//! # rr-lint — static verification of the configuration surface
//!
//! The paper's tree transformations and its MTTF/MTTR algebra
//! (`MTTF_G ≤ min MTTF_ci`, `MTTR_G ≥ max MTTR_ci`, §3–4) define invariants
//! that every restart tree, restart policy, failure model, recovery schedule
//! and fault script must satisfy. Violating them used to surface *dynamically*
//! — deep inside a simulation, as a wedged episode or a nonsense availability
//! figure. This crate rejects ill-formed configurations **before anything
//! runs**, with compiler-quality diagnostics: a stable code, a deny/warn
//! severity, a span-like path into the offending node, and a fix hint.
//!
//! ## Entry points
//!
//! | function | surface checked |
//! |---|---|
//! | [`lint_tree`] / [`lint_tree_spec`] | restart-tree well-formedness |
//! | [`lint_policy`] | restart-policy soundness (escalation, backoff, storm budget) |
//! | [`lint_model`] | failure-model ↔ tree completeness |
//! | [`lint_suspicions`] | oracle suspicion→cell map validity |
//! | [`lint_algebra`] | annotated-group MTTF/MTTR against the paper's inequalities |
//! | [`lint_plan`] | episode-plan antichain preconditions |
//! | [`lint_fault_script`] | fault-script sanity (targets, order, observability) |
//! | [`lint_fd`] | failure-detector timing feasibility |
//! | [`lint_model_bounds`] | model-checker exploration feasibility |
//! | [`lint_deadline`] | deadline/admission-policy feasibility |
//! | [`lint_checkpoint`] | checkpoint/rehydrate-policy feasibility |
//! | [`lint_flow`] | action-dependence (rr-flow) soundness |
//! | [`lint_abs`] | profitability-certification (rr-abs) soundness |
//!
//! Each returns a [`Report`]; reports merge, render human-readable text
//! ([`Report::to_human`]) or JSON ([`Report::to_json`]), and gate execution
//! via [`Report::has_deny`]. The full diagnostic catalog (code → meaning,
//! severity, hint) is [`catalog::CATALOG`].
//!
//! ## Example
//!
//! ```
//! use rr_core::tree::TreeSpec;
//!
//! // An empty leaf cell: its restart button restarts nothing.
//! let tree = TreeSpec::cell("root")
//!     .with_child(TreeSpec::cell("R_a").with_component("a"))
//!     .with_child(TreeSpec::cell("R_ghost"))
//!     .build()?;
//! let report = rr_lint::lint_tree(&tree);
//! assert_eq!(report.codes(), vec!["RRL003"]);
//! assert!(!report.has_deny(), "an empty leaf is a warning, not a deny");
//! # Ok::<(), rr_core::TreeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::disallowed_methods))]

pub mod abs;
pub mod algebra;
pub mod bounds;
pub mod catalog;
pub mod checkpoint;
pub mod deadline;
pub mod diag;
pub mod fd;
pub mod flow;
pub mod model;
pub mod policy;
pub mod schedule;
pub mod script;
pub mod tree;

pub use abs::{lint_abs, AbsDecision, AbsParams};
pub use algebra::{lint_algebra, GroupClaim, MemberStat};
pub use bounds::{lint_model_bounds, ModelBoundsParams};
pub use catalog::CodeInfo;
pub use checkpoint::{lint_checkpoint, CheckpointComponent, CheckpointParams};
pub use deadline::{lint_deadline, DeadlineParams};
pub use diag::{Diagnostic, Report, Severity};
pub use fd::{lint_fd, FdParams};
pub use flow::{lint_flow, FlowFault, FlowParams};
pub use model::{lint_model, lint_suspicions};
pub use policy::{lint_policy, PolicyParams};
pub use schedule::lint_plan;
pub use script::{lint_fault_script, ScriptContext};
pub use tree::{cell_path, lint_tree, lint_tree_spec};

//! Model-checking feasibility lints (`RRL7xx`).
//!
//! `rr-model` explores every interleaving of a scenario's protocol steps up
//! to a depth bound, inside a hard state budget. Whether that exploration is
//! *feasible* — and whether the configuration stays within what the checker
//! actually verified — is a static property of the configuration, so it
//! belongs here: a scenario whose state space dwarfs the budget aborts
//! unverified, and a station whose plan queue can grow deeper than the
//! checked bound runs merge logic no exploration ever covered.

use crate::catalog;
use crate::diag::{Diagnostic, Report};

/// The exploration-shape knobs the linter reasons about, decoupled from
/// `rr-model`'s own types so the lint crate stays dependency-light (plain
/// numbers, mirroring [`PolicyParams`](crate::policy::PolicyParams)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelBoundsParams {
    /// Faults the scenario's adversary may inject.
    pub faults: usize,
    /// Components in the restart tree under check.
    pub components: usize,
    /// Exploration depth bound (protocol steps per trace).
    pub depth: usize,
    /// The checker's hard cap on visited states.
    pub state_budget: u64,
    /// The deepest episode-plan queue (simultaneous suspicions) this
    /// configuration can produce — its widest restart-cell antichain.
    pub plan_queue_depth: usize,
    /// The queue depth the model checker's scenarios actually verified.
    pub checked_queue_bound: usize,
}

/// `base^exp`, saturating at `u64::MAX`.
fn sat_pow(base: u64, exp: usize) -> u64 {
    let mut out: u64 = 1;
    for _ in 0..exp {
        out = match out.checked_mul(base) {
            Some(v) => v,
            None => return u64::MAX,
        };
    }
    out
}

/// A conservative estimate of the states the checker must visit. Two bounds
/// hold simultaneously and the exploration pays the *smaller*:
///
/// * **trace bound** — at most `branching^depth` prefixes exist, where the
///   branching factor counts one injection and one suspicion per fault, one
///   batch suspicion, one completion and one confirmation per component's
///   episode, and the epoch rollover;
/// * **signature bound** — canonical-state dedup caps distinct states by the
///   signature space: ~6 status/suspicion combinations per fault times ~4
///   recorded-restart counts per component.
fn estimated_states(params: &ModelBoundsParams) -> u64 {
    let branching = (2 * params.faults + 2 * params.components + 2) as u64;
    let traces = sat_pow(branching, params.depth);
    let signatures = sat_pow(6, params.faults).saturating_mul(sat_pow(4, params.components));
    traces.min(signatures)
}

/// Lints a model-checking configuration: the estimated state space must fit
/// the exploration budget ([`RRL701`]), and the plan queue must stay within
/// the bound the checker verified ([`RRL702`]).
///
/// [`RRL701`]: catalog::MODEL_EXPLORATION_INFEASIBLE
/// [`RRL702`]: catalog::MODEL_QUEUE_UNCHECKED
pub fn lint_model_bounds(params: &ModelBoundsParams) -> Report {
    let mut report = Report::new();
    let estimate = estimated_states(params);
    if estimate > params.state_budget {
        report.push(Diagnostic::new(
            &catalog::MODEL_EXPLORATION_INFEASIBLE,
            "model.bounds",
            format!(
                "{} fault(s) over {} component(s) at depth {} give on the \
                 order of {} states, over the {}-state budget — the \
                 exploration would abort unverified",
                params.faults,
                params.components,
                params.depth,
                if estimate == u64::MAX {
                    "2^64".to_string()
                } else {
                    estimate.to_string()
                },
                params.state_budget
            ),
        ));
    }
    if params.plan_queue_depth > params.checked_queue_bound {
        report.push(Diagnostic::new(
            &catalog::MODEL_QUEUE_UNCHECKED,
            "model.plan_queue",
            format!(
                "the configuration can queue {} simultaneous suspicions but \
                 the model checker verified merges only up to {}",
                params.plan_queue_depth, params.checked_queue_bound
            ),
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sane() -> ModelBoundsParams {
        ModelBoundsParams {
            faults: 2,
            components: 6,
            depth: 12,
            state_budget: 2_000_000,
            plan_queue_depth: 5,
            checked_queue_bound: 6,
        }
    }

    #[test]
    fn sane_bounds_are_clean() {
        assert!(lint_model_bounds(&sane()).is_clean());
    }

    #[test]
    fn shallow_depth_is_feasible_even_with_many_faults() {
        // The trace bound saves a wide scenario explored only a few steps.
        let params = ModelBoundsParams {
            faults: 10,
            components: 10,
            depth: 3,
            ..sane()
        };
        assert!(lint_model_bounds(&params).is_clean());
    }

    #[test]
    fn oversized_state_space_fires_rrl701() {
        let params = ModelBoundsParams {
            faults: 8,
            depth: 40,
            ..sane()
        };
        let report = lint_model_bounds(&params);
        assert_eq!(report.codes(), vec!["RRL701"]);
    }

    #[test]
    fn overflowing_estimate_saturates_and_fires() {
        let params = ModelBoundsParams {
            faults: 1_000_000,
            components: 1_000_000,
            depth: 10_000,
            ..sane()
        };
        let report = lint_model_bounds(&params);
        assert!(report.fired("RRL701"));
    }

    #[test]
    fn deep_plan_queue_fires_rrl702() {
        let params = ModelBoundsParams {
            plan_queue_depth: 9,
            checked_queue_bound: 6,
            ..sane()
        };
        let report = lint_model_bounds(&params);
        assert_eq!(report.codes(), vec!["RRL702"]);
    }
}

//! Action-dependence (rr-flow) soundness lints (`RRL95x`).
//!
//! rr-model's partial-order reduction is driven by a statically computed
//! dependence table over the scenario's action alphabet: two actions are
//! independent iff their component footprints are disjoint under the §3.2
//! tree algebra, and the checker may then prune interleavings that only
//! permute independent actions. That machinery is sound only if the table
//! has the right *shape* — square, symmetric, reflexive — and it is only
//! *useful* if the fault set does not interfere so densely that every
//! suspicion order merges to the same ancestor anyway. These lints check
//! both before an exploration (or a benchmark pinned to its state counts)
//! runs, plus one reachability rule: a cure that sits beyond the escalation
//! limit makes the fault's terminal actions dead letters in any bounded run.
//!
//! The inputs mirror `rr_model::FlowAnalysis` but are decoupled from it
//! (plain strings and bit matrices) so the linter keeps its dependency-free
//! footprint; `rr-harness` bridges the two.

use crate::catalog;
use crate::diag::{Diagnostic, Report};

/// One fault as the flow analysis sees it: its component and its escalation
/// chain, lowest cell first, each entry flagged with whether that cell's
/// restart covers the fault's cure set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowFault {
    /// The faulted component's name.
    pub component: String,
    /// Escalation chain as `(cell label, covers-cure-set)` pairs.
    pub chain: Vec<(String, bool)>,
}

/// The dependence report the linter reasons about, decoupled from
/// `rr_model::FlowAnalysis` so the checks stay dependency-free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowParams {
    /// Faults in scenario declaration order.
    pub faults: Vec<FlowFault>,
    /// Escalation steps a bounded run can take before quarantine.
    pub escalation_limit: usize,
    /// Action-template labels, indexing `dependent`.
    pub templates: Vec<String>,
    /// `dependent[a][b]`: templates `a` and `b` conflict.
    pub dependent: Vec<Vec<bool>>,
    /// `fault_interference[i][j]`: the faults' chains share a cell.
    pub fault_interference: Vec<Vec<bool>>,
}

/// Lints a flow-analysis report: a mutual-interference triangle degenerates
/// the reduction ([`RRL951`]), a cure beyond the escalation limit strands
/// the fault's terminal actions ([`RRL952`]), and a malformed dependence
/// table makes the ample construction unsound ([`RRL953`]).
///
/// [`RRL951`]: catalog::FLOW_INTERFERENCE_CYCLE
/// [`RRL952`]: catalog::FLOW_UNREACHABLE_ACTION
/// [`RRL953`]: catalog::FLOW_TABLE_UNSOUND
pub fn lint_flow(params: &FlowParams) -> Report {
    let mut report = Report::new();

    let n = params.faults.len();
    let interferes = |i: usize, j: usize| {
        params
            .fault_interference
            .get(i)
            .and_then(|row| row.get(j))
            .copied()
            .unwrap_or(false)
    };
    // One diagnostic per triangle, anchored at its lexicographically first
    // corner: i < j < k with all three pairs interfering.
    for i in 0..n {
        for j in (i + 1)..n {
            if !interferes(i, j) {
                continue;
            }
            for k in (j + 1)..n {
                if interferes(i, k) && interferes(j, k) {
                    report.push(Diagnostic::new(
                        &catalog::FLOW_INTERFERENCE_CYCLE,
                        format!("flow.faults.{}", params.faults[i].component),
                        format!(
                            "{:?}, {:?} and {:?} interfere pairwise: every \
                             suspicion order merges their episodes toward a \
                             common ancestor, so the reduction cannot prune \
                             their interleavings",
                            params.faults[i].component,
                            params.faults[j].component,
                            params.faults[k].component
                        ),
                    ));
                }
            }
        }
    }

    for fault in &params.faults {
        let reachable_cure = fault
            .chain
            .iter()
            .take(params.escalation_limit)
            .any(|&(_, covers)| covers);
        if !reachable_cure {
            report.push(Diagnostic::new(
                &catalog::FLOW_UNREACHABLE_ACTION,
                format!("flow.faults.{}.chain", fault.component),
                format!(
                    "no cell in the first {} chain entries covers {:?}'s cure \
                     set (chain: {}); its cured/ready actions can never fire \
                     in a bounded run",
                    params.escalation_limit,
                    fault.component,
                    if fault.chain.is_empty() {
                        "empty".to_string()
                    } else {
                        fault
                            .chain
                            .iter()
                            .map(|(c, _)| c.as_str())
                            .collect::<Vec<_>>()
                            .join(" -> ")
                    }
                ),
            ));
        }
    }

    let t = params.templates.len();
    let square = params.dependent.len() == t && params.dependent.iter().all(|row| row.len() == t);
    if !square {
        report.push(Diagnostic::new(
            &catalog::FLOW_TABLE_UNSOUND,
            "flow.dependent".to_string(),
            format!(
                "dependence table is {}x{{{}}} but there are {t} action \
                 templates",
                params.dependent.len(),
                params
                    .dependent
                    .iter()
                    .map(|r| r.len().to_string())
                    .collect::<Vec<_>>()
                    .join(","),
            ),
        ));
    } else {
        for a in 0..t {
            if !params.dependent[a][a] {
                report.push(Diagnostic::new(
                    &catalog::FLOW_TABLE_UNSOUND,
                    format!("flow.dependent.{}", params.templates[a]),
                    format!(
                        "{:?} is marked independent of itself; a sound \
                         reduction may drop orders, never occurrences",
                        params.templates[a]
                    ),
                ));
            }
            for b in (a + 1)..t {
                if params.dependent[a][b] != params.dependent[b][a] {
                    report.push(Diagnostic::new(
                        &catalog::FLOW_TABLE_UNSOUND,
                        format!("flow.dependent.{}", params.templates[a]),
                        format!(
                            "dependence between {:?} and {:?} is asymmetric \
                             ({} one way, {} the other)",
                            params.templates[a],
                            params.templates[b],
                            params.dependent[a][b],
                            params.dependent[b][a]
                        ),
                    ));
                }
            }
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sane() -> FlowParams {
        let chain = |cell: &str| vec![(cell.to_string(), true)];
        FlowParams {
            faults: vec![
                FlowFault {
                    component: "rtu".into(),
                    chain: chain("R_rtu"),
                },
                FlowFault {
                    component: "ses".into(),
                    chain: chain("R_[ses,str]"),
                },
            ],
            escalation_limit: 3,
            templates: vec!["inject:rtu".into(), "inject:ses".into()],
            dependent: vec![vec![true, false], vec![false, true]],
            fault_interference: vec![vec![true, false], vec![false, true]],
        }
    }

    #[test]
    fn sane_report_is_clean() {
        assert!(lint_flow(&sane()).is_clean());
    }

    #[test]
    fn interference_triangle_warns_once_per_triangle() {
        let mut params = sane();
        params.faults.push(FlowFault {
            component: "str".into(),
            chain: vec![("R_[ses,str]".into(), true)],
        });
        params.fault_interference = vec![vec![true; 3]; 3];
        let report = lint_flow(&params);
        assert_eq!(report.codes(), vec!["RRL951"]);
        assert!(!report.has_deny());
        // Four mutually interfering faults contain four triangles.
        params.faults.push(FlowFault {
            component: "mbus".into(),
            chain: vec![("R_mbus".into(), true)],
        });
        params.fault_interference = vec![vec![true; 4]; 4];
        let report = lint_flow(&params);
        assert_eq!(report.codes().len(), 4);
    }

    #[test]
    fn pairwise_interference_without_a_triangle_is_clean() {
        // A chain of interference (rtu~ses, ses~str) is fine: the reduction
        // still serializes around the shared cell without degenerating.
        let mut params = sane();
        params.faults.push(FlowFault {
            component: "str".into(),
            chain: vec![("R_[ses,str]".into(), true)],
        });
        params.fault_interference = vec![
            vec![true, true, false],
            vec![true, true, true],
            vec![false, true, true],
        ];
        assert!(lint_flow(&params).is_clean());
    }

    #[test]
    fn cure_beyond_escalation_limit_warns() {
        let mut params = sane();
        // The covering cell is the 4th chain entry; only 3 escalations fit.
        params.faults[0].chain = vec![
            ("R_rtu".into(), false),
            ("R_mid".into(), false),
            ("R_high".into(), false),
            ("mercury".into(), true),
        ];
        let report = lint_flow(&params);
        assert_eq!(report.codes(), vec!["RRL952"]);
        assert!(!report.has_deny());
        // An empty chain can never cure anything either.
        params.faults[0].chain = vec![];
        assert!(lint_flow(&params).fired("RRL952"));
    }

    #[test]
    fn malformed_table_denied() {
        // Asymmetric: the por-assume override shape.
        let mut params = sane();
        params.dependent = vec![vec![true, true], vec![false, true]];
        let report = lint_flow(&params);
        assert_eq!(report.codes(), vec!["RRL953"]);
        assert!(report.has_deny());
        // False diagonal.
        let mut params = sane();
        params.dependent = vec![vec![false, false], vec![false, true]];
        assert!(lint_flow(&params).fired("RRL953"));
        // Ragged/non-square.
        let mut params = sane();
        params.dependent = vec![vec![true, false]];
        assert!(lint_flow(&params).fired("RRL953"));
    }
}

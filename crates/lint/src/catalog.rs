//! The diagnostic catalog: every code rr-lint can emit, with its meaning,
//! fixed severity, and fix hint.
//!
//! Codes are grouped by hundreds: `RRL0xx` tree well-formedness, `RRL1xx`
//! restart-policy soundness, `RRL2xx` failure-model and oracle-map
//! completeness, `RRL3xx` MTTF/MTTR algebra, `RRL4xx` schedule preconditions,
//! `RRL5xx` fault-script sanity, `RRL6xx` failure-detector feasibility,
//! `RRL7xx` model-checking feasibility (`rr-model` exploration bounds),
//! `RRL8xx` deadline/admission-policy feasibility,
//! `RRL90x` checkpoint/rehydrate-policy feasibility,
//! `RRL95x` action-dependence (rr-flow) soundness,
//! `RRL97x` profitability-certification (rr-abs) soundness.
//! A code's severity never changes between releases; new checks get new
//! codes.

use crate::diag::Severity;

/// One catalog entry: the immutable identity of a diagnostic class.
#[derive(Debug, PartialEq, Eq)]
pub struct CodeInfo {
    /// Stable code, e.g. `RRL001`.
    pub code: &'static str,
    /// Short kebab-case name, e.g. `tree-malformed`.
    pub name: &'static str,
    /// Fixed severity of every instance of this class.
    pub severity: Severity,
    /// One-line description of what the class means.
    pub summary: &'static str,
    /// How to fix it.
    pub hint: &'static str,
}

macro_rules! codes {
    ($($ident:ident = $code:literal, $name:literal, $sev:ident,
        $summary:literal, $hint:literal;)+) => {
        $(
            #[doc = $summary]
            pub static $ident: CodeInfo = CodeInfo {
                code: $code,
                name: $name,
                severity: Severity::$sev,
                summary: $summary,
                hint: $hint,
            };
        )+
        /// Every diagnostic class, in code order.
        pub static CATALOG: &[&CodeInfo] = &[$(&$ident),+];
    };
}

codes! {
    TREE_MALFORMED = "RRL001", "tree-malformed", Deny,
        "the restart tree violates a structural invariant",
        "fix the tree construction: one root, acyclic parent/child links \
         that agree, every cell reachable, and each component attached to \
         exactly one cell";
    TREE_NO_COMPONENTS = "RRL002", "tree-no-components", Deny,
        "the restart tree has no components attached",
        "attach every software component to exactly one restart cell; a tree \
         of empty cells has nothing to recover";
    TREE_EMPTY_LEAF = "RRL003", "tree-empty-leaf", Warn,
        "a leaf restart cell has no components",
        "remove the empty cell or attach the component it was meant to hold; \
         an empty leaf's restart button restarts nothing";
    TREE_DUPLICATE_LABEL = "RRL004", "tree-duplicate-label", Warn,
        "two restart cells share a label",
        "give each cell a unique label so traces and diagnostics are \
         unambiguous";
    TREE_REDUNDANT_CELL = "RRL005", "tree-redundant-cell", Warn,
        "an empty cell with a single child adds escalation depth without \
         isolation",
        "collapse the cell into its child (the inverse of depth \
         augmentation); it adds an escalation step but no new restart group";

    POLICY_ESCALATION_SHORT = "RRL101", "policy-escalation-short", Deny,
        "the escalation limit is below the tree height, so escalation can \
         never reach the root",
        "raise the escalation limit to at least the longest restart path so \
         the chain terminates with a whole-system restart before giving up";
    POLICY_BACKOFF_REGRESSIVE = "RRL102", "policy-backoff-regressive", Deny,
        "the backoff schedule is not monotonically non-decreasing",
        "use a finite, non-negative base and a cap of at least the base so \
         successive restart delays never shrink";
    POLICY_STORM_UNBOUNDED = "RRL103", "policy-storm-unbounded", Deny,
        "the restart-storm budget is unenforceable",
        "allow at least one restart per window and use a positive, finite \
         rate-limit window";
    POLICY_QUARANTINE_UNREACHABLE = "RRL104", "policy-quarantine-unreachable", Warn,
        "give-up thresholds are so large that quarantine is effectively \
         unreachable",
        "keep the escalation limit and restart budget small enough that a \
         hard failure is quarantined rather than restarted indefinitely";

    MODEL_UNKNOWN_COMPONENT = "RRL201", "model-unknown-component", Deny,
        "a failure mode references a component that is not attached to the \
         tree",
        "attach the component or drop the mode; the recoverer cannot restart \
         a component that has no cell";
    MODEL_UNCOVERED_COMPONENT = "RRL202", "model-uncovered-component", Warn,
        "a tree component appears in no failure mode",
        "add a failure mode for the component or confirm it is believed \
         failure-free; MTTF/MTTR analysis will otherwise ignore it";
    MODEL_EMPTY = "RRL203", "model-empty", Warn,
        "the failure model has no modes",
        "add at least one failure mode; an empty model makes every \
         availability estimate vacuous";
    SUSPICION_UNKNOWN_CELL = "RRL211", "suspicion-unknown-cell", Deny,
        "a suspicion targets a cell that is not live in the tree",
        "recompute the target from the current tree (Suspicion::covering); \
         stale cell ids do not survive transformations";
    SUSPICION_UNKNOWN_COMPONENT = "RRL212", "suspicion-unknown-component", Deny,
        "a suspicion names a component not attached to the tree",
        "suspicions must name attached components or the planner cannot \
         cover them";
    SUSPICION_CELL_MISSES_COMPONENT = "RRL213", "suspicion-cell-misses-component", Deny,
        "a suspicion's target cell does not cover the suspected component",
        "target a cell on the component's restart path (its own cell or an \
         ancestor); restarting a disjoint cell cannot cure it";

    ALGEBRA_MTTF_OVERCLAIMED = "RRL301", "algebra-mttf-overclaimed", Deny,
        "claimed group MTTF exceeds the smallest member MTTF",
        "a group fails at least as often as its weakest member \
         (MTTF_G <= min MTTF_ci, paper section 3.2); lower the claim or fix \
         the member data";
    ALGEBRA_MTTR_UNDERCLAIMED = "RRL302", "algebra-mttr-underclaimed", Deny,
        "claimed group MTTR is below the largest member MTTR",
        "recovering a group takes at least as long as its slowest member \
         (MTTR_G >= max MTTR_ci, paper section 3.2); raise the claim or fix \
         the member data";

    PLAN_OVERLAPPING_EPISODES = "RRL401", "plan-overlapping-episodes", Deny,
        "two planned episodes' cells overlap (one is an ancestor of the \
         other)",
        "merge overlapping episodes by promoting to the least common \
         ancestor; concurrently driven restart cells must form an antichain";
    PLAN_UNKNOWN_CELL = "RRL402", "plan-unknown-cell", Deny,
        "a planned episode targets a cell that is not live in the tree",
        "re-plan against the current tree; cells removed by a transformation \
         cannot be restarted";
    PLAN_DUPLICATE_ORIGIN = "RRL403", "plan-duplicate-origin", Deny,
        "a suspected component is claimed by more than one episode",
        "each suspicion must be answered by exactly one episode, or its cure \
         is double-counted and the restarts race each other";

    SCRIPT_MALFORMED = "RRL501", "script-malformed", Deny,
        "the fault script does not parse",
        "use one `<nanos> <kind> <target>` record per line; blank lines and \
         `#` comments are ignored";
    SCRIPT_UNKNOWN_TARGET = "RRL502", "script-unknown-target", Deny,
        "a fault targets a component that is not part of the station",
        "target one of the station's components; an unknown target would \
         make the injection silently impossible";
    SCRIPT_TIME_REGRESSION = "RRL503", "script-time-regression", Warn,
        "fault times go backwards between lines",
        "write records in non-decreasing time order; the parser re-sorts, \
         which reorders same-instant ties and usually signals a hand-editing \
         mistake";
    SCRIPT_ZOMBIE_UNOBSERVABLE = "RRL504", "script-zombie-unobservable", Deny,
        "the script injects a zombie fault but beacon-staleness detection is \
         disabled",
        "enable beacon_timeout_s (see StationConfig::hardened) or drop the \
         zombie fault; a zombie keeps answering liveness pings, so the \
         ping-based detector alone can never observe it";
    SCRIPT_INFRASTRUCTURE_TARGET = "RRL505", "script-infrastructure-target", Warn,
        "a fault targets the recovery infrastructure itself",
        "FD and REC recover each other through the mutual watchdog, not \
         through the restart tree; scripted faults on them test the \
         watchdog, not tree recovery";

    FD_TIMEOUT_EXCEEDS_PERIOD = "RRL601", "fd-timeout-exceeds-period", Deny,
        "the pong timeout does not fit inside the ping period",
        "use 0 < ping_timeout_s < ping_period_s so each round's verdict \
         lands before the next round starts";
    FD_WINDOW_SHORT = "RRL602", "fd-window-short", Deny,
        "the suspicion window can never accumulate the required misses",
        "use suspicion_threshold >= 1 and suspicion_window >= \
         suspicion_threshold (K-of-N detection needs N >= K)";
    FD_BEACON_WINDOW_TIGHT = "RRL603", "fd-beacon-window-tight", Warn,
        "the beacon staleness timeout is within two beacon periods",
        "use beacon_timeout_s > 2 * beacon_period_s so a single delayed \
         beacon is not mistaken for a zombie";

    MODEL_EXPLORATION_INFEASIBLE = "RRL701", "model-exploration-infeasible", Warn,
        "the scenario's estimated interleaving state space exceeds the model \
         checker's budget",
        "shrink the fault set, lower the exploration depth, or raise the \
         state budget; an aborted exploration verifies nothing, so the \
         configuration would ship with its protocol behaviour unchecked";
    MODEL_QUEUE_UNCHECKED = "RRL702", "model-queue-unchecked", Warn,
        "the episode-plan queue can grow deeper than the bound the model \
         checker verified",
        "keep the widest simultaneous-suspicion antichain within the checked \
         queue bound (or extend the rr-model default scenarios); merge \
         behaviour beyond the bound is unverified";

    DEADLINE_PASS_INFEASIBLE = "RRL801", "deadline-pass-infeasible", Deny,
        "a single worst-case recovery cannot finish inside the shortest pass \
         window the station commits to",
        "shorten restart_deadline_s or detection latency, or raise \
         min_pass_window_s; a deadline-aware scheduler cannot meet deadlines \
         no single recovery can meet";
    DEADLINE_AGING_UNHONORABLE = "RRL802", "deadline-aging-unhonorable", Warn,
        "the admitted-restart spacing implied by the capacity window exceeds \
         the deferral aging bound",
        "use admission_window_s / admission_capacity <= defer_max_age_s so a \
         deferred restart that ages out can actually be admitted within its \
         fairness promise";
    DEADLINE_QUEUE_UNDERPROVISIONED = "RRL803", "deadline-queue-underprovisioned", Warn,
        "the deferral queue bound is below the component count, so a flash \
         crowd can exhaust it",
        "use defer_queue_limit >= the number of tree components; the queue \
         holds at most one entry per component, so that bound makes shedding \
         of first reports impossible";

    CHECKPOINT_WRITE_OVERRUN = "RRL901", "checkpoint-write-overrun", Deny,
        "a checkpoint write cannot finish before the next checkpoint is due",
        "use checkpoint_interval_s > session_state_kb / store_throughput_kbps \
         (finite and positive); overlapping checkpoint writes back up the \
         store without bound";
    CHECKPOINT_REPLAY_REGRESSIVE = "RRL902", "checkpoint-replay-regressive", Warn,
        "the worst-case rehydrate replay is no faster than the cold \
         re-derivation it replaces",
        "shrink the state, raise store throughput, or checkpoint more often \
         so snapshot + one interval of updates replays faster than the cold \
         path; otherwise rehydration pays the journaling overhead for \
         nothing and ColdRestart dominates";
    CHECKPOINT_COMPONENT_DETACHED = "RRL903", "checkpoint-component-detached", Deny,
        "a rehydrate policy names a component that is not attached to the \
         restart tree",
        "attach the component to a restart cell or drop its recovery-mode \
         entry; the recoverer can never restart (let alone rehydrate) a \
         component with no cell";

    FLOW_INTERFERENCE_CYCLE = "RRL951", "flow-interference-cycle", Warn,
        "three or more faults interfere pairwise, so every suspicion order \
         merges toward the same ancestor and the partial-order reduction \
         degenerates",
        "break the cycle by moving one component to a disjoint subtree or \
         shortening a cure set; a mutual-interference triangle forces the \
         checker to explore near-full interleavings, so expect exploration \
         cost close to the unreduced search";
    FLOW_UNREACHABLE_ACTION = "RRL952", "flow-unreachable-action", Warn,
        "a fault's escalation chain reaches no cell covering its cure set \
         within the escalation limit",
        "raise the escalation limit or extend the cure set's covering cell \
         down the chain; the completion that actually cures this fault sits \
         beyond the limit, so every bounded exploration leaves it stuck and \
         the cured action is dead weight in the dependence table";
    FLOW_TABLE_UNSOUND = "RRL953", "flow-table-unsound", Deny,
        "the action-dependence table is not square, not symmetric, or lacks \
         a true diagonal",
        "rebuild the table from footprints (or drop the por-assume \
         override); the ample-set construction is only sound over a \
         symmetric, reflexive dependence relation, and an asymmetric entry \
         means some interleaving is pruned one way but kept the other";

    ABS_PROFITABILITY_CONTRADICTION = "RRL971", "abs-profitability-contradiction", Deny,
        "a certified profitability verdict contradicts its expectation or \
         its own interval evidence",
        "re-run the rr-abs certification and update the expected verdict \
         only if the parameter drift genuinely moved the break-even surface; \
         an `always` verdict whose profit interval reaches zero (or a \
         verdict differing from the committed decision table) means either \
         the calibration or the certificate is wrong, and shipping the \
         transformation on a contradicted certificate is unsound";
    ABS_REGION_UNREFINABLE = "RRL972", "abs-region-unrefinable", Warn,
        "bisection exhausted its budget with part of the parameter box still \
         undecided",
        "raise the split budget, loosen the tolerance, or shrink the drift \
         box; a residual `depends` region means the transformation's \
         profitability genuinely changes sign inside the box (or the \
         abstraction is too coarse there), so point estimates near that \
         region cannot be trusted";
    ABS_BOX_MALFORMED = "RRL973", "abs-box-malformed", Deny,
        "a certification's parameter box or interval evidence is malformed",
        "fix the box: every dimension needs finite bounds with \
         0 < lo <= hi (multipliers must keep positive parameters positive), \
         no duplicate dimension names, at least one dimension, and the \
         profit interval must satisfy lo <= hi with a depends-fraction in \
         [0, 1]; a malformed box makes every quantified verdict vacuous";
}

/// Looks up a catalog entry by its code (`"RRL001"`).
pub fn lookup(code: &str) -> Option<&'static CodeInfo> {
    CATALOG.iter().find(|c| c.code == code).copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_sorted_unique_and_consistent() {
        assert!(
            CATALOG.len() >= 12,
            "the issue demands at least 12 diagnostic classes"
        );
        for w in CATALOG.windows(2) {
            assert!(w[0].code < w[1].code, "{} vs {}", w[0].code, w[1].code);
        }
        for info in CATALOG {
            assert!(info.code.starts_with("RRL"), "{}", info.code);
            assert_eq!(info.code.len(), 6, "{}", info.code);
            assert!(!info.name.is_empty() && !info.summary.is_empty());
            assert!(!info.hint.is_empty());
            assert!(
                info.name
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c == '-'),
                "{} name {:?} is not kebab-case",
                info.code,
                info.name
            );
        }
    }

    #[test]
    fn lookup_finds_codes() {
        assert_eq!(lookup("RRL001"), Some(&TREE_MALFORMED));
        assert!(lookup("RRL000").is_none());
    }
}

//! Diagnostics: severities, individual findings, and mergeable reports with
//! human and JSON renderers.

use std::fmt;

use crate::catalog::CodeInfo;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but runnable; rejected only under `--deny-warnings`.
    Warn,
    /// Ill-formed: loaders must refuse to run this configuration.
    Deny,
}

impl Severity {
    /// The lowercase name used by both renderers.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding: a catalog entry plus the instance-specific location and
/// message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The catalog entry this finding instantiates (code, severity, hint).
    pub info: &'static CodeInfo,
    /// Span-like path into the offending node, e.g.
    /// `mercury/R_[fedr,pbcom]/R_fedr`, `policy.backoff`, or `script:3`.
    pub path: String,
    /// Instance-specific explanation of what is wrong here.
    pub message: String,
}

impl Diagnostic {
    /// Builds a finding for a catalog entry.
    pub fn new(
        info: &'static CodeInfo,
        path: impl Into<String>,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            info,
            path: path.into(),
            message: message.into(),
        }
    }

    /// The stable diagnostic code, e.g. `RRL001`.
    pub fn code(&self) -> &'static str {
        self.info.code
    }

    /// The finding's severity (fixed per code).
    pub fn severity(&self) -> Severity {
        self.info.severity
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}[{}]: {} ({})",
            self.info.severity, self.info.code, self.message, self.info.name
        )?;
        writeln!(f, "  --> {}", self.path)?;
        write!(f, "  = help: {}", self.info.hint)
    }
}

/// A collection of diagnostics from one or more lint passes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    diags: Vec<Diagnostic>,
}

impl Report {
    /// An empty (clean) report.
    pub fn new() -> Report {
        Report::default()
    }

    /// Adds a finding.
    pub fn push(&mut self, diag: Diagnostic) {
        self.diags.push(diag);
    }

    /// Appends every finding of `other`.
    pub fn merge(&mut self, other: Report) {
        self.diags.extend(other.diags);
    }

    /// Builder-style [`merge`](Self::merge).
    #[must_use]
    pub fn merged(mut self, other: Report) -> Report {
        self.merge(other);
        self
    }

    /// The findings, in emission order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diags
    }

    /// Consumes the report, yielding its findings.
    pub fn into_diagnostics(self) -> Vec<Diagnostic> {
        self.diags
    }

    /// `true` when nothing was found.
    pub fn is_clean(&self) -> bool {
        self.diags.is_empty()
    }

    /// `true` when at least one deny-severity finding is present — loaders
    /// must refuse to run.
    pub fn has_deny(&self) -> bool {
        self.diags.iter().any(|d| d.severity() == Severity::Deny)
    }

    /// Number of deny-severity findings.
    pub fn deny_count(&self) -> usize {
        self.diags
            .iter()
            .filter(|d| d.severity() == Severity::Deny)
            .count()
    }

    /// Number of warn-severity findings.
    pub fn warn_count(&self) -> usize {
        self.diags
            .iter()
            .filter(|d| d.severity() == Severity::Warn)
            .count()
    }

    /// The codes fired, in emission order (with repeats).
    pub fn codes(&self) -> Vec<&'static str> {
        self.diags.iter().map(|d| d.code()).collect()
    }

    /// `true` if any finding carries `code`.
    pub fn fired(&self, code: &str) -> bool {
        self.diags.iter().any(|d| d.code() == code)
    }

    /// Renders every finding as human-readable text, one block per finding,
    /// followed by a summary line. Returns `"clean\n"` for an empty report.
    pub fn to_human(&self) -> String {
        if self.diags.is_empty() {
            return "clean\n".to_string();
        }
        let mut out = String::new();
        for d in &self.diags {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} deny, {} warn\n",
            self.deny_count(),
            self.warn_count()
        ));
        out
    }

    /// Renders the report as a JSON document:
    ///
    /// ```json
    /// {"deny":1,"warn":0,"diagnostics":[{"code":"RRL002","name":"...",
    ///  "severity":"deny","path":"...","message":"...","hint":"..."}]}
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"deny\":{},\"warn\":{},\"diagnostics\":[",
            self.deny_count(),
            self.warn_count()
        ));
        for (i, d) in self.diags.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"code\":{},\"name\":{},\"severity\":{},\"path\":{},\"message\":{},\"hint\":{}}}",
                json_string(d.info.code),
                json_string(d.info.name),
                json_string(d.severity().as_str()),
                json_string(&d.path),
                json_string(&d.message),
                json_string(d.info.hint)
            ));
        }
        out.push_str("]}");
        out
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_human())
    }
}

/// Escapes a string as a JSON string literal (quotes included).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    fn sample() -> Report {
        let mut r = Report::new();
        r.push(Diagnostic::new(
            &catalog::TREE_NO_COMPONENTS,
            "root",
            "no components anywhere",
        ));
        r.push(Diagnostic::new(
            &catalog::TREE_EMPTY_LEAF,
            "root/R_ghost",
            "leaf cell \"R_ghost\" is empty",
        ));
        r
    }

    #[test]
    fn counts_and_gating() {
        let r = sample();
        assert!(r.has_deny());
        assert_eq!(r.deny_count(), 1);
        assert_eq!(r.warn_count(), 1);
        assert!(!r.is_clean());
        assert!(r.fired("RRL002"));
        assert!(!r.fired("RRL999"));
        assert_eq!(r.codes(), vec!["RRL002", "RRL003"]);
    }

    #[test]
    fn human_rendering_contains_code_path_and_hint() {
        let text = sample().to_human();
        assert!(text.contains("deny[RRL002]"));
        assert!(text.contains("warn[RRL003]"));
        assert!(text.contains("--> root/R_ghost"));
        assert!(text.contains("= help:"));
        assert!(text.contains("1 deny, 1 warn"));
        assert_eq!(Report::new().to_human(), "clean\n");
    }

    #[test]
    fn json_rendering_is_well_formed() {
        let json = sample().to_json();
        assert!(json.starts_with("{\"deny\":1,\"warn\":1,"));
        assert!(json.contains("\"code\":\"RRL002\""));
        assert!(json.contains("\"severity\":\"deny\""));
        assert!(json.ends_with("]}"));
        // Escaping: a message with quotes and newlines survives.
        let mut r = Report::new();
        r.push(Diagnostic::new(
            &catalog::TREE_NO_COMPONENTS,
            "a\"b",
            "line\nbreak\tand \\slash",
        ));
        let j = r.to_json();
        assert!(j.contains("a\\\"b"));
        assert!(j.contains("line\\nbreak\\tand \\\\slash"));
    }

    #[test]
    fn merge_concatenates() {
        let mut a = sample();
        a.merge(sample());
        assert_eq!(a.diagnostics().len(), 4);
        let b = Report::new().merged(sample());
        assert_eq!(b.diagnostics().len(), 2);
    }
}

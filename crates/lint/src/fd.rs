//! Failure-detector feasibility lints (`RRL6xx`).

use crate::catalog;
use crate::diag::{Diagnostic, Report};

/// The failure-detector timing knobs, mirroring the FD fields of mercury's
/// `StationConfig` without depending on it (rr-lint sits below mercury in
/// the dependency order).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FdParams {
    /// Liveness ping period, seconds.
    pub ping_period_s: f64,
    /// How long the FD waits for a pong before counting a miss, seconds.
    pub ping_timeout_s: f64,
    /// Misses (K) within the window that raise a suspicion.
    pub suspicion_threshold: u32,
    /// Window size (N) in rounds for K-of-N suspicion.
    pub suspicion_window: u32,
    /// Progress-beacon period, seconds.
    pub beacon_period_s: f64,
    /// Beacon staleness timeout, seconds; `0` disables zombie detection.
    pub beacon_timeout_s: f64,
}

impl FdParams {
    /// `true` when beacon-staleness (zombie) detection is enabled.
    pub fn beacons_enabled(&self) -> bool {
        self.beacon_timeout_s != 0.0
    }
}

/// Lints FD timing feasibility: each ping round's verdict must land before
/// the next round starts ([`RRL601`]), the K-of-N window must be able to
/// accumulate K misses ([`RRL602`]), and an enabled beacon timeout should
/// tolerate one delayed beacon ([`RRL603`]).
///
/// [`RRL601`]: catalog::FD_TIMEOUT_EXCEEDS_PERIOD
/// [`RRL602`]: catalog::FD_WINDOW_SHORT
/// [`RRL603`]: catalog::FD_BEACON_WINDOW_TIGHT
pub fn lint_fd(params: &FdParams) -> Report {
    let mut report = Report::new();
    let period = params.ping_period_s;
    let timeout = params.ping_timeout_s;
    if !period.is_finite() || !timeout.is_finite() || timeout <= 0.0 || timeout >= period {
        report.push(Diagnostic::new(
            &catalog::FD_TIMEOUT_EXCEEDS_PERIOD,
            "fd.ping",
            format!("pong timeout {timeout}s does not fit inside the {period}s ping period"),
        ));
    }
    if params.suspicion_threshold == 0 || params.suspicion_window < params.suspicion_threshold {
        report.push(Diagnostic::new(
            &catalog::FD_WINDOW_SHORT,
            "fd.suspicion",
            format!(
                "{}-of-{} detection can never accumulate the required misses",
                params.suspicion_threshold, params.suspicion_window
            ),
        ));
    }
    if params.beacons_enabled()
        && (!params.beacon_period_s.is_finite()
            || !params.beacon_timeout_s.is_finite()
            || params.beacon_period_s <= 0.0
            || params.beacon_timeout_s <= 2.0 * params.beacon_period_s)
    {
        report.push(Diagnostic::new(
            &catalog::FD_BEACON_WINDOW_TIGHT,
            "fd.beacon",
            format!(
                "beacon timeout {}s is within two beacon periods ({}s each)",
                params.beacon_timeout_s, params.beacon_period_s
            ),
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Mirrors `StationConfig::hardened()`'s FD settings.
    fn sane() -> FdParams {
        FdParams {
            ping_period_s: 1.0,
            ping_timeout_s: 0.4,
            suspicion_threshold: 8,
            suspicion_window: 8,
            beacon_period_s: 5.0,
            beacon_timeout_s: 25.0,
        }
    }

    #[test]
    fn sane_params_are_clean() {
        assert!(lint_fd(&sane()).is_clean());
        // Beacons disabled entirely (the paper configuration) is also fine.
        let paper = FdParams {
            suspicion_threshold: 1,
            suspicion_window: 1,
            beacon_timeout_s: 0.0,
            ..sane()
        };
        assert!(lint_fd(&paper).is_clean());
    }

    #[test]
    fn timeout_at_or_past_period_denied() {
        let report = lint_fd(&FdParams {
            ping_timeout_s: 1.0,
            ..sane()
        });
        assert_eq!(report.codes(), vec!["RRL601"]);
        assert!(report.has_deny());
        assert!(lint_fd(&FdParams {
            ping_timeout_s: 0.0,
            ..sane()
        })
        .fired("RRL601"));
    }

    #[test]
    fn short_window_denied() {
        let report = lint_fd(&FdParams {
            suspicion_threshold: 8,
            suspicion_window: 3,
            ..sane()
        });
        assert_eq!(report.codes(), vec!["RRL602"]);
        assert!(lint_fd(&FdParams {
            suspicion_threshold: 0,
            ..sane()
        })
        .fired("RRL602"));
    }

    #[test]
    fn tight_beacon_window_warns() {
        let report = lint_fd(&FdParams {
            beacon_timeout_s: 10.0, // exactly 2 periods: one delay trips it
            ..sane()
        });
        assert_eq!(report.codes(), vec!["RRL603"]);
        assert!(!report.has_deny());
    }
}

//! Restart-policy soundness lints (`RRL1xx`).

use rr_core::policy::RestartPolicy;
use rr_core::tree::RestartTree;

use crate::catalog;
use crate::diag::{Diagnostic, Report};

/// Give-up thresholds beyond these are treated as "quarantine unreachable in
/// practice" ([`RRL104`](catalog::POLICY_QUARANTINE_UNREACHABLE)).
const MAX_SANE_ESCALATION: u32 = 1_000;
const MAX_SANE_RESTARTS_PER_WINDOW: u32 = 10_000;

/// The restart-policy knobs the linter reasons about, decoupled from any one
/// concrete policy type so both [`RestartPolicy`] and raw `StationConfig`
/// floats can be checked.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyParams {
    /// Failed same-cell restarts before escalating to the parent cell.
    pub escalation_limit: u32,
    /// Restart budget within one rate-limit window before quarantine.
    pub max_restarts_per_window: u32,
    /// The rate-limit window, in seconds.
    pub restart_window_s: f64,
    /// First retry delay, in seconds.
    pub backoff_base_s: f64,
    /// Backoff ceiling, in seconds.
    pub backoff_cap_s: f64,
}

impl PolicyParams {
    /// Extracts the knobs from a built [`RestartPolicy`].
    pub fn from_policy(policy: &RestartPolicy) -> PolicyParams {
        let (max_restarts, window) = policy.rate_limit();
        let (base, cap) = policy.backoff();
        PolicyParams {
            escalation_limit: policy.escalation_limit(),
            max_restarts_per_window: max_restarts,
            restart_window_s: window.as_secs_f64(),
            backoff_base_s: base.as_secs_f64(),
            backoff_cap_s: cap.as_secs_f64(),
        }
    }
}

/// Lints a restart policy: escalation must be able to reach the root of
/// `tree` ([`RRL101`]), backoff must be monotone ([`RRL102`]), the restart
/// storm budget must be enforceable ([`RRL103`]), and quarantine should be
/// reachable in practice ([`RRL104`]). Pass `None` for `tree` to check only
/// the tree-independent rules.
///
/// [`RRL101`]: catalog::POLICY_ESCALATION_SHORT
/// [`RRL102`]: catalog::POLICY_BACKOFF_REGRESSIVE
/// [`RRL103`]: catalog::POLICY_STORM_UNBOUNDED
/// [`RRL104`]: catalog::POLICY_QUARANTINE_UNREACHABLE
pub fn lint_policy(params: &PolicyParams, tree: Option<&RestartTree>) -> Report {
    let mut report = Report::new();
    if let Some(tree) = tree {
        // The escalation chain climbs the component's restart path one cell
        // per exhausted limit; it terminates at the root only if the limit
        // covers the longest path.
        let deepest = tree
            .components()
            .iter()
            .filter_map(|c| tree.restart_path(c).ok())
            .map(|path| path.len())
            .max();
        if let Some(deepest) = deepest {
            if (params.escalation_limit as usize) < deepest {
                report.push(Diagnostic::new(
                    &catalog::POLICY_ESCALATION_SHORT,
                    "policy.escalation_limit",
                    format!(
                        "escalation limit {} is below the longest restart path \
                         ({} cells), so escalation gives up before the \
                         whole-system restart",
                        params.escalation_limit, deepest
                    ),
                ));
            }
        }
    }
    let base = params.backoff_base_s;
    let cap = params.backoff_cap_s;
    if !base.is_finite() || !cap.is_finite() || base < 0.0 || cap < base {
        report.push(Diagnostic::new(
            &catalog::POLICY_BACKOFF_REGRESSIVE,
            "policy.backoff",
            format!("backoff base {base}s with cap {cap}s can shrink between retries"),
        ));
    }
    if params.max_restarts_per_window == 0
        || !params.restart_window_s.is_finite()
        || params.restart_window_s <= 0.0
    {
        report.push(Diagnostic::new(
            &catalog::POLICY_STORM_UNBOUNDED,
            "policy.rate_limit",
            format!(
                "{} restarts per {}s window is not an enforceable storm budget",
                params.max_restarts_per_window, params.restart_window_s
            ),
        ));
    }
    if params.escalation_limit > MAX_SANE_ESCALATION
        || params.max_restarts_per_window > MAX_SANE_RESTARTS_PER_WINDOW
    {
        report.push(Diagnostic::new(
            &catalog::POLICY_QUARANTINE_UNREACHABLE,
            "policy",
            format!(
                "escalation limit {} / restart budget {} are large enough \
                 that a hard failure is retried effectively forever",
                params.escalation_limit, params.max_restarts_per_window
            ),
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_core::tree::TreeSpec;

    fn deep_tree() -> RestartTree {
        TreeSpec::cell("root")
            .with_child(
                TreeSpec::cell("mid")
                    .with_component("m")
                    .with_child(TreeSpec::cell("leaf").with_component("l")),
            )
            .build()
            .unwrap()
    }

    fn sane() -> PolicyParams {
        PolicyParams::from_policy(&RestartPolicy::new())
    }

    #[test]
    fn default_policy_is_clean_against_shipped_depths() {
        assert!(lint_policy(&sane(), Some(&deep_tree())).is_clean());
        assert!(lint_policy(&sane(), None).is_clean());
    }

    #[test]
    fn short_escalation_denied() {
        // leaf -> mid -> root is 3 cells; a limit of 2 strands escalation.
        let params = PolicyParams {
            escalation_limit: 2,
            ..sane()
        };
        let report = lint_policy(&params, Some(&deep_tree()));
        assert_eq!(report.codes(), vec!["RRL101"]);
        assert!(report.has_deny());
        // Without a tree the rule cannot fire.
        assert!(lint_policy(&params, None).is_clean());
    }

    #[test]
    fn regressive_backoff_denied() {
        let params = PolicyParams {
            backoff_base_s: 5.0,
            backoff_cap_s: 1.0,
            ..sane()
        };
        assert_eq!(lint_policy(&params, None).codes(), vec!["RRL102"]);
        let nan = PolicyParams {
            backoff_cap_s: f64::NAN,
            ..sane()
        };
        assert!(lint_policy(&nan, None).fired("RRL102"));
    }

    #[test]
    fn unbounded_storm_denied() {
        let zero_budget = PolicyParams {
            max_restarts_per_window: 0,
            ..sane()
        };
        assert_eq!(lint_policy(&zero_budget, None).codes(), vec!["RRL103"]);
        let zero_window = PolicyParams {
            restart_window_s: 0.0,
            ..sane()
        };
        assert!(lint_policy(&zero_window, None).fired("RRL103"));
    }

    #[test]
    fn unreachable_quarantine_warns() {
        let params = PolicyParams {
            escalation_limit: 1_000_000,
            ..sane()
        };
        let report = lint_policy(&params, None);
        assert_eq!(report.codes(), vec!["RRL104"]);
        assert!(!report.has_deny());
    }
}

//! Episode-plan precondition lints (`RRL4xx`).
//!
//! [`rr_core::schedule::plan_episodes`] guarantees its output satisfies
//! these invariants; the lints exist for plans that arrive from anywhere
//! else — hand-written recovery runbooks, deserialized plans, or plans
//! computed against a tree that has since been transformed.

use rr_core::schedule::EpisodePlan;
use rr_core::tree::RestartTree;

use crate::catalog;
use crate::diag::{Diagnostic, Report};
use crate::tree::cell_path;

/// Lints an episode plan against the tree it would run on: every episode's
/// cell must be live ([`RRL402`]), the live cells must form an antichain
/// ([`RRL401`]), and no suspected component may be claimed by two episodes
/// ([`RRL403`]).
///
/// [`RRL401`]: catalog::PLAN_OVERLAPPING_EPISODES
/// [`RRL402`]: catalog::PLAN_UNKNOWN_CELL
/// [`RRL403`]: catalog::PLAN_DUPLICATE_ORIGIN
pub fn lint_plan(tree: &RestartTree, plan: &EpisodePlan) -> Report {
    let mut report = Report::new();
    let mut live: Vec<(usize, rr_core::tree::NodeId)> = Vec::new();
    for (i, ep) in plan.episodes.iter().enumerate() {
        if tree.contains(ep.cell) {
            live.push((i, ep.cell));
        } else {
            report.push(Diagnostic::new(
                &catalog::PLAN_UNKNOWN_CELL,
                format!("plan.episode[{i}]"),
                format!("episode targets {}, not a live cell of the tree", ep.cell),
            ));
        }
    }
    for (a, &(i, cell_i)) in live.iter().enumerate() {
        for &(j, cell_j) in &live[a + 1..] {
            if tree.overlaps(cell_i, cell_j) {
                report.push(Diagnostic::new(
                    &catalog::PLAN_OVERLAPPING_EPISODES,
                    format!("plan.episode[{i}]"),
                    format!(
                        "cell {} overlaps episode[{j}]'s cell {} — restarting \
                         one restarts (part of) the other",
                        cell_path(tree, cell_i),
                        cell_path(tree, cell_j),
                    ),
                ));
            }
        }
    }
    let mut seen: Vec<(&str, usize)> = Vec::new();
    for (i, ep) in plan.episodes.iter().enumerate() {
        for origin in &ep.origins {
            if let Some(&(_, first)) = seen.iter().find(|(o, _)| o == origin) {
                report.push(Diagnostic::new(
                    &catalog::PLAN_DUPLICATE_ORIGIN,
                    format!("plan.episode[{i}]"),
                    format!("suspicion of {origin:?} is already answered by episode[{first}]"),
                ));
            } else {
                seen.push((origin, i));
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_core::schedule::{plan_episodes, PlannedEpisode, Suspicion};
    use rr_core::tree::TreeSpec;

    fn tree() -> RestartTree {
        TreeSpec::cell("root")
            .with_child(
                TreeSpec::cell("R_ab")
                    .with_child(TreeSpec::cell("R_a").with_component("a"))
                    .with_child(TreeSpec::cell("R_b").with_component("b")),
            )
            .with_child(TreeSpec::cell("R_c").with_component("c"))
            .build()
            .unwrap()
    }

    fn episode(tree: &RestartTree, label: &str, origins: &[&str]) -> PlannedEpisode {
        let cell = tree
            .cells()
            .into_iter()
            .find(|&c| tree.label(c) == label)
            .unwrap();
        PlannedEpisode {
            cell,
            components: tree.components_under(cell),
            origins: origins.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn planner_output_is_clean() {
        let t = tree();
        let suspicions = vec![
            Suspicion::covering(&t, "a", &["a"]).unwrap(),
            Suspicion::covering(&t, "c", &["c"]).unwrap(),
        ];
        let plan = plan_episodes(&t, &suspicions).unwrap();
        assert!(lint_plan(&t, &plan).is_clean());
    }

    #[test]
    fn overlapping_episodes_denied() {
        let t = tree();
        let plan = EpisodePlan {
            episodes: vec![episode(&t, "R_ab", &["b"]), episode(&t, "R_a", &["a"])],
        };
        let report = lint_plan(&t, &plan);
        assert_eq!(report.codes(), vec!["RRL401"]);
        assert!(report.has_deny());
    }

    #[test]
    fn stale_cell_denied() {
        let t = tree();
        let mut bigger = tree();
        let extra = bigger.add_cell(bigger.root(), "extra").unwrap();
        let plan = EpisodePlan {
            episodes: vec![PlannedEpisode {
                cell: extra,
                components: vec![],
                origins: vec!["a".into()],
            }],
        };
        assert_eq!(lint_plan(&t, &plan).codes(), vec!["RRL402"]);
    }

    #[test]
    fn duplicate_origin_denied() {
        let t = tree();
        let plan = EpisodePlan {
            episodes: vec![episode(&t, "R_a", &["a"]), episode(&t, "R_c", &["a"])],
        };
        let report = lint_plan(&t, &plan);
        assert_eq!(report.codes(), vec!["RRL403"]);
    }

    #[test]
    fn empty_plan_is_clean() {
        assert!(lint_plan(&tree(), &EpisodePlan::default()).is_clean());
    }
}

//! Tree well-formedness lints (`RRL0xx`).

use rr_core::tree::{NodeId, RestartTree, TreeSpec};

use crate::catalog;
use crate::diag::{Diagnostic, Report};

/// The span-like path of a cell: the labels from the root down to the cell,
/// joined by `/` (e.g. `mercury/R_[fedr,pbcom]/R_fedr`).
///
/// # Panics
///
/// Panics if `id` is not a live cell of `tree`.
pub fn cell_path(tree: &RestartTree, id: NodeId) -> String {
    let mut labels: Vec<&str> = tree
        .ancestors_inclusive(id)
        .into_iter()
        .map(|n| tree.label(n))
        .collect();
    labels.reverse();
    labels.join("/")
}

/// Lints a built restart tree: structural invariants ([`RRL001`]), at least
/// one component somewhere ([`RRL002`]), no empty leaves ([`RRL003`]), unique
/// labels ([`RRL004`]), and no redundant single-child empty cells
/// ([`RRL005`]).
///
/// [`RRL001`]: catalog::TREE_MALFORMED
/// [`RRL002`]: catalog::TREE_NO_COMPONENTS
/// [`RRL003`]: catalog::TREE_EMPTY_LEAF
/// [`RRL004`]: catalog::TREE_DUPLICATE_LABEL
/// [`RRL005`]: catalog::TREE_REDUNDANT_CELL
pub fn lint_tree(tree: &RestartTree) -> Report {
    let mut report = Report::new();
    // Defensive: the public RestartTree API preserves these invariants, but
    // the linter must not trust its input.
    if let Err(violation) = tree.validate() {
        report.push(Diagnostic::new(
            &catalog::TREE_MALFORMED,
            tree.label(tree.root()),
            violation,
        ));
        return report; // everything below assumes a well-formed tree
    }
    if tree.components().is_empty() {
        // Every leaf is trivially empty in a component-free tree; the single
        // root-level deny subsumes the per-leaf warnings.
        report.push(Diagnostic::new(
            &catalog::TREE_NO_COMPONENTS,
            tree.label(tree.root()),
            "no cell in the tree has a component attached",
        ));
        return report;
    }
    let cells = tree.cells();
    for &cell in &cells {
        let empty = tree.components_at(cell).is_empty();
        if empty && tree.is_leaf(cell) {
            report.push(Diagnostic::new(
                &catalog::TREE_EMPTY_LEAF,
                cell_path(tree, cell),
                format!("leaf cell {:?} has no components", tree.label(cell)),
            ));
        }
        if empty && cell != tree.root() && tree.children(cell).len() == 1 {
            report.push(Diagnostic::new(
                &catalog::TREE_REDUNDANT_CELL,
                cell_path(tree, cell),
                format!(
                    "cell {:?} is empty and has a single child {:?}",
                    tree.label(cell),
                    tree.label(tree.children(cell)[0]),
                ),
            ));
        }
    }
    let mut labels: Vec<&str> = cells.iter().map(|&c| tree.label(c)).collect();
    labels.sort_unstable();
    let mut reported: Vec<&str> = Vec::new();
    for pair in labels.windows(2) {
        if pair[0] == pair[1] && !reported.contains(&pair[0]) {
            reported.push(pair[0]);
            report.push(Diagnostic::new(
                &catalog::TREE_DUPLICATE_LABEL,
                tree.label(tree.root()),
                format!("label {:?} names more than one cell", pair[0]),
            ));
        }
    }
    report
}

/// Lints a declarative [`TreeSpec`]. Unlike [`lint_tree`], this can catch
/// construction-time violations — e.g. the same component attached to two
/// cells — because the spec form has no invariant-preserving API. A spec
/// that fails to build fires [`RRL001`](catalog::TREE_MALFORMED); one that
/// builds is handed to [`lint_tree`].
pub fn lint_tree_spec(spec: &TreeSpec) -> Report {
    match spec.build() {
        Ok(tree) => lint_tree(&tree),
        Err(err) => {
            let mut report = Report::new();
            report.push(Diagnostic::new(
                &catalog::TREE_MALFORMED,
                spec.label.clone(),
                format!("spec does not build: {err}"),
            ));
            report
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure_2() -> RestartTree {
        TreeSpec::cell("R_ABC")
            .with_child(TreeSpec::cell("R_A").with_component("A"))
            .with_child(
                TreeSpec::cell("R_BC")
                    .with_child(TreeSpec::cell("R_B").with_component("B"))
                    .with_child(TreeSpec::cell("R_C").with_component("C")),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn figure_2_tree_is_clean() {
        assert!(lint_tree(&figure_2()).is_clean());
    }

    #[test]
    fn cell_path_joins_labels() {
        let tree = figure_2();
        let r_b = tree.cell_of_component("B").unwrap();
        assert_eq!(cell_path(&tree, r_b), "R_ABC/R_BC/R_B");
        assert_eq!(cell_path(&tree, tree.root()), "R_ABC");
    }

    #[test]
    fn component_free_tree_is_denied_once() {
        let tree = TreeSpec::cell("root")
            .with_child(TreeSpec::cell("a"))
            .with_child(TreeSpec::cell("b"))
            .build()
            .unwrap();
        let report = lint_tree(&tree);
        assert_eq!(report.codes(), vec!["RRL002"]);
        assert!(report.has_deny());
    }

    #[test]
    fn empty_leaf_warns() {
        let tree = TreeSpec::cell("root")
            .with_child(TreeSpec::cell("R_a").with_component("a"))
            .with_child(TreeSpec::cell("R_ghost"))
            .build()
            .unwrap();
        let report = lint_tree(&tree);
        assert_eq!(report.codes(), vec!["RRL003"]);
        assert!(!report.has_deny());
        assert_eq!(report.diagnostics()[0].path, "root/R_ghost");
    }

    #[test]
    fn duplicate_label_warns_once_per_label() {
        let tree = TreeSpec::cell("root")
            .with_child(TreeSpec::cell("twin").with_component("a"))
            .with_child(TreeSpec::cell("twin").with_component("b"))
            .with_child(TreeSpec::cell("twin").with_component("c"))
            .build()
            .unwrap();
        let report = lint_tree(&tree);
        assert_eq!(report.codes(), vec!["RRL004"]);
    }

    #[test]
    fn redundant_single_child_cell_warns() {
        let tree = TreeSpec::cell("root")
            .with_component("r")
            .with_child(
                TreeSpec::cell("shim").with_child(TreeSpec::cell("R_a").with_component("a")),
            )
            .build()
            .unwrap();
        let report = lint_tree(&tree);
        assert_eq!(report.codes(), vec!["RRL005"]);
    }

    #[test]
    fn root_with_single_child_is_not_redundant() {
        // Depth augmentation (tree II) hangs everything under the root; the
        // root's button is the whole-system restart and is never redundant.
        let tree = TreeSpec::cell("root")
            .with_child(TreeSpec::cell("R_all").with_components(["a", "b"]))
            .build()
            .unwrap();
        assert!(lint_tree(&tree).is_clean());
    }

    #[test]
    fn unbuildable_spec_is_malformed() {
        let spec = TreeSpec::cell("root")
            .with_child(TreeSpec::cell("R_a").with_component("dup"))
            .with_child(TreeSpec::cell("R_b").with_component("dup"));
        let report = lint_tree_spec(&spec);
        assert_eq!(report.codes(), vec!["RRL001"]);
        assert!(report.has_deny());
    }

    #[test]
    fn buildable_spec_delegates() {
        let spec = figure_2().to_spec();
        assert!(lint_tree_spec(&spec).is_clean());
    }
}

//! Profitability-certification (rr-abs) soundness lints (`RRL97x`).
//!
//! rr-abs certifies each §4 tree transformation over a parameter *box*
//! (every calibrated rate and cost drifting independently) and emits a
//! decision table: a three-valued verdict (`always` / `never` / `depends`)
//! plus the interval profit evidence behind it. These lints gate that table
//! the way the other `RRLxxx` families gate trees and policies: a verdict
//! that contradicts the committed expectation or its own interval evidence
//! is denied ([`RRL971`]), a box whose bisection budget ran out before the
//! verdict resolved is flagged ([`RRL972`]), and a structurally malformed
//! box or interval is denied before any quantified claim is read
//! ([`RRL973`]).
//!
//! The inputs mirror rr-abs's `ProfitabilityMap` but are decoupled from it
//! (plain strings and numbers) so the linter keeps its dependency-free
//! footprint; `rr-harness` bridges the two.
//!
//! [`RRL971`]: catalog::ABS_PROFITABILITY_CONTRADICTION
//! [`RRL972`]: catalog::ABS_REGION_UNREFINABLE
//! [`RRL973`]: catalog::ABS_BOX_MALFORMED

use crate::catalog;
use crate::diag::{Diagnostic, Report};

/// One certified transformation decision, as the decision table records it.
#[derive(Debug, Clone, PartialEq)]
pub struct AbsDecision {
    /// The scenario name (e.g. `"promote-pbcom"`).
    pub name: String,
    /// The verdict the committed decision table expects
    /// (`"always"` / `"never"` / `"depends"`).
    pub expected_verdict: String,
    /// The verdict this certification run produced.
    pub verdict: String,
    /// Lower endpoint of the profitability hull (seconds of expected MTTR
    /// saved per failure; positive favors the transformation).
    pub profit_lo_s: f64,
    /// Upper endpoint of the profitability hull.
    pub profit_hi_s: f64,
    /// The parameter box: `(dimension, lo multiplier, hi multiplier)`.
    pub box_dims: Vec<(String, f64, f64)>,
    /// Fraction of the box volume still `depends` after refinement.
    pub depends_fraction: f64,
    /// Bisections the refinement performed.
    pub splits: usize,
    /// The refinement's split budget.
    pub max_splits: usize,
}

/// A full decision table to lint.
#[derive(Debug, Clone, PartialEq)]
pub struct AbsParams {
    /// The decisions, in table order.
    pub decisions: Vec<AbsDecision>,
}

const VERDICTS: &[&str] = &["always", "never", "depends"];

/// Structural validation of one decision; pushes [`RRL973`] diagnostics and
/// reports whether the decision is sound enough to interpret further.
///
/// [`RRL973`]: catalog::ABS_BOX_MALFORMED
fn check_shape(decision: &AbsDecision, path: &str, report: &mut Report) -> bool {
    let mut ok = true;
    let fail = |report: &mut Report, message: String| {
        report.push(Diagnostic::new(
            &catalog::ABS_BOX_MALFORMED,
            path.to_string(),
            message,
        ));
    };
    if decision.box_dims.is_empty() {
        fail(
            report,
            "the parameter box binds no dimensions: the verdict quantifies \
             over nothing"
                .to_string(),
        );
        ok = false;
    }
    for (i, (dim, lo, hi)) in decision.box_dims.iter().enumerate() {
        if !(lo.is_finite() && hi.is_finite() && 0.0 < *lo && lo <= hi) {
            fail(
                report,
                format!("dimension {dim:?} has malformed bounds [{lo}, {hi}]"),
            );
            ok = false;
        }
        if decision.box_dims[..i].iter().any(|(d, _, _)| d == dim) {
            fail(report, format!("dimension {dim:?} is bound twice"));
            ok = false;
        }
    }
    if !(decision.profit_lo_s.is_finite()
        && decision.profit_hi_s.is_finite()
        && decision.profit_lo_s <= decision.profit_hi_s)
    {
        fail(
            report,
            format!(
                "profit interval [{}, {}] is malformed",
                decision.profit_lo_s, decision.profit_hi_s
            ),
        );
        ok = false;
    }
    if !(0.0..=1.0).contains(&decision.depends_fraction) {
        fail(
            report,
            format!(
                "depends-fraction {} is outside [0, 1]",
                decision.depends_fraction
            ),
        );
        ok = false;
    }
    ok
}

/// Lints an rr-abs decision table: malformed boxes or intervals are denied
/// ([`RRL973`]), verdicts contradicting the expectation or their own profit
/// evidence are denied ([`RRL971`]), and decisions still `depends` after the
/// refinement budget are flagged ([`RRL972`]).
///
/// [`RRL971`]: catalog::ABS_PROFITABILITY_CONTRADICTION
/// [`RRL972`]: catalog::ABS_REGION_UNREFINABLE
/// [`RRL973`]: catalog::ABS_BOX_MALFORMED
pub fn lint_abs(params: &AbsParams) -> Report {
    let mut report = Report::new();

    for decision in &params.decisions {
        let path = format!("abs.decisions.{}", decision.name);
        if !check_shape(decision, &path, &mut report) {
            continue;
        }

        let verdict_known = VERDICTS.contains(&decision.verdict.as_str());
        if !verdict_known || decision.verdict != decision.expected_verdict {
            report.push(Diagnostic::new(
                &catalog::ABS_PROFITABILITY_CONTRADICTION,
                path.clone(),
                format!(
                    "certified verdict {:?} does not match the committed \
                     decision {:?} (profit hull [{:.4}, {:.4}] s over a \
                     {}-dimensional box)",
                    decision.verdict,
                    decision.expected_verdict,
                    decision.profit_lo_s,
                    decision.profit_hi_s,
                    decision.box_dims.len()
                ),
            ));
        }

        // The interval evidence must support the claimed verdict: `always`
        // needs a strictly positive hull, `never` a non-positive one.
        let contradicted = match decision.verdict.as_str() {
            "always" => decision.profit_lo_s <= 0.0,
            "never" => decision.profit_hi_s > 0.0,
            _ => false,
        };
        if contradicted {
            report.push(Diagnostic::new(
                &catalog::ABS_PROFITABILITY_CONTRADICTION,
                path.clone(),
                format!(
                    "verdict {:?} is not supported by its own profit hull \
                     [{:.4}, {:.4}] s: the certificate claims a sign the \
                     interval does not have",
                    decision.verdict, decision.profit_lo_s, decision.profit_hi_s
                ),
            ));
        }

        if decision.verdict == "depends" {
            report.push(Diagnostic::new(
                &catalog::ABS_REGION_UNREFINABLE,
                path,
                format!(
                    "{:.1}% of the box is still undecided after {} of {} \
                     splits: the break-even surface crosses the drift box \
                     (or the abstraction is too coarse), so the committed \
                     point decision is fragile there",
                    decision.depends_fraction * 100.0,
                    decision.splits,
                    decision.max_splits
                ),
            ));
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sound_decision() -> AbsDecision {
        AbsDecision {
            name: "split-fedrcom".into(),
            expected_verdict: "always".into(),
            verdict: "always".into(),
            profit_lo_s: 0.8,
            profit_hi_s: 14.2,
            box_dims: vec![
                ("rate:fedr".into(), 0.8, 1.2),
                ("boot:pbcom".into(), 0.8, 1.2),
            ],
            depends_fraction: 0.0,
            splits: 0,
            max_splits: 4096,
        }
    }

    #[test]
    fn sound_table_is_clean() {
        let report = lint_abs(&AbsParams {
            decisions: vec![sound_decision()],
        });
        assert!(report.is_clean(), "{}", report.to_human());
    }

    #[test]
    fn verdict_mismatch_is_denied() {
        let mut d = sound_decision();
        d.verdict = "never".into();
        d.profit_lo_s = -3.0;
        d.profit_hi_s = -0.5;
        let report = lint_abs(&AbsParams { decisions: vec![d] });
        assert!(report.fired("RRL971"));
        assert!(report.has_deny());
    }

    #[test]
    fn unsupported_verdict_is_denied_even_when_expected() {
        // Table says `always`, run says `always`, but the hull reaches zero:
        // the certificate does not actually prove the claim.
        let mut d = sound_decision();
        d.profit_lo_s = -0.01;
        let report = lint_abs(&AbsParams { decisions: vec![d] });
        assert!(report.fired("RRL971"));
    }

    #[test]
    fn unknown_verdict_string_is_a_contradiction() {
        let mut d = sound_decision();
        d.verdict = "probably".into();
        let report = lint_abs(&AbsParams { decisions: vec![d] });
        assert!(report.fired("RRL971"));
    }

    #[test]
    fn residual_depends_warns() {
        let mut d = sound_decision();
        d.expected_verdict = "depends".into();
        d.verdict = "depends".into();
        d.profit_lo_s = -1.0;
        d.profit_hi_s = 2.0;
        d.depends_fraction = 0.3;
        d.splits = 4096;
        let report = lint_abs(&AbsParams { decisions: vec![d] });
        assert!(report.fired("RRL972"));
        assert!(!report.has_deny(), "{}", report.to_human());
    }

    #[test]
    fn malformed_boxes_are_denied_before_interpretation() {
        for mutate in [
            (|d: &mut AbsDecision| d.box_dims.clear()) as fn(&mut AbsDecision),
            |d| d.box_dims[0].1 = 0.0,
            |d| d.box_dims[0].2 = f64::NAN,
            |d| d.box_dims[0] = ("boot:pbcom".into(), 0.8, 1.2),
            |d| d.box_dims[1] = ("x".into(), 1.2, 0.8),
            |d| d.profit_lo_s = f64::INFINITY,
            |d| d.depends_fraction = 1.5,
        ] {
            let mut d = sound_decision();
            mutate(&mut d);
            let report = lint_abs(&AbsParams { decisions: vec![d] });
            assert!(report.fired("RRL973"), "{}", report.to_human());
            assert!(report.has_deny());
            // Shape failures stop further interpretation of that decision.
            assert!(!report.fired("RRL971"), "{}", report.to_human());
        }
    }
}

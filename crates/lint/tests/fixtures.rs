#![allow(clippy::disallowed_methods)]
//! One minimal failing fixture per diagnostic code.
//!
//! Every entry in the `rr_lint` catalog must be constructible: a diagnostic
//! class nobody can trigger is dead weight, and a class whose fixture stops
//! firing after a refactor has silently lost its teeth. The meta-test at the
//! bottom asserts this file covers the catalog exactly, so adding a code
//! without a fixture fails the build.

use rr_core::model::{FailureMode, FailureModel};
use rr_core::schedule::{plan_episodes, EpisodePlan, PlannedEpisode, Suspicion};
use rr_core::tree::{RestartTree, TreeSpec};
use rr_lint::{
    catalog, lint_abs, lint_algebra, lint_checkpoint, lint_deadline, lint_fault_script, lint_fd,
    lint_flow, lint_model, lint_model_bounds, lint_plan, lint_policy, lint_suspicions, lint_tree,
    lint_tree_spec, AbsDecision, AbsParams, CheckpointComponent, CheckpointParams, DeadlineParams,
    FdParams, FlowFault, FlowParams, GroupClaim, MemberStat, ModelBoundsParams, PolicyParams,
    Report, ScriptContext, Severity,
};

/// The code each fixture below fires, in catalog order. The meta-test
/// compares this list against the catalog itself.
const FIXTURED: &[&str] = &[
    "RRL001", "RRL002", "RRL003", "RRL004", "RRL005", "RRL101", "RRL102", "RRL103", "RRL104",
    "RRL201", "RRL202", "RRL203", "RRL211", "RRL212", "RRL213", "RRL301", "RRL302", "RRL401",
    "RRL402", "RRL403", "RRL501", "RRL502", "RRL503", "RRL504", "RRL505", "RRL601", "RRL602",
    "RRL603", "RRL701", "RRL702", "RRL801", "RRL802", "RRL803", "RRL901", "RRL902", "RRL903",
    "RRL951", "RRL952", "RRL953", "RRL971", "RRL972", "RRL973",
];

/// Asserts the report fires `code` and that the finding's severity matches
/// the catalog (deny fixtures must actually deny, warn fixtures must not).
fn assert_fires(report: &Report, code: &str) {
    assert!(
        report.fired(code),
        "expected {code}, got {:?}:\n{}",
        report.codes(),
        report.to_human()
    );
    let info = catalog::lookup(code).unwrap_or_else(|| panic!("{code} not in catalog"));
    match info.severity {
        Severity::Deny => assert!(report.has_deny(), "{code} is deny-severity"),
        Severity::Warn => {
            let diag = report
                .diagnostics()
                .iter()
                .find(|d| d.code() == code)
                .unwrap();
            assert_eq!(diag.severity(), Severity::Warn);
        }
    }
}

fn sane_policy() -> PolicyParams {
    PolicyParams {
        escalation_limit: 8,
        max_restarts_per_window: 20,
        restart_window_s: 3600.0,
        backoff_base_s: 0.5,
        backoff_cap_s: 30.0,
    }
}

fn sane_fd() -> FdParams {
    FdParams {
        ping_period_s: 1.0,
        ping_timeout_s: 0.4,
        suspicion_threshold: 2,
        suspicion_window: 4,
        beacon_period_s: 5.0,
        beacon_timeout_s: 25.0,
    }
}

fn small_tree() -> RestartTree {
    TreeSpec::cell("root")
        .with_child(
            TreeSpec::cell("R_ab")
                .with_child(TreeSpec::cell("R_a").with_component("a"))
                .with_child(TreeSpec::cell("R_b").with_component("b")),
        )
        .with_child(TreeSpec::cell("R_c").with_component("c"))
        .build()
        .unwrap()
}

fn episode(tree: &RestartTree, label: &str, origins: &[&str]) -> PlannedEpisode {
    let cell = tree
        .cells()
        .into_iter()
        .find(|&c| tree.label(c) == label)
        .unwrap();
    PlannedEpisode {
        cell,
        components: tree.components_under(cell),
        origins: origins.iter().map(|s| s.to_string()).collect(),
    }
}

// ---- RRL0xx: trees -------------------------------------------------------

#[test]
fn rrl001_tree_malformed() {
    // The same component attached to two cells only exists in spec form; the
    // invariant-preserving RestartTree API cannot express it.
    let spec = TreeSpec::cell("root")
        .with_child(TreeSpec::cell("R_a").with_component("dup"))
        .with_child(TreeSpec::cell("R_b").with_component("dup"));
    assert_fires(&lint_tree_spec(&spec), "RRL001");
}

#[test]
fn rrl002_tree_no_components() {
    let tree = TreeSpec::cell("root")
        .with_child(TreeSpec::cell("R_a"))
        .build()
        .unwrap();
    assert_fires(&lint_tree(&tree), "RRL002");
}

#[test]
fn rrl003_tree_empty_leaf() {
    let tree = TreeSpec::cell("root")
        .with_child(TreeSpec::cell("R_a").with_component("a"))
        .with_child(TreeSpec::cell("R_ghost"))
        .build()
        .unwrap();
    assert_fires(&lint_tree(&tree), "RRL003");
}

#[test]
fn rrl004_tree_duplicate_label() {
    let tree = TreeSpec::cell("root")
        .with_child(TreeSpec::cell("twin").with_component("a"))
        .with_child(TreeSpec::cell("twin").with_component("b"))
        .build()
        .unwrap();
    assert_fires(&lint_tree(&tree), "RRL004");
}

#[test]
fn rrl005_tree_redundant_cell() {
    let tree = TreeSpec::cell("root")
        .with_component("r")
        .with_child(TreeSpec::cell("shim").with_child(TreeSpec::cell("R_a").with_component("a")))
        .build()
        .unwrap();
    assert_fires(&lint_tree(&tree), "RRL005");
}

// ---- RRL1xx: restart policies --------------------------------------------

#[test]
fn rrl101_policy_escalation_short() {
    let params = PolicyParams {
        escalation_limit: 1,
        ..sane_policy()
    };
    // small_tree has a three-cell restart path (root / R_ab / R_a): one rung
    // of escalation cannot reach the root.
    assert_fires(&lint_policy(&params, Some(&small_tree())), "RRL101");
}

#[test]
fn rrl102_policy_backoff_regressive() {
    let params = PolicyParams {
        backoff_base_s: 10.0,
        backoff_cap_s: 1.0,
        ..sane_policy()
    };
    assert_fires(&lint_policy(&params, None), "RRL102");
}

#[test]
fn rrl103_policy_storm_unbounded() {
    let params = PolicyParams {
        max_restarts_per_window: 0,
        ..sane_policy()
    };
    assert_fires(&lint_policy(&params, None), "RRL103");
}

#[test]
fn rrl104_policy_quarantine_unreachable() {
    let params = PolicyParams {
        escalation_limit: 100_000,
        ..sane_policy()
    };
    assert_fires(&lint_policy(&params, None), "RRL104");
}

// ---- RRL2xx: failure models and oracle suspicions ------------------------

#[test]
fn rrl201_model_unknown_component() {
    let model =
        FailureModel::new().with_mode(FailureMode::solo("ghost-crash", "ghost", 1.0).unwrap());
    assert_fires(&lint_model(&model, &small_tree()), "RRL201");
}

#[test]
fn rrl202_model_uncovered_component() {
    let model = FailureModel::new()
        .with_mode(FailureMode::solo("a-crash", "a", 1.0).unwrap())
        .with_mode(FailureMode::solo("b-crash", "b", 1.0).unwrap());
    assert_fires(&lint_model(&model, &small_tree()), "RRL202");
}

#[test]
fn rrl203_model_empty() {
    assert_fires(&lint_model(&FailureModel::new(), &small_tree()), "RRL203");
}

#[test]
fn rrl211_suspicion_unknown_cell() {
    let tree = small_tree();
    let mut bigger = small_tree();
    let stale = bigger.add_cell(bigger.root(), "extra").unwrap();
    let s = Suspicion {
        component: "a".into(),
        cell: stale,
    };
    assert_fires(&lint_suspicions(&tree, &[s]), "RRL211");
}

#[test]
fn rrl212_suspicion_unknown_component() {
    let tree = small_tree();
    let s = Suspicion {
        component: "ghost".into(),
        cell: tree.root(),
    };
    assert_fires(&lint_suspicions(&tree, &[s]), "RRL212");
}

#[test]
fn rrl213_suspicion_cell_misses_component() {
    let tree = small_tree();
    let s = Suspicion {
        component: "a".into(),
        cell: tree.cell_of_component("c").unwrap(),
    };
    assert_fires(&lint_suspicions(&tree, &[s]), "RRL213");
}

// ---- RRL3xx: MTTF/MTTR algebra -------------------------------------------

fn claim(mttf_s: f64, mttr_s: f64) -> GroupClaim {
    GroupClaim {
        group: "R_[a,b]".into(),
        mttf_s,
        mttr_s,
        members: vec![
            MemberStat {
                name: "a".into(),
                mttf_s: 600.0,
                mttr_s: 5.0,
            },
            MemberStat {
                name: "b".into(),
                mttf_s: 3600.0,
                mttr_s: 12.0,
            },
        ],
    }
}

#[test]
fn rrl301_algebra_mttf_overclaimed() {
    // A group cannot outlive its weakest member (MTTF_G <= min MTTF_ci).
    assert_fires(&lint_algebra(&[claim(1000.0, 12.0)]), "RRL301");
}

#[test]
fn rrl302_algebra_mttr_underclaimed() {
    // A group cannot recover faster than its slowest member.
    assert_fires(&lint_algebra(&[claim(600.0, 5.0)]), "RRL302");
}

// ---- RRL4xx: episode plans -----------------------------------------------

#[test]
fn rrl401_plan_overlapping_episodes() {
    let tree = small_tree();
    let plan = EpisodePlan {
        episodes: vec![
            episode(&tree, "R_ab", &["b"]),
            episode(&tree, "R_a", &["a"]),
        ],
    };
    assert_fires(&lint_plan(&tree, &plan), "RRL401");
}

#[test]
fn rrl402_plan_unknown_cell() {
    let tree = small_tree();
    let mut bigger = small_tree();
    let stale = bigger.add_cell(bigger.root(), "extra").unwrap();
    let plan = EpisodePlan {
        episodes: vec![PlannedEpisode {
            cell: stale,
            components: vec![],
            origins: vec!["a".into()],
        }],
    };
    assert_fires(&lint_plan(&tree, &plan), "RRL402");
}

#[test]
fn rrl403_plan_duplicate_origin() {
    let tree = small_tree();
    let plan = EpisodePlan {
        episodes: vec![episode(&tree, "R_a", &["a"]), episode(&tree, "R_c", &["a"])],
    };
    assert_fires(&lint_plan(&tree, &plan), "RRL403");
}

// ---- RRL5xx: fault scripts -----------------------------------------------

fn script_ctx<'a>(fd: Option<&'a FdParams>, components: &'a [String]) -> ScriptContext<'a> {
    ScriptContext {
        components,
        infrastructure: INFRA,
        fd,
    }
}

const INFRA: &[String] = &[];

fn comps() -> Vec<String> {
    vec!["a".into(), "b".into()]
}

#[test]
fn rrl501_script_malformed() {
    let c = comps();
    let report = lint_fault_script("soon crash a", &script_ctx(None, &c));
    assert_fires(&report, "RRL501");
}

#[test]
fn rrl502_script_unknown_target() {
    let c = comps();
    let report = lint_fault_script("0 crash ghost", &script_ctx(None, &c));
    assert_fires(&report, "RRL502");
}

#[test]
fn rrl503_script_time_regression() {
    let c = comps();
    let report = lint_fault_script(
        "5000000000 crash a\n1000000000 crash b\n",
        &script_ctx(None, &c),
    );
    assert_fires(&report, "RRL503");
}

#[test]
fn rrl504_script_zombie_unobservable() {
    let beaconless = FdParams {
        beacon_timeout_s: 0.0,
        ..sane_fd()
    };
    let c = comps();
    let report = lint_fault_script("0 zombie a", &script_ctx(Some(&beaconless), &c));
    assert_fires(&report, "RRL504");
}

#[test]
fn rrl505_script_infrastructure_target() {
    let c = comps();
    let infra = vec!["fd".to_string()];
    let ctx = ScriptContext {
        components: &c,
        infrastructure: &infra,
        fd: None,
    };
    assert_fires(&lint_fault_script("0 crash fd", &ctx), "RRL505");
}

// ---- RRL6xx: failure detector timing -------------------------------------

#[test]
fn rrl601_fd_timeout_exceeds_period() {
    let params = FdParams {
        ping_period_s: 1.0,
        ping_timeout_s: 1.5,
        ..sane_fd()
    };
    assert_fires(&lint_fd(&params), "RRL601");
}

#[test]
fn rrl602_fd_window_short() {
    let params = FdParams {
        suspicion_threshold: 8,
        suspicion_window: 3,
        ..sane_fd()
    };
    assert_fires(&lint_fd(&params), "RRL602");
}

#[test]
fn rrl603_fd_beacon_window_tight() {
    let params = FdParams {
        beacon_period_s: 5.0,
        beacon_timeout_s: 10.0,
        ..sane_fd()
    };
    assert_fires(&lint_fd(&params), "RRL603");
}

// ---- RRL7xx: model-checker exploration bounds ----------------------------

fn sane_bounds() -> ModelBoundsParams {
    ModelBoundsParams {
        faults: 2,
        components: 6,
        depth: 12,
        state_budget: 2_000_000,
        plan_queue_depth: 5,
        checked_queue_bound: 6,
    }
}

#[test]
fn rrl701_model_exploration_infeasible() {
    let params = ModelBoundsParams {
        faults: 8,
        depth: 40,
        ..sane_bounds()
    };
    assert_fires(&lint_model_bounds(&params), "RRL701");
}

#[test]
fn rrl702_model_queue_unchecked() {
    let params = ModelBoundsParams {
        plan_queue_depth: 9,
        ..sane_bounds()
    };
    assert_fires(&lint_model_bounds(&params), "RRL702");
}

// ---- RRL8xx: deadline/admission policy -----------------------------------

fn sane_deadline() -> DeadlineParams {
    DeadlineParams {
        admission_enabled: true,
        admission_capacity: 2,
        admission_window_s: 120.0,
        admission_retry_s: 5.0,
        defer_max_age_s: 240.0,
        defer_queue_limit: 16,
        min_pass_window_s: 300.0,
        restart_deadline_s: 45.0,
        mean_detection_s: 0.9,
    }
}

#[test]
fn rrl801_deadline_pass_infeasible() {
    let params = DeadlineParams {
        min_pass_window_s: 30.0,
        ..sane_deadline()
    };
    assert_fires(&lint_deadline(&params, None), "RRL801");
}

#[test]
fn rrl802_deadline_aging_unhonorable() {
    let params = DeadlineParams {
        admission_capacity: 1,
        admission_window_s: 600.0,
        defer_max_age_s: 60.0,
        ..sane_deadline()
    };
    assert_fires(&lint_deadline(&params, None), "RRL802");
}

#[test]
fn rrl803_deadline_queue_underprovisioned() {
    let params = DeadlineParams {
        defer_queue_limit: 1,
        ..sane_deadline()
    };
    assert_fires(&lint_deadline(&params, Some(&small_tree())), "RRL803");
}

// ---- RRL9xx: checkpoint/rehydrate policy ---------------------------------

fn sane_checkpoint() -> CheckpointParams {
    CheckpointParams {
        session_state_kb: 256.0,
        store_throughput_kbps: 2048.0,
        store_update_kb: 2.0,
        store_update_period_s: 2.0,
        components: vec![CheckpointComponent {
            name: "a".into(),
            checkpoint_interval_s: 60.0,
            cold_rederive_s: 3.35,
        }],
    }
}

#[test]
fn rrl901_checkpoint_write_overrun() {
    let mut params = CheckpointParams {
        session_state_kb: 16.0 * 1024.0,
        ..sane_checkpoint()
    };
    params.components[0].checkpoint_interval_s = 5.0;
    assert_fires(&lint_checkpoint(&params, None), "RRL901");
}

#[test]
fn rrl902_checkpoint_replay_regressive() {
    let mut params = sane_checkpoint();
    params.components[0].cold_rederive_s = 0.05;
    assert_fires(&lint_checkpoint(&params, None), "RRL902");
}

#[test]
fn rrl903_checkpoint_component_detached() {
    let mut params = sane_checkpoint();
    params.components[0].name = "ghost".into();
    assert_fires(&lint_checkpoint(&params, Some(&small_tree())), "RRL903");
}

// ---- RRL95x: action-dependence (rr-flow) soundness -----------------------

fn sane_flow() -> FlowParams {
    FlowParams {
        faults: vec![
            FlowFault {
                component: "a".into(),
                chain: vec![("R_a".into(), true)],
            },
            FlowFault {
                component: "b".into(),
                chain: vec![("R_b".into(), true)],
            },
        ],
        escalation_limit: 3,
        templates: vec!["inject:a".into(), "inject:b".into()],
        dependent: vec![vec![true, false], vec![false, true]],
        fault_interference: vec![vec![true, false], vec![false, true]],
    }
}

#[test]
fn rrl951_flow_interference_cycle() {
    let mut params = sane_flow();
    params.faults.push(FlowFault {
        component: "c".into(),
        chain: vec![("R_c".into(), true)],
    });
    params.fault_interference = vec![vec![true; 3]; 3];
    assert_fires(&lint_flow(&params), "RRL951");
}

#[test]
fn rrl952_flow_unreachable_action() {
    let mut params = sane_flow();
    params.faults[0].chain = vec![
        ("R_a".into(), false),
        ("R_ab".into(), false),
        ("R_abc".into(), false),
        ("root".into(), true),
    ];
    assert_fires(&lint_flow(&params), "RRL952");
}

#[test]
fn rrl953_flow_table_unsound() {
    // The por-assume override shape: a zeroed row whose column survives.
    let mut params = sane_flow();
    params.dependent = vec![vec![true, true], vec![false, true]];
    assert_fires(&lint_flow(&params), "RRL953");
}

// ---- RRL97x: profitability-certification (rr-abs) soundness --------------

fn sane_abs() -> AbsParams {
    AbsParams {
        decisions: vec![AbsDecision {
            name: "promote-pbcom".into(),
            expected_verdict: "always".into(),
            verdict: "always".into(),
            profit_lo_s: 0.03,
            profit_hi_s: 4.7,
            box_dims: vec![
                ("rate:pbcom-joint".into(), 0.8, 1.2),
                ("boot:pbcom".into(), 0.8, 1.2),
            ],
            depends_fraction: 0.0,
            splits: 0,
            max_splits: 4096,
        }],
    }
}

#[test]
fn rrl971_abs_profitability_contradiction() {
    let mut params = sane_abs();
    params.decisions[0].verdict = "never".into();
    params.decisions[0].profit_lo_s = -2.0;
    params.decisions[0].profit_hi_s = -0.1;
    assert_fires(&lint_abs(&params), "RRL971");
}

#[test]
fn rrl972_abs_region_unrefinable() {
    let mut params = sane_abs();
    params.decisions[0].expected_verdict = "depends".into();
    params.decisions[0].verdict = "depends".into();
    params.decisions[0].profit_lo_s = -1.0;
    params.decisions[0].profit_hi_s = 1.0;
    params.decisions[0].depends_fraction = 0.4;
    params.decisions[0].splits = 4096;
    assert_fires(&lint_abs(&params), "RRL972");
}

#[test]
fn rrl973_abs_box_malformed() {
    let mut params = sane_abs();
    params.decisions[0].box_dims[0].1 = -0.5;
    assert_fires(&lint_abs(&params), "RRL973");
}

// ---- meta ----------------------------------------------------------------

#[test]
fn every_catalog_code_has_a_fixture() {
    let catalog_codes: Vec<&str> = catalog::CATALOG.iter().map(|c| c.code).collect();
    assert_eq!(
        catalog_codes, FIXTURED,
        "catalog and fixture list diverged: add a fixture (and list entry) \
         for every new diagnostic code"
    );
}

#[test]
fn sane_baselines_are_clean() {
    // The ..sane() baselines used above must themselves be clean, or the
    // fixtures could be firing on the baseline rather than the mutation.
    assert!(lint_policy(&sane_policy(), Some(&small_tree())).is_clean());
    assert!(lint_fd(&sane_fd()).is_clean());
    assert!(lint_tree(&small_tree()).is_clean());
    let c = comps();
    assert!(lint_fault_script("0 crash a\n1000000000 crash b\n", &script_ctx(None, &c)).is_clean());
    assert!(lint_algebra(&[claim(600.0, 12.0)]).is_clean());
    let suspicions = vec![Suspicion::covering(&small_tree(), "a", &["a"]).unwrap()];
    assert!(lint_suspicions(&small_tree(), &suspicions).is_clean());
    let plan = plan_episodes(&small_tree(), &suspicions).unwrap();
    assert!(lint_plan(&small_tree(), &plan).is_clean());
    assert!(lint_model_bounds(&sane_bounds()).is_clean());
    assert!(lint_deadline(&sane_deadline(), Some(&small_tree())).is_clean());
    assert!(lint_checkpoint(&sane_checkpoint(), Some(&small_tree())).is_clean());
    assert!(lint_flow(&sane_flow()).is_clean());
    assert!(lint_abs(&sane_abs()).is_clean());
}

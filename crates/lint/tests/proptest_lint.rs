#![allow(clippy::disallowed_methods)]
//! Property tests bridging the linter to the tree machinery: every tree the
//! core library can legitimately produce — by exhaustive enumeration or by
//! chaining the paper's transformations — must lint deny-free. Warnings are
//! allowed (enumeration legitimately produces empty interior cells); deny
//! diagnostics are reserved for states the invariant-preserving API cannot
//! reach.

use rr_core::enumerate::enumerate_trees;
use rr_core::transform::{consolidate, depth_augment, promote_component, split_component};
use rr_core::tree::RestartTree;
use rr_lint::lint_tree;
use rr_sim::check;

fn assert_deny_free(tree: &RestartTree, context: &str) {
    let report = lint_tree(tree);
    assert!(
        !report.has_deny(),
        "{context}: enumerated/transformed tree must not deny:\n{}",
        report.to_human()
    );
}

#[test]
fn enumerated_trees_never_deny() {
    for n in 1..=4usize {
        let components: Vec<String> = (0..n).map(|i| format!("c{i}")).collect();
        let trees = enumerate_trees(&components);
        assert!(!trees.is_empty());
        for tree in &trees {
            assert_deny_free(tree, &format!("enumerate_trees over {n} components"));
        }
    }
}

#[test]
fn transformation_chain_stays_deny_free() {
    // The paper's I → II → III → IV → V evolution, step by step: every
    // intermediate tree must stay deny-free.
    let comps = ["mbus", "fedrcom", "ses", "str", "rtu"];
    let mut tree = RestartTree::new("mercury");
    for c in comps {
        tree.attach_component(tree.root(), c).unwrap();
    }
    assert_deny_free(&tree, "tree I");

    let partition: Vec<Vec<String>> = comps.iter().map(|c| vec![c.to_string()]).collect();
    let root = tree.root();
    depth_augment(&mut tree, root, &partition).unwrap();
    assert_deny_free(&tree, "tree II (depth augmentation)");

    let cell = split_component(&mut tree, "fedrcom", &["fedr", "pbcom"]).unwrap();
    assert_deny_free(&tree, "tree II' (component split)");
    depth_augment(
        &mut tree,
        cell,
        &[vec!["fedr".to_string()], vec!["pbcom".to_string()]],
    )
    .unwrap();
    assert_deny_free(&tree, "tree III (split + depth augmentation)");

    let ses = tree.cell_of_component("ses").unwrap();
    let str_ = tree.cell_of_component("str").unwrap();
    consolidate(&mut tree, &[ses, str_]).unwrap();
    assert_deny_free(&tree, "tree IV (ses/str consolidation)");

    promote_component(&mut tree, "pbcom").unwrap();
    assert_deny_free(&tree, "tree V (pbcom promotion)");
}

#[test]
fn random_depth_augmentations_never_deny() {
    check::run("lint::random_depth_augmentations", 128, |rng| {
        let n = 2 + rng.next_below(5) as usize;
        let components: Vec<String> = (0..n).map(|i| format!("c{i}")).collect();
        let mut tree = RestartTree::new("root");
        for c in &components {
            tree.attach_component(tree.root(), c.as_str()).unwrap();
        }
        // Random partition of the components into 1..=n groups.
        let groups = 1 + rng.next_below(n as u64) as usize;
        let mut partition: Vec<Vec<String>> = vec![Vec::new(); groups];
        for c in &components {
            let g = rng.next_below(groups as u64) as usize;
            partition[g].push(c.clone());
        }
        partition.retain(|g| !g.is_empty());
        let root = tree.root();
        depth_augment(&mut tree, root, &partition).unwrap();
        assert_deny_free(&tree, "random depth augmentation");

        // Optionally consolidate two random sibling cells and re-check.
        let cells = tree.children(root).to_vec();
        if cells.len() >= 2 {
            let a = cells[rng.next_below(cells.len() as u64) as usize];
            let b = cells[rng.next_below(cells.len() as u64) as usize];
            if a != b {
                consolidate(&mut tree, &[a, b]).unwrap();
                assert_deny_free(&tree, "random consolidation");
            }
        }
    });
}

#[test]
fn random_splits_never_deny() {
    check::run("lint::random_splits", 64, |rng| {
        let n = 1 + rng.next_below(4) as usize;
        let components: Vec<String> = (0..n).map(|i| format!("c{i}")).collect();
        let mut tree = RestartTree::new("root");
        for c in &components {
            tree.attach_component(tree.root(), c.as_str()).unwrap();
        }
        let victim = format!("c{}", rng.next_below(n as u64));
        let parts = 1 + rng.next_below(3) as usize;
        let names: Vec<String> = (0..parts).map(|i| format!("{victim}-part{i}")).collect();
        split_component(&mut tree, &victim, &names).unwrap();
        assert_deny_free(&tree, "random component split");
    });
}

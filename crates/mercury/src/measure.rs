//! Recovery-time measurement, exactly as the paper defines it (§4.1):
//!
//! "We log the time when the signal is sent; once the component determines
//! it is functionally ready, it logs a timestamped message. The difference
//! between these two times is what we consider to be the recovery time."
//!
//! An *episode* starts at an `inject:<component>` mark and is recovered when
//! every component restarted by the episode's final (curing) restart attempt
//! has logged `ready:`. For tree I this is the whole station (recovery =
//! slowest component); for a tree-V pbcom failure it is the joint
//! [fedr, pbcom] pair.

use rr_sim::{SimTime, Trace, TraceKind};

/// One measured recovery episode.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryMeasurement {
    /// The component whose failure was injected.
    pub component: String,
    /// Injection time.
    pub injected_at: SimTime,
    /// When the final restart's last component became ready.
    pub recovered_at: SimTime,
    /// Restart attempts observed (1 = the oracle's first guess cured it).
    pub attempts: u32,
    /// Components restarted by the final attempt.
    pub final_restart_set: Vec<String>,
}

impl RecoveryMeasurement {
    /// The recovery time in seconds — the paper's measured quantity.
    pub fn recovery_s(&self) -> f64 {
        self.recovered_at
            .saturating_since(self.injected_at)
            .as_secs_f64()
    }
}

/// Why a recovery could not be measured.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MeasureError {
    /// No `inject:` mark for the component at or after the given time.
    NoInjection(String),
    /// The recoverer never issued a restart for the episode.
    NoRestart(String),
    /// The policy gave up on the episode.
    GaveUp(String),
    /// A restarted component never logged ready (simulation not run long
    /// enough, or a real bug).
    NeverReady(String),
}

impl std::fmt::Display for MeasureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeasureError::NoInjection(c) => write!(f, "no injection recorded for {c}"),
            MeasureError::NoRestart(c) => write!(f, "no restart issued for {c}"),
            MeasureError::GaveUp(c) => write!(f, "recovery of {c} was abandoned"),
            MeasureError::NeverReady(c) => write!(f, "{c} never became ready"),
        }
    }
}

impl std::error::Error for MeasureError {}

/// Parses a `restart:<episode>:<attempt>:<c1+c2+…>` mark.
fn parse_restart(label: &str) -> Option<(&str, u32, Vec<String>)> {
    let rest = label.strip_prefix("restart:")?;
    let mut parts = rest.splitn(3, ':');
    let episode = parts.next()?;
    let attempt: u32 = parts.next()?.parse().ok()?;
    let comps = parts.next()?.split('+').map(str::to_string).collect();
    Some((episode, attempt, comps))
}

/// Parses a `merge:<from>-><into>` mark.
fn parse_merge(label: &str) -> Option<(&str, &str)> {
    label.strip_prefix("merge:")?.split_once("->")
}

/// Measures the recovery of the failure injected into `component` at or
/// after `after`.
///
/// # Errors
///
/// Returns a [`MeasureError`] describing what is missing from the trace.
pub fn measure_recovery(
    trace: &Trace,
    component: &str,
    after: SimTime,
) -> Result<RecoveryMeasurement, MeasureError> {
    let injected_at = trace
        .first_mark_at_or_after(after, &format!("inject:{component}"))
        .ok_or_else(|| MeasureError::NoInjection(component.to_string()))?;

    // All restart attempts for this episode after the injection. The episode
    // starts keyed by the component that failed; a `merge:<from>-><into>`
    // mark means the episode was absorbed into `<into>`'s, so that key's
    // restarts belong to this recovery too.
    let mut keys: std::collections::BTreeSet<String> =
        std::iter::once(component.to_string()).collect();
    let mut attempts: Vec<(SimTime, u32, Vec<String>)> = Vec::new();
    let mut gave_up = false;
    for ev in trace.iter() {
        if ev.kind != TraceKind::Mark || ev.time < injected_at {
            continue;
        }
        if let Some((from, into)) = parse_merge(&ev.label) {
            if keys.contains(from) {
                keys.insert(into.to_string());
            }
        } else if let Some((episode, attempt, comps)) = parse_restart(&ev.label) {
            if keys.contains(episode) {
                attempts.push((ev.time, attempt, comps));
            }
        } else if let Some(rest) = ev.label.strip_prefix("giveup:") {
            let who = rest.split(':').next().unwrap_or(rest);
            if keys.contains(who) {
                gave_up = true;
            }
        } else if ev.label == format!("cured:{component}") && !attempts.is_empty() {
            // Episode closed (merged episodes mark every origin cured);
            // later restarts belong to a new episode.
            break;
        }
    }
    if gave_up {
        return Err(MeasureError::GaveUp(component.to_string()));
    }
    let (final_time, _, final_set) = attempts
        .last()
        .cloned()
        .ok_or_else(|| MeasureError::NoRestart(component.to_string()))?;

    // Recovery completes when every component of the final restart logs
    // ready at or after the final restart was issued.
    let mut recovered_at = SimTime::ZERO;
    for comp in &final_set {
        let ready = trace
            .first_mark_at_or_after(final_time, &format!("ready:{comp}"))
            .ok_or_else(|| MeasureError::NeverReady(comp.clone()))?;
        recovered_at = recovered_at.max(ready);
    }

    Ok(RecoveryMeasurement {
        component: component.to_string(),
        injected_at,
        recovered_at,
        attempts: attempts.len() as u32,
        final_restart_set: final_set,
    })
}

/// Computes the total system downtime in `[from, to)` under the paper's
/// `A_entire` assumption: the system is down whenever *any* component is
/// down (from its crash/hang/kill until its next `ready:` mark).
///
/// Returns `(downtime, availability)` where availability is the uptime
/// fraction of the window.
///
/// # Panics
///
/// Panics if `to < from`.
pub fn system_downtime(
    trace: &Trace,
    components: &[String],
    from: SimTime,
    to: SimTime,
) -> (rr_sim::SimDuration, f64) {
    assert!(to >= from, "empty window");
    // Collect per-component down intervals, then union them.
    let mut intervals: Vec<(SimTime, SimTime)> = Vec::new();
    for comp in components {
        let mut down_since: Option<SimTime> = None;
        for ev in trace.iter() {
            if ev.time >= to {
                break;
            }
            let is_this = ev.label == *comp || ev.label == format!("ready:{comp}");
            if !is_this {
                continue;
            }
            match ev.kind {
                TraceKind::Crashed | TraceKind::Hung | TraceKind::Zombified
                    if down_since.is_none() =>
                {
                    down_since = Some(ev.time.max(from));
                }
                TraceKind::Mark if ev.label.starts_with("ready:") => {
                    if let Some(start) = down_since.take() {
                        if ev.time > from {
                            intervals.push((start.max(from), ev.time.min(to)));
                        }
                    }
                }
                _ => {}
            }
        }
        if let Some(start) = down_since {
            intervals.push((start.max(from), to));
        }
    }
    intervals.sort_by_key(|&(s, _)| s);
    let mut total = rr_sim::SimDuration::ZERO;
    let mut cursor = from;
    for (start, end) in intervals {
        let start = start.max(cursor);
        if end > start {
            total += end.since(start);
            cursor = end;
        }
    }
    let window = to.since(from).as_secs_f64();
    let availability = if window == 0.0 {
        1.0
    } else {
        1.0 - total.as_secs_f64() / window
    };
    (total, availability)
}

/// Counts telemetry frames recorded in `[from, to)` — the §5.2 "not all
/// downtime is the same" metric: frames lost during a pass are science data
/// lost.
pub fn telemetry_frames(trace: &Trace, from: SimTime, to: SimTime) -> usize {
    trace
        .window(from, to)
        .filter(|e| e.kind == TraceKind::Mark && e.label.starts_with("telemetry:"))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    fn mark(trace: &mut Trace, at: f64, label: &str) {
        trace.record(t(at), None, TraceKind::Mark, label);
    }

    #[test]
    fn measures_single_attempt_episode() {
        let mut tr = Trace::new();
        mark(&mut tr, 100.0, "inject:rtu");
        mark(&mut tr, 100.9, "restart:rtu:0:rtu");
        mark(&mut tr, 105.6, "ready:rtu");
        mark(&mut tr, 107.0, "cured:rtu");
        let m = measure_recovery(&tr, "rtu", t(99.0)).unwrap();
        assert_eq!(m.attempts, 1);
        assert_eq!(m.final_restart_set, vec!["rtu"]);
        assert!((m.recovery_s() - 5.6).abs() < 1e-9);
    }

    #[test]
    fn measures_escalated_episode_to_final_attempt() {
        let mut tr = Trace::new();
        mark(&mut tr, 0.0, "inject:pbcom");
        mark(&mut tr, 1.0, "restart:pbcom:0:pbcom");
        mark(&mut tr, 21.3, "ready:pbcom");
        mark(&mut tr, 23.5, "restart:pbcom:1:fedr+pbcom");
        mark(&mut tr, 28.2, "ready:fedr");
        mark(&mut tr, 47.9, "ready:pbcom");
        mark(&mut tr, 50.0, "cured:pbcom");
        let m = measure_recovery(&tr, "pbcom", t(0.0)).unwrap();
        assert_eq!(m.attempts, 2);
        assert_eq!(m.final_restart_set, vec!["fedr", "pbcom"]);
        assert!((m.recovery_s() - 47.9).abs() < 1e-9);
    }

    #[test]
    fn whole_system_restart_waits_for_slowest() {
        let mut tr = Trace::new();
        mark(&mut tr, 10.0, "inject:rtu");
        mark(&mut tr, 11.0, "restart:rtu:0:fedrcom+mbus+rtu+ses+str");
        mark(&mut tr, 16.6, "ready:rtu");
        mark(&mut tr, 16.8, "ready:mbus");
        mark(&mut tr, 18.0, "ready:ses");
        mark(&mut tr, 18.2, "ready:str");
        mark(&mut tr, 34.7, "ready:fedrcom");
        let m = measure_recovery(&tr, "rtu", t(0.0)).unwrap();
        assert!((m.recovery_s() - 24.7).abs() < 1e-9);
    }

    #[test]
    fn later_episodes_are_not_conflated() {
        let mut tr = Trace::new();
        mark(&mut tr, 0.0, "inject:ses");
        mark(&mut tr, 1.0, "restart:ses:0:ses");
        mark(&mut tr, 9.5, "ready:ses");
        mark(&mut tr, 12.0, "cured:ses");
        // A second, separate episode (the induced str failure cascade).
        mark(&mut tr, 14.0, "restart:str:0:str");
        mark(&mut tr, 23.8, "ready:str");
        let m = measure_recovery(&tr, "ses", t(0.0)).unwrap();
        assert_eq!(m.attempts, 1);
        assert!((m.recovery_s() - 9.5).abs() < 1e-9);
    }

    #[test]
    fn merged_episode_attributes_promoted_restart_to_each_origin() {
        // fedr's solo episode is absorbed into pbcom's promoted one: both
        // components' recoveries are measured against the joint restart.
        let mut tr = Trace::new();
        mark(&mut tr, 0.0, "inject:fedr");
        mark(&mut tr, 0.0, "inject:pbcom");
        mark(&mut tr, 1.0, "restart:fedr:0:fedr");
        mark(&mut tr, 2.0, "merge:fedr->pbcom");
        mark(&mut tr, 2.0, "restart:pbcom:0:fedr+pbcom");
        mark(&mut tr, 8.0, "ready:fedr");
        mark(&mut tr, 9.5, "ready:pbcom");
        mark(&mut tr, 12.0, "cured:fedr");
        mark(&mut tr, 12.0, "cured:pbcom");
        let fedr = measure_recovery(&tr, "fedr", t(0.0)).unwrap();
        assert_eq!(fedr.attempts, 2);
        assert_eq!(fedr.final_restart_set, vec!["fedr", "pbcom"]);
        assert!((fedr.recovery_s() - 9.5).abs() < 1e-9);
        let pbcom = measure_recovery(&tr, "pbcom", t(0.0)).unwrap();
        assert_eq!(pbcom.attempts, 1);
        assert!((pbcom.recovery_s() - 9.5).abs() < 1e-9);
    }

    #[test]
    fn merged_episode_giveup_is_reported_for_absorbed_origin() {
        let mut tr = Trace::new();
        mark(&mut tr, 0.0, "inject:fedr");
        mark(&mut tr, 1.0, "restart:fedr:0:fedr");
        mark(&mut tr, 2.0, "merge:fedr->pbcom");
        mark(&mut tr, 2.0, "restart:pbcom:0:fedr+pbcom");
        mark(&mut tr, 30.0, "giveup:pbcom:escalation exhausted");
        assert_eq!(
            measure_recovery(&tr, "fedr", t(0.0)),
            Err(MeasureError::GaveUp("fedr".into()))
        );
    }

    #[test]
    fn errors_are_specific() {
        let tr = Trace::new();
        assert_eq!(
            measure_recovery(&tr, "rtu", t(0.0)),
            Err(MeasureError::NoInjection("rtu".into()))
        );

        let mut tr = Trace::new();
        mark(&mut tr, 0.0, "inject:rtu");
        assert_eq!(
            measure_recovery(&tr, "rtu", t(0.0)),
            Err(MeasureError::NoRestart("rtu".into()))
        );

        mark(&mut tr, 1.0, "restart:rtu:0:rtu");
        assert_eq!(
            measure_recovery(&tr, "rtu", t(0.0)),
            Err(MeasureError::NeverReady("rtu".into()))
        );

        let mut tr = Trace::new();
        mark(&mut tr, 0.0, "inject:rtu");
        mark(&mut tr, 1.0, "restart:rtu:0:rtu");
        mark(
            &mut tr,
            30.0,
            "giveup:rtu:restart storm: hard failure suspected",
        );
        assert_eq!(
            measure_recovery(&tr, "rtu", t(0.0)),
            Err(MeasureError::GaveUp("rtu".into()))
        );
    }

    #[test]
    fn downtime_unions_overlapping_outages() {
        let mut tr = Trace::new();
        let comps = vec!["a".to_string(), "b".to_string()];
        // a down [10, 20); b down [15, 30): union is [10, 30) = 20s.
        tr.record(t(10.0), None, TraceKind::Crashed, "a");
        tr.record(t(15.0), None, TraceKind::Crashed, "b");
        tr.record(t(20.0), None, TraceKind::Mark, "ready:a");
        tr.record(t(30.0), None, TraceKind::Mark, "ready:b");
        let (down, avail) = system_downtime(&tr, &comps, t(0.0), t(100.0));
        assert!((down.as_secs_f64() - 20.0).abs() < 1e-9);
        assert!((avail - 0.8).abs() < 1e-9);
    }

    #[test]
    fn downtime_clamps_to_window_and_handles_open_outages() {
        let mut tr = Trace::new();
        let comps = vec!["a".to_string()];
        tr.record(t(90.0), None, TraceKind::Hung, "a");
        // never recovers within the window
        let (down, avail) = system_downtime(&tr, &comps, t(50.0), t(100.0));
        assert!((down.as_secs_f64() - 10.0).abs() < 1e-9);
        assert!((avail - 0.8).abs() < 1e-9);
        // Fully-up window.
        let (down, avail) = system_downtime(&tr, &comps, t(0.0), t(50.0));
        assert_eq!(down.as_secs_f64(), 0.0);
        assert_eq!(avail, 1.0);
    }

    #[test]
    fn telemetry_counts_window() {
        let mut tr = Trace::new();
        for i in 0..10 {
            mark(&mut tr, 100.0 + i as f64, &format!("telemetry:opal:{i}"));
        }
        mark(&mut tr, 105.5, "ready:rtu");
        assert_eq!(telemetry_frames(&tr, t(100.0), t(105.0)), 5);
        assert_eq!(telemetry_frames(&tr, t(0.0), t(1000.0)), 10);
    }
}

//! Pass scenarios: realistic workloads for the examples and the §5.2
//! ("not all downtime is the same") experiments.
//!
//! A [`PassScenario`] finds an upcoming pass of a satellite over the
//! station, fast-forwards the epoch so the pass begins shortly after the
//! station settles, issues the operator's `TrackRequest`, and reports how
//! much telemetry was captured — the paper's measure of what downtime during
//! a pass actually costs ("we may lose some science data and telemetry").

use mercury_msg::{Envelope, Message};
use rr_sim::{SimDuration, SimTime};

use crate::config::names;
use crate::measure::telemetry_frames;
use crate::orbit::{predict_passes, PassWindow};
use crate::station::Station;

/// A pass workload bound to a station.
#[derive(Debug, Clone, PartialEq)]
pub struct PassScenario {
    /// The satellite being worked.
    pub satellite: String,
    /// The pass window, in *scenario epoch* seconds.
    pub window: PassWindow,
    /// Offset between simulation time and scenario epoch (`epoch = sim +
    /// offset`), as configured into the station.
    pub epoch_offset_s: f64,
}

impl PassScenario {
    /// Predicts the next pass of `satellite` with a peak elevation of at
    /// least `min_max_elevation_deg`, and returns the epoch offset that a
    /// [`crate::config::StationConfig`] must carry (in `pass_epoch_offset_s`)
    /// for the pass to rise `lead_s` seconds after `start_sim_s`.
    ///
    /// # Panics
    ///
    /// Panics if the satellite is not in the config catalog or no suitable
    /// pass occurs within a week.
    pub fn plan(
        config: &crate::config::StationConfig,
        satellite: &str,
        start_sim_s: f64,
        lead_s: f64,
        min_max_elevation_deg: f64,
    ) -> PassScenario {
        let sat = config
            .satellites
            .iter()
            .find(|s| s.name == satellite)
            .unwrap_or_else(|| panic!("unknown satellite {satellite:?}"));
        let week = 7.0 * 86_400.0;
        let passes = predict_passes(&config.site, sat, 0.0, week);
        let window = passes
            .into_iter()
            .find(|p| p.max_elevation_deg >= min_max_elevation_deg)
            .unwrap_or_else(|| {
                panic!("no pass of {satellite} reaches {min_max_elevation_deg}° within a week")
            });
        let epoch_offset_s = window.rise_s - (start_sim_s + lead_s);
        PassScenario {
            satellite: satellite.to_string(),
            window,
            epoch_offset_s,
        }
    }

    /// The simulation time at which the pass rises.
    pub fn rise_sim_time(&self) -> SimTime {
        SimTime::from_secs_f64(self.window.rise_s - self.epoch_offset_s)
    }

    /// The simulation time at which the pass sets.
    pub fn set_sim_time(&self) -> SimTime {
        SimTime::from_secs_f64(self.window.set_s - self.epoch_offset_s)
    }

    /// Sends the operator's track request to the tracker, the tuner and the
    /// radio front end (so telemetry frames carry the right satellite name),
    /// and keeps refreshing it every ten seconds for the duration of the
    /// pass — standard pass-automation practice, and what lets a freshly
    /// restarted (state-wiped) component rejoin an in-progress pass.
    pub fn start_tracking(&self, station: &mut Station) {
        const REFRESH_S: u64 = 10;
        let is_split = station.components().iter().any(|c| c == names::FEDR);
        let front = if is_split {
            names::FEDR
        } else {
            names::FEDRCOM
        };
        let horizon = self
            .set_sim_time()
            .saturating_since(station.now())
            .as_secs_f64() as u64;
        for dst in [names::STR, names::RTU, front] {
            let env = Envelope::new(
                "operator",
                dst,
                0,
                Message::TrackRequest {
                    satellite: self.satellite.clone(),
                },
            );
            let wire = env.to_xml_string();
            let sim = station.sim_mut();
            let Some(bus) = sim.lookup(names::MBUS) else {
                continue;
            };
            // Operator commands arrive over mbus like everything else.
            let mut offset = 0;
            while offset <= horizon {
                sim.send_external(bus, bus, SimDuration::from_secs(offset), wire.clone());
                offset += REFRESH_S;
            }
        }
    }

    /// Runs the station through the whole pass and returns the number of
    /// telemetry frames captured.
    pub fn run_pass(&self, station: &mut Station) -> usize {
        let start = station.now();
        self.start_tracking(station);
        let end = self.set_sim_time() + SimDuration::from_secs(10);
        let remaining = end.saturating_since(station.now());
        station.run_for(remaining);
        telemetry_frames(station.trace(), start, station.now())
    }

    /// The maximum number of telemetry frames the pass could deliver
    /// (duration / frame period) — the denominator for data-loss reporting.
    pub fn max_frames(&self, config: &crate::config::StationConfig) -> usize {
        (self.window.duration_s() / config.telemetry_period_s).floor() as usize
    }
}

//! `FD` — the failure detector (§2.2).
//!
//! "FD continuously performs liveness pings on Mercury components, with a
//! period of 1 second … When FD detects a failure, it tells REC which
//! component(s) appear to have failed, and continues its failure detection."
//!
//! Details faithful to the paper:
//!
//! * pings are application-level XML messages over mbus — "a successful
//!   response indicates the component's liveness with higher confidence than
//!   a network-level ICMP ping";
//! * mbus itself is monitored; while mbus is suspected down, other
//!   components' silence is attributed to the bus and not reported;
//! * FD and REC talk over a dedicated connection, not mbus;
//! * FD monitors REC and initiates REC's recovery itself (the only
//!   restart knowledge FD has, §2.2).
//!
//! Beyond the paper, the detector supports *suspicion hardening* for
//! degraded links: a component is only reported failed after
//! [`suspicion_threshold`](crate::config::StationConfig::suspicion_threshold)
//! missed pongs within a sliding window of
//! [`suspicion_window`](crate::config::StationConfig::suspicion_window)
//! ping rounds, and each component's pong deadline can be tuned via
//! [`ping_timeout_overrides`](crate::config::StationConfig::ping_timeout_overrides).
//! At the paper's threshold of 1 the behaviour is exactly the original
//! report-on-first-miss detector.

use std::collections::{HashMap, HashSet, VecDeque};

use mercury_msg::Message;
use rr_sim::telemetry::LATENCY_BUCKETS;
use rr_sim::{Actor, Context, Event, SimDuration, SimTime};

use crate::components::common::{Lifecycle, Shared, Wire, TIMER_BOOT, TIMER_ROLE_BASE};
use crate::config::names;

const TIMER_PING_TICK: u64 = TIMER_ROLE_BASE;
/// Zero-delay timer that flushes the suspects buffered within one instant.
/// Same-instant pong timeouts are queued ahead of this timer (the engine is
/// FIFO within an instant), so the flush sees the whole batch.
const TIMER_FLUSH_SUSPECTS: u64 = TIMER_ROLE_BASE + 1;
/// Timeout timers carry `TIMER_TIMEOUT_BASE + round · TIMEOUT_STRIDE + slot`,
/// one per pinged component per round, so per-component timeouts can differ.
const TIMER_TIMEOUT_BASE: u64 = 1000;
/// Slots per round in the timeout-timer key space.
const TIMEOUT_STRIDE: u64 = 64;
/// The slot reserved for the direct ping to REC.
const REC_SLOT: u64 = TIMEOUT_STRIDE - 1;

/// The failure-detector actor.
#[derive(Debug)]
pub struct Fd {
    life: Lifecycle,
    /// The components monitored via mbus.
    monitored: Vec<String>,
    round: u64,
    /// Outstanding pings of the current round: component → (seq, sent-at),
    /// the send timestamp feeding the ping-latency telemetry.
    outstanding: HashMap<String, (u64, SimTime)>,
    /// Components currently believed down.
    down: HashMap<String, bool>,
    /// Components that missed at least one ping round (whether or not their
    /// silence was reported — it may have been suppressed while mbus was
    /// down). Their next pong triggers an Alive notice so REC can complete
    /// group restarts.
    missing: HashSet<String>,
    /// Sliding per-component hit/miss record (`true` = missed), newest last,
    /// at most `suspicion_window` entries.
    history: HashMap<String, VecDeque<bool>>,
    /// Components convicted this instant, awaiting the zero-delay flush that
    /// reports them to REC in one batch (so REC can plan one antichain of
    /// recovery episodes instead of reacting to each suspect alone).
    suspect_buffer: Vec<String>,
    /// Outstanding direct ping to REC, if any.
    rec_outstanding: Option<u64>,
    /// Consecutive missed REC pongs.
    rec_misses: u32,
    rec_down: bool,
    /// Do not watch REC before this time (it is rebooting on our orders).
    rec_grace_until: SimTime,
}

impl Fd {
    /// Creates the failure detector monitoring `monitored` components.
    ///
    /// # Panics
    ///
    /// Panics if more components are monitored than the timeout-timer key
    /// space has slots (63).
    pub fn new(shared: Shared, monitored: Vec<String>) -> Fd {
        assert!(
            monitored.len() < REC_SLOT as usize,
            "FD supports at most {} monitored components",
            REC_SLOT - 1
        );
        Fd {
            life: Lifecycle::new(names::FD, shared),
            monitored,
            round: 0,
            outstanding: HashMap::new(),
            down: HashMap::new(),
            missing: HashSet::new(),
            history: HashMap::new(),
            suspect_buffer: Vec::new(),
            rec_outstanding: None,
            rec_misses: 0,
            rec_down: false,
            rec_grace_until: SimTime::ZERO,
        }
    }

    fn seq_for(&self, round: u64, idx: usize) -> u64 {
        round * 1000 + idx as u64
    }

    fn ping_tick(&mut self, ctx: &mut Context<'_, Wire>) {
        self.round += 1;
        self.outstanding.clear();
        for (idx, comp) in self.monitored.clone().into_iter().enumerate() {
            let seq = self.seq_for(self.round, idx);
            self.life.send_bus(ctx, &comp, Message::Ping { seq });
            self.life
                .shared()
                .telemetry
                .borrow_mut()
                .incr("fd_pings_sent");
            let timeout = SimDuration::from_secs_f64(self.life.config().ping_timeout_for(&comp));
            ctx.set_timer(
                timeout,
                TIMER_TIMEOUT_BASE + self.round * TIMEOUT_STRIDE + idx as u64,
            );
            self.outstanding.insert(comp, (seq, ctx.now()));
        }
        // REC is pinged over the dedicated connection — unless we just
        // restarted it and it is still booting.
        if ctx.now() >= self.rec_grace_until {
            let rec_seq = self.seq_for(self.round, 999);
            self.life
                .send_direct(ctx, names::REC, Message::Ping { seq: rec_seq });
            self.rec_outstanding = Some(rec_seq);
            let timeout =
                SimDuration::from_secs_f64(self.life.config().ping_timeout_for(names::REC));
            ctx.set_timer(
                timeout,
                TIMER_TIMEOUT_BASE + self.round * TIMEOUT_STRIDE + REC_SLOT,
            );
        }

        let period = self.life.config().ping_period();
        ctx.set_timer(period, TIMER_PING_TICK);
    }

    /// Records this round's hit/miss for `comp` and returns `true` when the
    /// misses within the suspicion window reach the threshold.
    fn note_round(&mut self, comp: &str, missed: bool) -> bool {
        let window = self.life.config().suspicion_window.max(1) as usize;
        let threshold = self.life.config().suspicion_threshold.max(1) as usize;
        let h = self.history.entry(comp.to_string()).or_default();
        h.push_back(missed);
        while h.len() > window {
            h.pop_front();
        }
        h.iter().filter(|m| **m).count() >= threshold
    }

    fn handle_timeout(&mut self, round: u64, slot: u64, ctx: &mut Context<'_, Wire>) {
        if round != self.round {
            return; // stale timeout from an earlier round
        }
        if slot == REC_SLOT {
            self.handle_rec_timeout(ctx);
            return;
        }
        let Some(comp) = self.monitored.get(slot as usize).cloned() else {
            return;
        };
        let missed = self.outstanding.contains_key(&comp);
        let mbus_unresponsive = self.outstanding.contains_key(names::MBUS)
            || self.down.get(names::MBUS).copied().unwrap_or(false);
        if missed && comp != names::MBUS && mbus_unresponsive {
            // The bus is down: this component's silence proves nothing.
            // Record nothing — a round with no evidence must neither fill
            // the suspicion window (false conviction) nor reset a run of
            // genuine misses (a lost bus pong would then indefinitely delay
            // detection of a really-dead component). Remember the silence so
            // the next pong still produces an Alive notice.
            self.missing.insert(comp);
            return;
        }
        if missed {
            self.life
                .shared()
                .telemetry
                .borrow_mut()
                .incr_labeled("fd_ping_timeouts", &comp);
        }
        let suspect = self.note_round(&comp, missed);
        if !missed || !suspect {
            return;
        }
        self.missing.insert(comp.clone());
        let was_down = self.down.get(&comp).copied().unwrap_or(false);
        if !was_down {
            ctx.trace_mark(format!("detect:{comp}"));
            self.life
                .shared()
                .telemetry
                .borrow_mut()
                .record_suspected(ctx.now(), &comp);
        }
        self.down.insert(comp.clone(), true);
        if self.suspect_buffer.is_empty() {
            ctx.set_timer(SimDuration::ZERO, TIMER_FLUSH_SUSPECTS);
        }
        self.suspect_buffer.push(comp);
    }

    /// Reports everything convicted this instant. A lone suspect goes out as
    /// the classic `Failed`; simultaneous convictions travel together so REC
    /// sees the correlation.
    fn flush_suspects(&mut self, ctx: &mut Context<'_, Wire>) {
        let mut suspects = std::mem::take(&mut self.suspect_buffer);
        if suspects.len() == 1 {
            if let Some(component) = suspects.pop() {
                self.life
                    .send_direct(ctx, names::REC, Message::Failed { component });
            }
        } else if !suspects.is_empty() {
            self.life.send_direct(
                ctx,
                names::REC,
                Message::FailedBatch {
                    components: suspects,
                },
            );
        }
    }

    /// REC watchdog: FD itself knows how to restart REC (and only REC). The
    /// same suspicion threshold applies, as consecutive missed pongs.
    fn handle_rec_timeout(&mut self, ctx: &mut Context<'_, Wire>) {
        if self.rec_outstanding.take().is_none() {
            return;
        }
        self.rec_misses += 1;
        if self.rec_misses < self.life.config().suspicion_threshold.max(1) {
            return;
        }
        if !self.rec_down {
            ctx.trace_mark("detect:rec");
        }
        self.rec_down = true;
        if let Some(rec) = ctx.lookup(names::REC) {
            ctx.trace_mark("fd-restarts:rec");
            self.life
                .shared()
                .telemetry
                .borrow_mut()
                .incr("fd_restarts_rec");
            ctx.kill_after(SimDuration::ZERO, rec);
            let exec = SimDuration::from_secs_f64(self.life.config().exec_delay_s);
            ctx.respawn_after(exec, rec);
            let grace = SimDuration::from_secs_f64(self.life.config().watchdog_grace_s);
            self.rec_grace_until = ctx.now() + grace;
            self.rec_misses = 0;
        }
    }

    fn handle_pong(&mut self, src: &str, seq: u64, ctx: &mut Context<'_, Wire>) {
        if src == names::REC {
            if self.rec_outstanding != Some(seq) {
                // An answer to a ping from an earlier epoch (or from before a
                // watchdog restart). Attributing it to the current round
                // would let one stale pong mask a live miss, so count it and
                // drop it.
                self.life
                    .shared()
                    .telemetry
                    .borrow_mut()
                    .incr_labeled("fd_stale_pongs", names::REC);
                return;
            }
            self.rec_outstanding = None;
            self.rec_misses = 0;
            if self.rec_down {
                self.rec_down = false;
                ctx.trace_mark("alive:rec");
            }
            return;
        }
        match self.outstanding.get(src) {
            Some(&(expected, sent_at)) if expected == seq => {
                self.outstanding.remove(src);
                let rtt = ctx.now().saturating_since(sent_at);
                self.life.shared().telemetry.borrow_mut().observe(
                    "fd_ping_latency",
                    src,
                    rtt,
                    LATENCY_BUCKETS,
                );
            }
            _ => {
                // A pong whose seq does not match this round's outstanding
                // ping (a delayed answer to an earlier epoch, or a duplicate
                // of one already consumed). It is liveness evidence for a
                // round that already closed, not this one — counting it here
                // would both skew the RTT histogram and, worse, let a stale
                // answer produce an Alive notice for a component that has
                // since died. Epoch-tag it away.
                self.life
                    .shared()
                    .telemetry
                    .borrow_mut()
                    .incr_labeled("fd_stale_pongs", src);
                return;
            }
        }
        let was_down = self.down.get(src).copied().unwrap_or(false);
        if was_down || self.missing.contains(src) {
            self.down.insert(src.to_string(), false);
            self.missing.remove(src);
            // A recovered component starts from a clean suspicion window.
            self.history.remove(src);
            ctx.trace_mark(format!("alive:{src}"));
            self.life.send_direct(
                ctx,
                names::REC,
                Message::Alive {
                    component: src.to_string(),
                },
            );
        }
    }
}

impl Actor<Wire> for Fd {
    fn on_event(&mut self, ev: Event<Wire>, ctx: &mut Context<'_, Wire>) {
        match ev {
            Event::Start => self.life.begin_boot(ctx, 0.0),
            Event::Timer { key: TIMER_BOOT } => {
                self.life.set_ready(ctx);
                // Wait out the station's cold start before the first sweep.
                let grace = SimDuration::from_secs_f64(self.life.config().fd_grace_s);
                ctx.set_timer(grace, TIMER_PING_TICK);
            }
            Event::Timer {
                key: TIMER_PING_TICK,
            } => self.ping_tick(ctx),
            Event::Timer {
                key: TIMER_FLUSH_SUSPECTS,
            } => self.flush_suspects(ctx),
            Event::Timer { key } if key >= TIMER_TIMEOUT_BASE => {
                let offset = key - TIMER_TIMEOUT_BASE;
                self.handle_timeout(offset / TIMEOUT_STRIDE, offset % TIMEOUT_STRIDE, ctx);
            }
            Event::Timer { key } => {
                self.life.handle_beacon_timer(key, ctx, 0.0);
            }
            Event::Message { payload, .. } => {
                let Some(env) = self.life.parse(ctx, &payload) else {
                    return;
                };
                // Answer REC's direct liveness pings.
                if self.life.handle_common(&env, ctx, 0.0) {
                    return;
                }
                if let Message::Pong { seq, .. } = env.body {
                    let src = env.src.clone();
                    self.handle_pong(&src, seq, ctx);
                }
            }
        }
    }
}

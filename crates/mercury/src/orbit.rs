//! Satellite orbit propagation and pass prediction.
//!
//! `ses` — the satellite estimator — "calculates satellite position, radio
//! frequencies, and antenna pointing angles" (§2.1). This module implements a
//! simplified two-body propagator for circular low-earth orbits, sufficient
//! to drive realistic pass workloads: azimuth/elevation/range from the
//! ground site, downlink Doppler, and pass-window prediction for the 10–20
//! weekly passes the paper's station supports.
//!
//! The model: a circular orbit of given altitude, inclination and initial
//! phase, propagated analytically in an Earth-centered inertial frame, with
//! the ground site rotating at the sidereal rate; topocentric conversion via
//! the standard ECI → ECEF → ENU chain. No J2 or drag — pass *shapes* (rise,
//! culminate, set; Doppler sign flip at closest approach) are what matter
//! here, not centimetre accuracy.

/// Earth's gravitational parameter, km³/s².
const MU_EARTH: f64 = 398_600.441_8;
/// Earth's mean radius, km.
const R_EARTH: f64 = 6_371.0;
/// Earth's sidereal rotation rate, rad/s.
const OMEGA_EARTH: f64 = 7.292_115_9e-5;
/// Speed of light, km/s.
const C_LIGHT: f64 = 299_792.458;

/// A ground station site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroundSite {
    /// Geodetic latitude in degrees (north positive).
    pub latitude_deg: f64,
    /// Longitude in degrees (east positive).
    pub longitude_deg: f64,
    /// Altitude above the reference sphere, km.
    pub altitude_km: f64,
}

impl GroundSite {
    /// Stanford, California — the Mercury ground station's home.
    pub fn stanford() -> GroundSite {
        GroundSite {
            latitude_deg: 37.4275,
            longitude_deg: -122.1697,
            altitude_km: 0.03,
        }
    }
}

/// A satellite on a circular LEO orbit.
#[derive(Debug, Clone, PartialEq)]
pub struct Satellite {
    /// Catalog name (e.g. `opal`).
    pub name: String,
    /// Orbit altitude above the mean Earth radius, km.
    pub altitude_km: f64,
    /// Inclination, degrees.
    pub inclination_deg: f64,
    /// Right ascension of the ascending node at epoch, degrees.
    pub raan_deg: f64,
    /// Argument of latitude (phase along the orbit) at epoch, degrees.
    pub phase_deg: f64,
    /// Downlink centre frequency, Hz.
    pub downlink_hz: f64,
}

impl Satellite {
    /// OPAL (OSCAR-38), launched 2000 — one of the two satellites Mercury
    /// serves (§2.1). Orbit parameters approximate.
    pub fn opal() -> Satellite {
        Satellite {
            name: "opal".into(),
            altitude_km: 750.0,
            inclination_deg: 100.2,
            raan_deg: 40.0,
            phase_deg: 0.0,
            downlink_hz: 437_100_000.0,
        }
    }

    /// SAPPHIRE (OSCAR-45) — Stanford's first amateur satellite.
    pub fn sapphire() -> Satellite {
        Satellite {
            name: "sapphire".into(),
            altitude_km: 800.0,
            inclination_deg: 98.6,
            raan_deg: 120.0,
            phase_deg: 55.0,
            downlink_hz: 437_095_000.0,
        }
    }

    /// Orbital radius, km.
    pub fn orbit_radius_km(&self) -> f64 {
        R_EARTH + self.altitude_km
    }

    /// Mean motion, rad/s.
    pub fn mean_motion_rad_s(&self) -> f64 {
        (MU_EARTH / self.orbit_radius_km().powi(3)).sqrt()
    }

    /// Orbital period, seconds.
    pub fn period_s(&self) -> f64 {
        std::f64::consts::TAU / self.mean_motion_rad_s()
    }

    /// ECI position (km) and velocity (km/s) at `t` seconds after epoch.
    pub fn eci_state(&self, t_s: f64) -> ([f64; 3], [f64; 3]) {
        let n = self.mean_motion_rad_s();
        let r = self.orbit_radius_km();
        let u = self.phase_deg.to_radians() + n * t_s; // argument of latitude
        let inc = self.inclination_deg.to_radians();
        let raan = self.raan_deg.to_radians();
        let (su, cu) = u.sin_cos();
        let (si, ci) = inc.sin_cos();
        let (so, co) = raan.sin_cos();
        // Position in the orbital plane, rotated by inclination then RAAN.
        let pos = [
            r * (co * cu - so * su * ci),
            r * (so * cu + co * su * ci),
            r * (su * si),
        ];
        let v = n * r;
        let vel = [
            v * (-co * su - so * cu * ci),
            v * (-so * su + co * cu * ci),
            v * (cu * si),
        ];
        (pos, vel)
    }
}

/// A topocentric look angle from the ground site to a satellite.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LookAngle {
    /// Azimuth, degrees clockwise from north.
    pub azimuth_deg: f64,
    /// Elevation above the horizon, degrees (negative: below horizon).
    pub elevation_deg: f64,
    /// Slant range, km.
    pub range_km: f64,
    /// Range rate, km/s (negative while approaching).
    pub range_rate_km_s: f64,
}

impl LookAngle {
    /// `true` if the satellite is above the horizon.
    pub fn is_visible(&self) -> bool {
        self.elevation_deg > 0.0
    }

    /// Downlink Doppler shift in Hz for a carrier at `downlink_hz`:
    /// positive while the satellite approaches.
    pub fn doppler_hz(&self, downlink_hz: f64) -> f64 {
        -self.range_rate_km_s / C_LIGHT * downlink_hz
    }
}

fn dot(a: [f64; 3], b: [f64; 3]) -> f64 {
    a[0] * b[0] + a[1] * b[1] + a[2] * b[2]
}

fn norm(a: [f64; 3]) -> f64 {
    dot(a, a).sqrt()
}

/// Computes the look angle from `site` to `sat` at `t` seconds after epoch.
pub fn look_angle(site: &GroundSite, sat: &Satellite, t_s: f64) -> LookAngle {
    let (sat_pos, sat_vel) = sat.eci_state(t_s);

    // Site position in ECI: the Earth rotates beneath the inertial frame.
    let lat = site.latitude_deg.to_radians();
    let lon = site.longitude_deg.to_radians() + OMEGA_EARTH * t_s;
    let r_site = R_EARTH + site.altitude_km;
    let (slat, clat) = lat.sin_cos();
    let (slon, clon) = lon.sin_cos();
    let site_pos = [r_site * clat * clon, r_site * clat * slon, r_site * slat];
    // Site velocity due to Earth rotation.
    let site_vel = [-OMEGA_EARTH * site_pos[1], OMEGA_EARTH * site_pos[0], 0.0];

    let rel = [
        sat_pos[0] - site_pos[0],
        sat_pos[1] - site_pos[1],
        sat_pos[2] - site_pos[2],
    ];
    let rel_vel = [
        sat_vel[0] - site_vel[0],
        sat_vel[1] - site_vel[1],
        sat_vel[2] - site_vel[2],
    ];
    let range = norm(rel);
    let range_rate = dot(rel, rel_vel) / range;

    // ENU basis at the site.
    let east = [-slon, clon, 0.0];
    let north = [-slat * clon, -slat * slon, clat];
    let up = [clat * clon, clat * slon, slat];
    let e = dot(rel, east);
    let n = dot(rel, north);
    let u = dot(rel, up);

    let azimuth = e.atan2(n).to_degrees().rem_euclid(360.0);
    let elevation = (u / range).asin().to_degrees();

    LookAngle {
        azimuth_deg: azimuth,
        elevation_deg: elevation,
        range_km: range,
        range_rate_km_s: range_rate,
    }
}

/// A predicted pass window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PassWindow {
    /// Rise time, seconds after epoch.
    pub rise_s: f64,
    /// Set time, seconds after epoch.
    pub set_s: f64,
    /// Maximum elevation during the pass, degrees.
    pub max_elevation_deg: f64,
}

impl PassWindow {
    /// Pass duration in seconds.
    pub fn duration_s(&self) -> f64 {
        self.set_s - self.rise_s
    }
}

/// Predicts the passes of `sat` over `site` within `[from_s, to_s)`, sampled
/// on a coarse grid and refined by bisection at the horizon crossings.
pub fn predict_passes(
    site: &GroundSite,
    sat: &Satellite,
    from_s: f64,
    to_s: f64,
) -> Vec<PassWindow> {
    assert!(to_s >= from_s, "empty prediction window");
    let step = 20.0; // seconds; LEO passes last several minutes
    let elev = |t: f64| look_angle(site, sat, t).elevation_deg;

    let refine = |mut lo: f64, mut hi: f64| {
        // Invariant: sign change of elevation between lo and hi.
        for _ in 0..40 {
            let mid = (lo + hi) / 2.0;
            if (elev(lo) > 0.0) == (elev(mid) > 0.0) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        (lo + hi) / 2.0
    };

    let mut passes = Vec::new();
    let mut t = from_s;
    let mut above = elev(t) > 0.0;
    let mut rise = if above { Some(from_s) } else { None };
    let mut max_el: f64 = f64::NEG_INFINITY;
    while t < to_s {
        let next = (t + step).min(to_s);
        let e = elev(next);
        max_el = max_el.max(e);
        let now_above = e > 0.0;
        if now_above != above {
            let crossing = refine(t, next);
            if now_above {
                rise = Some(crossing);
                max_el = e;
            } else if let Some(r) = rise.take() {
                passes.push(PassWindow {
                    rise_s: r,
                    set_s: crossing,
                    max_elevation_deg: max_el,
                });
            }
            above = now_above;
        }
        t = next;
    }
    if let (true, Some(r)) = (above, rise) {
        passes.push(PassWindow {
            rise_s: r,
            set_s: to_s,
            max_elevation_deg: max_el,
        });
    }
    passes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leo_period_is_about_100_minutes() {
        let sat = Satellite::opal();
        let p = sat.period_s();
        assert!((5400.0..6600.0).contains(&p), "period {p}");
    }

    #[test]
    fn eci_state_stays_on_the_orbit_sphere() {
        let sat = Satellite::sapphire();
        for i in 0..100 {
            let (pos, vel) = sat.eci_state(i as f64 * 97.0);
            let r = norm(pos);
            assert!((r - sat.orbit_radius_km()).abs() < 1e-6, "radius {r}");
            // Velocity is perpendicular to position on a circular orbit.
            assert!(dot(pos, vel).abs() < 1e-3);
        }
    }

    #[test]
    fn elevation_is_bounded_and_range_sane() {
        let site = GroundSite::stanford();
        let sat = Satellite::opal();
        for i in 0..2000 {
            let la = look_angle(&site, &sat, i as f64 * 17.0);
            assert!((-90.0..=90.0).contains(&la.elevation_deg));
            assert!((0.0..360.0).contains(&la.azimuth_deg));
            // Range between (altitude) and (horizon distance + slack).
            assert!(la.range_km >= sat.altitude_km * 0.9);
            assert!(la.range_km <= 2.0 * (R_EARTH + sat.altitude_km));
        }
    }

    #[test]
    fn passes_exist_and_have_leo_durations() {
        let site = GroundSite::stanford();
        let sat = Satellite::opal();
        let day = 86_400.0;
        let passes = predict_passes(&site, &sat, 0.0, day);
        // A polar-ish LEO bird passes over a mid-latitude site several times
        // a day ("10-20 satellite passes per week" is per-satellite usable
        // passes; geometric passes are more frequent).
        assert!(
            (2..=12).contains(&passes.len()),
            "got {} passes",
            passes.len()
        );
        for p in &passes {
            assert!(p.set_s > p.rise_s);
            assert!(
                p.duration_s() < 1200.0,
                "pass too long: {}s",
                p.duration_s()
            );
            assert!(p.max_elevation_deg > 0.0);
        }
        // Paper: passes last "about 15 minutes" at most; typical is shorter.
        let longest = passes.iter().map(|p| p.duration_s()).fold(0.0, f64::max);
        assert!(longest > 120.0, "longest pass only {longest}s");
    }

    #[test]
    fn elevation_positive_within_predicted_window() {
        let site = GroundSite::stanford();
        let sat = Satellite::sapphire();
        let passes = predict_passes(&site, &sat, 0.0, 86_400.0);
        let p = passes.first().expect("at least one pass");
        let mid = (p.rise_s + p.set_s) / 2.0;
        assert!(look_angle(&site, &sat, mid).is_visible());
        // Just outside the window the satellite is below the horizon.
        assert!(!look_angle(&site, &sat, p.rise_s - 30.0).is_visible());
        assert!(!look_angle(&site, &sat, p.set_s + 30.0).is_visible());
    }

    #[test]
    fn doppler_flips_sign_at_closest_approach() {
        let site = GroundSite::stanford();
        let sat = Satellite::opal();
        let passes = predict_passes(&site, &sat, 0.0, 86_400.0);
        let p = passes
            .iter()
            .find(|p| p.max_elevation_deg > 20.0)
            .unwrap_or(&passes[0]);
        let early = look_angle(&site, &sat, p.rise_s + 10.0);
        let late = look_angle(&site, &sat, p.set_s - 10.0);
        let f = sat.downlink_hz;
        assert!(early.doppler_hz(f) > 0.0, "approaching → positive Doppler");
        assert!(late.doppler_hz(f) < 0.0, "receding → negative Doppler");
        // LEO UHF Doppler is within ±12 kHz.
        assert!(early.doppler_hz(f).abs() < 12_000.0);
    }

    #[test]
    fn range_rate_is_consistent_with_range_derivative() {
        let site = GroundSite::stanford();
        let sat = Satellite::opal();
        let t = 4321.0;
        let dt = 0.5;
        let a = look_angle(&site, &sat, t);
        let b = look_angle(&site, &sat, t + dt);
        let numeric = (b.range_km - a.range_km) / dt;
        assert!(
            (numeric - a.range_rate_km_s).abs() < 0.05,
            "analytic {} vs numeric {}",
            a.range_rate_km_s,
            numeric
        );
    }

    #[test]
    fn predict_passes_empty_window() {
        let site = GroundSite::stanford();
        let sat = Satellite::opal();
        assert!(predict_passes(&site, &sat, 100.0, 100.0).is_empty());
    }
}

//! Shared host-level state observed by all processes on the ground station
//! machine: boot-time resource contention and the radio hardware.
//!
//! These are *physical* couplings that cross process boundaries without any
//! message passing — exactly the kind of effect the paper measures ("a whole
//! system restart causes contention for resources that is not present when
//! restarting just one component", §4.1) and the reason pbcom restarts slow
//! down when the serial link bounces repeatedly (§4.4).

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;

use rr_sim::SimTime;

/// Tracks which components are currently booting, so each can scale its own
/// boot time by the contention factor.
#[derive(Debug, Default)]
pub struct HostLoad {
    booting: BTreeSet<String>,
}

impl HostLoad {
    /// Creates an empty load tracker behind a shared handle.
    pub fn new_shared() -> Rc<RefCell<HostLoad>> {
        Rc::new(RefCell::new(HostLoad::default()))
    }

    /// Pre-registers a group of components about to be restarted together,
    /// so that the first one to boot already sees the full group size.
    pub fn announce<I, S>(&mut self, components: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        for c in components {
            self.booting.insert(c.into());
        }
    }

    /// Marks a component as booting; returns the number of components now
    /// booting concurrently (including this one).
    pub fn begin_boot(&mut self, component: &str) -> usize {
        self.booting.insert(component.to_string());
        self.booting.len()
    }

    /// Marks a component as done booting.
    pub fn end_boot(&mut self, component: &str) {
        self.booting.remove(component);
    }

    /// The number of components currently booting.
    pub fn booting_count(&self) -> usize {
        self.booting.len()
    }
}

/// The radio hardware behind pbcom's serial port. Hardware state survives
/// process restarts — which is precisely why pbcom's second restart in quick
/// succession pays a renegotiation back-off.
#[derive(Debug, Default)]
pub struct RadioHardware {
    last_negotiation_at: Option<SimTime>,
    negotiations: u64,
}

impl RadioHardware {
    /// Creates the hardware model behind a shared handle.
    pub fn new_shared() -> Rc<RefCell<RadioHardware>> {
        Rc::new(RefCell::new(RadioHardware::default()))
    }

    /// Called when a serial negotiation starts. Returns the extra back-off
    /// seconds to charge if the previous negotiation was within `window_s`.
    pub fn begin_negotiation(&mut self, now: SimTime, window_s: f64, penalty_s: f64) -> f64 {
        let penalty = match self.last_negotiation_at {
            Some(prev) if now.saturating_since(prev).as_secs_f64() < window_s => penalty_s,
            _ => 0.0,
        };
        self.last_negotiation_at = Some(now);
        self.negotiations += 1;
        penalty
    }

    /// Total serial negotiations performed (diagnostics).
    pub fn negotiations(&self) -> u64 {
        self.negotiations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_load_counts_concurrent_boots() {
        let load = HostLoad::new_shared();
        load.borrow_mut().announce(["a", "b", "c"]);
        assert_eq!(load.borrow().booting_count(), 3);
        // begin_boot is idempotent w.r.t. the announce.
        assert_eq!(load.borrow_mut().begin_boot("a"), 3);
        load.borrow_mut().end_boot("a");
        load.borrow_mut().end_boot("b");
        assert_eq!(load.borrow().booting_count(), 1);
        assert_eq!(load.borrow_mut().begin_boot("d"), 2);
    }

    #[test]
    fn radio_hardware_backs_off_rapid_renegotiation() {
        let hw = RadioHardware::new_shared();
        let t = |s| SimTime::from_secs(s);
        let p = hw.borrow_mut().begin_negotiation(t(100), 60.0, 4.0);
        assert_eq!(p, 0.0, "first negotiation is clean");
        let p = hw.borrow_mut().begin_negotiation(t(130), 60.0, 4.0);
        assert_eq!(p, 4.0, "30s later: inside the back-off window");
        let p = hw.borrow_mut().begin_negotiation(t(300), 60.0, 4.0);
        assert_eq!(p, 0.0, "well outside the window again");
        assert_eq!(hw.borrow().negotiations(), 3);
    }
}

//! `REC` — the recovery module (§2.2): the paper's collocated recoverer +
//! oracle.
//!
//! "REC uses a restart tree data structure and a simple policy to choose
//! which module(s) to restart upon being notified of a failure. The policy
//! also keeps track of past restarts to prevent infinite restarts of 'hard'
//! failures."
//!
//! REC owns an [`rr_core::Recoverer`] over the station's restart tree. On a
//! failure report it consults the oracle, kills every component of the chosen
//! restart cell and respawns them (the `SIGKILL` + supervised-restart cycle);
//! on an alive report it marks the restart complete and, after a confirmation
//! window with no re-detection, declares the failure cured (feeding learning
//! oracles). REC also watches FD over their dedicated connection and restarts
//! it on silence — together they "tolerate any single and most multiple
//! software failures, with the exception of FD and REC failing together".

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::rc::Rc;

use mercury_msg::{ComponentStatus, Message};
use rr_core::oracle::{Failure, Oracle};
use rr_core::recoverer::{Recoverer, RecoveryDecision};
use rr_sim::{Actor, Context, Event, SimDuration, SimTime, TraceKind};

use crate::components::common::{Lifecycle, Shared, Wire, TIMER_BOOT, TIMER_ROLE_BASE};
use crate::config::names;
use crate::orbit;

const TIMER_FD_WATCH: u64 = TIMER_ROLE_BASE;
const TIMER_FD_TIMEOUT: u64 = TIMER_ROLE_BASE + 1;
/// Deferral-queue retry tick (admission control).
const TIMER_ADMIT: u64 = TIMER_ROLE_BASE + 2;
/// Cure-confirmation timers carry `TIMER_CONFIRM_BASE + slot`.
const TIMER_CONFIRM_BASE: u64 = 2000;

/// How the admission controller disposes of a screened failure report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Admission {
    /// Forward to the recoverer immediately.
    Run,
    /// Park in the deferral queue until capacity frees up (or the entry ages
    /// out).
    Defer,
    /// Drop. Only ever a duplicate of a request already parked in the
    /// deferral queue, so the faulty component never loses coverage.
    Shed,
}

/// The latest health beacon received from a component (future work §7).
#[derive(Debug, Clone, PartialEq)]
pub struct BeaconRecord {
    /// Self-reported status.
    pub status: ComponentStatus,
    /// Seconds of uptime reported.
    pub uptime_s: f64,
    /// Aging score in `[0, 1]`.
    pub aging: f64,
    /// Messages handled.
    pub handled: u64,
    /// When the beacon arrived.
    pub received_at: SimTime,
}

/// Recovery state shared between the REC actor and the experiment harness.
///
/// Keeping it behind an `Rc` means a REC process restart does not lose the
/// restart history (in the real station this state is tiny and REC re-reads
/// it from its log on startup).
pub struct RecControl {
    /// The recoverer: tree + oracle + policy + episodes.
    pub recoverer: Recoverer<Box<dyn Oracle>>,
    /// Ground-truth cure hints per component, configured by the fault
    /// injector for experiments with a knowledgeable (perfect/faulty) oracle.
    pub cure_hints: BTreeMap<String, Vec<String>>,
    /// Latest health beacons (§7). Ordered map: staleness sweeps and episode
    /// bookkeeping iterate it, and with concurrent episodes the iteration
    /// order is trace-visible — it must not vary run to run.
    pub beacons: BTreeMap<String, BeaconRecord>,
    /// Recovery actions taken, for reporting.
    pub actions: Vec<String>,
    /// Components REC has given up on (escalation exhausted or restart
    /// storm): further failure reports for them are dropped and the station
    /// runs degraded until an operator intervenes.
    pub quarantined: BTreeSet<String>,
    /// Components still rebooting per open episode (with the time the
    /// restart was issued), keyed by the episode's owner: a group restart is
    /// only complete when the whole cell is back, not just the owner. Ordered
    /// so same-instant completions confirm in a fixed order.
    pending: BTreeMap<String, (SimTime, BTreeSet<String>)>,
    /// Deferred restart requests: component → when it was first parked.
    /// Ordered so drain order is deterministic; at most one entry per
    /// component (later reports of a deferred component are shed).
    pub deferred: BTreeMap<String, SimTime>,
    /// Launch charges admitted within the sliding capacity window: when each
    /// restart was admitted and which component it was charged to, so a
    /// charge whose restart is later purged (GiveUp → quarantine) can be
    /// refunded. Lives here (not in the actor) so a REC process restart does
    /// not reset the pacing budget.
    admitted: Vec<(SimTime, String)>,
}

impl std::fmt::Debug for RecControl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecControl")
            .field("recoverer", &"Recoverer")
            .field("cure_hints", &self.cure_hints)
            .field("actions", &self.actions.len())
            .finish()
    }
}

impl RecControl {
    /// Creates the shared control block.
    pub fn new(recoverer: Recoverer<Box<dyn Oracle>>) -> Rc<RefCell<RecControl>> {
        Rc::new(RefCell::new(RecControl {
            recoverer,
            cure_hints: BTreeMap::new(),
            beacons: BTreeMap::new(),
            actions: Vec::new(),
            quarantined: BTreeSet::new(),
            pending: BTreeMap::new(),
            deferred: BTreeMap::new(),
            admitted: Vec::new(),
        }))
    }

    /// Drops capacity-window launch records older than `window_s`.
    fn prune_admitted(&mut self, now: SimTime, window_s: f64) {
        self.admitted
            .retain(|(t, _)| now.saturating_since(*t).as_secs_f64() < window_s);
    }

    /// Launches admitted within the capacity window ending at `now`.
    pub fn admitted_in_window(&mut self, now: SimTime, window_s: f64) -> usize {
        self.prune_admitted(now, window_s);
        self.admitted.len()
    }

    /// Refunds the newest window charge taken for `component`, if any.
    ///
    /// A charge is taken at classification time, before the recoverer rules
    /// on the report; when the ruling is GiveUp the restart never launches,
    /// and without a refund the dead charge would keep counting against
    /// `admitted_in_window` for the rest of the window — a quarantine burst
    /// could starve admission of perfectly healthy components.
    pub fn refund_admitted(&mut self, component: &str) {
        if let Some(i) = self.admitted.iter().rposition(|(_, c)| c == component) {
            self.admitted.remove(i);
        }
    }
}

/// Shared handle to REC's control state.
pub type RecHandle = Rc<RefCell<RecControl>>;

/// The recovery-module actor.
pub struct Rec {
    life: Lifecycle,
    control: RecHandle,
    /// Confirmation timers: slot → component.
    confirms: HashMap<u64, String>,
    next_confirm_slot: u64,
    fd_outstanding: bool,
    /// Consecutive missed FD pongs (the suspicion threshold applies to the
    /// FD watchdog too).
    fd_misses: u32,
    /// Do not watch FD before this time (it is rebooting on our orders).
    fd_grace_until: SimTime,
    /// Last time the bus was observed starved (its own beacon overdue): all
    /// relayed beacons starve with it, so staleness clocks only run from
    /// here.
    bus_starved_until: SimTime,
    /// Cached next pass window in *orbital* seconds (`rise_s`, `set_s`);
    /// recomputed from the ephemeris only once the cached pass has set.
    next_pass: Option<(f64, f64)>,
}

impl std::fmt::Debug for Rec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rec").field("life", &self.life).finish()
    }
}

impl Rec {
    /// Creates the REC actor over a shared control block.
    pub fn new(shared: Shared, control: RecHandle) -> Rec {
        Rec {
            life: Lifecycle::new(names::REC, shared),
            control,
            confirms: HashMap::new(),
            next_confirm_slot: 0,
            fd_outstanding: false,
            fd_misses: 0,
            fd_grace_until: SimTime::ZERO,
            bus_starved_until: SimTime::ZERO,
            next_pass: None,
        }
    }

    /// Screens a failure report against quarantine and in-flight restarts.
    ///
    /// Returns `false` when the report must be dropped: the component is
    /// quarantined, or an in-flight group restart that has not blown its
    /// deadline is still rebooting it. Overdue restarts are declared complete
    /// (failed) on the way so the recoverer can escalate instead of waiting
    /// forever.
    fn screen_report(&self, control: &mut RecControl, component: &str, now: SimTime) -> bool {
        // Quarantined components are a lost cause by definition: restarting
        // them more would only re-start the storm REC just shut down. The
        // station runs degraded without them.
        if control.quarantined.contains(component) {
            return false;
        }
        // A component that is down because an in-flight group restart has not
        // finished rebooting it is not a new failure — unless the reboot has
        // blown its deadline (e.g. the component was killed again mid-boot),
        // in which case the silence is a fresh failure.
        let deadline = self.life.config().restart_deadline_s;
        let mut expired: Vec<String> = Vec::new();
        let mut suppressed = false;
        for (episode, (issued_at, set)) in control.pending.iter() {
            if !set.contains(component) {
                continue;
            }
            if now.saturating_since(*issued_at).as_secs_f64() > deadline {
                expired.push(episode.clone());
            } else {
                suppressed = true;
            }
        }
        for episode in expired {
            if let Some((_, set)) = control.pending.get_mut(&episode) {
                set.remove(component);
                if set.is_empty() {
                    control.pending.remove(&episode);
                }
            }
            control.recoverer.on_restart_complete(&episode, now);
        }
        !suppressed
    }

    /// Builds the correlated failure for a screened report, feeding the
    /// oracle its negative feedback first if this is a re-detection after a
    /// completed restart (the last cure did not take).
    fn failure_for(&self, control: &mut RecControl, component: &str) -> Failure {
        let cure_set = control
            .cure_hints
            .get(component)
            .cloned()
            .unwrap_or_else(|| vec![component.to_string()]);
        if control.recoverer.is_recovering(component) && !control.recoverer.is_in_flight(component)
        {
            control.recoverer.on_not_cured(component);
        }
        Failure::correlated(component.to_string(), cure_set)
    }

    /// Classifies a screened failure report under admission control.
    ///
    /// Invariant: a component's *first* report is never shed — shedding is
    /// reserved for reports whose component already holds a deferral-queue
    /// entry (which preserves its coverage). Even a full deferral queue
    /// degrades to an immediate run rather than a shed.
    fn admission_classify(
        &self,
        control: &mut RecControl,
        component: &str,
        now: SimTime,
    ) -> Admission {
        let cfg = self.life.config();
        if !cfg.admission_enabled {
            return Admission::Run;
        }
        if control.deferred.contains_key(component) {
            return Admission::Shed;
        }
        // Capacity is charged here, at admission, so every member of a batch
        // sees the slots its siblings already claimed.
        if control.admitted_in_window(now, cfg.admission_window_s) < cfg.admission_capacity as usize
            || control.deferred.len() >= cfg.defer_queue_limit
        {
            control.admitted.push((now, component.to_string()));
            return Admission::Run;
        }
        control.deferred.insert(component.to_string(), now);
        Admission::Defer
    }

    /// Marks and counts a deferral (the request is already parked).
    fn note_deferred(&mut self, component: &str, now: SimTime, ctx: &mut Context<'_, Wire>) {
        ctx.trace_mark(format!("defer:{component}"));
        self.life.shared().telemetry.borrow_mut().record_deferred(
            now,
            component,
            "admission-capacity",
        );
    }

    /// Marks and counts a shed duplicate report.
    fn note_shed(&mut self, component: &str, now: SimTime, ctx: &mut Context<'_, Wire>) {
        ctx.trace_mark(format!("shed:{component}"));
        self.life.shared().telemetry.borrow_mut().record_shed(
            now,
            component,
            "duplicate-of-deferred",
        );
    }

    /// Forwards a screened, admitted report to the recoverer and applies its
    /// decision.
    fn forward_report(&mut self, component: &str, now: SimTime, ctx: &mut Context<'_, Wire>) {
        let decision = {
            let mut control = self.control.borrow_mut();
            let failure = self.failure_for(&mut control, component);
            control.recoverer.on_failure(failure, now)
        };
        self.apply_decision(decision, now, ctx);
    }

    /// Refreshes the recoverer's deadline model from the ephemeris: every
    /// component's deadline is the next pass rise (a component still down
    /// when the satellite rises misses the pass), with the configured
    /// critical components outranking the rest on ties.
    fn refresh_pass_deadlines(&mut self, now: SimTime) {
        let cfg = self.life.config();
        if !cfg.admission_enabled || cfg.satellites.is_empty() {
            return;
        }
        let orbital_now = now.as_secs_f64() + cfg.pass_epoch_offset_s;
        if let Some((_, set_s)) = self.next_pass {
            if orbital_now < set_s {
                return;
            }
        }
        let mut best: Option<(f64, f64)> = None;
        for sat in &cfg.satellites {
            if let Some(pass) =
                orbit::predict_passes(&cfg.site, sat, orbital_now, orbital_now + 86_400.0)
                    .into_iter()
                    .next()
            {
                if best.is_none_or(|(rise, _)| pass.rise_s < rise) {
                    best = Some((pass.rise_s, pass.set_s));
                }
            }
        }
        let Some((rise_s, set_s)) = best else {
            return;
        };
        self.next_pass = Some((rise_s, set_s));
        let deadline = SimTime::from_secs_f64((rise_s - cfg.pass_epoch_offset_s).max(0.0));
        let criticals = cfg.critical_components.clone();
        let mut control = self.control.borrow_mut();
        let components = control.recoverer.tree().components();
        let model = control.recoverer.deadline_model_mut();
        *model = rr_core::DeadlineModel::new();
        for comp in &components {
            model.set_deadline(comp, deadline);
        }
        for comp in &criticals {
            model.set_criticality(comp, 1);
        }
    }

    /// Drains the deferral queue at the retry cadence: aged-out and
    /// slack-exhausted entries run unconditionally (oldest first — the
    /// fairness guarantee; pacing must never cost a deadline-covered
    /// component its pass), then remaining capacity admits the most urgent
    /// entries under the deadline model (tightest pass slack, criticality
    /// breaking ties).
    fn drain_deferred(&mut self, ctx: &mut Context<'_, Wire>) {
        let cfg = self.life.config();
        let (capacity, window_s, max_age_s) = (
            cfg.admission_capacity as usize,
            cfg.admission_window_s,
            cfg.defer_max_age_s,
        );
        // A deferred entry must launch while there is still time to finish
        // the restart before its deadline; one more retry tick of waiting
        // would leave less than the restart's own deadline of lead.
        let lead_s = cfg.restart_deadline_s + cfg.admission_retry_s;
        let now = ctx.now();
        self.refresh_pass_deadlines(now);
        // (not-forced, urgency, enqueue time, name): ascending sort runs
        // forced (aged or slack-exhausted) entries first in FIFO order, then
        // the rest most-urgent first.
        let mut order: Vec<(bool, rr_core::Urgency, SimTime, String)> = {
            let control = self.control.borrow();
            control
                .deferred
                .iter()
                .map(|(component, enqueued)| {
                    let aged = now.saturating_since(*enqueued).as_secs_f64() >= max_age_s;
                    let model = control.recoverer.deadline_model();
                    let slack_out = model
                        .slack(component, now)
                        .is_some_and(|s| s.as_secs_f64() <= lead_s);
                    let urgency = model.urgency(component, now);
                    (!(aged || slack_out), urgency, *enqueued, component.clone())
                })
                .collect()
        };
        order.sort();
        for (not_forced, _, _, component) in order {
            let admissible = {
                let mut control = self.control.borrow_mut();
                !not_forced || control.admitted_in_window(now, window_s) < capacity
            };
            if !admissible {
                break; // sorted forced-first: nothing later is admissible either
            }
            let run = {
                let mut control = self.control.borrow_mut();
                control.deferred.remove(&component);
                let run = !control.quarantined.contains(&component)
                    && self.screen_report(&mut control, &component, now);
                if run {
                    // Charge the launch so later (unforced) entries and fresh
                    // reports see the slot as taken; a forced entry runs even
                    // over capacity but still loads the window it runs in.
                    control.admitted.push((now, component.clone()));
                }
                run
            };
            if !run {
                continue;
            }
            self.life
                .shared()
                .telemetry
                .borrow_mut()
                .incr_labeled("admission_admitted", &component);
            self.forward_report(&component, now, ctx);
        }
    }

    /// Applies one recovery decision: marks the trace, keeps the pending
    /// book, and pushes the restart button.
    fn apply_decision(
        &mut self,
        decision: RecoveryDecision,
        now: SimTime,
        ctx: &mut Context<'_, Wire>,
    ) {
        let mut control = self.control.borrow_mut();
        // Mirror the recoverer's aggregate decision tally into gauges, so an
        // exported snapshot always carries the oracle's lifetime counts.
        {
            let tally = control.recoverer.decision_tally();
            let telemetry = self.life.shared().telemetry.clone();
            let mut telemetry = telemetry.borrow_mut();
            telemetry.set_gauge("oracle_restarts_issued", "", tally.restarts as f64);
            telemetry.set_gauge("oracle_give_ups", "", tally.give_ups as f64);
            telemetry.set_gauge("oracle_merges", "", tally.merges as f64);
            telemetry.set_gauge(
                "oracle_already_recovering",
                "",
                tally.already_recovering as f64,
            );
        }
        match decision {
            RecoveryDecision::Restart {
                node,
                components,
                attempt,
                delay,
                origins,
            } => {
                let owner = origins
                    .first()
                    .cloned()
                    .unwrap_or_else(|| "unknown".to_string());
                let label = control.recoverer.tree().label(node).to_string();
                // Absorbed episodes are superseded by this one: credit their
                // origins to the merged episode and retire their pending
                // entries — the promoted restart covers those components.
                {
                    let telemetry = self.life.shared().telemetry.clone();
                    let mut telemetry = telemetry.borrow_mut();
                    telemetry.incr("decision_restart");
                    for origin in origins.iter().skip(1) {
                        telemetry.record_merged(now, origin, &owner);
                    }
                    telemetry.record_planned(now, &owner, &origins);
                    telemetry.record_restarting(now, &owner, &components, &origins, attempt);
                }
                for origin in origins.iter().skip(1) {
                    ctx.trace_mark(format!("merge:{origin}->{owner}"));
                    ctx.trace_event(TraceKind::EpisodeMerge, format!("{origin}->{owner}"));
                }
                for origin in &origins {
                    control.pending.remove(origin);
                }
                let action = format!("restart:{owner}:{attempt}:{}", components.join("+"));
                ctx.trace_mark(action.clone());
                ctx.trace_event(TraceKind::EpisodeBegin, format!("{owner}:{label}"));
                control.actions.push(format!("{now} {action} ({label})"));
                // The restart deadline runs from when the button is actually
                // pushed, after any backoff delay.
                control
                    .pending
                    .insert(owner, (now + delay, components.iter().cloned().collect()));
                drop(control);
                self.execute_restart(&components, delay, ctx);
            }
            RecoveryDecision::AlreadyRecovering { .. } => {
                self.life
                    .shared()
                    .telemetry
                    .borrow_mut()
                    .incr("decision_already_recovering");
            }
            RecoveryDecision::GiveUp { component, reason } => {
                let action = format!("giveup:{component}:{reason}");
                ctx.trace_mark(action.clone());
                ctx.trace_mark(format!("quarantine:{component}"));
                ctx.trace_event(TraceKind::EpisodeEnd, format!("{component}:gaveup"));
                control.pending.remove(&component);
                // A quarantined component's deferral entry is stale: leaving
                // it behind would re-issue a restart the policy just gave up
                // on the next time the queue drains.
                control.deferred.remove(&component);
                // The admission charge taken when this report was classified
                // paid for a restart that never launched; refund it so the
                // dead charge cannot starve admission of healthy components
                // for the rest of the capacity window.
                control.refund_admitted(&component);
                control.quarantined.insert(component.clone());
                control.actions.push(format!("{now} {action}"));
                let telemetry = self.life.shared().telemetry.clone();
                let mut telemetry = telemetry.borrow_mut();
                telemetry.incr("decision_giveup");
                telemetry.record_quarantined(now, &component, &reason.to_string());
            }
        }
    }

    fn on_failed(&mut self, component: String, ctx: &mut Context<'_, Wire>) {
        let now = ctx.now();
        let admission = {
            let mut control = self.control.borrow_mut();
            if !self.screen_report(&mut control, &component, now) {
                return;
            }
            // Serial baseline: one episode at a time. While any restart is in
            // flight a fresh suspicion is deferred, not queued — FD keeps
            // re-reporting it every ping round, so it is retried as soon as
            // the in-flight episode drains.
            if self.life.config().serial_recovery && !control.pending.is_empty() {
                ctx.trace_mark(format!("defer:{component}"));
                self.life
                    .shared()
                    .telemetry
                    .borrow_mut()
                    .incr_labeled("reports_deferred", &component);
                return;
            }
            self.admission_classify(&mut control, &component, now)
        };
        match admission {
            Admission::Run => self.forward_report(&component, now, ctx),
            Admission::Defer => self.note_deferred(&component, now, ctx),
            Admission::Shed => self.note_shed(&component, now, ctx),
        }
    }

    /// Handles a batched report: same-instant suspicions are planned together
    /// as one antichain of episodes, so independent subtrees restart in
    /// parallel while overlapping ones merge by promotion instead of racing.
    fn on_failed_batch(&mut self, components: Vec<String>, ctx: &mut Context<'_, Wire>) {
        if self.life.config().serial_recovery {
            // The serial baseline processes the batch as if the reports had
            // arrived one by one: the first survivor opens an episode, the
            // rest are deferred for FD to re-report.
            for component in components {
                self.on_failed(component, ctx);
            }
            return;
        }
        let now = ctx.now();
        let (failures, deferred, shed) = {
            let mut control = self.control.borrow_mut();
            let mut failures: Vec<Failure> = Vec::new();
            let mut deferred: Vec<String> = Vec::new();
            let mut shed: Vec<String> = Vec::new();
            for component in components {
                if !self.screen_report(&mut control, &component, now) {
                    continue;
                }
                match self.admission_classify(&mut control, &component, now) {
                    Admission::Run => failures.push(self.failure_for(&mut control, &component)),
                    Admission::Defer => deferred.push(component),
                    Admission::Shed => shed.push(component),
                }
            }
            (failures, deferred, shed)
        };
        for component in deferred {
            self.note_deferred(&component, now, ctx);
        }
        for component in shed {
            self.note_shed(&component, now, ctx);
        }
        if failures.is_empty() {
            return;
        }
        let decisions = {
            let mut control = self.control.borrow_mut();
            control.recoverer.on_failures(failures, now)
        };
        for decision in decisions {
            self.apply_decision(decision, now, ctx);
        }
    }

    fn execute_restart(
        &mut self,
        components: &[String],
        delay: SimDuration,
        ctx: &mut Context<'_, Wire>,
    ) {
        // Pre-announce the whole group so the first component to boot already
        // sees the full contention.
        self.life
            .shared()
            .load
            .borrow_mut()
            .announce(components.iter().cloned());
        let exec = SimDuration::from_secs_f64(self.life.config().exec_delay_s);
        for comp in components {
            let Some(pid) = ctx.lookup(comp) else {
                ctx.trace_mark(format!("restart-error:unknown:{comp}"));
                continue;
            };
            ctx.kill_after(delay, pid);
            ctx.respawn_after(delay + exec, pid);
        }
        // The cell members will not beacon while rebooting: restart their
        // staleness clocks from the button push so the zombie defense does
        // not convict a component REC itself took down.
        let restart_at = ctx.now() + delay;
        let mut control = self.control.borrow_mut();
        for comp in components {
            if let Some(record) = control.beacons.get_mut(comp) {
                record.received_at = record.received_at.max(restart_at);
            }
        }
    }

    fn on_alive(&mut self, component: String, ctx: &mut Context<'_, Wire>) {
        let now = ctx.now();
        let mut control = self.control.borrow_mut();
        // For a component mid-reboot, FD's alive notice restarts the zombie
        // clock too: it gets a full beacon timeout to produce its first
        // beacon. Only pending components qualify — a long-running zombie
        // also answers pings, and its clock must keep running.
        if control
            .pending
            .values()
            .any(|(_, set)| set.contains(&component))
        {
            if let Some(record) = control.beacons.get_mut(&component) {
                record.received_at = record.received_at.max(now);
            }
        }
        let mut completed: Vec<String> = Vec::new();
        for (episode, (_, set)) in control.pending.iter_mut() {
            set.remove(&component);
            if set.is_empty() {
                completed.push(episode.clone());
            }
        }
        for episode in &completed {
            control.pending.remove(episode);
            control.recoverer.on_restart_complete(episode, now);
        }
        drop(control);
        self.start_confirms(completed, ctx);
    }

    /// Beacons double as aliveness evidence: a component only beacons once it
    /// is ready, so a beacon whose boot began after the restart button was
    /// pushed completes the episode even if FD's one-shot `Alive` notice was
    /// lost on a degraded link. The uptime check skips still-alive group
    /// members that keep beaconing during a backoff delay.
    fn on_beacon_alive(&mut self, component: &str, uptime_s: f64, ctx: &mut Context<'_, Wire>) {
        let now = ctx.now();
        let mut control = self.control.borrow_mut();
        let mut completed: Vec<String> = Vec::new();
        for (episode, (issued_at, set)) in control.pending.iter_mut() {
            if now.saturating_since(*issued_at).as_secs_f64() <= uptime_s {
                continue;
            }
            if set.remove(component) && set.is_empty() {
                completed.push(episode.clone());
            }
        }
        for episode in &completed {
            control.pending.remove(episode);
            control.recoverer.on_restart_complete(episode, now);
        }
        drop(control);
        self.start_confirms(completed, ctx);
    }

    /// Starts the cure-confirmation window for each completed episode.
    fn start_confirms(&mut self, completed: Vec<String>, ctx: &mut Context<'_, Wire>) {
        for episode in completed {
            self.next_confirm_slot += 1;
            let slot = self.next_confirm_slot;
            self.confirms.insert(slot, episode);
            let window = SimDuration::from_secs_f64(self.life.config().cure_confirm_s);
            ctx.set_timer(window, TIMER_CONFIRM_BASE + slot);
        }
    }

    fn on_confirm(&mut self, slot: u64, ctx: &mut Context<'_, Wire>) {
        let Some(component) = self.confirms.remove(&slot) else {
            return;
        };
        let now = ctx.now();
        let mut control = self.control.borrow_mut();
        // If a new failure arrived meanwhile, an escalated restart is in
        // flight and this confirmation is moot.
        if control.recoverer.is_recovering(&component)
            && !control.recoverer.is_in_flight(&component)
        {
            // A merged episode cures every suspicion it absorbed: mark each
            // origin so per-component recovery accounting stays attributable.
            let origins = control
                .recoverer
                .episode_origins(&component)
                .unwrap_or_else(|| vec![component.clone()]);
            control.recoverer.on_cured(&component, now);
            for origin in origins {
                ctx.trace_mark(format!("cured:{origin}"));
            }
            ctx.trace_event(TraceKind::EpisodeEnd, format!("{component}:cured"));
            self.life
                .shared()
                .telemetry
                .borrow_mut()
                .record_cured(now, &component);
        }
    }

    /// Proactive rejuvenation (§3, §7): if a component's health beacon
    /// reports aging past the configured threshold, restart its cell now —
    /// planned downtime at a moment of REC's choosing instead of an
    /// unplanned failure later.
    fn maybe_rejuvenate(&mut self, component: &str, aging: f64, ctx: &mut Context<'_, Wire>) {
        let Some(threshold) = self.life.config().rejuvenation_aging_threshold else {
            return;
        };
        if aging < threshold || !self.life.is_ready() {
            return;
        }
        let components = {
            let mut control = self.control.borrow_mut();
            if control
                .pending
                .values()
                .any(|(_, set)| set.contains(component))
                || control.recoverer.is_recovering(component)
            {
                return; // already being handled
            }
            let tree = control.recoverer.tree();
            let Some(cell) = tree.cell_of_component(component) else {
                return;
            };
            let components = tree.components_under(cell);
            ctx.trace_mark(format!("rejuvenate:{component}"));
            self.life
                .shared()
                .telemetry
                .borrow_mut()
                .incr_labeled("rejuvenations", component);
            let now = ctx.now();
            control.actions.push(format!(
                "{now} rejuvenate:{component} ({})",
                components.join("+")
            ));
            // Track the reboot like an episode so FD reports during the
            // planned restart are suppressed.
            let now = ctx.now();
            control.pending.insert(
                component.to_string(),
                (now, components.iter().cloned().collect()),
            );
            components
        };
        self.execute_restart(&components, SimDuration::ZERO, ctx);
    }

    /// Zombie defense: a component whose last health beacon is older than
    /// `beacon_timeout_s` is doing no work, even if it still answers FD's
    /// liveness pings. Report it failed so the normal recovery machinery
    /// (tree, policy, quarantine) handles it.
    fn check_beacon_staleness(&mut self, ctx: &mut Context<'_, Wire>) {
        let timeout = self.life.config().beacon_timeout_s;
        if timeout <= 0.0 || !self.life.is_ready() {
            return;
        }
        let now = ctx.now();
        // A bus outage starves every relayed beacon at once, so a component's
        // silence proves nothing while (or shortly after) the bus itself was
        // overdue: staleness clocks only run from the last starved moment.
        let bus_overdue = {
            let control = self.control.borrow();
            control.beacons.get(names::MBUS).is_none_or(|record| {
                now.saturating_since(record.received_at).as_secs_f64()
                    > 2.0 * self.life.config().beacon_period_s
            })
        };
        if bus_overdue {
            self.bus_starved_until = now;
        }
        let floor = self.bus_starved_until;
        let stale: Vec<String> = {
            let control = self.control.borrow();
            control
                .beacons
                .iter()
                .filter(|(comp, record)| {
                    comp.as_str() != names::FD
                        && comp.as_str() != names::REC
                        && now
                            .saturating_since(record.received_at.max(floor))
                            .as_secs_f64()
                            > timeout
                        && !control.quarantined.contains(*comp)
                        && !control.recoverer.is_recovering(comp)
                        && !control.pending.values().any(|(_, set)| set.contains(*comp))
                        && control.recoverer.tree().cell_of_component(comp).is_some()
                })
                .map(|(comp, _)| comp.clone())
                .collect()
        };
        for comp in stale {
            ctx.trace_mark(format!("stale:{comp}"));
            self.life
                .shared()
                .telemetry
                .borrow_mut()
                .incr_labeled("beacon_stale", &comp);
            // Restart the staleness clock so the reboot we are about to issue
            // has time to produce a fresh beacon before we re-suspect.
            if let Some(record) = self.control.borrow_mut().beacons.get_mut(&comp) {
                record.received_at = now;
            }
            self.on_failed(comp, ctx);
        }
    }

    fn watch_fd(&mut self, ctx: &mut Context<'_, Wire>) {
        if ctx.now() >= self.fd_grace_until {
            self.life
                .send_direct(ctx, names::FD, Message::Ping { seq: 0 });
            self.fd_outstanding = true;
            let timeout =
                SimDuration::from_secs_f64(self.life.config().ping_timeout_for(names::FD));
            ctx.set_timer(timeout, TIMER_FD_TIMEOUT);
        }
        self.check_beacon_staleness(ctx);
        ctx.set_timer(self.life.config().ping_period(), TIMER_FD_WATCH);
    }
}

impl Actor<Wire> for Rec {
    fn on_event(&mut self, ev: Event<Wire>, ctx: &mut Context<'_, Wire>) {
        match ev {
            Event::Start => self.life.begin_boot(ctx, 0.0),
            Event::Timer { key: TIMER_BOOT } => {
                self.life.set_ready(ctx);
                // Give FD the same cold-start grace it gives the components.
                let grace = SimDuration::from_secs_f64(self.life.config().fd_grace_s);
                ctx.set_timer(grace, TIMER_FD_WATCH);
                // The deferral queue survives a REC restart (it lives in the
                // shared control block), so the drain tick re-arms here too.
                if self.life.config().admission_enabled {
                    let retry = SimDuration::from_secs_f64(self.life.config().admission_retry_s);
                    ctx.set_timer(retry, TIMER_ADMIT);
                }
            }
            Event::Timer { key: TIMER_ADMIT } => {
                if self.life.is_ready() {
                    self.drain_deferred(ctx);
                }
                let retry = SimDuration::from_secs_f64(self.life.config().admission_retry_s);
                ctx.set_timer(retry, TIMER_ADMIT);
            }
            Event::Timer {
                key: TIMER_FD_WATCH,
            } => self.watch_fd(ctx),
            Event::Timer {
                key: TIMER_FD_TIMEOUT,
            } => {
                if self.fd_outstanding {
                    self.fd_outstanding = false;
                    self.fd_misses += 1;
                    if self.fd_misses >= self.life.config().suspicion_threshold.max(1) {
                        // FD is silent: REC initiates FD's recovery (§2.2).
                        if let Some(fd) = ctx.lookup(names::FD) {
                            ctx.trace_mark("rec-restarts:fd");
                            self.life
                                .shared()
                                .telemetry
                                .borrow_mut()
                                .incr("rec_restarts_fd");
                            ctx.kill_after(SimDuration::ZERO, fd);
                            let exec = SimDuration::from_secs_f64(self.life.config().exec_delay_s);
                            ctx.respawn_after(exec, fd);
                            let grace =
                                SimDuration::from_secs_f64(self.life.config().watchdog_grace_s);
                            self.fd_grace_until = ctx.now() + grace;
                            self.fd_misses = 0;
                        }
                    }
                }
            }
            Event::Timer { key } if key >= TIMER_CONFIRM_BASE => {
                self.on_confirm(key - TIMER_CONFIRM_BASE, ctx);
            }
            Event::Timer { key } => {
                self.life.handle_beacon_timer(key, ctx, 0.0);
            }
            Event::Message { payload, .. } => {
                let Some(env) = self.life.parse(ctx, &payload) else {
                    return;
                };
                if self.life.handle_common(&env, ctx, 0.0) {
                    return;
                }
                match env.body {
                    Message::Failed { component } if self.life.is_ready() => {
                        self.on_failed(component, ctx);
                    }
                    Message::FailedBatch { components } if self.life.is_ready() => {
                        self.on_failed_batch(components, ctx);
                    }
                    Message::Alive { component } if self.life.is_ready() => {
                        self.on_alive(component, ctx);
                    }
                    Message::Pong { .. } if env.src == names::FD => {
                        self.fd_outstanding = false;
                        self.fd_misses = 0;
                    }
                    Message::Beacon {
                        component,
                        status,
                        uptime_s,
                        aging,
                        handled,
                    } => {
                        self.control.borrow_mut().beacons.insert(
                            component.clone(),
                            BeaconRecord {
                                status,
                                uptime_s,
                                aging,
                                handled,
                                received_at: ctx.now(),
                            },
                        );
                        if self.life.is_ready() {
                            self.on_beacon_alive(&component, uptime_s, ctx);
                        }
                        self.maybe_rejuvenate(&component, aging, ctx);
                    }
                    _ => {}
                }
            }
        }
    }
}

//! Station configuration and timing calibration.
//!
//! Every synthetic timing constant in the simulation lives here, next to the
//! paper measurement it was calibrated against, so the substitution
//! documented in DESIGN.md §5 is auditable in one place.
//!
//! Derivation of the calibration (all times in seconds):
//!
//! * **Detection** ≈ `ping_period/2 + ping_timeout` = 0.5 + 0.4 = 0.9 — the
//!   mean delay from a fail-silent crash (uniform phase within the 1 s ping
//!   cycle, §2.2) until FD reports it to REC.
//! * **Per-component recovery** (tree II, Table 2) =
//!   detection + exec + boot, so boot times are back-solved from Table 2:
//!   e.g. mbus 5.73 − 0.9 − 0.1 = 4.73.
//! * **Whole-system contention** (tree I, Table 2): 24.75 = 1.0 +
//!   `boot_fedrcom · (1 + q·(k−1)²)` with k = 5 ⇒ q ≈ 0.0119. The quadratic
//!   form captures the paper's observation that full restarts contend while
//!   two-component joint restarts barely do (tree IV/V numbers).
//! * **ses/str resync** (§4.3): a freshly restarted ses blocks on the old
//!   str, which services the handshake slowly (3.35 s) and subsequently
//!   suffers an induced failure: 0.9 + 0.1 + 5.15 + 3.35 ≈ 9.50 (Table 2).
//!   Symmetrically str + old ses: 3.75 ⇒ 9.76. Restarted *together*, both
//!   sides are fresh and the handshake is fast — tree IV's 6.25/6.11.
//! * **pbcom rapid-restart penalty** (§4.4): the radio hardware renegotiates
//!   slowly when the serial link bounces twice in quick succession (+4.0 s),
//!   reproducing the faulty-oracle cost of 29.19 s in tree IV.

use std::collections::BTreeMap;

use rr_core::analysis::SimpleCostModel;
use rr_core::model::{FailureMode, FailureModel};
use rr_core::RecoveryMode;
use rr_sim::{Dist, SimDuration};

use crate::orbit::{GroundSite, Satellite};

/// Unwraps a failure mode built from the literal Mercury rates, which are
/// valid by construction.
fn mode(m: Result<FailureMode, rr_core::ModelError>) -> FailureMode {
    m.unwrap_or_else(|e| unreachable!("literal Mercury rates are valid: {e}"))
}

/// Component names used throughout the station.
pub mod names {
    /// The software message bus.
    pub const MBUS: &str = "mbus";
    /// The unsplit radio proxy of trees I/II.
    pub const FEDRCOM: &str = "fedrcom";
    /// The front-end driver-radio (post-split, §4.2).
    pub const FEDR: &str = "fedr";
    /// The serial-port/TCP bridge (post-split, §4.2).
    pub const PBCOM: &str = "pbcom";
    /// The satellite estimator.
    pub const SES: &str = "ses";
    /// The satellite tracker.
    pub const STR: &str = "str";
    /// The radio tuner.
    pub const RTU: &str = "rtu";
    /// The failure detector.
    pub const FD: &str = "fd";
    /// The recovery module.
    pub const REC: &str = "rec";

    /// The five components of the original (unsplit) station.
    pub const UNSPLIT: [&str; 5] = [MBUS, FEDRCOM, SES, STR, RTU];
    /// The six components after the fedrcom split.
    pub const SPLIT: [&str; 6] = [MBUS, FEDR, PBCOM, SES, STR, RTU];
}

/// Per-component timing parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentTiming {
    /// Mean boot time (process start to functionally-ready, excluding sync).
    pub boot_mean_s: f64,
    /// Standard deviation of boot time (small, per the §3.2 small-CoV
    /// assumption).
    pub boot_std_s: f64,
}

impl ComponentTiming {
    fn new(boot_mean_s: f64, boot_std_s: f64) -> Self {
        ComponentTiming {
            boot_mean_s,
            boot_std_s,
        }
    }

    /// The boot-time distribution.
    pub fn boot_dist(&self) -> Dist {
        if self.boot_std_s == 0.0 {
            Dist::constant(self.boot_mean_s)
        } else {
            Dist::normal(self.boot_mean_s, self.boot_std_s)
        }
    }
}

/// Full station configuration: timings, coupling parameters, workload.
#[derive(Debug, Clone, PartialEq)]
pub struct StationConfig {
    /// FD liveness-ping period (paper: 1 s, §2.2).
    pub ping_period_s: f64,
    /// How long FD waits for a pong before declaring a miss.
    pub ping_timeout_s: f64,
    /// Per-component ping-timeout overrides for components whose pong path
    /// is slower than the default (keys are component names; values replace
    /// [`ping_timeout_s`](Self::ping_timeout_s) for that component only).
    pub ping_timeout_overrides: BTreeMap<String, f64>,
    /// How many missed pongs within [`suspicion_window`](Self::suspicion_window)
    /// rounds FD requires before suspecting a component. The paper's FD
    /// reports on the first miss (threshold 1); raising it trades detection
    /// latency for robustness to message loss on degraded links.
    pub suspicion_threshold: u32,
    /// Length, in ping rounds, of the sliding window over which
    /// [`suspicion_threshold`](Self::suspicion_threshold) misses are counted.
    /// Equal threshold and window means *consecutive* misses are required.
    pub suspicion_window: u32,
    /// One-way latency of an envelope hop over mbus.
    pub bus_latency_s: f64,
    /// One-way latency of the dedicated FD↔REC / fedr↔pbcom connections.
    pub direct_latency_s: f64,
    /// Delay from REC issuing a restart to the new process's start event
    /// (process spawn cost).
    pub exec_delay_s: f64,
    /// Quadratic restart-contention coefficient: k concurrently booting
    /// components are each slowed by `1 + q·(k−1)²`.
    pub contention_quadratic: f64,
    /// Per-component boot timings.
    pub timing: BTreeMap<String, ComponentTiming>,
    /// Seconds an *old* (long-running) ses takes to service str's resync.
    pub ses_resync_service_s: f64,
    /// Seconds an *old* str takes to service ses's resync.
    pub str_resync_service_s: f64,
    /// Handshake time between two freshly restarted peers.
    pub fresh_sync_s: f64,
    /// Uptime below which a peer is considered "fresh" (fast sync, no
    /// induced failure).
    pub fresh_threshold_s: f64,
    /// Delay from an old peer servicing a resync to its induced failure
    /// (§4.3: a restart in one "substantially always" leads to a restart of
    /// the other).
    pub induced_failure_delay_s: f64,
    /// fedr → pbcom TCP connect + accept time.
    pub connect_ack_s: f64,
    /// Extra pbcom negotiation time when the serial link bounced within
    /// `rapid_restart_window_s` (hardware back-off).
    pub pbcom_rapid_restart_penalty_s: f64,
    /// Window for the rapid-restart penalty.
    pub rapid_restart_window_s: f64,
    /// Number of fedr connection losses after which pbcom's aging causes it
    /// to fail (§4.2: "multiple fedr failures eventually lead to a pbcom
    /// failure").
    pub pbcom_aging_limit: u32,
    /// Delay from a poisoned fedr connecting until pbcom crashes (the
    /// §4.4 correlated failure that only a joint restart cures).
    pub poison_crash_delay_s: f64,
    /// Health-beacon period (0 disables beacons; future work §7).
    pub beacon_period_s: f64,
    /// If non-zero, REC treats a Ready component whose last beacon is older
    /// than this as failed even while FD still receives pongs — the defense
    /// against *zombie* components that answer liveness pings but do no
    /// work. 0 disables (the paper's configuration: pings only).
    pub beacon_timeout_s: f64,
    /// Proactive rejuvenation: when a beacon reports aging at or above this
    /// threshold, REC restarts the component's cell *before* it fails —
    /// "a bounded form of software rejuvenation" increasing MTTF (§3).
    /// `None` disables (the paper's measured configuration).
    pub rejuvenation_aging_threshold: Option<f64>,
    /// After FD restarts REC (or REC restarts FD), how long the watchdog
    /// waits before resuming liveness checks — must exceed the peer's boot
    /// time or the pair re-kills each other mid-boot forever.
    pub watchdog_grace_s: f64,
    /// Grace period after FD boots before it starts pinging, covering the
    /// station's initial cold start so components mid-first-boot are not
    /// reported as failures.
    pub fd_grace_s: f64,
    /// If a restarted component has not come back within this time, REC
    /// stops attributing its silence to the in-flight restart and treats
    /// further failure reports as a new failure (covers components killed
    /// mid-reboot by an unlucky second fault).
    pub restart_deadline_s: f64,
    /// How long REC waits after a restart completes before declaring the
    /// failure cured (must exceed the poison re-crash + detection lag so
    /// escalation, not a fresh episode, handles persisting failures).
    pub cure_confirm_s: f64,
    /// Base delay of the exponential backoff between successive restarts of
    /// the same cell: attempt *n* within the rate-limit window waits
    /// `base · 2^(n−1)`, capped by
    /// [`restart_backoff_cap_s`](Self::restart_backoff_cap_s). 0 disables
    /// backoff (the paper's immediate-restart behaviour).
    pub restart_backoff_base_s: f64,
    /// Upper bound on the exponential restart backoff.
    pub restart_backoff_cap_s: f64,
    /// How many times a cure for the same failure may escalate (fail and be
    /// retried with a wider restart group) before REC gives up and
    /// quarantines the component.
    pub escalation_limit: u32,
    /// If `true`, REC refuses to open a new restart episode while any other
    /// episode is still in flight: a freshly suspected component is left for
    /// FD's next ping round to re-report once the station is quiet. This is
    /// the strictly serial recoverer the paper's single-fault experiments
    /// never distinguish from the parallel one; it exists as the baseline
    /// for the sequential-vs-parallel comparison. `false` (the default)
    /// drives independent episodes concurrently, merging overlapping ones
    /// by LCA promotion.
    pub serial_recovery: bool,
    /// Restart-storm budget: the most restarts any single cell may receive
    /// within [`restart_window_s`](Self::restart_window_s) before REC gives
    /// up and quarantines it.
    pub max_restarts_per_window: u32,
    /// Length of the restart-storm rate-limit window.
    pub restart_window_s: f64,
    /// fedr → pbcom keepalive period.
    pub keepalive_period_s: f64,
    /// How recent tune/point commands must be for the radio to hold carrier
    /// lock and produce telemetry.
    pub lock_window_s: f64,
    /// ses/str sync-request retry period while blocked on the peer.
    pub sync_retry_s: f64,
    /// fedr connect retry period while pbcom is unreachable.
    pub connect_retry_s: f64,
    /// Offset added to simulation time to obtain the orbital epoch time used
    /// by estimates (lets scenarios start mid-pass).
    pub pass_epoch_offset_s: f64,
    /// Telemetry frame period during an active, locked pass.
    pub telemetry_period_s: f64,
    /// If `true`, REC runs a deadline-aware **admission controller** in
    /// front of the recoverer: each incoming restart request is classified
    /// as *run* (forwarded immediately), *defer* (parked in a queue until
    /// recovery capacity frees up) or *shed* (dropped — only ever a
    /// duplicate of a request already queued or in flight, so coverage of a
    /// faulty component is never lost). `false` (the paper's behaviour)
    /// forwards every request immediately.
    pub admission_enabled: bool,
    /// Recovery capacity: the most restart launches admission control
    /// admits within [`admission_window_s`](Self::admission_window_s);
    /// beyond it new requests are deferred.
    pub admission_capacity: u32,
    /// Length of the admission capacity window.
    pub admission_window_s: f64,
    /// Period at which REC re-examines the deferral queue for requests that
    /// can now be admitted.
    pub admission_retry_s: f64,
    /// Fairness/aging bound: a deferred request older than this runs at the
    /// next retry tick even if the capacity window is full, so deferral can
    /// delay a restart but never starve it.
    pub defer_max_age_s: f64,
    /// Advisory bound on the deferral queue (one entry per component, so
    /// any value at or above the component count never binds; rr-lint warns
    /// when it is smaller).
    pub defer_queue_limit: usize,
    /// Components whose recovery outranks the rest under overload: they get
    /// criticality 1 in the [`rr_core::DeadlineModel`] (everything else 0),
    /// so ties in pass slack break in their favour.
    pub critical_components: Vec<String>,
    /// The shortest pass window the station commits to serving, in seconds.
    /// Drives the rr-lint deadline-feasibility checks (a worst-case
    /// recovery must fit inside it) and nothing at runtime.
    pub min_pass_window_s: f64,
    /// If `true`, the station records recovery-episode telemetry (counters,
    /// MTTR histograms, FD ping-latency stats and the episode-event stream)
    /// into its [`rr_sim::telemetry::Registry`]. When `false` the registry
    /// is a no-op sink: every instrumentation point returns after one branch
    /// without allocating, so disabled telemetry costs nothing on the hot
    /// path. Observation-only either way — it never changes scheduling or
    /// the trace.
    pub telemetry_enabled: bool,
    /// Per-component recovery mode: components absent from the map cold
    /// restart (the paper's behaviour). A
    /// [`RecoveryMode::Rehydrate`] entry makes the component journal its
    /// session state into the station's crash-safe store (`rr-store`) and
    /// rehydrate from it on restart instead of re-deriving state from its
    /// peers — for ses/str, skipping the §4.3 resync and the induced
    /// failure it drags along.
    pub recovery_modes: BTreeMap<String, RecoveryMode>,
    /// Synthetic size of a component's session state (what a checkpoint
    /// snapshots), in KiB.
    pub session_state_kb: f64,
    /// Sequential read/write throughput of the store's backing medium,
    /// KiB per second. Divides into state size for both the checkpoint
    /// write stall and the rehydrate replay time.
    pub store_throughput_kbps: f64,
    /// Size of one incremental journal update record, in KiB.
    pub store_update_kb: f64,
    /// How often a healthy journaling component appends an update record
    /// (its session state mutates), in seconds.
    pub store_update_period_s: f64,
    /// Ground station site (Stanford).
    pub site: GroundSite,
    /// Satellite catalog.
    pub satellites: Vec<Satellite>,
}

impl StationConfig {
    /// The calibration reproducing the paper's measurements (see module
    /// docs for the derivation).
    pub fn paper() -> StationConfig {
        let mut timing = BTreeMap::new();
        timing.insert(names::MBUS.into(), ComponentTiming::new(4.73, 0.05));
        timing.insert(names::FEDRCOM.into(), ComponentTiming::new(19.93, 0.10));
        timing.insert(names::FEDR.into(), ComponentTiming::new(4.76, 0.05));
        timing.insert(names::PBCOM.into(), ComponentTiming::new(20.24, 0.10));
        timing.insert(names::SES.into(), ComponentTiming::new(5.15, 0.05));
        timing.insert(names::STR.into(), ComponentTiming::new(5.01, 0.05));
        timing.insert(names::RTU.into(), ComponentTiming::new(4.59, 0.05));
        // FD and REC are small Java processes; they restart quickly.
        timing.insert(names::FD.into(), ComponentTiming::new(1.5, 0.02));
        timing.insert(names::REC.into(), ComponentTiming::new(1.5, 0.02));
        StationConfig {
            ping_period_s: 1.0,
            ping_timeout_s: 0.4,
            ping_timeout_overrides: BTreeMap::new(),
            suspicion_threshold: 1,
            suspicion_window: 1,
            bus_latency_s: 0.002,
            direct_latency_s: 0.001,
            exec_delay_s: 0.10,
            contention_quadratic: 0.0119,
            timing,
            ses_resync_service_s: 3.75,
            str_resync_service_s: 3.35,
            fresh_sync_s: 0.05,
            fresh_threshold_s: 30.0,
            induced_failure_delay_s: 0.8,
            connect_ack_s: 0.05,
            pbcom_rapid_restart_penalty_s: 4.0,
            rapid_restart_window_s: 60.0,
            pbcom_aging_limit: 8,
            poison_crash_delay_s: 0.5,
            beacon_period_s: 5.0,
            beacon_timeout_s: 0.0,
            rejuvenation_aging_threshold: None,
            watchdog_grace_s: 8.0,
            fd_grace_s: 30.0,
            restart_deadline_s: 45.0,
            cure_confirm_s: 2.5,
            restart_backoff_base_s: 0.0,
            restart_backoff_cap_s: 30.0,
            escalation_limit: 8,
            serial_recovery: false,
            max_restarts_per_window: 20,
            restart_window_s: 3600.0,
            keepalive_period_s: 1.0,
            lock_window_s: 5.0,
            sync_retry_s: 0.2,
            connect_retry_s: 0.5,
            pass_epoch_offset_s: 0.0,
            telemetry_period_s: 1.0,
            admission_enabled: false,
            admission_capacity: 2,
            admission_window_s: 120.0,
            admission_retry_s: 5.0,
            defer_max_age_s: 240.0,
            defer_queue_limit: 16,
            critical_components: Vec::new(),
            min_pass_window_s: 300.0,
            telemetry_enabled: false,
            recovery_modes: BTreeMap::new(),
            session_state_kb: 256.0,
            store_throughput_kbps: 2048.0,
            store_update_kb: 2.0,
            store_update_period_s: 2.0,
            site: GroundSite::stanford(),
            satellites: vec![Satellite::opal(), Satellite::sapphire()],
        }
    }

    /// The paper calibration hardened for *degraded* communication: the FD
    /// requires 8 missed pongs within a 10-round window before suspecting a
    /// component (so sporadic message loss does not trigger false-positive
    /// restarts), restarts back off exponentially, and REC watches beacon
    /// staleness to catch zombie components that still answer pings.
    ///
    /// Detection latency rises accordingly (≈ 7 s extra at the paper's 1 s
    /// ping period), so `cure_confirm_s` is re-derived to keep escalation
    /// sound. Use [`paper`](Self::paper) to reproduce the paper's tables.
    pub fn hardened() -> StationConfig {
        let mut cfg = StationConfig::paper();
        // Eight *consecutive* missed rounds: with 5% loss on every link a
        // bus-relayed ping round misses with p ≈ 0.185, so the false-suspect
        // probability per round is 0.185^8 ≈ 1.4e-6 — a handful of expected
        // false positives per simulated *year*, while a crashed component
        // still misses every round and is detected in ~8.4 s.
        cfg.suspicion_threshold = 8;
        cfg.suspicion_window = 8;
        cfg.restart_backoff_base_s = 0.5;
        cfg.restart_backoff_cap_s = 30.0;
        // Five beacon periods: a run of five lost beacons (p ≈ 0.0975 each
        // under 5% loss) is ~9e-6, so staleness stays a zombie detector
        // rather than a loss amplifier.
        cfg.beacon_timeout_s = 25.0;
        // cure_confirm_s must exceed poison re-crash + (slower) detection.
        cfg.cure_confirm_s = cfg.poison_crash_delay_s + cfg.mean_detection_s() + 3.0;
        // Degraded links are where recovery behaviour gets interesting, so
        // the hardened profile keeps the episode telemetry on.
        cfg.telemetry_enabled = true;
        cfg
    }

    /// The hardened calibration with the deadline-aware admission controller
    /// switched on: under overload REC paces restart launches to
    /// [`admission_capacity`](Self::admission_capacity) per
    /// [`admission_window_s`](Self::admission_window_s), parking the excess
    /// in a deferral queue drained most-urgent-first (tightest pass slack,
    /// criticality breaking ties). The storage components carry criticality
    /// 1 so experiment data survives a shedding storm.
    ///
    /// Use [`hardened`](Self::hardened) for the no-admission baseline the
    /// overload experiments compare against.
    pub fn admission() -> StationConfig {
        let mut cfg = StationConfig::hardened();
        cfg.admission_enabled = true;
        cfg.critical_components = vec![names::SES.into(), names::STR.into()];
        cfg
    }

    /// The paper calibration with the crash-safe state store switched on
    /// for the stateful pair: ses and str journal their session state and
    /// *rehydrate* on restart (checkpointing every 60 s) instead of
    /// re-deriving it through the §4.3 resync. Telemetry stays on so the
    /// `rehydrated` / `replayed_records` / `snapshot_bytes` counters are
    /// observable.
    ///
    /// Use [`paper`](Self::paper) for the cold-restart behaviour the
    /// checkpoint experiments compare against.
    pub fn checkpointed() -> StationConfig {
        let mut cfg = StationConfig::paper();
        let mode = RecoveryMode::Rehydrate {
            checkpoint_interval_s: 60.0,
        };
        cfg.recovery_modes.insert(names::SES.into(), mode);
        cfg.recovery_modes.insert(names::STR.into(), mode);
        cfg.telemetry_enabled = true;
        cfg
    }

    /// Checks the configuration's internal consistency: every component has
    /// a timing entry, the detection machinery is coherent, and the recovery
    /// timeouts are ordered so escalation (not deadlock or spurious new
    /// episodes) handles persisting failures.
    ///
    /// # Errors
    ///
    /// Returns the list of violated constraints.
    pub fn validate(&self) -> Result<(), Vec<String>> {
        let mut errors = Vec::new();
        // Finiteness first: NaN is incomparable, so it slips through every
        // range check below (`NaN <= 0.0` is false), and an infinite knob
        // turns the derived bounds (worst-case boot, min confirm) into
        // nonsense. One sweep over every float knob closes that hole.
        let float_knobs: [(&str, f64); 38] = [
            ("ping_period_s", self.ping_period_s),
            ("ping_timeout_s", self.ping_timeout_s),
            ("bus_latency_s", self.bus_latency_s),
            ("direct_latency_s", self.direct_latency_s),
            ("exec_delay_s", self.exec_delay_s),
            ("contention_quadratic", self.contention_quadratic),
            ("ses_resync_service_s", self.ses_resync_service_s),
            ("str_resync_service_s", self.str_resync_service_s),
            ("fresh_sync_s", self.fresh_sync_s),
            ("fresh_threshold_s", self.fresh_threshold_s),
            ("induced_failure_delay_s", self.induced_failure_delay_s),
            ("connect_ack_s", self.connect_ack_s),
            (
                "pbcom_rapid_restart_penalty_s",
                self.pbcom_rapid_restart_penalty_s,
            ),
            ("rapid_restart_window_s", self.rapid_restart_window_s),
            ("poison_crash_delay_s", self.poison_crash_delay_s),
            ("beacon_period_s", self.beacon_period_s),
            ("beacon_timeout_s", self.beacon_timeout_s),
            ("watchdog_grace_s", self.watchdog_grace_s),
            ("fd_grace_s", self.fd_grace_s),
            ("restart_deadline_s", self.restart_deadline_s),
            ("cure_confirm_s", self.cure_confirm_s),
            ("restart_backoff_base_s", self.restart_backoff_base_s),
            ("restart_backoff_cap_s", self.restart_backoff_cap_s),
            ("restart_window_s", self.restart_window_s),
            ("keepalive_period_s", self.keepalive_period_s),
            ("lock_window_s", self.lock_window_s),
            ("sync_retry_s", self.sync_retry_s),
            ("connect_retry_s", self.connect_retry_s),
            ("pass_epoch_offset_s", self.pass_epoch_offset_s),
            ("telemetry_period_s", self.telemetry_period_s),
            ("admission_window_s", self.admission_window_s),
            ("admission_retry_s", self.admission_retry_s),
            ("defer_max_age_s", self.defer_max_age_s),
            ("min_pass_window_s", self.min_pass_window_s),
            ("session_state_kb", self.session_state_kb),
            ("store_throughput_kbps", self.store_throughput_kbps),
            ("store_update_kb", self.store_update_kb),
            ("store_update_period_s", self.store_update_period_s),
        ];
        for (name, value) in float_knobs {
            if !value.is_finite() {
                errors.push(format!("{name} ({value}) must be finite"));
            }
        }
        if let Some(t) = self.rejuvenation_aging_threshold {
            if !t.is_finite() {
                errors.push(format!("rejuvenation threshold ({t}) must be finite"));
            }
        }
        for comp in names::UNSPLIT
            .iter()
            .chain(names::SPLIT.iter())
            .chain([&names::FD, &names::REC])
        {
            if !self.timing.contains_key(*comp) {
                errors.push(format!("no timing entry for component {comp:?}"));
            }
        }
        for (comp, timing) in &self.timing {
            if !timing.boot_mean_s.is_finite()
                || !timing.boot_std_s.is_finite()
                || timing.boot_mean_s < 0.0
                || timing.boot_std_s < 0.0
            {
                errors.push(format!(
                    "timing for {comp:?} (mean {}, std {}) must be finite and non-negative",
                    timing.boot_mean_s, timing.boot_std_s
                ));
            }
        }
        if self.ping_timeout_s >= self.ping_period_s {
            errors.push(format!(
                "ping timeout ({}) must be shorter than the ping period ({}) or rounds overlap",
                self.ping_timeout_s, self.ping_period_s
            ));
        }
        for (comp, timeout) in &self.ping_timeout_overrides {
            // Written as a negated conjunction so a NaN override (for which
            // every comparison is false) still lands in the error branch.
            if !(*timeout > 0.0 && *timeout < self.ping_period_s) {
                errors.push(format!(
                    "ping timeout override for {comp:?} ({timeout}) must lie in (0, ping period)"
                ));
            }
        }
        if self.suspicion_threshold < 1 {
            errors.push("suspicion_threshold must be at least 1".to_string());
        }
        if self.suspicion_window < self.suspicion_threshold {
            errors.push(format!(
                "suspicion_window ({}) must be at least suspicion_threshold ({})",
                self.suspicion_window, self.suspicion_threshold
            ));
        }
        if self.restart_backoff_base_s < 0.0
            || self.restart_backoff_cap_s < self.restart_backoff_base_s
        {
            errors.push(format!(
                "restart backoff base ({}) must be non-negative and at most the cap ({})",
                self.restart_backoff_base_s, self.restart_backoff_cap_s
            ));
        }
        if self.beacon_timeout_s != 0.0 {
            if self.beacon_period_s <= 0.0 {
                errors.push("beacon_timeout_s requires beacons (beacon_period_s > 0)".to_string());
            } else if self.beacon_timeout_s <= 2.0 * self.beacon_period_s {
                errors.push(format!(
                    "beacon_timeout_s ({}) must exceed two beacon periods ({}) or a single \
                     delayed beacon looks like a zombie",
                    self.beacon_timeout_s, self.beacon_period_s
                ));
            }
        }
        if self.escalation_limit == 0 || self.max_restarts_per_window == 0 {
            errors.push(
                "escalation_limit and max_restarts_per_window must be at least 1".to_string(),
            );
        }
        if self.restart_window_s <= 0.0 {
            errors.push(format!(
                "restart_window_s ({}) must be positive",
                self.restart_window_s
            ));
        }
        // REC must not declare a cure before a poison re-crash could be
        // re-detected, or it closes the episode and escalation never happens.
        let min_confirm = self.poison_crash_delay_s + self.mean_detection_s() + 0.2;
        if self.cure_confirm_s <= min_confirm {
            errors.push(format!(
                "cure_confirm_s ({}) must exceed poison delay + detection ({min_confirm:.2})",
                self.cure_confirm_s
            ));
        }
        // The restart deadline must outlast the slowest possible boot
        // (full-station contention + hardware back-off), or healthy reboots
        // get treated as new failures.
        let slowest_boot = self
            .timing
            .values()
            .map(|t| t.boot_mean_s + 4.0 * t.boot_std_s)
            .fold(0.0f64, f64::max);
        let worst_k = names::SPLIT.len() + 2; // components + FD + REC cold start
        let contention = 1.0 + self.contention_quadratic * ((worst_k - 1) as f64).powi(2);
        let worst_boot =
            slowest_boot * contention + self.pbcom_rapid_restart_penalty_s + self.exec_delay_s;
        if self.restart_deadline_s <= worst_boot {
            errors.push(format!(
                "restart_deadline_s ({}) must exceed the worst-case boot ({worst_boot:.1})",
                self.restart_deadline_s
            ));
        }
        // A joint ses/str restart must finish while both sides still count
        // as fresh, or consolidation loses its benefit.
        let ses_boot = self.timing.get(names::SES).map_or(0.0, |t| t.boot_mean_s);
        let str_boot = self.timing.get(names::STR).map_or(0.0, |t| t.boot_mean_s);
        if self.fresh_threshold_s <= ses_boot.max(str_boot) + self.fresh_sync_s + 2.0 {
            errors.push(format!(
                "fresh_threshold_s ({}) too short for a joint ses/str restart",
                self.fresh_threshold_s
            ));
        }
        // The FD/REC mutual watchdogs must wait out each other's boots.
        let fd_boot = self.timing.get(names::FD).map_or(0.0, |t| t.boot_mean_s);
        let rec_boot = self.timing.get(names::REC).map_or(0.0, |t| t.boot_mean_s);
        if self.watchdog_grace_s <= fd_boot.max(rec_boot) + self.exec_delay_s + self.ping_period_s {
            errors.push(format!(
                "watchdog_grace_s ({}) must outlast FD/REC boot + one ping round",
                self.watchdog_grace_s
            ));
        }
        if let Some(t) = self.rejuvenation_aging_threshold {
            if !(0.0..=1.0).contains(&t) {
                errors.push(format!("rejuvenation threshold {t} outside [0, 1]"));
            }
        }
        // Admission knobs must be coherent even when the controller is off:
        // experiments flip `admission_enabled` without re-deriving the rest.
        if self.admission_capacity == 0 {
            errors.push("admission_capacity must be at least 1".to_string());
        }
        if self.admission_window_s <= 0.0 || self.admission_retry_s <= 0.0 {
            errors.push(format!(
                "admission_window_s ({}) and admission_retry_s ({}) must be positive",
                self.admission_window_s, self.admission_retry_s
            ));
        }
        if self.defer_max_age_s < self.admission_retry_s {
            errors.push(format!(
                "defer_max_age_s ({}) must be at least admission_retry_s ({}) or the aging \
                 promise cannot be honoured at the retry cadence",
                self.defer_max_age_s, self.admission_retry_s
            ));
        }
        if self.defer_queue_limit == 0 {
            errors.push("defer_queue_limit must be at least 1".to_string());
        }
        if self.min_pass_window_s <= 0.0 {
            errors.push(format!(
                "min_pass_window_s ({}) must be positive",
                self.min_pass_window_s
            ));
        }
        for comp in &self.critical_components {
            if !self.timing.contains_key(comp) {
                errors.push(format!("critical component {comp:?} has no timing entry"));
            }
        }
        // Store knobs must be coherent whenever any component rehydrates.
        if !self.recovery_modes.is_empty() {
            let positive = |v: f64| v > 0.0 && !v.is_nan();
            if !positive(self.session_state_kb) || !positive(self.store_throughput_kbps) {
                errors.push(format!(
                    "session_state_kb ({}) and store_throughput_kbps ({}) must be positive",
                    self.session_state_kb, self.store_throughput_kbps
                ));
            }
            if self.store_update_kb.is_nan()
                || self.store_update_kb < 0.0
                || !positive(self.store_update_period_s)
            {
                errors.push(format!(
                    "store_update_kb ({}) must be non-negative and store_update_period_s ({}) \
                     positive",
                    self.store_update_kb, self.store_update_period_s
                ));
            }
        }
        for (comp, mode) in &self.recovery_modes {
            if !self.timing.contains_key(comp) {
                errors.push(format!(
                    "recovery mode for {comp:?} names a component with no timing entry"
                ));
            }
            if let RecoveryMode::Rehydrate {
                checkpoint_interval_s,
            } = mode
            {
                // Written as a negated conjunction so a NaN interval (for
                // which every comparison is false) lands in the error branch.
                if !(checkpoint_interval_s.is_finite() && *checkpoint_interval_s > 0.0) {
                    errors.push(format!(
                        "checkpoint_interval_s for {comp:?} ({checkpoint_interval_s}) must be \
                         finite and positive"
                    ));
                }
            }
        }
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors)
        }
    }

    /// The timing entry for a component.
    ///
    /// # Panics
    ///
    /// Panics if the component has no timing entry.
    pub fn timing_for(&self, component: &str) -> &ComponentTiming {
        self.timing
            .get(component)
            .unwrap_or_else(|| panic!("no timing configured for {component:?}"))
    }

    /// The pong deadline FD applies to `component`: the per-component
    /// override if one is configured, else the global
    /// [`ping_timeout_s`](Self::ping_timeout_s).
    pub fn ping_timeout_for(&self, component: &str) -> f64 {
        self.ping_timeout_overrides
            .get(component)
            .copied()
            .unwrap_or(self.ping_timeout_s)
    }

    /// Mean failure-to-report detection latency implied by the ping
    /// parameters. With a suspicion threshold above 1, FD must accumulate
    /// `threshold` misses (one per round) before reporting, adding
    /// `(threshold − 1)` whole ping periods.
    pub fn mean_detection_s(&self) -> f64 {
        self.ping_period_s / 2.0
            + self.ping_timeout_s
            + (self.suspicion_threshold.saturating_sub(1)) as f64 * self.ping_period_s
    }

    /// The ping period as a duration.
    pub fn ping_period(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.ping_period_s)
    }

    /// The analytic cost model matching this configuration (used by
    /// `rr_core::analysis` and the optimizer; cross-validated against the
    /// simulation by the test suite).
    pub fn cost_model(&self) -> SimpleCostModel {
        // Analytic detection includes the exec delay REC pays per restart.
        let mut m = SimpleCostModel::new(
            self.mean_detection_s() + self.exec_delay_s,
            2.0, // mean re-detection of a persisting failure after a wrong cure
        )
        .with_contention(self.contention_quadratic)
        .with_sync_pair(
            names::SES,
            names::STR,
            self.str_resync_service_s - self.fresh_sync_s,
        )
        .with_sync_pair(
            names::STR,
            names::SES,
            self.ses_resync_service_s - self.fresh_sync_s,
        )
        .with_rapid_restart_penalty(names::PBCOM, self.pbcom_rapid_restart_penalty_s)
        .with_rapid_restart_penalty(names::FEDRCOM, self.pbcom_rapid_restart_penalty_s);
        for (name, t) in &self.timing {
            let extra = match name.as_str() {
                // fedr and the unsplit fedrcom must bring up their serial
                // connection; ses/str complete a fresh handshake.
                n if n == names::FEDR => self.connect_ack_s,
                n if n == names::SES || n == names::STR => self.fresh_sync_s,
                _ => 0.0,
            };
            m = m.with_boot(name.clone(), t.boot_mean_s + extra);
        }
        m
    }

    /// The paper's failure model: Table 1 MTTFs plus the correlated modes of
    /// §4.2/§4.3 for the split station.
    pub fn paper_failure_model(&self) -> FailureModel {
        FailureModel::new()
            // Table 1: mbus ≈ 1 month, fedrcom ≈ 10 min, ses/str/rtu ≈ 5 h.
            // Post-split, fedr inherits fedrcom's instability while pbcom is
            // "simple and very stable" (§4.2).
            .with_mode(mode(FailureMode::solo(
                "mbus-crash",
                names::MBUS,
                1.0 / 730.0,
            )))
            .with_mode(mode(FailureMode::solo("fedr-crash", names::FEDR, 6.0)))
            .with_mode(mode(FailureMode::solo(
                "pbcom-crash",
                names::PBCOM,
                1.0 / 168.0,
            )))
            .with_mode(mode(FailureMode::correlated(
                "pbcom-joint",
                names::PBCOM,
                [names::FEDR, names::PBCOM],
                0.05,
            )))
            .with_mode(mode(FailureMode::correlated(
                "ses-crash",
                names::SES,
                [names::SES],
                0.2,
            )))
            .with_mode(mode(FailureMode::correlated(
                "str-crash",
                names::STR,
                [names::STR],
                0.2,
            )))
            .with_mode(mode(FailureMode::solo("rtu-crash", names::RTU, 0.2)))
    }

    /// The failure-correlation view used by the transformation advisor
    /// (Table 3's `f` values as the paper states them): ses/str failures are
    /// "substantially always" cured only by a joint restart
    /// (`f_ses ≈ f_str ≈ 0, f_{ses,str} ≈ 1`, §4.3). The analytic-MTTR model
    /// ([`paper_failure_model`](Self::paper_failure_model)) instead encodes
    /// the cascade as a solo cure plus the resync cost penalty, which is the
    /// correct accounting for recovery *time*; this model is the correct
    /// accounting for recovery *structure*.
    pub fn advisory_failure_model(&self) -> FailureModel {
        FailureModel::new()
            .with_mode(mode(FailureMode::solo(
                "mbus-crash",
                names::MBUS,
                1.0 / 730.0,
            )))
            .with_mode(mode(FailureMode::solo("fedr-crash", names::FEDR, 6.0)))
            .with_mode(mode(FailureMode::solo("pbcom-crash", names::PBCOM, 0.05)))
            .with_mode(mode(FailureMode::correlated(
                "pbcom-joint",
                names::PBCOM,
                [names::FEDR, names::PBCOM],
                0.4,
            )))
            .with_mode(mode(FailureMode::correlated(
                "ses-crash",
                names::SES,
                [names::SES, names::STR],
                0.2,
            )))
            .with_mode(mode(FailureMode::correlated(
                "str-crash",
                names::STR,
                [names::SES, names::STR],
                0.2,
            )))
            .with_mode(mode(FailureMode::solo("rtu-crash", names::RTU, 0.2)))
    }

    /// The failure-detector timing knobs in the shape `rr_lint` checks.
    pub fn fd_params(&self) -> rr_lint::FdParams {
        rr_lint::FdParams {
            ping_period_s: self.ping_period_s,
            ping_timeout_s: self.ping_timeout_s,
            suspicion_threshold: self.suspicion_threshold,
            suspicion_window: self.suspicion_window,
            beacon_period_s: self.beacon_period_s,
            beacon_timeout_s: self.beacon_timeout_s,
        }
    }

    /// The restart-policy knobs in the shape `rr_lint` checks.
    pub fn policy_params(&self) -> rr_lint::PolicyParams {
        rr_lint::PolicyParams {
            escalation_limit: self.escalation_limit,
            max_restarts_per_window: self.max_restarts_per_window,
            restart_window_s: self.restart_window_s,
            backoff_base_s: self.restart_backoff_base_s,
            backoff_cap_s: self.restart_backoff_cap_s,
        }
    }

    /// The admission-control and deadline knobs in the shape `rr_lint`
    /// checks.
    pub fn deadline_params(&self) -> rr_lint::DeadlineParams {
        rr_lint::DeadlineParams {
            admission_enabled: self.admission_enabled,
            admission_capacity: self.admission_capacity,
            admission_window_s: self.admission_window_s,
            admission_retry_s: self.admission_retry_s,
            defer_max_age_s: self.defer_max_age_s,
            defer_queue_limit: self.defer_queue_limit,
            min_pass_window_s: self.min_pass_window_s,
            restart_deadline_s: self.restart_deadline_s,
            mean_detection_s: self.mean_detection_s(),
        }
    }

    /// The checkpoint/rehydrate knobs in the shape `rr_lint` checks: one
    /// entry per component with a `Rehydrate` recovery mode, each carrying
    /// the cold re-derivation cost its replay competes against (for the
    /// ses/str pair, the *peer's* resync service time — that is what the
    /// store bypasses).
    pub fn checkpoint_params(&self) -> rr_lint::CheckpointParams {
        let components = self
            .recovery_modes
            .iter()
            .filter_map(|(name, mode)| match mode {
                RecoveryMode::Rehydrate {
                    checkpoint_interval_s,
                } => {
                    let cold_rederive_s = match name.as_str() {
                        names::SES => self.str_resync_service_s,
                        names::STR => self.ses_resync_service_s,
                        _ => 0.0,
                    };
                    Some(rr_lint::CheckpointComponent {
                        name: name.clone(),
                        checkpoint_interval_s: *checkpoint_interval_s,
                        cold_rederive_s,
                    })
                }
                RecoveryMode::ColdRestart => None,
            })
            .collect();
        rr_lint::CheckpointParams {
            session_state_kb: self.session_state_kb,
            store_throughput_kbps: self.store_throughput_kbps,
            store_update_kb: self.store_update_kb,
            store_update_period_s: self.store_update_period_s,
            components,
        }
    }

    /// Statically lints this configuration against the restart tree it will
    /// operate: tree well-formedness, FD timing feasibility, and restart
    /// policy soundness. [`Station`](crate::station::Station) construction
    /// refuses to run when the report carries a deny diagnostic.
    pub fn lint(&self, tree: &rr_core::tree::RestartTree) -> rr_lint::Report {
        rr_lint::lint_tree(tree)
            .merged(rr_lint::lint_fd(&self.fd_params()))
            .merged(rr_lint::lint_policy(&self.policy_params(), Some(tree)))
            .merged(rr_lint::lint_deadline(&self.deadline_params(), Some(tree)))
            .merged(rr_lint::lint_checkpoint(
                &self.checkpoint_params(),
                Some(tree),
            ))
    }

    /// The Table 1 failure model for the *unsplit* station (trees I/II).
    pub fn unsplit_failure_model(&self) -> FailureModel {
        FailureModel::new()
            .with_mode(mode(FailureMode::solo(
                "mbus-crash",
                names::MBUS,
                1.0 / 730.0,
            )))
            .with_mode(mode(FailureMode::solo(
                "fedrcom-crash",
                names::FEDRCOM,
                6.0,
            )))
            .with_mode(mode(FailureMode::solo("ses-crash", names::SES, 0.2)))
            .with_mode(mode(FailureMode::solo("str-crash", names::STR, 0.2)))
            .with_mode(mode(FailureMode::solo("rtu-crash", names::RTU, 0.2)))
    }
}

impl Default for StationConfig {
    fn default() -> Self {
        StationConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_core::analysis::CostModel as _;

    #[test]
    fn paper_calibration_predicts_table2_tree_ii() {
        // detection + exec + boot must land on Table 2's tree-II row.
        let cfg = StationConfig::paper();
        let overhead = cfg.mean_detection_s() + cfg.exec_delay_s;
        let cases = [
            (names::MBUS, 5.73),
            (names::SES, 9.50), // includes slow resync with the old peer
            (names::STR, 9.76),
            (names::RTU, 5.59),
            (names::FEDRCOM, 20.93),
        ];
        for (comp, want) in cases {
            let boot = cfg.timing_for(comp).boot_mean_s;
            let resync = match comp {
                c if c == names::SES => cfg.str_resync_service_s,
                c if c == names::STR => cfg.ses_resync_service_s,
                _ => 0.0,
            };
            let predicted = overhead + boot + resync;
            assert!(
                (predicted - want).abs() < 0.05,
                "{comp}: predicted {predicted:.2}, Table 2 says {want}"
            );
        }
    }

    #[test]
    fn paper_calibration_predicts_tree_i_contention() {
        let cfg = StationConfig::paper();
        let k = names::UNSPLIT.len();
        let slowest = cfg.timing_for(names::FEDRCOM).boot_mean_s;
        let factor = 1.0 + cfg.contention_quadratic * ((k - 1) as f64).powi(2);
        let predicted = cfg.mean_detection_s() + cfg.exec_delay_s + slowest * factor;
        assert!(
            (predicted - 24.75).abs() < 0.1,
            "tree I prediction {predicted:.2} vs 24.75"
        );
    }

    #[test]
    fn cost_model_matches_table4_key_cells() {
        let cfg = StationConfig::paper();
        let m = cfg.cost_model();
        // pbcom alone (tree III/IV perfect row): 21.24.
        let pbcom = m.detection_s() + m.restart_s(&[names::PBCOM.to_string()]);
        assert!((pbcom - 21.24).abs() < 0.1, "pbcom {pbcom:.2}");
        // ses+str joint (tree IV): ~6.25.
        let joint =
            m.detection_s() + m.restart_s(&[names::SES.to_string(), names::STR.to_string()]);
        assert!((joint - 6.25).abs() < 0.15, "ses/str joint {joint:.2}");
    }

    #[test]
    fn failure_models_validate_against_component_sets() {
        let cfg = StationConfig::paper();
        let split_tree = rr_core::TreeSpec::cell("m")
            .with_components(names::SPLIT)
            .build()
            .unwrap();
        assert!(cfg
            .paper_failure_model()
            .validate_against(&split_tree)
            .is_ok());
        let unsplit_tree = rr_core::TreeSpec::cell("m")
            .with_components(names::UNSPLIT)
            .build()
            .unwrap();
        assert!(cfg
            .unsplit_failure_model()
            .validate_against(&unsplit_tree)
            .is_ok());
    }

    #[test]
    fn table1_mttfs_are_encoded() {
        let cfg = StationConfig::paper();
        let m = cfg.unsplit_failure_model();
        // fedrcom: 10 minutes.
        let fedrcom = m.component_mttf_s(names::FEDRCOM).unwrap();
        assert!((fedrcom - 600.0).abs() < 1.0);
        // mbus: ~1 month.
        let mbus = m.component_mttf_s(names::MBUS).unwrap();
        assert!((mbus - 730.0 * 3600.0).abs() < 3600.0);
        // ses/str/rtu: 5 hours.
        for c in [names::SES, names::STR, names::RTU] {
            let v = m.component_mttf_s(c).unwrap();
            assert!((v - 5.0 * 3600.0).abs() < 1.0, "{c}: {v}");
        }
    }

    #[test]
    #[should_panic(expected = "no timing configured")]
    fn unknown_component_timing_panics() {
        StationConfig::paper().timing_for("warp-core");
    }

    #[test]
    fn paper_config_validates() {
        StationConfig::paper()
            .validate()
            .expect("paper calibration is coherent");
    }

    #[test]
    fn validate_catches_incoherent_timeouts() {
        let mut cfg = StationConfig::paper();
        cfg.ping_timeout_s = 2.0; // longer than the 1 s period
        cfg.cure_confirm_s = 0.1; // cure declared before poison can re-crash
        cfg.restart_deadline_s = 5.0; // shorter than a pbcom boot
        let errors = cfg.validate().unwrap_err();
        assert!(errors.len() >= 3, "{errors:?}");
        assert!(errors.iter().any(|e| e.contains("ping timeout")));
        assert!(errors.iter().any(|e| e.contains("cure_confirm_s")));
        assert!(errors.iter().any(|e| e.contains("restart_deadline_s")));
    }

    #[test]
    fn validate_catches_missing_timing() {
        let mut cfg = StationConfig::paper();
        cfg.timing.remove(names::RTU);
        let errors = cfg.validate().unwrap_err();
        assert!(errors.iter().any(|e| e.contains("rtu")), "{errors:?}");
    }

    #[test]
    fn validate_catches_bad_rejuvenation_threshold() {
        let mut cfg = StationConfig::paper();
        cfg.rejuvenation_aging_threshold = Some(1.5);
        let errors = cfg.validate().unwrap_err();
        assert!(
            errors.iter().any(|e| e.contains("rejuvenation")),
            "{errors:?}"
        );
    }

    #[test]
    fn hardened_config_validates_and_slows_detection() {
        let cfg = StationConfig::hardened();
        cfg.validate().expect("hardened calibration is coherent");
        let paper = StationConfig::paper();
        // Eight-round suspicion adds 7 whole ping periods of mean latency.
        let extra = (cfg.suspicion_threshold - 1) as f64 * cfg.ping_period_s;
        assert!((cfg.mean_detection_s() - paper.mean_detection_s() - extra).abs() < 1e-9);
        // The paper preset is untouched: threshold 1 keeps Table 2 intact.
        assert_eq!(paper.suspicion_threshold, 1);
        assert!((paper.mean_detection_s() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn ping_timeout_overrides_apply_per_component() {
        let mut cfg = StationConfig::paper();
        assert_eq!(cfg.ping_timeout_for(names::SES), cfg.ping_timeout_s);
        cfg.ping_timeout_overrides.insert(names::SES.into(), 0.8);
        assert_eq!(cfg.ping_timeout_for(names::SES), 0.8);
        assert_eq!(cfg.ping_timeout_for(names::RTU), cfg.ping_timeout_s);
        cfg.validate().expect("0.8 < 1.0 period is coherent");
        cfg.ping_timeout_overrides.insert(names::RTU.into(), 1.5);
        let errors = cfg.validate().unwrap_err();
        assert!(errors.iter().any(|e| e.contains("override")), "{errors:?}");
    }

    #[test]
    fn validate_catches_bad_suspicion_and_backoff() {
        let mut cfg = StationConfig::paper();
        cfg.suspicion_threshold = 5;
        cfg.suspicion_window = 3; // window shorter than threshold
        cfg.restart_backoff_base_s = 10.0;
        cfg.restart_backoff_cap_s = 1.0; // cap below base
        cfg.beacon_timeout_s = 5.0; // not above 2 beacon periods
        cfg.max_restarts_per_window = 0;
        cfg.restart_window_s = -1.0;
        let errors = cfg.validate().unwrap_err();
        assert!(
            errors.iter().any(|e| e.contains("suspicion_window")),
            "{errors:?}"
        );
        assert!(errors.iter().any(|e| e.contains("backoff")), "{errors:?}");
        assert!(
            errors.iter().any(|e| e.contains("beacon_timeout_s")),
            "{errors:?}"
        );
        assert!(
            errors.iter().any(|e| e.contains("max_restarts_per_window")),
            "{errors:?}"
        );
        assert!(
            errors.iter().any(|e| e.contains("restart_window_s")),
            "{errors:?}"
        );
    }

    #[test]
    fn validate_rejects_nan_and_inf_knobs() {
        // The original hole: `NaN <= 0.0` is false, so a NaN window sailed
        // through the positivity check and poisoned the sliding-window
        // arithmetic at runtime.
        let mut cfg = StationConfig::paper();
        cfg.admission_window_s = f64::NAN;
        let errors = cfg.validate().unwrap_err();
        assert!(
            errors
                .iter()
                .any(|e| e.contains("admission_window_s") && e.contains("finite")),
            "{errors:?}"
        );

        let mut cfg = StationConfig::paper();
        cfg.restart_window_s = f64::INFINITY;
        cfg.cure_confirm_s = f64::NEG_INFINITY;
        cfg.admission_retry_s = f64::NAN;
        let errors = cfg.validate().unwrap_err();
        for needle in ["restart_window_s", "cure_confirm_s", "admission_retry_s"] {
            assert!(
                errors
                    .iter()
                    .any(|e| e.contains(needle) && e.contains("finite")),
                "{needle}: {errors:?}"
            );
        }
    }

    #[test]
    fn validate_rejects_nan_in_overrides_and_timing() {
        let mut cfg = StationConfig::paper();
        cfg.ping_timeout_overrides
            .insert(names::SES.into(), f64::NAN);
        let errors = cfg.validate().unwrap_err();
        assert!(errors.iter().any(|e| e.contains("override")), "{errors:?}");

        let mut cfg = StationConfig::paper();
        cfg.timing
            .insert(names::RTU.into(), ComponentTiming::new(f64::NAN, 0.05));
        let errors = cfg.validate().unwrap_err();
        assert!(
            errors.iter().any(|e| e.contains("timing for \"rtu\"")),
            "{errors:?}"
        );

        let mut cfg = StationConfig::paper();
        cfg.rejuvenation_aging_threshold = Some(f64::NAN);
        let errors = cfg.validate().unwrap_err();
        assert!(
            errors.iter().any(|e| e.contains("rejuvenation")),
            "{errors:?}"
        );
    }

    #[test]
    fn checkpointed_preset_validates_and_rehydrates_the_stateful_pair() {
        let cfg = StationConfig::checkpointed();
        cfg.validate().expect("checkpointed preset is coherent");
        for comp in [names::SES, names::STR] {
            assert!(cfg.recovery_modes[comp].is_rehydrate(), "{comp}");
        }
        assert!(!cfg
            .recovery_modes
            .get(names::RTU)
            .copied()
            .unwrap_or_default()
            .is_rehydrate());
    }

    #[test]
    fn validate_catches_bad_checkpoint_and_store_knobs() {
        let mut cfg = StationConfig::checkpointed();
        cfg.recovery_modes.insert(
            names::SES.into(),
            RecoveryMode::Rehydrate {
                checkpoint_interval_s: f64::NAN,
            },
        );
        cfg.recovery_modes.insert(
            "warp-core".into(),
            RecoveryMode::Rehydrate {
                checkpoint_interval_s: 0.0,
            },
        );
        cfg.session_state_kb = 0.0;
        cfg.store_update_period_s = f64::NAN;
        let errors = cfg.validate().unwrap_err();
        for needle in [
            "checkpoint_interval_s for \"ses\"",
            "checkpoint_interval_s for \"warp-core\"",
            "no timing entry",
            "session_state_kb",
            "store_update_period_s",
        ] {
            assert!(
                errors.iter().any(|e| e.contains(needle)),
                "{needle}: {errors:?}"
            );
        }
    }

    #[test]
    fn config_is_cloneable_and_comparable() {
        let cfg = StationConfig::paper();
        let clone = cfg.clone();
        assert_eq!(cfg, clone);
        assert_eq!(StationConfig::default(), cfg);
    }

    #[test]
    fn admission_preset_validates_and_lints_clean() {
        let cfg = StationConfig::admission();
        assert!(cfg.admission_enabled);
        assert!(cfg.validate().is_ok());
        // The preset must survive the deny-warnings audit on every tree.
        for variant in crate::station::TreeVariant::ALL {
            let report = cfg.lint(&variant.tree().unwrap());
            assert!(report.is_clean(), "{variant:?}: {report}");
        }
    }

    #[test]
    fn checkpointed_preset_lints_clean_and_bad_knobs_fire_rrl9xx() {
        let cfg = StationConfig::checkpointed();
        for variant in crate::station::TreeVariant::ALL {
            let report = cfg.lint(&variant.tree().unwrap());
            assert!(report.is_clean(), "{variant:?}: {report}");
        }
        // A checkpoint write that overruns its interval is denied before
        // anything runs.
        let mut bad = StationConfig::checkpointed();
        bad.session_state_kb = 16.0 * 1024.0;
        bad.recovery_modes.insert(
            names::SES.into(),
            RecoveryMode::Rehydrate {
                checkpoint_interval_s: 5.0,
            },
        );
        let report = bad.lint(&crate::station::TreeVariant::III.tree().unwrap());
        assert!(report.fired("RRL901"), "{report}");
        assert!(report.has_deny());
        // Journaling a stateless component warns that replay buys nothing.
        let mut futile = StationConfig::checkpointed();
        futile.recovery_modes.insert(
            names::RTU.into(),
            RecoveryMode::Rehydrate {
                checkpoint_interval_s: 60.0,
            },
        );
        let report = futile.lint(&crate::station::TreeVariant::III.tree().unwrap());
        assert!(report.fired("RRL902"), "{report}");
        assert!(!report.has_deny());
    }

    #[test]
    fn validate_catches_incoherent_admission_knobs() {
        let mut cfg = StationConfig::paper();
        cfg.admission_capacity = 0;
        cfg.admission_window_s = 0.0;
        cfg.defer_max_age_s = 1.0; // < admission_retry_s
        cfg.defer_queue_limit = 0;
        cfg.min_pass_window_s = -1.0;
        cfg.critical_components = vec!["nosuch".into()];
        let errors = cfg.validate().unwrap_err();
        for needle in [
            "admission_capacity",
            "admission_window_s",
            "defer_max_age_s",
            "defer_queue_limit",
            "min_pass_window_s",
            "critical component",
        ] {
            assert!(
                errors.iter().any(|e| e.contains(needle)),
                "{needle}: {errors:?}"
            );
        }
    }
}

//! Station assembly: components + FD + REC over a restart tree.
//!
//! [`Station`] wires the full Mercury ground station into an
//! [`rr_sim::Sim`]: the five (or six, post-split) components of Figure 1, the
//! failure detector and the recovery module, operating one of the paper's
//! restart trees I–V (or any custom tree). It also exposes the fault-
//! injection entry points the experiments use.

use std::fmt;

use rr_core::oracle::Oracle;
use rr_core::policy::RestartPolicy;
use rr_core::recoverer::Recoverer;
use rr_core::transform::{consolidate, depth_augment, promote_component, split_component};
use rr_core::tree::RestartTree;
use rr_sim::{LinkQuality, ProcessState, Sim, SimDuration, SimTime, Trace};

use crate::components::common::{Shared, Wire};
use crate::components::estimator::Ses;
use crate::components::mbus::Mbus;
use crate::components::radio::{Fedr, Fedrcom, Pbcom};
use crate::components::tracker::Str;
use crate::components::tuner::Rtu;
use crate::config::{names, StationConfig};
use crate::fd::Fd;
use crate::rec::{Rec, RecControl, RecHandle};

/// The paper's five restart trees (§4, Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TreeVariant {
    /// Tree I: one restart group — any failure reboots everything.
    I,
    /// Tree II: simple depth augmentation — per-component restarts.
    II,
    /// Tree III: fedrcom split into fedr + pbcom with a joint subtree.
    III,
    /// Tree IV: ses and str consolidated into one cell.
    IV,
    /// Tree V: pbcom promoted onto the joint \[fedr,pbcom\] cell.
    V,
}

impl TreeVariant {
    /// All five variants in paper order.
    pub const ALL: [TreeVariant; 5] = [
        TreeVariant::I,
        TreeVariant::II,
        TreeVariant::III,
        TreeVariant::IV,
        TreeVariant::V,
    ];

    /// `true` if this variant uses the split fedr/pbcom pair.
    pub fn is_split(self) -> bool {
        !matches!(self, TreeVariant::I | TreeVariant::II)
    }

    /// The component set this variant runs.
    pub fn components(self) -> Vec<String> {
        let set: &[&str] = if self.is_split() {
            &names::SPLIT
        } else {
            &names::UNSPLIT
        };
        set.iter().map(|s| s.to_string()).collect()
    }

    /// Builds the variant's restart tree by applying the paper's
    /// transformations in sequence (Figures 3–6).
    pub fn tree(self) -> RestartTree {
        // Tree I: one cell holding the whole station.
        let mut tree = RestartTree::new("mercury");
        let root = tree.root();
        for comp in names::UNSPLIT {
            tree.attach_component(root, comp).expect("fresh tree");
        }
        if self == TreeVariant::I {
            return tree;
        }

        // Tree II: simple depth augmentation (§4.1).
        let singletons: Vec<Vec<String>> =
            names::UNSPLIT.iter().map(|c| vec![c.to_string()]).collect();
        depth_augment(&mut tree, root, &singletons).expect("augment tree I");
        if self == TreeVariant::II {
            return tree;
        }

        // Tree II′ → III: split fedrcom, augment the tight subtree (§4.2).
        let cell = split_component(&mut tree, names::FEDRCOM, &[names::FEDR, names::PBCOM])
            .expect("split fedrcom");
        tree.set_label(cell, "R_[fedr,pbcom]").expect("live cell");
        let parts: Vec<Vec<String>> = vec![
            vec![names::FEDR.to_string()],
            vec![names::PBCOM.to_string()],
        ];
        depth_augment(&mut tree, cell, &parts).expect("augment fedr/pbcom");
        if self == TreeVariant::III {
            return tree;
        }

        // Tree IV: consolidate ses and str (§4.3).
        let ses = tree.cell_of_component(names::SES).expect("ses attached");
        let strr = tree.cell_of_component(names::STR).expect("str attached");
        consolidate(&mut tree, &[ses, strr]).expect("consolidate ses/str");
        if self == TreeVariant::IV {
            return tree;
        }

        // Tree V: promote pbcom (§4.4).
        promote_component(&mut tree, names::PBCOM).expect("promote pbcom");
        tree
    }
}

impl fmt::Display for TreeVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TreeVariant::I => "I",
            TreeVariant::II => "II",
            TreeVariant::III => "III",
            TreeVariant::IV => "IV",
            TreeVariant::V => "V",
        };
        f.write_str(s)
    }
}

/// A fully wired ground station simulation.
pub struct Station {
    sim: Sim<Wire>,
    shared: Shared,
    control: RecHandle,
    components: Vec<String>,
}

impl fmt::Debug for Station {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Station")
            .field("now", &self.sim.now())
            .field("components", &self.components)
            .finish()
    }
}

impl Station {
    /// Builds a station operating one of the paper's tree variants.
    pub fn new(
        config: StationConfig,
        variant: TreeVariant,
        oracle: Box<dyn Oracle>,
        seed: u64,
    ) -> Station {
        Station::with_tree(config, variant.tree(), variant.components(), oracle, seed)
    }

    /// Builds a station over a custom restart tree. `components` must match
    /// the tree's attached component names and name only known Mercury
    /// components.
    ///
    /// # Panics
    ///
    /// Panics if `components` disagrees with the tree or contains an unknown
    /// component name.
    pub fn with_tree(
        config: StationConfig,
        tree: RestartTree,
        components: Vec<String>,
        oracle: Box<dyn Oracle>,
        seed: u64,
    ) -> Station {
        if let Err(errors) = config.validate() {
            panic!("invalid station configuration:\n  {}", errors.join("\n  "));
        }
        let mut sorted = components.clone();
        sorted.sort();
        assert_eq!(
            tree.components(),
            sorted,
            "restart tree and component set disagree"
        );

        let shared = Shared::new(config);
        let mut sim: Sim<Wire> = Sim::new(seed);

        for comp in &components {
            let shared_for = shared.clone();
            match comp.as_str() {
                n if n == names::MBUS => {
                    sim.spawn(names::MBUS, move || Box::new(Mbus::new(shared_for.clone())));
                }
                n if n == names::FEDRCOM => {
                    sim.spawn(names::FEDRCOM, move || {
                        Box::new(Fedrcom::new(shared_for.clone()))
                    });
                }
                n if n == names::FEDR => {
                    sim.spawn(names::FEDR, move || Box::new(Fedr::new(shared_for.clone())));
                }
                n if n == names::PBCOM => {
                    sim.spawn(names::PBCOM, move || {
                        Box::new(Pbcom::new(shared_for.clone()))
                    });
                }
                n if n == names::SES => {
                    sim.spawn(names::SES, move || Box::new(Ses::new(shared_for.clone())));
                }
                n if n == names::STR => {
                    sim.spawn(names::STR, move || Box::new(Str::new(shared_for.clone())));
                }
                n if n == names::RTU => {
                    sim.spawn(names::RTU, move || Box::new(Rtu::new(shared_for.clone())));
                }
                other => panic!("unknown Mercury component {other:?}"),
            }
        }

        let policy = {
            let cfg = &shared.config;
            RestartPolicy::new()
                .with_escalation_limit(cfg.escalation_limit)
                .with_rate_limit(
                    cfg.max_restarts_per_window,
                    SimDuration::from_secs_f64(cfg.restart_window_s),
                )
                .with_backoff(
                    SimDuration::from_secs_f64(cfg.restart_backoff_base_s),
                    SimDuration::from_secs_f64(cfg.restart_backoff_cap_s),
                )
        };
        let recoverer = Recoverer::new(tree, oracle, policy);
        let control = RecControl::new(recoverer);

        // Zombie processes answer liveness probes (ping/pong) and drop
        // everything else — the fault model behind `inject_zombie`.
        sim.set_zombie_filter(|payload: &Wire| {
            mercury_msg::Envelope::parse(payload)
                .map(|env| env.body.is_liveness())
                .unwrap_or(false)
        });

        let fd_shared = shared.clone();
        let monitored = components.clone();
        sim.spawn(names::FD, move || {
            Box::new(Fd::new(fd_shared.clone(), monitored.clone()))
        });
        let rec_shared = shared.clone();
        let rec_control = control.clone();
        sim.spawn(names::REC, move || {
            Box::new(Rec::new(rec_shared.clone(), rec_control.clone()))
        });

        Station {
            sim,
            shared,
            control,
            components,
        }
    }

    /// The station's configuration.
    pub fn config(&self) -> &StationConfig {
        &self.shared.config
    }

    /// The component names this station runs (excluding FD/REC).
    pub fn components(&self) -> &[String] {
        &self.components
    }

    /// Shared REC control block (oracle state, cure hints, beacons).
    pub fn control(&self) -> &RecHandle {
        &self.control
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// The structured event log.
    pub fn trace(&self) -> &Trace {
        self.sim.trace()
    }

    /// Mutable access to the underlying simulation (scenario drivers).
    pub fn sim_mut(&mut self) -> &mut Sim<Wire> {
        &mut self.sim
    }

    /// Runs the simulation forward by `d`.
    pub fn run_for(&mut self, d: SimDuration) {
        self.sim.run_for(d);
    }

    /// Runs the station's cold start until every component is functionally
    /// ready and the failure detector is sweeping, then a little longer so
    /// all incarnations count as "old". Panics if the station fails to
    /// settle within ten minutes of virtual time.
    pub fn warm_up(&mut self) {
        let deadline = self.sim.now() + SimDuration::from_secs(600);
        let settle_extra = SimDuration::from_secs_f64(
            self.shared.config.fresh_threshold_s + self.shared.config.fd_grace_s + 10.0,
        );
        loop {
            self.sim.run_for(SimDuration::from_secs(5));
            let all_ready = self.components.iter().all(|c| {
                self.sim
                    .trace()
                    .mark_times(&format!("ready:{c}"))
                    .next()
                    .is_some()
            });
            if all_ready {
                break;
            }
            assert!(self.sim.now() < deadline, "station failed to cold-start");
        }
        self.sim.run_for(settle_extra);
    }

    /// Runs forward by a uniformly random fraction of the FD ping period, so
    /// that repeated trials inject failures at a uniformly random phase of
    /// the detection cycle — the assumption behind the paper's mean
    /// detection latency.
    pub fn randomize_injection_phase(&mut self, rng: &mut rr_sim::SimRng) {
        let period = self.shared.config.ping_period_s;
        let offset = rng.uniform(0.0, period);
        self.run_for(SimDuration::from_secs_f64(offset));
    }

    /// Declares the ground truth that failures manifesting in `component`
    /// need all of `cure_set` restarted together (what a perfect oracle
    /// "knows", §4.4).
    pub fn set_cure_hint<I, S>(&mut self, component: &str, cure_set: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.control.borrow_mut().cure_hints.insert(
            component.to_string(),
            cure_set.into_iter().map(Into::into).collect(),
        );
    }

    /// Injects a fail-silent crash of `component` (the paper's `SIGKILL`
    /// experiment, §4.1) and marks the injection time in the trace.
    ///
    /// # Panics
    ///
    /// Panics if the component does not exist.
    pub fn inject_kill(&mut self, component: &str) -> SimTime {
        let pid = self
            .sim
            .lookup(component)
            .unwrap_or_else(|| panic!("unknown component {component:?}"));
        self.sim.mark(format!("inject:{component}"));
        self.sim.kill(pid);
        self.sim.now()
    }

    /// Injects a hang (fail-silent, state-resident) instead of a crash.
    ///
    /// # Panics
    ///
    /// Panics if the component does not exist.
    pub fn inject_hang(&mut self, component: &str) -> SimTime {
        let pid = self
            .sim
            .lookup(component)
            .unwrap_or_else(|| panic!("unknown component {component:?}"));
        self.sim.mark(format!("inject:{component}"));
        self.sim.hang_after(SimDuration::ZERO, pid);
        self.sim.now()
    }

    /// Injects a *zombie* failure: the component keeps answering FD's
    /// liveness pings but silently drops all real work (and stops its own
    /// timers, so its health beacons cease). Only REC's beacon-staleness
    /// defense ([`StationConfig::beacon_timeout_s`]) can catch it.
    ///
    /// # Panics
    ///
    /// Panics if the component does not exist.
    pub fn inject_zombie(&mut self, component: &str) -> SimTime {
        let pid = self
            .sim
            .lookup(component)
            .unwrap_or_else(|| panic!("unknown component {component:?}"));
        self.sim.mark(format!("inject:{component}"));
        self.sim.zombie(pid);
        self.sim.now()
    }

    /// Injects a *hard* failure: the component crashes now and every
    /// subsequent restart crashes again immediately, until
    /// [`clear_hard_failure`](Self::clear_hard_failure). Exercises the
    /// escalation → give-up → quarantine path.
    ///
    /// # Panics
    ///
    /// Panics if the component does not exist.
    pub fn inject_hard_failure(&mut self, component: &str) -> SimTime {
        let pid = self
            .sim
            .lookup(component)
            .unwrap_or_else(|| panic!("unknown component {component:?}"));
        self.sim.set_persistent_crash(pid, true);
        self.sim.mark(format!("inject:{component}"));
        self.sim.kill(pid);
        self.sim.now()
    }

    /// Lifts a hard failure injected by
    /// [`inject_hard_failure`](Self::inject_hard_failure) (the operator
    /// replaced the broken part). The component stays down until something
    /// restarts it.
    ///
    /// # Panics
    ///
    /// Panics if the component does not exist.
    pub fn clear_hard_failure(&mut self, component: &str) {
        let pid = self
            .sim
            .lookup(component)
            .unwrap_or_else(|| panic!("unknown component {component:?}"));
        self.sim.set_persistent_crash(pid, false);
    }

    /// Degrades the link between two processes (components, `fd`, or `rec`)
    /// with message loss, delay, jitter, or duplication. The quality applies
    /// to both directions.
    ///
    /// # Panics
    ///
    /// Panics if either process does not exist.
    pub fn inject_flaky_link(&mut self, a: &str, b: &str, quality: LinkQuality) {
        let pa = self
            .sim
            .lookup(a)
            .unwrap_or_else(|| panic!("unknown component {a:?}"));
        let pb = self
            .sim
            .lookup(b)
            .unwrap_or_else(|| panic!("unknown component {b:?}"));
        self.sim.set_link_quality(pa, pb, quality);
    }

    /// Applies `quality` to **every** link in the station that has no
    /// per-pair override; `None` restores perfect communication.
    pub fn degrade_all_links(&mut self, quality: Option<LinkQuality>) {
        self.sim.set_default_link_quality(quality);
    }

    /// Injects the §4.4 correlated failure: poisons fedr's session state and
    /// crashes pbcom. The failure manifests in pbcom but is only curable by
    /// a joint [fedr, pbcom] restart; the cure hint is set accordingly so a
    /// perfect oracle knows it.
    ///
    /// # Panics
    ///
    /// Panics if the station is not running the split components.
    pub fn inject_correlated_pbcom(&mut self) -> SimTime {
        let fedr = self
            .sim
            .lookup(names::FEDR)
            .expect("correlated pbcom failure requires the split station");
        let pbcom = self.sim.lookup(names::PBCOM).expect("pbcom present");
        self.set_cure_hint(names::PBCOM, [names::FEDR, names::PBCOM]);
        // Deliver the poison hook directly to fedr, then kill pbcom.
        let hook = mercury_msg::Envelope::new(
            "injector",
            names::FEDR,
            0,
            mercury_msg::Message::TestHook {
                action: "poison".into(),
            },
        );
        self.sim
            .send_external(fedr, fedr, SimDuration::ZERO, hook.to_xml_string());
        self.sim.mark(format!("inject:{}", names::PBCOM));
        self.sim.kill(pbcom);
        self.sim.now()
    }

    /// The process state of a component (diagnostics).
    ///
    /// # Panics
    ///
    /// Panics if the component does not exist.
    pub fn state_of(&self, component: &str) -> ProcessState {
        let pid = self
            .sim
            .lookup(component)
            .unwrap_or_else(|| panic!("unknown component {component:?}"));
        self.sim.state(pid)
    }
}

//! Station assembly: components + FD + REC over a restart tree.
//!
//! [`Station`] wires the full Mercury ground station into an
//! [`rr_sim::Sim`]: the five (or six, post-split) components of Figure 1, the
//! failure detector and the recovery module, operating one of the paper's
//! restart trees I–V (or any custom tree). It also exposes the fault-
//! injection entry points the experiments use.
//!
//! A ground station must not abort on bad input, so every fallible entry
//! point — construction over an inconsistent configuration or tree, and
//! fault injection against an unknown component — returns a
//! [`StationError`] instead of panicking.

use std::fmt;

use rr_core::oracle::Oracle;
use rr_core::policy::RestartPolicy;
use rr_core::recoverer::Recoverer;
use rr_core::transform::{consolidate, depth_augment, promote_component, split_component};
use rr_core::tree::RestartTree;
use rr_core::TreeError;
use rr_sim::telemetry::Registry;
use rr_sim::{LinkQuality, ProcessId, ProcessState, Sim, SimDuration, SimTime, Trace};

use crate::components::common::{Shared, Wire};
use crate::components::estimator::Ses;
use crate::components::mbus::Mbus;
use crate::components::radio::{Fedr, Fedrcom, Pbcom};
use crate::components::tracker::Str;
use crate::components::tuner::Rtu;
use crate::config::{names, StationConfig};
use crate::fd::Fd;
use crate::rec::{Rec, RecControl, RecHandle};

/// Why a station could not be built or an injection could not be applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StationError {
    /// The configuration failed [`StationConfig::validate`]; the list holds
    /// every violated constraint.
    InvalidConfig(Vec<String>),
    /// The restart tree's attached components disagree with the component
    /// set the station was asked to run.
    TreeMismatch {
        /// Components attached to the tree, sorted.
        tree: Vec<String>,
        /// Components requested, sorted.
        requested: Vec<String>,
    },
    /// A component name that is not part of this station.
    UnknownComponent(String),
    /// The operation requires the split fedr/pbcom station.
    RequiresSplit,
    /// Building the restart tree failed.
    Tree(TreeError),
    /// Static verification ([`StationConfig::lint`]) found deny-severity
    /// diagnostics; the list holds the full report (warnings included).
    Lint(Vec<rr_lint::Diagnostic>),
}

impl fmt::Display for StationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StationError::InvalidConfig(errors) => {
                write!(f, "invalid station configuration: {}", errors.join("; "))
            }
            StationError::TreeMismatch { tree, requested } => write!(
                f,
                "restart tree components {tree:?} disagree with requested {requested:?}"
            ),
            StationError::UnknownComponent(name) => {
                write!(f, "unknown Mercury component {name:?}")
            }
            StationError::RequiresSplit => {
                write!(f, "operation requires the split fedr/pbcom station")
            }
            StationError::Tree(e) => write!(f, "restart tree construction failed: {e}"),
            StationError::Lint(diags) => {
                let denies: Vec<String> = diags
                    .iter()
                    .filter(|d| d.severity() == rr_lint::Severity::Deny)
                    .map(|d| format!("{}: {}", d.code(), d.message))
                    .collect();
                write!(
                    f,
                    "configuration rejected by rr-lint: {}",
                    denies.join("; ")
                )
            }
        }
    }
}

impl std::error::Error for StationError {}

impl From<TreeError> for StationError {
    fn from(e: TreeError) -> StationError {
        StationError::Tree(e)
    }
}

/// The paper's five restart trees (§4, Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TreeVariant {
    /// Tree I: one restart group — any failure reboots everything.
    I,
    /// Tree II: simple depth augmentation — per-component restarts.
    II,
    /// Tree III: fedrcom split into fedr + pbcom with a joint subtree.
    III,
    /// Tree IV: ses and str consolidated into one cell.
    IV,
    /// Tree V: pbcom promoted onto the joint \[fedr,pbcom\] cell.
    V,
}

impl TreeVariant {
    /// All five variants in paper order.
    pub const ALL: [TreeVariant; 5] = [
        TreeVariant::I,
        TreeVariant::II,
        TreeVariant::III,
        TreeVariant::IV,
        TreeVariant::V,
    ];

    /// `true` if this variant uses the split fedr/pbcom pair.
    pub fn is_split(self) -> bool {
        !matches!(self, TreeVariant::I | TreeVariant::II)
    }

    /// The component set this variant runs.
    pub fn components(self) -> Vec<String> {
        let set: &[&str] = if self.is_split() {
            &names::SPLIT
        } else {
            &names::UNSPLIT
        };
        set.iter().map(|s| s.to_string()).collect()
    }

    /// Builds the variant's restart tree by applying the paper's
    /// transformations in sequence (Figures 3–6).
    ///
    /// # Errors
    ///
    /// Propagates any [`TreeError`] from the transformation sequence. The
    /// five paper variants are static, so in practice this only fails if a
    /// transformation's preconditions change underneath them (covered by
    /// the `all_variants_build` test).
    pub fn tree(self) -> Result<RestartTree, TreeError> {
        // Tree I: one cell holding the whole station.
        let mut tree = RestartTree::new("mercury");
        let root = tree.root();
        for comp in names::UNSPLIT {
            tree.attach_component(root, comp)?;
        }
        if self == TreeVariant::I {
            return Ok(tree);
        }

        // Tree II: simple depth augmentation (§4.1).
        let singletons: Vec<Vec<String>> =
            names::UNSPLIT.iter().map(|c| vec![c.to_string()]).collect();
        depth_augment(&mut tree, root, &singletons)?;
        if self == TreeVariant::II {
            return Ok(tree);
        }

        // Tree II′ → III: split fedrcom, augment the tight subtree (§4.2).
        let cell = split_component(&mut tree, names::FEDRCOM, &[names::FEDR, names::PBCOM])?;
        tree.set_label(cell, "R_[fedr,pbcom]")?;
        let parts: Vec<Vec<String>> = vec![
            vec![names::FEDR.to_string()],
            vec![names::PBCOM.to_string()],
        ];
        depth_augment(&mut tree, cell, &parts)?;
        if self == TreeVariant::III {
            return Ok(tree);
        }

        // Tree IV: consolidate ses and str (§4.3).
        let ses = tree
            .cell_of_component(names::SES)
            .ok_or_else(|| TreeError::UnknownComponent(names::SES.into()))?;
        let strr = tree
            .cell_of_component(names::STR)
            .ok_or_else(|| TreeError::UnknownComponent(names::STR.into()))?;
        consolidate(&mut tree, &[ses, strr])?;
        if self == TreeVariant::IV {
            return Ok(tree);
        }

        // Tree V: promote pbcom (§4.4).
        promote_component(&mut tree, names::PBCOM)?;
        Ok(tree)
    }
}

impl fmt::Display for TreeVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TreeVariant::I => "I",
            TreeVariant::II => "II",
            TreeVariant::III => "III",
            TreeVariant::IV => "IV",
            TreeVariant::V => "V",
        };
        f.write_str(s)
    }
}

/// A fully wired ground station simulation.
pub struct Station {
    sim: Sim<Wire>,
    shared: Shared,
    control: RecHandle,
    components: Vec<String>,
}

impl fmt::Debug for Station {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Station")
            .field("now", &self.sim.now())
            .field("components", &self.components)
            .finish()
    }
}

impl Station {
    /// Builds a station operating one of the paper's tree variants.
    ///
    /// # Errors
    ///
    /// Returns [`StationError::InvalidConfig`] if the configuration is
    /// internally inconsistent (see [`StationConfig::validate`]).
    pub fn new(
        config: StationConfig,
        variant: TreeVariant,
        oracle: Box<dyn Oracle>,
        seed: u64,
    ) -> Result<Station, StationError> {
        Station::with_tree(config, variant.tree()?, variant.components(), oracle, seed)
    }

    /// Builds a station over a custom restart tree. `components` must match
    /// the tree's attached component names and name only known Mercury
    /// components.
    ///
    /// # Errors
    ///
    /// Returns [`StationError::InvalidConfig`] for an inconsistent
    /// configuration, [`StationError::TreeMismatch`] if `components`
    /// disagrees with the tree, [`StationError::Lint`] if static
    /// verification ([`StationConfig::lint`]) produces a deny diagnostic,
    /// or [`StationError::UnknownComponent`] for a name no Mercury factory
    /// exists for.
    pub fn with_tree(
        config: StationConfig,
        tree: RestartTree,
        components: Vec<String>,
        oracle: Box<dyn Oracle>,
        seed: u64,
    ) -> Result<Station, StationError> {
        if let Err(errors) = config.validate() {
            return Err(StationError::InvalidConfig(errors));
        }
        let mut sorted = components.clone();
        sorted.sort();
        if tree.components() != sorted {
            return Err(StationError::TreeMismatch {
                tree: tree.components(),
                requested: sorted,
            });
        }
        let report = config.lint(&tree);
        if report.has_deny() {
            return Err(StationError::Lint(report.into_diagnostics()));
        }

        let shared = Shared::new(config);
        let mut sim: Sim<Wire> = Sim::new(seed);

        for comp in &components {
            let shared_for = shared.clone();
            match comp.as_str() {
                n if n == names::MBUS => {
                    sim.spawn(names::MBUS, move || Box::new(Mbus::new(shared_for.clone())));
                }
                n if n == names::FEDRCOM => {
                    sim.spawn(names::FEDRCOM, move || {
                        Box::new(Fedrcom::new(shared_for.clone()))
                    });
                }
                n if n == names::FEDR => {
                    sim.spawn(names::FEDR, move || Box::new(Fedr::new(shared_for.clone())));
                }
                n if n == names::PBCOM => {
                    sim.spawn(names::PBCOM, move || {
                        Box::new(Pbcom::new(shared_for.clone()))
                    });
                }
                n if n == names::SES => {
                    sim.spawn(names::SES, move || Box::new(Ses::new(shared_for.clone())));
                }
                n if n == names::STR => {
                    sim.spawn(names::STR, move || Box::new(Str::new(shared_for.clone())));
                }
                n if n == names::RTU => {
                    sim.spawn(names::RTU, move || Box::new(Rtu::new(shared_for.clone())));
                }
                other => return Err(StationError::UnknownComponent(other.to_string())),
            }
        }

        let policy = {
            let cfg = &shared.config;
            RestartPolicy::new()
                .with_escalation_limit(cfg.escalation_limit)
                .with_rate_limit(
                    cfg.max_restarts_per_window,
                    SimDuration::from_secs_f64(cfg.restart_window_s),
                )
                .with_backoff(
                    SimDuration::from_secs_f64(cfg.restart_backoff_base_s),
                    SimDuration::from_secs_f64(cfg.restart_backoff_cap_s),
                )
        };
        let recoverer = Recoverer::new(tree, oracle, policy);
        let control = RecControl::new(recoverer);

        // Zombie processes answer liveness probes (ping/pong) and drop
        // everything else — the fault model behind `inject_zombie`.
        sim.set_zombie_filter(|payload: &Wire| {
            mercury_msg::Envelope::parse(payload)
                .map(|env| env.body.is_liveness())
                .unwrap_or(false)
        });

        let fd_shared = shared.clone();
        let monitored = components.clone();
        sim.spawn(names::FD, move || {
            Box::new(Fd::new(fd_shared.clone(), monitored.clone()))
        });
        let rec_shared = shared.clone();
        let rec_control = control.clone();
        sim.spawn(names::REC, move || {
            Box::new(Rec::new(rec_shared.clone(), rec_control.clone()))
        });

        Ok(Station {
            sim,
            shared,
            control,
            components,
        })
    }

    /// The station's configuration.
    pub fn config(&self) -> &StationConfig {
        &self.shared.config
    }

    /// The component names this station runs (excluding FD/REC).
    pub fn components(&self) -> &[String] {
        &self.components
    }

    /// Shared REC control block (oracle state, cure hints, beacons).
    pub fn control(&self) -> &RecHandle {
        &self.control
    }

    /// A point-in-time snapshot of the recovery-episode telemetry. Empty
    /// unless the configuration sets
    /// [`telemetry_enabled`](StationConfig::telemetry_enabled).
    pub fn telemetry(&self) -> Registry {
        self.shared.telemetry.borrow().clone()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// The structured event log.
    pub fn trace(&self) -> &Trace {
        self.sim.trace()
    }

    /// Mutable access to the underlying simulation (scenario drivers).
    pub fn sim_mut(&mut self) -> &mut Sim<Wire> {
        &mut self.sim
    }

    /// Runs the simulation forward by `d`.
    pub fn run_for(&mut self, d: SimDuration) {
        self.sim.run_for(d);
    }

    /// Runs the station's cold start until every component is functionally
    /// ready and the failure detector is sweeping, then a little longer so
    /// all incarnations count as "old". Panics if the station fails to
    /// settle within ten minutes of virtual time.
    pub fn warm_up(&mut self) {
        let deadline = self.sim.now() + SimDuration::from_secs(600);
        let settle_extra = SimDuration::from_secs_f64(
            self.shared.config.fresh_threshold_s + self.shared.config.fd_grace_s + 10.0,
        );
        loop {
            self.sim.run_for(SimDuration::from_secs(5));
            let all_ready = self.components.iter().all(|c| {
                self.sim
                    .trace()
                    .mark_times(&format!("ready:{c}"))
                    .next()
                    .is_some()
            });
            if all_ready {
                break;
            }
            assert!(self.sim.now() < deadline, "station failed to cold-start");
        }
        self.sim.run_for(settle_extra);
    }

    /// Runs forward by a uniformly random fraction of the FD ping period, so
    /// that repeated trials inject failures at a uniformly random phase of
    /// the detection cycle — the assumption behind the paper's mean
    /// detection latency.
    pub fn randomize_injection_phase(&mut self, rng: &mut rr_sim::SimRng) {
        let period = self.shared.config.ping_period_s;
        let offset = rng.uniform(0.0, period);
        self.run_for(SimDuration::from_secs_f64(offset));
    }

    /// Declares the ground truth that failures manifesting in `component`
    /// need all of `cure_set` restarted together (what a perfect oracle
    /// "knows", §4.4).
    pub fn set_cure_hint<I, S>(&mut self, component: &str, cure_set: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.control.borrow_mut().cure_hints.insert(
            component.to_string(),
            cure_set.into_iter().map(Into::into).collect(),
        );
    }

    /// Resolves a component name, or reports it unknown.
    fn pid_of(&self, component: &str) -> Result<ProcessId, StationError> {
        self.sim
            .lookup(component)
            .ok_or_else(|| StationError::UnknownComponent(component.to_string()))
    }

    /// Marks an injection in both the trace and the telemetry stream.
    fn note_injection(&mut self, component: &str, kind: &str) {
        self.sim.mark(format!("inject:{component}"));
        let now = self.sim.now();
        self.shared
            .telemetry
            .borrow_mut()
            .record_injected(now, component, kind);
    }

    /// Injects a fail-silent crash of `component` (the paper's `SIGKILL`
    /// experiment, §4.1) and marks the injection time in the trace.
    ///
    /// # Errors
    ///
    /// Returns [`StationError::UnknownComponent`] if the component does not
    /// exist.
    pub fn inject_kill(&mut self, component: &str) -> Result<SimTime, StationError> {
        let pid = self.pid_of(component)?;
        self.note_injection(component, "kill");
        self.sim.kill(pid);
        Ok(self.sim.now())
    }

    /// Injects a hang (fail-silent, state-resident) instead of a crash.
    ///
    /// # Errors
    ///
    /// Returns [`StationError::UnknownComponent`] if the component does not
    /// exist.
    pub fn inject_hang(&mut self, component: &str) -> Result<SimTime, StationError> {
        let pid = self.pid_of(component)?;
        self.note_injection(component, "hang");
        self.sim.hang_after(SimDuration::ZERO, pid);
        Ok(self.sim.now())
    }

    /// Injects a *zombie* failure: the component keeps answering FD's
    /// liveness pings but silently drops all real work (and stops its own
    /// timers, so its health beacons cease). Only REC's beacon-staleness
    /// defense ([`StationConfig::beacon_timeout_s`]) can catch it.
    ///
    /// # Errors
    ///
    /// Returns [`StationError::UnknownComponent`] if the component does not
    /// exist.
    pub fn inject_zombie(&mut self, component: &str) -> Result<SimTime, StationError> {
        let pid = self.pid_of(component)?;
        self.note_injection(component, "zombie");
        self.sim.zombie(pid);
        Ok(self.sim.now())
    }

    /// Injects a *hard* failure: the component crashes now and every
    /// subsequent restart crashes again immediately, until
    /// [`clear_hard_failure`](Self::clear_hard_failure). Exercises the
    /// escalation → give-up → quarantine path.
    ///
    /// # Errors
    ///
    /// Returns [`StationError::UnknownComponent`] if the component does not
    /// exist.
    pub fn inject_hard_failure(&mut self, component: &str) -> Result<SimTime, StationError> {
        let pid = self.pid_of(component)?;
        self.sim.set_persistent_crash(pid, true);
        self.note_injection(component, "hard");
        self.sim.kill(pid);
        Ok(self.sim.now())
    }

    /// Lifts a hard failure injected by
    /// [`inject_hard_failure`](Self::inject_hard_failure) (the operator
    /// replaced the broken part). The component stays down until something
    /// restarts it.
    ///
    /// # Errors
    ///
    /// Returns [`StationError::UnknownComponent`] if the component does not
    /// exist.
    pub fn clear_hard_failure(&mut self, component: &str) -> Result<(), StationError> {
        let pid = self.pid_of(component)?;
        self.sim.set_persistent_crash(pid, false);
        Ok(())
    }

    /// Degrades the link between two processes (components, `fd`, or `rec`)
    /// with message loss, delay, jitter, or duplication. The quality applies
    /// to both directions.
    ///
    /// # Errors
    ///
    /// Returns [`StationError::UnknownComponent`] if either process does not
    /// exist.
    pub fn inject_flaky_link(
        &mut self,
        a: &str,
        b: &str,
        quality: LinkQuality,
    ) -> Result<(), StationError> {
        let pa = self.pid_of(a)?;
        let pb = self.pid_of(b)?;
        self.sim.set_link_quality(pa, pb, quality);
        Ok(())
    }

    /// Applies `quality` to **every** link in the station that has no
    /// per-pair override; `None` restores perfect communication.
    pub fn degrade_all_links(&mut self, quality: Option<LinkQuality>) {
        self.sim.set_default_link_quality(quality);
    }

    /// Injects the §4.4 correlated failure: poisons fedr's session state and
    /// crashes pbcom. The failure manifests in pbcom but is only curable by
    /// a joint [fedr, pbcom] restart; the cure hint is set accordingly so a
    /// perfect oracle knows it.
    ///
    /// # Errors
    ///
    /// Returns [`StationError::RequiresSplit`] if the station is not running
    /// the split fedr/pbcom components.
    pub fn inject_correlated_pbcom(&mut self) -> Result<SimTime, StationError> {
        let fedr = self
            .sim
            .lookup(names::FEDR)
            .ok_or(StationError::RequiresSplit)?;
        let pbcom = self
            .sim
            .lookup(names::PBCOM)
            .ok_or(StationError::RequiresSplit)?;
        self.set_cure_hint(names::PBCOM, [names::FEDR, names::PBCOM]);
        // Deliver the poison hook directly to fedr, then kill pbcom.
        let hook = mercury_msg::Envelope::new(
            "injector",
            names::FEDR,
            0,
            mercury_msg::Message::TestHook {
                action: "poison".into(),
            },
        );
        self.sim
            .send_external(fedr, fedr, SimDuration::ZERO, hook.to_xml_string());
        self.note_injection(names::PBCOM, "correlated");
        self.sim.kill(pbcom);
        Ok(self.sim.now())
    }

    /// Injects a fault into `component`'s durable journal — a torn write
    /// (tail truncation) or bit rot (a flipped byte) in the crash-safe
    /// store, exactly the mid-write damage a real crash leaves behind.
    /// The component itself keeps running; the damage surfaces at its
    /// next rehydration attempt, which must degrade gracefully (an older
    /// prefix, or a cold start) rather than reading corrupt state.
    ///
    /// # Errors
    ///
    /// Returns [`StationError::UnknownComponent`] if the component does
    /// not exist.
    pub fn inject_journal_fault(
        &mut self,
        component: &str,
        fault: rr_store::JournalFault,
    ) -> Result<(), StationError> {
        let _ = self.pid_of(component)?;
        self.note_injection(component, "journal");
        self.shared
            .store
            .borrow_mut()
            .component(component)
            .inject(fault);
        Ok(())
    }

    /// The station's crash-safe component state store (diagnostics and
    /// scenario drivers). Shared with the running components.
    pub fn store(&self) -> std::rc::Rc<std::cell::RefCell<rr_store::StateStore>> {
        self.shared.store.clone()
    }

    /// Delivers raw bytes to a component as if they arrived on its wire —
    /// the hostile-input path: malformed traffic must be logged and dropped,
    /// never crash the station.
    ///
    /// # Errors
    ///
    /// Returns [`StationError::UnknownComponent`] if the component does not
    /// exist.
    pub fn inject_wire_garbage(
        &mut self,
        component: &str,
        payload: impl Into<String>,
    ) -> Result<(), StationError> {
        let pid = self.pid_of(component)?;
        self.sim
            .send_external(pid, pid, SimDuration::ZERO, payload.into());
        Ok(())
    }

    /// The process state of a component (diagnostics).
    ///
    /// # Errors
    ///
    /// Returns [`StationError::UnknownComponent`] if the component does not
    /// exist.
    pub fn state_of(&self, component: &str) -> Result<ProcessState, StationError> {
        Ok(self.sim.state(self.pid_of(component)?))
    }
}

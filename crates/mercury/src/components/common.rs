//! Shared component machinery: boot lifecycle, ping answering, beacons,
//! envelope plumbing.
//!
//! Every Mercury component is an independently-restartable process with the
//! same skeleton (§2.1–2.2): it boots (slowly — JVM start, hardware
//! negotiation), declares itself *functionally ready* by logging a
//! timestamped message (the exact measurement hook of §4.1), answers the
//! failure detector's XML liveness pings only once ready, and optionally
//! broadcasts health-summary beacons (§7 future work).

use std::cell::RefCell;
use std::rc::Rc;

use mercury_msg::{ComponentStatus, Envelope, Message};
use rr_core::RecoveryMode;
use rr_sim::telemetry::Registry;
use rr_sim::{Context, SimDuration, SimTime};
use rr_store::{RecoveryStats, StateStore};

use crate::config::{names, StationConfig};
use crate::host::{HostLoad, RadioHardware};

/// The simulation's wire type: envelopes in their XML form, exactly as the
/// real station exchanges them over TCP.
pub type Wire = String;

/// Timer key for boot completion.
pub const TIMER_BOOT: u64 = 1;
/// Timer key for the periodic health beacon.
pub const TIMER_BEACON: u64 = 2;
/// First timer key available to component-specific logic.
pub const TIMER_ROLE_BASE: u64 = 10;
/// Timer key for rehydrate-replay completion ([`StoreClient`]).
const TIMER_REHYDRATE: u64 = TIMER_ROLE_BASE + 7;
/// Timer key for the periodic checkpoint write ([`StoreClient`]).
const TIMER_CHECKPOINT: u64 = TIMER_ROLE_BASE + 8;
/// Timer key for the periodic journal update append ([`StoreClient`]).
const TIMER_STATE_UPDATE: u64 = TIMER_ROLE_BASE + 9;

/// Shared state handed to every component factory.
#[derive(Clone)]
pub struct Shared {
    /// The station configuration (calibration constants).
    pub config: Rc<StationConfig>,
    /// Host-level boot contention.
    pub load: Rc<RefCell<HostLoad>>,
    /// The radio hardware behind pbcom's serial port.
    pub radio: Rc<RefCell<RadioHardware>>,
    /// The recovery-episode telemetry sink. A no-op registry (one branch per
    /// instrumentation point) unless
    /// [`telemetry_enabled`](StationConfig::telemetry_enabled) is set.
    pub telemetry: Rc<RefCell<Registry>>,
    /// The crash-safe component state store (`rr-store`). Shared by `Rc`
    /// so it lives *outside* the restartable actors — the simulation's
    /// stand-in for durable media, surviving the very respawns it exists
    /// to accelerate.
    pub store: Rc<RefCell<StateStore>>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared").finish_non_exhaustive()
    }
}

impl Shared {
    /// Creates shared state over a configuration.
    pub fn new(config: StationConfig) -> Shared {
        let telemetry = if config.telemetry_enabled {
            Registry::new()
        } else {
            Registry::disabled()
        };
        Shared {
            config: Rc::new(config),
            load: HostLoad::new_shared(),
            radio: RadioHardware::new_shared(),
            telemetry: Rc::new(RefCell::new(telemetry)),
            store: Rc::new(RefCell::new(StateStore::new())),
        }
    }
}

/// A component's lifecycle phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Process is starting (JVM boot, hardware negotiation): fail-silent to
    /// everything, including peers.
    Booting,
    /// Booted but completing initialization handshakes (ses/str sync, fedr
    /// connect): talks to peers, does not yet answer liveness pings.
    Initializing,
    /// Functionally ready.
    Ready,
}

/// Per-component lifecycle helper embedded in each actor.
#[derive(Debug)]
pub struct Lifecycle {
    name: String,
    shared: Shared,
    phase: Phase,
    started_at: SimTime,
    handled: u64,
    next_id: u64,
}

impl Lifecycle {
    /// Creates the lifecycle for component `name`.
    pub fn new(name: impl Into<String>, shared: Shared) -> Lifecycle {
        Lifecycle {
            name: name.into(),
            shared,
            phase: Phase::Booting,
            started_at: SimTime::ZERO,
            handled: 0,
            next_id: 0,
        }
    }

    /// The component name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The shared station state.
    pub fn shared(&self) -> &Shared {
        &self.shared
    }

    /// The station configuration.
    pub fn config(&self) -> &StationConfig {
        &self.shared.config
    }

    /// `true` once the component has declared itself functionally ready.
    pub fn is_ready(&self) -> bool {
        self.phase == Phase::Ready
    }

    /// The current lifecycle phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Enters the initialization phase (boot finished, handshakes pending).
    pub fn set_initializing(&mut self) {
        self.phase = Phase::Initializing;
    }

    /// Messages handled this incarnation.
    pub fn handled(&self) -> u64 {
        self.handled
    }

    /// Seconds since this incarnation started.
    pub fn uptime_s(&self, now: SimTime) -> f64 {
        now.saturating_since(self.started_at).as_secs_f64()
    }

    /// `true` if this incarnation started recently (fresh peer for sync
    /// purposes, §4.3).
    pub fn is_fresh(&self, now: SimTime) -> bool {
        self.uptime_s(now) < self.config().fresh_threshold_s
    }

    /// Begins the boot phase: samples this component's boot time, scales it
    /// by the current host contention, charges `extra_s` (e.g. serial
    /// renegotiation back-off) and arms [`TIMER_BOOT`]. Call from
    /// `Event::Start`.
    pub fn begin_boot(&mut self, ctx: &mut Context<'_, Wire>, extra_s: f64) {
        self.phase = Phase::Booting;
        self.started_at = ctx.now();
        self.handled = 0;
        let base = self.config().timing_for(&self.name).boot_dist();
        let k = self.shared.load.borrow_mut().begin_boot(&self.name);
        let q = self.config().contention_quadratic;
        let factor = if k <= 1 {
            1.0
        } else {
            1.0 + q * ((k - 1) as f64).powi(2)
        };
        let boot = base.sample_secs(ctx.rng()) * factor + extra_s;
        ctx.set_timer(SimDuration::from_secs_f64(boot.max(0.0)), TIMER_BOOT);
    }

    /// Declares the component functionally ready: logs the timestamped
    /// `ready:` mark (the measurement endpoint of §4.1), releases the host
    /// load slot and schedules the first beacon.
    pub fn set_ready(&mut self, ctx: &mut Context<'_, Wire>) {
        self.phase = Phase::Ready;
        self.shared.load.borrow_mut().end_boot(&self.name);
        ctx.trace_mark(format!("ready:{}", self.name));
        self.shared
            .telemetry
            .borrow_mut()
            .record_component_ready(ctx.now(), &self.name);
        let period = self.config().beacon_period_s;
        if period > 0.0 {
            ctx.set_timer(SimDuration::from_secs_f64(period), TIMER_BEACON);
        }
    }

    /// Allocates an envelope id.
    pub fn next_id(&mut self) -> u64 {
        self.next_id += 1;
        self.next_id
    }

    /// Sends `msg` to `dst` through the message bus.
    pub fn send_bus(&mut self, ctx: &mut Context<'_, Wire>, dst: &str, msg: Message) {
        let id = self.next_id();
        let env = Envelope::new(self.name.clone(), dst, id, msg);
        let Some(bus) = ctx.lookup(names::MBUS) else {
            return;
        };
        let latency = SimDuration::from_secs_f64(self.config().bus_latency_s);
        ctx.send_after(bus, latency, env.to_xml_string());
    }

    /// Sends `msg` to `dst` over a dedicated point-to-point connection
    /// (FD↔REC, fedr↔pbcom).
    pub fn send_direct(&mut self, ctx: &mut Context<'_, Wire>, dst: &str, msg: Message) {
        let id = self.next_id();
        let env = Envelope::new(self.name.clone(), dst, id, msg);
        let Some(pid) = ctx.lookup(dst) else {
            return;
        };
        let latency = SimDuration::from_secs_f64(self.config().direct_latency_s);
        ctx.send_after(pid, latency, env.to_xml_string());
    }

    /// Parses an incoming wire message; logs and drops malformed traffic.
    pub fn parse(&mut self, ctx: &mut Context<'_, Wire>, wire: &str) -> Option<Envelope> {
        match Envelope::parse(wire) {
            Ok(env) => {
                self.handled += 1;
                Some(env)
            }
            Err(e) => {
                ctx.trace_mark(format!("parse-error:{}:{e}", self.name));
                self.shared
                    .telemetry
                    .borrow_mut()
                    .incr_labeled("parse_errors", &self.name);
                None
            }
        }
    }

    /// Handles the lifecycle-level messages common to all components: pings
    /// (answered only when ready, over the same path they arrived on) and the
    /// beacon timer. Returns `true` if the event was consumed.
    pub fn handle_common(
        &mut self,
        env: &Envelope,
        ctx: &mut Context<'_, Wire>,
        aging: f64,
    ) -> bool {
        match &env.body {
            Message::Ping { seq } => {
                if self.phase == Phase::Ready {
                    let pong = Message::Pong {
                        seq: *seq,
                        status: if aging >= 0.75 {
                            ComponentStatus::Degraded
                        } else {
                            ComponentStatus::Ok
                        },
                    };
                    // FD and REC ping each other over their dedicated
                    // connection (§2.2); everything else is pinged via mbus
                    // and must answer the same way.
                    let src = env.src.clone();
                    if self.name == names::FD || self.name == names::REC {
                        self.send_direct(ctx, &src, pong);
                    } else {
                        self.send_bus(ctx, &src, pong);
                    }
                }
                true
            }
            _ => false,
        }
    }

    /// Handles [`TIMER_BEACON`]: emits a health-summary beacon to REC and
    /// re-arms. Returns `true` if the timer key was consumed.
    pub fn handle_beacon_timer(
        &mut self,
        key: u64,
        ctx: &mut Context<'_, Wire>,
        aging: f64,
    ) -> bool {
        if key != TIMER_BEACON {
            return false;
        }
        if self.phase == Phase::Ready {
            let beacon = Message::Beacon {
                component: self.name.clone(),
                status: if aging >= 0.75 {
                    ComponentStatus::Degraded
                } else {
                    ComponentStatus::Ok
                },
                uptime_s: self.uptime_s(ctx.now()),
                aging,
                handled: self.handled,
            };
            self.send_bus(ctx, names::REC, beacon);
        }
        let period = self.config().beacon_period_s;
        if period > 0.0 {
            ctx.set_timer(SimDuration::from_secs_f64(period), TIMER_BEACON);
        }
        true
    }
}

/// A stateful component's connection to the crash-safe store: journals
/// session state while healthy, rehydrates it after a restart.
///
/// The write path runs on two timers once the component is ready: a
/// checkpoint every `checkpoint_interval_s` (full synthetic state of
/// [`session_state_kb`](StationConfig::session_state_kb), compacting the
/// journal) and an update append every
/// [`store_update_period_s`](StationConfig::store_update_period_s).
/// Writes are modelled asynchronous — the component stays responsive —
/// but their stall cost is accounted in the `checkpoint_stall_ms`
/// counter so experiments can charge checkpointing against availability.
///
/// The read path hooks `TIMER_BOOT`: [`StoreClient::try_rehydrate`]
/// replays the journal's valid prefix and, when a verified snapshot
/// exists, schedules readiness after a replay delay proportional to the
/// recovered bytes — *instead of* the component's cold re-derivation
/// (for ses/str, the §4.3 resync). Anything less — a torn or corrupted
/// journal with no usable snapshot — falls back to the cold path, so
/// store damage can slow recovery but never wedge it.
#[derive(Debug)]
pub struct StoreClient {
    mode: RecoveryMode,
    journaling: bool,
    pending: Option<RecoveryStats>,
}

impl StoreClient {
    /// Creates the client for component `name`, resolving its configured
    /// [`RecoveryMode`] (absent from the map ⇒ cold restart, and every
    /// method is a cheap no-op).
    pub fn new(name: &str, shared: &Shared) -> StoreClient {
        StoreClient {
            mode: shared
                .config
                .recovery_modes
                .get(name)
                .copied()
                .unwrap_or_default(),
            journaling: false,
            pending: None,
        }
    }

    /// Attempts rehydration at boot completion (call on `TIMER_BOOT`).
    /// Returns `true` when a verified snapshot was found and readiness has
    /// been scheduled after the replay delay; `false` means the caller
    /// must run its cold-start path.
    pub fn try_rehydrate(&mut self, life: &mut Lifecycle, ctx: &mut Context<'_, Wire>) -> bool {
        if !self.mode.is_rehydrate() {
            return false;
        }
        let recovery = {
            let store = life.shared().store.clone();
            let mut store = store.borrow_mut();
            store.component(life.name()).recover()
        };
        let Some(_state) = recovery.state else {
            ctx.trace_mark(format!("rehydrate-miss:{}", life.name()));
            return false;
        };
        life.set_initializing();
        let cfg = life.config();
        let replayed_kb =
            (recovery.stats.snapshot_bytes + recovery.stats.update_bytes) as f64 / 1024.0;
        let replay_s = replayed_kb / cfg.store_throughput_kbps;
        self.pending = Some(recovery.stats);
        ctx.set_timer(SimDuration::from_secs_f64(replay_s), TIMER_REHYDRATE);
        true
    }

    /// Starts journaling after a *cold* path made the component ready
    /// (the rehydrate path starts it on its own). Writes the initial
    /// checkpoint so even a crash before the first interval tick finds
    /// durable state. No-op unless the mode is rehydrate.
    pub fn start_journaling(&mut self, life: &mut Lifecycle, ctx: &mut Context<'_, Wire>) {
        let RecoveryMode::Rehydrate {
            checkpoint_interval_s,
        } = self.mode
        else {
            return;
        };
        if self.journaling {
            return;
        }
        self.journaling = true;
        self.write_checkpoint(life, ctx);
        ctx.set_timer(
            SimDuration::from_secs_f64(checkpoint_interval_s),
            TIMER_CHECKPOINT,
        );
        ctx.set_timer(
            SimDuration::from_secs_f64(life.config().store_update_period_s),
            TIMER_STATE_UPDATE,
        );
    }

    /// Handles the rehydrate/checkpoint/update timers. Returns `true` if
    /// the key was consumed.
    pub fn handle_timer(
        &mut self,
        key: u64,
        life: &mut Lifecycle,
        ctx: &mut Context<'_, Wire>,
    ) -> bool {
        match key {
            TIMER_REHYDRATE => {
                if let Some(stats) = self.pending.take() {
                    ctx.trace_mark(format!("rehydrate:{}", life.name()));
                    {
                        let mut t = life.shared().telemetry.borrow_mut();
                        let name = life.name().to_string();
                        t.incr_labeled("rehydrated", &name);
                        t.incr_by("replayed_records", &name, stats.replayed_records);
                        t.incr_by("snapshot_bytes", &name, stats.snapshot_bytes);
                    }
                    life.set_ready(ctx);
                    self.start_journaling(life, ctx);
                }
                true
            }
            TIMER_CHECKPOINT => {
                let RecoveryMode::Rehydrate {
                    checkpoint_interval_s,
                } = self.mode
                else {
                    return true;
                };
                if life.is_ready() {
                    self.write_checkpoint(life, ctx);
                }
                ctx.set_timer(
                    SimDuration::from_secs_f64(checkpoint_interval_s),
                    TIMER_CHECKPOINT,
                );
                true
            }
            TIMER_STATE_UPDATE => {
                if life.is_ready() {
                    let kb = life.config().store_update_kb;
                    let payload = synthetic_bytes(ctx.now(), (kb * 1024.0) as usize);
                    let store = life.shared().store.clone();
                    store
                        .borrow_mut()
                        .component(life.name())
                        .append_update(&payload);
                }
                ctx.set_timer(
                    SimDuration::from_secs_f64(life.config().store_update_period_s),
                    TIMER_STATE_UPDATE,
                );
                true
            }
            _ => false,
        }
    }

    fn write_checkpoint(&mut self, life: &mut Lifecycle, ctx: &mut Context<'_, Wire>) {
        let cfg = life.config();
        let size = (cfg.session_state_kb * 1024.0) as usize;
        let stall_ms = (cfg.session_state_kb / cfg.store_throughput_kbps * 1000.0) as u64;
        let state = synthetic_bytes(ctx.now(), size);
        let store = life.shared().store.clone();
        store.borrow_mut().component(life.name()).checkpoint(&state);
        let mut t = life.shared().telemetry.borrow_mut();
        let name = life.name().to_string();
        t.incr_labeled("checkpoints", &name);
        t.incr_by("checkpoint_stall_ms", &name, stall_ms);
    }
}

/// Deterministic synthetic state bytes: sized to the configured state,
/// varying with virtual time so successive checkpoints are distinct
/// content (content addressing would otherwise dedup them all).
fn synthetic_bytes(now: SimTime, len: usize) -> Vec<u8> {
    let tag = now.as_nanos().to_le_bytes();
    (0..len).map(|i| tag[i % 8] ^ (i as u8)).collect()
}

//! `str` — the satellite tracker (§2.1): "points antennas to track a
//! satellite during a pass".
//!
//! str shares the startup-synchronization coupling with ses (§4.3); see
//! [`super::estimator`] for the mechanism. During a pass it polls ses for
//! state estimates and drives the antenna through the radio front end.

use mercury_msg::{Message, TrackingState};
use rr_sim::{Actor, Context, Event, SimDuration};

use super::common::{Lifecycle, Shared, StoreClient, Wire, TIMER_BOOT, TIMER_ROLE_BASE};
use super::estimator::{SyncPeer, SyncRole};
use crate::config::names;

const TIMER_TRACK: u64 = TIMER_ROLE_BASE + 5;

/// The satellite tracker actor.
#[derive(Debug)]
pub struct Str {
    life: Lifecycle,
    sync: SyncPeer,
    store: StoreClient,
    state: TrackingState,
    target: Option<String>,
    telemetry_frames: u64,
    poll_timer_armed: bool,
}

impl Str {
    /// Creates the str actor.
    pub fn new(shared: Shared) -> Str {
        Str {
            store: StoreClient::new(names::STR, &shared),
            life: Lifecycle::new(names::STR, shared),
            sync: SyncPeer::new(SyncRole {
                peer: names::SES,
                service_s: |cfg| cfg.str_resync_service_s,
            }),
            state: TrackingState::Idle,
            target: None,
            telemetry_frames: 0,
            poll_timer_armed: false,
        }
    }

    /// The name of the radio front end present in this station build.
    fn radio_front(ctx: &Context<'_, Wire>) -> &'static str {
        if ctx.lookup(names::FEDR).is_some() {
            names::FEDR
        } else {
            names::FEDRCOM
        }
    }

    fn poll_estimate(&mut self, ctx: &mut Context<'_, Wire>) {
        self.poll_timer_armed = false;
        if let Some(sat) = self.target.clone() {
            let at = ctx.now().as_secs_f64() + self.life.config().pass_epoch_offset_s;
            self.life.send_bus(
                ctx,
                names::SES,
                Message::EstimateRequest {
                    satellite: sat,
                    at_epoch_s: at,
                },
            );
            ctx.set_timer(SimDuration::from_secs(2), TIMER_TRACK);
            self.poll_timer_armed = true;
        }
    }
}

impl Actor<Wire> for Str {
    fn on_event(&mut self, ev: Event<Wire>, ctx: &mut Context<'_, Wire>) {
        match ev {
            Event::Start => self.life.begin_boot(ctx, 0.0),
            Event::Timer { key: TIMER_BOOT } => {
                if !self.store.try_rehydrate(&mut self.life, ctx) {
                    self.sync.begin(&mut self.life, ctx);
                }
            }
            Event::Timer { key: TIMER_TRACK } => self.poll_estimate(ctx),
            Event::Timer { key } => {
                if !self.store.handle_timer(key, &mut self.life, ctx)
                    && !self.sync.handle_timer(key, &mut self.life, ctx)
                {
                    self.life.handle_beacon_timer(key, ctx, 0.0);
                }
            }
            Event::Message { payload, .. } => {
                let Some(env) = self.life.parse(ctx, &payload) else {
                    return;
                };
                if self.life.handle_common(&env, ctx, 0.0) {
                    return;
                }
                if self.sync.handle_message(&env.body, &mut self.life, ctx) {
                    if self.life.is_ready() {
                        self.store.start_journaling(&mut self.life, ctx);
                    }
                    return;
                }
                if !self.life.is_ready() {
                    return;
                }
                match env.body {
                    Message::TrackRequest { satellite } => {
                        let was_polling = self.poll_timer_armed && self.target.is_some();
                        if self.target.as_deref() != Some(satellite.as_str()) {
                            ctx.trace_mark(format!("track-start:{satellite}"));
                            self.state = TrackingState::Acquiring;
                        }
                        self.target = Some(satellite);
                        if !was_polling {
                            self.poll_estimate(ctx);
                        }
                    }
                    Message::EstimateReply {
                        azimuth_deg,
                        elevation_deg,
                        ..
                    } => {
                        if elevation_deg > 0.0 {
                            if self.state != TrackingState::Tracking {
                                self.state = TrackingState::Tracking;
                                ctx.trace_mark("tracking:acquired");
                            }
                            let front = Self::radio_front(ctx);
                            self.life.send_bus(
                                ctx,
                                front,
                                Message::PointAntenna {
                                    azimuth_deg,
                                    elevation_deg,
                                },
                            );
                        } else if self.state == TrackingState::Tracking {
                            // Pass is over: park the antenna.
                            self.state = TrackingState::Idle;
                            self.target = None;
                            ctx.trace_mark(format!(
                                "pass-complete:frames={}",
                                self.telemetry_frames
                            ));
                        }
                    }
                    Message::Telemetry { frame, .. } => {
                        self.telemetry_frames = self.telemetry_frames.max(frame);
                    }
                    _ => {}
                }
            }
        }
    }
}

//! `rtu` — the radio tuner (§2.1): "tunes the radios during a satellite
//! pass", compensating the downlink frequency for Doppler shift using the
//! estimates produced by ses.

use mercury_msg::{Message, RadioBand};
use rr_sim::{Actor, Context, Event, SimDuration};

use super::common::{Lifecycle, Shared, Wire, TIMER_BOOT, TIMER_ROLE_BASE};
use crate::config::names;

const TIMER_TUNE: u64 = TIMER_ROLE_BASE;

/// The radio tuner actor.
#[derive(Debug)]
pub struct Rtu {
    life: Lifecycle,
    target: Option<String>,
    /// `true` once the pass has begun (elevation seen above the horizon);
    /// lets rtu stop cleanly when the satellite sets.
    pass_active: bool,
    poll_timer_armed: bool,
}

impl Rtu {
    /// Creates the rtu actor.
    pub fn new(shared: Shared) -> Rtu {
        Rtu {
            life: Lifecycle::new(names::RTU, shared),
            target: None,
            pass_active: false,
            poll_timer_armed: false,
        }
    }

    fn radio_front(ctx: &Context<'_, Wire>) -> &'static str {
        if ctx.lookup(names::FEDR).is_some() {
            names::FEDR
        } else {
            names::FEDRCOM
        }
    }

    fn poll_estimate(&mut self, ctx: &mut Context<'_, Wire>) {
        self.poll_timer_armed = false;
        if let Some(sat) = self.target.clone() {
            let at = ctx.now().as_secs_f64() + self.life.config().pass_epoch_offset_s;
            self.life.send_bus(
                ctx,
                names::SES,
                Message::EstimateRequest {
                    satellite: sat,
                    at_epoch_s: at,
                },
            );
            ctx.set_timer(SimDuration::from_secs(2), TIMER_TUNE);
            self.poll_timer_armed = true;
        }
    }
}

impl Actor<Wire> for Rtu {
    fn on_event(&mut self, ev: Event<Wire>, ctx: &mut Context<'_, Wire>) {
        match ev {
            Event::Start => self.life.begin_boot(ctx, 0.0),
            Event::Timer { key: TIMER_BOOT } => self.life.set_ready(ctx),
            Event::Timer { key: TIMER_TUNE } => self.poll_estimate(ctx),
            Event::Timer { key } => {
                self.life.handle_beacon_timer(key, ctx, 0.0);
            }
            Event::Message { payload, .. } => {
                let Some(env) = self.life.parse(ctx, &payload) else {
                    return;
                };
                if self.life.handle_common(&env, ctx, 0.0) || !self.life.is_ready() {
                    return;
                }
                match env.body {
                    Message::TrackRequest { satellite } => {
                        let was_polling = self.poll_timer_armed && self.target.is_some();
                        if self.target.as_deref() != Some(satellite.as_str()) {
                            self.pass_active = false;
                        }
                        self.target = Some(satellite);
                        if !was_polling {
                            self.poll_estimate(ctx);
                        }
                    }
                    Message::EstimateReply {
                        elevation_deg,
                        doppler_hz,
                        ..
                    } => {
                        let Some(sat_name) = self.target.clone() else {
                            return;
                        };
                        let downlink = self
                            .life
                            .config()
                            .satellites
                            .iter()
                            .find(|s| s.name == sat_name)
                            .map(|s| s.downlink_hz)
                            .unwrap_or(437_100_000.0);
                        if elevation_deg > 0.0 {
                            self.pass_active = true;
                            let front = Self::radio_front(ctx);
                            self.life.send_bus(
                                ctx,
                                front,
                                Message::TuneRadio {
                                    frequency_hz: downlink + doppler_hz,
                                    band: RadioBand::Uhf,
                                },
                            );
                        } else if self.pass_active {
                            // Satellite set: stop tuning until the next pass.
                            self.target = None;
                            self.pass_active = false;
                        }
                    }
                    _ => {}
                }
            }
        }
    }
}

//! `mbus` — the software message bus (§2.1).
//!
//! All inter-component command traffic travels over mbus: components address
//! envelopes by component name and mbus forwards them. mbus answers liveness
//! pings itself (it is monitored like everything else, §2.2), and while it is
//! down or booting every envelope entrusted to it is lost — which is exactly
//! why FD suppresses other components' failure reports while mbus is
//! suspected: their silence is explained by the bus.

use mercury_msg::{Envelope, Message};
use rr_sim::{Actor, Context, Event, SimDuration};

use super::common::{Lifecycle, Shared, Wire, TIMER_BOOT};
use crate::config::names;

/// The message-bus actor.
#[derive(Debug)]
pub struct Mbus {
    life: Lifecycle,
    routed: u64,
}

impl Mbus {
    /// Creates the bus actor.
    pub fn new(shared: Shared) -> Mbus {
        Mbus {
            life: Lifecycle::new(names::MBUS, shared),
            routed: 0,
        }
    }

    fn route(&mut self, env: &Envelope, wire: Wire, ctx: &mut Context<'_, Wire>) {
        let Some(dst) = ctx.lookup(&env.dst) else {
            ctx.trace_mark(format!("route-error:{}", env.dst));
            return;
        };
        let latency = SimDuration::from_secs_f64(self.life.config().bus_latency_s);
        ctx.send_after(dst, latency, wire);
        self.routed += 1;
    }
}

impl Actor<Wire> for Mbus {
    fn on_event(&mut self, ev: Event<Wire>, ctx: &mut Context<'_, Wire>) {
        match ev {
            Event::Start => self.life.begin_boot(ctx, 0.0),
            Event::Timer { key } => {
                if key == TIMER_BOOT {
                    self.life.set_ready(ctx);
                } else {
                    self.life.handle_beacon_timer(key, ctx, 0.0);
                }
            }
            Event::Message { payload, .. } => {
                if !self.life.is_ready() {
                    return; // booting: traffic is silently lost
                }
                let Some(env) = self.life.parse(ctx, &payload) else {
                    return;
                };
                if env.dst == names::MBUS {
                    // Addressed to the bus itself: liveness pings.
                    if let Message::Ping { seq } = env.body {
                        let pong = env.reply_with(
                            self.life.next_id(),
                            Message::Pong {
                                seq,
                                status: mercury_msg::ComponentStatus::Ok,
                            },
                        );
                        // Deliver directly to the requester: the pong's bus
                        // hop is this very process.
                        self.route(&pong, pong.to_xml_string(), ctx);
                    }
                } else {
                    self.route(&env, payload, ctx);
                }
            }
        }
    }
}

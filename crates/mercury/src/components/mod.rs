//! The Mercury software components of Figure 1.
//!
//! Each submodule is one independently-restartable process: the message bus
//! ([`mbus`]), the radio front end before and after the §4.2 split
//! ([`radio`]), the satellite estimator ([`estimator`]), the tracker
//! ([`tracker`]) and the radio tuner ([`tuner`]). [`common`] holds the shared
//! lifecycle machinery (boot, ping answering, beacons).

pub mod common;
pub mod estimator;
pub mod mbus;
pub mod radio;
pub mod tracker;
pub mod tuner;

pub use common::{Lifecycle, Phase, Shared, Wire};
pub use estimator::Ses;
pub use mbus::Mbus;
pub use radio::{Fedr, Fedrcom, Pbcom};
pub use tracker::Str;
pub use tuner::Rtu;

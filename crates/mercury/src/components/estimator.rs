//! `ses` — the satellite estimator (§2.1): "calculates satellite position,
//! radio frequencies, and antenna pointing angles".
//!
//! ses and str synchronize with each other at startup (§4.3): a freshly
//! restarted ses blocks until str acknowledges its sync request. An *old*
//! (long-running) peer services the handshake slowly — it must rebuild
//! session state — and the emergency rebuild leaves it doomed: shortly after
//! servicing, it suffers an induced failure. Two *fresh* peers (restarted
//! together, as tree IV's consolidated cell does) handshake quickly. This is
//! the mechanism behind `f_ses ≈ f_str ≈ 0, f_{ses,str} ≈ 1`.

use mercury_msg::Message;
use rr_sim::{Actor, Context, Event, SimDuration};

use super::common::{Lifecycle, Phase, Shared, StoreClient, Wire, TIMER_BOOT, TIMER_ROLE_BASE};
use crate::config::names;
use crate::orbit::look_angle;

const TIMER_SYNC_RETRY: u64 = TIMER_ROLE_BASE;
const TIMER_INDUCED_CRASH: u64 = TIMER_ROLE_BASE + 1;

/// Which peer each estimator-side component syncs with, and how slowly it
/// services an old-side resync.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SyncRole {
    pub peer: &'static str,
    /// Seconds this component takes to service a resync when it is old.
    pub service_s: fn(&crate::config::StationConfig) -> f64,
}

/// Shared ses/str synchronization state machine.
#[derive(Debug)]
pub(crate) struct SyncPeer {
    role: SyncRole,
    session: u64,
    synced: bool,
}

impl SyncPeer {
    pub(crate) fn new(role: SyncRole) -> SyncPeer {
        SyncPeer {
            role,
            session: 0,
            synced: false,
        }
    }

    /// Starts a new sync phase (call right after boot completes): picks a
    /// session id, sends the first request and arms the retry timer.
    pub(crate) fn begin(&mut self, life: &mut Lifecycle, ctx: &mut Context<'_, Wire>) {
        life.set_initializing();
        self.synced = false;
        self.session = ctx.rng().next_u64();
        self.request(life, ctx);
    }

    fn request(&mut self, life: &mut Lifecycle, ctx: &mut Context<'_, Wire>) {
        life.send_bus(
            ctx,
            self.role.peer,
            Message::SyncRequest {
                incarnation: self.session,
            },
        );
        let retry = SimDuration::from_secs_f64(life.config().sync_retry_s);
        ctx.set_timer(retry, TIMER_SYNC_RETRY);
    }

    /// Handles sync-related timers. Returns `true` if consumed.
    pub(crate) fn handle_timer(
        &mut self,
        key: u64,
        life: &mut Lifecycle,
        ctx: &mut Context<'_, Wire>,
    ) -> bool {
        match key {
            TIMER_SYNC_RETRY => {
                if !self.synced {
                    self.request(life, ctx);
                }
                true
            }
            TIMER_INDUCED_CRASH => {
                // The emergency session rebuild has corrupted this old
                // incarnation (§4.3): fail now; FD will notice and REC will
                // restart us.
                ctx.trace_mark(format!("induced-crash:{}", life.name()));
                let me = ctx.id();
                ctx.kill_after(SimDuration::ZERO, me);
                true
            }
            _ => false,
        }
    }

    /// Handles sync messages. Returns `true` if consumed; sets the component
    /// ready when its own handshake completes.
    pub(crate) fn handle_message(
        &mut self,
        body: &Message,
        life: &mut Lifecycle,
        ctx: &mut Context<'_, Wire>,
    ) -> bool {
        match body {
            Message::SyncRequest { incarnation } => {
                if life.phase() == Phase::Booting {
                    // The process is not up yet; the peer will retry.
                    return true;
                }
                let fresh_sync_s = life.config().fresh_sync_s;
                let induced_delay_s = life.config().induced_failure_delay_s;
                let (delay, induced) = if !life.is_ready() || life.is_fresh(ctx.now()) {
                    // Fresh (or also mid-restart): quick handshake, no damage.
                    (fresh_sync_s, false)
                } else {
                    // Old peer: slow emergency rebuild, then induced failure.
                    ((self.role.service_s)(life.config()), true)
                };
                let ack = Message::SyncAck {
                    incarnation: *incarnation,
                };
                let peer = self.role.peer;
                // Model the service time as a delayed reply: queue the ack
                // after `delay`. (The component keeps answering pings — it is
                // busy, not dead.)
                let delay_dur = SimDuration::from_secs_f64(delay);
                let id = life.next_id();
                let env = mercury_msg::Envelope::new(life.name(), peer, id, ack);
                if let Some(bus) = ctx.lookup(names::MBUS) {
                    ctx.send_after(bus, delay_dur, env.to_xml_string());
                }
                if induced {
                    let crash_at = delay + induced_delay_s;
                    ctx.set_timer(SimDuration::from_secs_f64(crash_at), TIMER_INDUCED_CRASH);
                }
                true
            }
            Message::SyncAck { incarnation } => {
                if *incarnation == self.session && !self.synced {
                    self.synced = true;
                    if !life.is_ready() {
                        life.set_ready(ctx);
                    }
                }
                true
            }
            _ => false,
        }
    }
}

/// The satellite estimator actor.
#[derive(Debug)]
pub struct Ses {
    life: Lifecycle,
    sync: SyncPeer,
    store: StoreClient,
}

impl Ses {
    /// Creates the ses actor.
    pub fn new(shared: Shared) -> Ses {
        Ses {
            store: StoreClient::new(names::SES, &shared),
            life: Lifecycle::new(names::SES, shared),
            sync: SyncPeer::new(SyncRole {
                peer: names::STR,
                service_s: |cfg| cfg.ses_resync_service_s,
            }),
        }
    }
}

impl Actor<Wire> for Ses {
    fn on_event(&mut self, ev: Event<Wire>, ctx: &mut Context<'_, Wire>) {
        match ev {
            Event::Start => self.life.begin_boot(ctx, 0.0),
            Event::Timer { key: TIMER_BOOT } => {
                // Rehydrate from the durable store when policy and a
                // verified checkpoint allow it; else the cold resync.
                if !self.store.try_rehydrate(&mut self.life, ctx) {
                    self.sync.begin(&mut self.life, ctx);
                }
            }
            Event::Timer { key } => {
                if !self.store.handle_timer(key, &mut self.life, ctx)
                    && !self.sync.handle_timer(key, &mut self.life, ctx)
                {
                    self.life.handle_beacon_timer(key, ctx, 0.0);
                }
            }
            Event::Message { payload, .. } => {
                let Some(env) = self.life.parse(ctx, &payload) else {
                    return;
                };
                if self.life.handle_common(&env, ctx, 0.0) {
                    return;
                }
                if self.sync.handle_message(&env.body, &mut self.life, ctx) {
                    // The cold path just completed its handshake: begin
                    // journaling (no-op unless this component rehydrates).
                    if self.life.is_ready() {
                        self.store.start_journaling(&mut self.life, ctx);
                    }
                    return;
                }
                if let Message::EstimateRequest {
                    ref satellite,
                    at_epoch_s,
                } = env.body
                {
                    if !self.life.is_ready() {
                        return;
                    }
                    let cfg = self.life.config();
                    let Some(sat) = cfg.satellites.iter().find(|s| &s.name == satellite) else {
                        ctx.trace_mark(format!("unknown-satellite:{satellite}"));
                        return;
                    };
                    let la = look_angle(&cfg.site, sat, at_epoch_s);
                    let doppler = la.doppler_hz(sat.downlink_hz);
                    let reply = Message::EstimateReply {
                        azimuth_deg: la.azimuth_deg,
                        elevation_deg: la.elevation_deg,
                        range_km: la.range_km,
                        doppler_hz: doppler,
                    };
                    let src = env.src.clone();
                    self.life.send_bus(ctx, &src, reply);
                }
            }
        }
    }
}

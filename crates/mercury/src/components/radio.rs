//! The radio front end: `fedrcom` (trees I/II) and its §4.2 split into
//! `fedr` + `pbcom` (trees III–V).
//!
//! * [`Fedrcom`] is the original monolith: "a bidirectional proxy between XML
//!   command messages and low-level radio commands". It negotiates with the
//!   radio hardware at startup (slow) and its command translator is buggy
//!   (crashes often) — "high MTTR and low MTTF, a bad combination".
//! * [`Pbcom`] "maps a serial port to a TCP socket": simple, stable, slow to
//!   start (hardware negotiation). It *ages* every time it loses the fedr
//!   connection and eventually fails (§4.2), and the radio hardware backs
//!   off when the serial link bounces twice in quick succession (§4.4's
//!   rapid-restart cost).
//! * [`Fedr`] is the front-end driver: fast to restart, unstable, connected
//!   to pbcom over TCP. The harness can *poison* it (`TestHook`), making it
//!   corrupt its pbcom session — the failure that manifests in pbcom but is
//!   only curable by a joint restart (§4.4).

use mercury_msg::Message;
use rr_sim::{Actor, Context, Event, SimDuration, SimTime};

use super::common::{Lifecycle, Shared, Wire, TIMER_BOOT, TIMER_ROLE_BASE};
use crate::config::names;

const TIMER_TELEMETRY: u64 = TIMER_ROLE_BASE;
const TIMER_CONNECT_RETRY: u64 = TIMER_ROLE_BASE + 1;
const TIMER_KEEPALIVE: u64 = TIMER_ROLE_BASE + 2;
const TIMER_SEND_POISON: u64 = TIMER_ROLE_BASE + 3;

/// Tracks whether tune/point commands are fresh enough for carrier lock.
#[derive(Debug, Default, Clone, Copy)]
struct LockState {
    last_tune: Option<SimTime>,
    last_point: Option<SimTime>,
}

impl LockState {
    fn tune(&mut self, now: SimTime) {
        self.last_tune = Some(now);
    }

    fn point(&mut self, now: SimTime) {
        self.last_point = Some(now);
    }

    fn locked(&self, now: SimTime, window_s: f64) -> bool {
        let fresh = |t: Option<SimTime>| {
            t.is_some_and(|t| now.saturating_since(t).as_secs_f64() <= window_s)
        };
        fresh(self.last_tune) && fresh(self.last_point)
    }
}

/// The unsplit radio proxy of trees I/II.
#[derive(Debug)]
pub struct Fedrcom {
    life: Lifecycle,
    lock: LockState,
    satellite: String,
    frame: u64,
}

impl Fedrcom {
    /// Creates the fedrcom actor.
    pub fn new(shared: Shared) -> Fedrcom {
        let satellite = shared
            .config
            .satellites
            .first()
            .map(|s| s.name.clone())
            .unwrap_or_else(|| "opal".to_string());
        Fedrcom {
            life: Lifecycle::new(names::FEDRCOM, shared),
            lock: LockState::default(),
            satellite,
            frame: 0,
        }
    }
}

impl Actor<Wire> for Fedrcom {
    fn on_event(&mut self, ev: Event<Wire>, ctx: &mut Context<'_, Wire>) {
        match ev {
            Event::Start => {
                // The monolith owns the serial port: boot includes hardware
                // negotiation, with the rapid-bounce back-off.
                let cfg = self.life.config();
                let (window, penalty) = (
                    cfg.rapid_restart_window_s,
                    cfg.pbcom_rapid_restart_penalty_s,
                );
                let extra = self.life.shared().radio.borrow_mut().begin_negotiation(
                    ctx.now(),
                    window,
                    penalty,
                );
                self.life.begin_boot(ctx, extra);
            }
            Event::Timer { key: TIMER_BOOT } => {
                self.life.set_ready(ctx);
                let period = SimDuration::from_secs_f64(self.life.config().telemetry_period_s);
                ctx.set_timer(period, TIMER_TELEMETRY);
            }
            Event::Timer {
                key: TIMER_TELEMETRY,
            } => {
                let cfg_period = self.life.config().telemetry_period_s;
                let window = self.life.config().lock_window_s;
                if self.life.is_ready() && self.lock.locked(ctx.now(), window) {
                    self.frame += 1;
                    ctx.trace_mark(format!("telemetry:{}:{}", self.satellite, self.frame));
                    let msg = Message::Telemetry {
                        satellite: self.satellite.clone(),
                        frame: self.frame,
                        hex: format!("{:08x}", self.frame),
                    };
                    self.life.send_bus(ctx, names::STR, msg);
                }
                ctx.set_timer(SimDuration::from_secs_f64(cfg_period), TIMER_TELEMETRY);
            }
            Event::Timer { key } => {
                self.life.handle_beacon_timer(key, ctx, 0.0);
            }
            Event::Message { payload, .. } => {
                let Some(env) = self.life.parse(ctx, &payload) else {
                    return;
                };
                if self.life.handle_common(&env, ctx, 0.0) || !self.life.is_ready() {
                    return;
                }
                match env.body {
                    Message::TuneRadio { .. } => self.lock.tune(ctx.now()),
                    Message::PointAntenna { .. } => self.lock.point(ctx.now()),
                    Message::TrackRequest { satellite } => self.satellite = satellite,
                    _ => {}
                }
            }
        }
    }
}

/// The front-end driver-radio (post-split).
#[derive(Debug)]
pub struct Fedr {
    life: Lifecycle,
    connected: bool,
    poisoned: bool,
    satellite: String,
    missed_keepalives: u32,
}

impl Fedr {
    /// Creates the fedr actor.
    pub fn new(shared: Shared) -> Fedr {
        let satellite = shared
            .config
            .satellites
            .first()
            .map(|s| s.name.clone())
            .unwrap_or_else(|| "opal".to_string());
        Fedr {
            life: Lifecycle::new(names::FEDR, shared),
            connected: false,
            poisoned: false,
            satellite,
            missed_keepalives: 0,
        }
    }

    fn radio_cmd(verb: &str, arg: &str) -> Message {
        Message::RadioCommand {
            verb: verb.to_string(),
            arg: arg.to_string(),
        }
    }

    fn try_connect(&mut self, ctx: &mut Context<'_, Wire>) {
        self.connected = false;
        self.life
            .send_direct(ctx, names::PBCOM, Self::radio_cmd("OPEN", ""));
        let retry = SimDuration::from_secs_f64(self.life.config().connect_retry_s);
        ctx.set_timer(retry, TIMER_CONNECT_RETRY);
    }
}

impl Actor<Wire> for Fedr {
    fn on_event(&mut self, ev: Event<Wire>, ctx: &mut Context<'_, Wire>) {
        match ev {
            Event::Start => self.life.begin_boot(ctx, 0.0),
            Event::Timer { key: TIMER_BOOT } => {
                self.life.set_initializing();
                self.try_connect(ctx);
            }
            Event::Timer {
                key: TIMER_CONNECT_RETRY,
            } => {
                if !self.connected {
                    self.try_connect(ctx);
                }
            }
            Event::Timer {
                key: TIMER_KEEPALIVE,
            } => {
                if self.connected {
                    self.missed_keepalives += 1;
                    if self.missed_keepalives > 2 {
                        // The pbcom session is gone; reconnect in the
                        // background (fedr itself stays functional).
                        self.try_connect(ctx);
                    } else {
                        self.life
                            .send_direct(ctx, names::PBCOM, Self::radio_cmd("KEEPALIVE", ""));
                        let period =
                            SimDuration::from_secs_f64(self.life.config().keepalive_period_s);
                        ctx.set_timer(period, TIMER_KEEPALIVE);
                    }
                }
            }
            Event::Timer {
                key: TIMER_SEND_POISON,
            } => {
                if self.connected {
                    // The corrupted session state damages pbcom (§4.4): this
                    // failure will manifest in pbcom, and restarting pbcom
                    // alone cannot cure it — this incarnation of fedr will
                    // simply re-corrupt the new session.
                    self.life
                        .send_direct(ctx, names::PBCOM, Self::radio_cmd("DATA", "corrupt"));
                }
            }
            Event::Timer { key } => {
                self.life.handle_beacon_timer(key, ctx, 0.0);
            }
            Event::Message { payload, .. } => {
                let Some(env) = self.life.parse(ctx, &payload) else {
                    return;
                };
                if self.life.handle_common(&env, ctx, 0.0) {
                    return;
                }
                match env.body {
                    Message::TestHook { ref action } if action == "poison" => {
                        self.poisoned = true;
                        ctx.trace_mark("poisoned:fedr");
                        if self.connected {
                            ctx.set_timer(SimDuration::from_millis(100), TIMER_SEND_POISON);
                        }
                    }
                    Message::RadioCommand { ref verb, .. } if verb == "OPEN-ACK" => {
                        self.connected = true;
                        self.missed_keepalives = 0;
                        if !self.life.is_ready() {
                            self.life.set_ready(ctx);
                        }
                        let period =
                            SimDuration::from_secs_f64(self.life.config().keepalive_period_s);
                        ctx.set_timer(period, TIMER_KEEPALIVE);
                        if self.poisoned {
                            ctx.set_timer(SimDuration::from_millis(100), TIMER_SEND_POISON);
                        }
                    }
                    Message::RadioCommand { ref verb, .. } if verb == "KA-ACK" => {
                        self.missed_keepalives = 0;
                    }
                    Message::TuneRadio { frequency_hz, .. } if self.life.is_ready() => {
                        self.life.send_direct(
                            ctx,
                            names::PBCOM,
                            Self::radio_cmd("FREQ", &format!("{frequency_hz:.0}")),
                        );
                    }
                    Message::PointAntenna {
                        azimuth_deg,
                        elevation_deg,
                    } if self.life.is_ready() => {
                        self.life.send_direct(
                            ctx,
                            names::PBCOM,
                            Self::radio_cmd(
                                "POINT",
                                &format!("{azimuth_deg:.1},{elevation_deg:.1}"),
                            ),
                        );
                    }
                    Message::TrackRequest { satellite } => self.satellite = satellite,
                    Message::SerialFrame { ref hex } if self.life.is_ready() => {
                        // Downlink data from the radio: deframe, validate the
                        // CRC, and translate to a high-level telemetry
                        // message. Corrupt frames are dropped and counted —
                        // they must never reach the bus.
                        match mercury_msg::TelemetryFrame::from_hex(hex) {
                            Ok(frame) => {
                                let seq = u64::from(frame.seq);
                                ctx.trace_mark(format!("telemetry:{}:{seq}", self.satellite));
                                let msg = Message::Telemetry {
                                    satellite: self.satellite.clone(),
                                    frame: seq,
                                    hex: hex.clone(),
                                };
                                self.life.send_bus(ctx, names::STR, msg);
                            }
                            Err(e) => {
                                ctx.trace_mark(format!("telemetry-corrupt:{e}"));
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
    }
}

/// The serial-port/TCP bridge (post-split).
#[derive(Debug)]
pub struct Pbcom {
    life: Lifecycle,
    /// Sessions accepted this incarnation; re-opens beyond the first mean
    /// the link was lost and the bridge ages (§4.2).
    sessions: u32,
    aging: u32,
    lock: LockState,
    frame: u64,
    dying: bool,
}

impl Pbcom {
    /// Creates the pbcom actor.
    pub fn new(shared: Shared) -> Pbcom {
        Pbcom {
            life: Lifecycle::new(names::PBCOM, shared),
            sessions: 0,
            aging: 0,
            lock: LockState::default(),
            frame: 0,
            dying: false,
        }
    }

    fn aging_fraction(&self) -> f64 {
        let limit = self.life.config().pbcom_aging_limit.max(1);
        f64::from(self.aging) / f64::from(limit)
    }
}

impl Actor<Wire> for Pbcom {
    fn on_event(&mut self, ev: Event<Wire>, ctx: &mut Context<'_, Wire>) {
        match ev {
            Event::Start => {
                let cfg = self.life.config();
                let (window, penalty) = (
                    cfg.rapid_restart_window_s,
                    cfg.pbcom_rapid_restart_penalty_s,
                );
                let extra = self.life.shared().radio.borrow_mut().begin_negotiation(
                    ctx.now(),
                    window,
                    penalty,
                );
                self.life.begin_boot(ctx, extra);
            }
            Event::Timer { key: TIMER_BOOT } => {
                self.life.set_ready(ctx);
                let period = SimDuration::from_secs_f64(self.life.config().telemetry_period_s);
                ctx.set_timer(period, TIMER_TELEMETRY);
            }
            Event::Timer {
                key: TIMER_TELEMETRY,
            } => {
                let period = self.life.config().telemetry_period_s;
                let window = self.life.config().lock_window_s;
                if self.life.is_ready()
                    && !self.dying
                    && self.sessions > 0
                    && self.lock.locked(ctx.now(), window)
                {
                    self.frame += 1;
                    // Downlink data is CRC-framed on the serial link.
                    let payload = format!("frame-{:06}", self.frame).into_bytes();
                    let frame = mercury_msg::TelemetryFrame::new(self.frame as u32, payload);
                    let msg = Message::SerialFrame {
                        hex: frame.to_hex(),
                    };
                    self.life.send_direct(ctx, names::FEDR, msg);
                }
                ctx.set_timer(SimDuration::from_secs_f64(period), TIMER_TELEMETRY);
            }
            Event::Timer { key } => {
                self.life
                    .handle_beacon_timer(key, ctx, self.aging_fraction());
            }
            Event::Message { payload, .. } => {
                let Some(env) = self.life.parse(ctx, &payload) else {
                    return;
                };
                let aging = self.aging_fraction();
                if self.life.handle_common(&env, ctx, aging) || !self.life.is_ready() {
                    return;
                }
                let Message::RadioCommand { ref verb, ref arg } = env.body else {
                    return;
                };
                match verb.as_str() {
                    "OPEN" => {
                        self.sessions += 1;
                        if self.sessions > 1 {
                            // The previous session was severed: the bridge
                            // leaks session state and ages (§4.2).
                            self.aging += 1;
                            if self.aging >= self.life.config().pbcom_aging_limit && !self.dying {
                                self.dying = true;
                                ctx.trace_mark("aging-crash:pbcom");
                                let me = ctx.id();
                                ctx.kill_after(SimDuration::from_millis(500), me);
                            }
                        }
                        let ack_delay =
                            SimDuration::from_secs_f64(self.life.config().connect_ack_s);
                        let id = self.life.next_id();
                        let ack = env.reply_with(
                            id,
                            Message::RadioCommand {
                                verb: "OPEN-ACK".to_string(),
                                arg: String::new(),
                            },
                        );
                        let Some(pid) = ctx.lookup(&env.src) else {
                            return;
                        };
                        ctx.send_after(pid, ack_delay, ack.to_xml_string());
                    }
                    "KEEPALIVE" => {
                        let id = self.life.next_id();
                        let ack = env.reply_with(
                            id,
                            Message::RadioCommand {
                                verb: "KA-ACK".to_string(),
                                arg: String::new(),
                            },
                        );
                        let Some(pid) = ctx.lookup(&env.src) else {
                            return;
                        };
                        let latency =
                            SimDuration::from_secs_f64(self.life.config().direct_latency_s);
                        ctx.send_after(pid, latency, ack.to_xml_string());
                    }
                    "DATA" if arg == "corrupt" && !self.dying => {
                        // The poisoned session corrupts the bridge (§4.4).
                        self.dying = true;
                        ctx.trace_mark("poison-crash:pbcom");
                        let delay =
                            SimDuration::from_secs_f64(self.life.config().poison_crash_delay_s);
                        let me = ctx.id();
                        ctx.kill_after(delay, me);
                    }
                    "FREQ" => self.lock.tune(ctx.now()),
                    "POINT" => self.lock.point(ctx.now()),
                    _ => {}
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_state_requires_both_fresh() {
        let mut lock = LockState::default();
        let t = |s| SimTime::from_secs(s);
        assert!(!lock.locked(t(10), 5.0));
        lock.tune(t(10));
        assert!(!lock.locked(t(10), 5.0), "tune alone is not lock");
        lock.point(t(12));
        assert!(lock.locked(t(13), 5.0));
        assert!(!lock.locked(t(16), 5.0), "tune went stale");
        lock.tune(t(16));
        assert!(lock.locked(t(16), 5.0));
    }
}

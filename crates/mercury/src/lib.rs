//! # mercury — the recursively restartable COTS satellite ground station
//!
//! A faithful simulation of the Mercury ground station from *Reducing
//! Recovery Time in a Small Recursively Restartable System* (DSN 2002):
//! the component graph of Figure 1 (`mbus`, `fedrcom` — later split into
//! `fedr` + `pbcom` —, `ses`, `str`, `rtu`), the failure detector `FD` (1 s
//! application-level XML liveness pings), the recovery module `REC`
//! (recoverer + oracle over a restart tree from `rr-core`), the failure
//! couplings the paper measures (ses/str startup synchronization, pbcom
//! aging, the joint-restart-only pbcom failure), and a Keplerian orbit model
//! driving realistic satellite-pass workloads.
//!
//! ## Quick start
//!
//! ```
//! use mercury::config::StationConfig;
//! use mercury::measure::measure_recovery;
//! use mercury::station::{Station, TreeVariant};
//! use rr_core::PerfectOracle;
//! use rr_sim::SimDuration;
//!
//! let mut station = Station::new(
//!     StationConfig::paper(),
//!     TreeVariant::IV,
//!     Box::new(PerfectOracle::new()),
//!     42,
//! )
//! .expect("valid station");
//! station.warm_up();
//! let injected = station.inject_kill("rtu").expect("known component");
//! station.run_for(SimDuration::from_secs(60));
//! let m = measure_recovery(station.trace(), "rtu", injected)?;
//! assert!(m.recovery_s() < 10.0, "partial restart beats a full reboot");
//! # Ok::<(), mercury::measure::MeasureError>(())
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::disallowed_methods))]
#![warn(missing_docs)]

pub mod components;
pub mod config;
pub mod fd;
pub mod host;
pub mod measure;
pub mod orbit;
pub mod rec;
pub mod scenario;
pub mod station;

pub use config::{names, StationConfig};
pub use measure::{measure_recovery, MeasureError, RecoveryMeasurement};
pub use scenario::PassScenario;
pub use station::{Station, TreeVariant};

#![allow(clippy::disallowed_methods)]
//! Property tests of the whole station: arbitrary single-failure campaigns
//! always recover within bounded time, under every tree variant, and the
//! recovery never needs more components than the whole system.

use mercury::config::{names, StationConfig};
use mercury::measure::measure_recovery;
use mercury::station::{Station, TreeVariant};
use rr_core::PerfectOracle;
use rr_sim::{check, SimDuration, SimRng};

const VARIANTS: [TreeVariant; 5] = [
    TreeVariant::I,
    TreeVariant::II,
    TreeVariant::III,
    TreeVariant::IV,
    TreeVariant::V,
];

/// Any single component failure, under any tree, with any seed and any
/// injection phase, recovers in bounded time with a restart set that is
/// a subset of the station.
#[test]
fn any_single_failure_recovers() {
    // Station trials are comparatively expensive; keep the case count sane.
    check::run("any_single_failure_recovers", 24, |rng| {
        let variant = *rng.choose(&VARIANTS).unwrap();
        let comps = variant.components();
        let component = comps[rng.next_below(comps.len() as u64) as usize].clone();
        let seed = rng.next_u64();
        let hang = rng.chance(0.5);
        let mut station = Station::new(
            StationConfig::paper(),
            variant,
            Box::new(PerfectOracle::new()),
            seed,
        )
        .expect("valid station");
        station.warm_up();
        let mut phase = SimRng::new(seed ^ 0xFEED);
        station.randomize_injection_phase(&mut phase);
        let injected = if hang {
            station.inject_hang(&component).expect("known component")
        } else {
            station.inject_kill(&component).expect("known component")
        };
        station.run_for(SimDuration::from_secs(120));
        let m = measure_recovery(station.trace(), &component, injected)
            .expect("single failures always recover");
        // Bounded: even the worst case (full reboot with contention) is
        // well under a minute.
        assert!(m.recovery_s() < 45.0, "{component}: {:.2}s", m.recovery_s());
        assert!(m.recovery_s() > 1.0, "recovery cannot beat detection");
        // The restart set is within the station and contains the victim.
        for c in &m.final_restart_set {
            assert!(comps.contains(c));
        }
        assert!(m.final_restart_set.contains(&component));
        // A perfect oracle needs exactly one attempt for solo failures…
        // except under tree III where a ses/str failure may cascade, which
        // is a *different* episode, so attempts stays 1 here too.
        assert_eq!(m.attempts, 1);
    });
}

/// Two failures injected in sequence both recover, regardless of order.
#[test]
fn sequential_failures_recover() {
    check::run("sequential_failures_recover", 16, |rng| {
        let variant = *rng.choose(&VARIANTS).unwrap();
        let comps = variant.components();
        let first = comps[rng.next_below(comps.len() as u64) as usize].clone();
        let second = comps[rng.next_below(comps.len() as u64) as usize].clone();
        let gap_s = 30 + rng.next_below(60);
        let seed = rng.next_u64();
        let mut station = Station::new(
            StationConfig::paper(),
            variant,
            Box::new(PerfectOracle::new()),
            seed,
        )
        .expect("valid station");
        station.warm_up();
        let t1 = station.inject_kill(&first).expect("known component");
        station.run_for(SimDuration::from_secs(gap_s));
        // The first failure must be cured by now (worst case ≈ 29s + slack).
        let m1 = measure_recovery(station.trace(), &first, t1).expect("first recovers");
        assert!(m1.recovery_s() < gap_s as f64);
        let t2 = station.inject_kill(&second).expect("known component");
        station.run_for(SimDuration::from_secs(120));
        let m2 = measure_recovery(station.trace(), &second, t2).expect("second recovers");
        assert!(m2.recovery_s() < 45.0);
    });
}

/// A transient partition between FD and the bus heals without leaving
/// the station wedged: after the network recovers, failures are again
/// detected and cured. (A partition is indistinguishable from a crash,
/// so REC may restart healthy components meanwhile — that is the
/// documented cost of fail-silent detection, not a bug.)
#[test]
fn fd_bus_partition_heals() {
    check::run("fd_bus_partition_heals", 8, |rng| {
        let seed = rng.next_u64();
        let partition_s = 5 + rng.next_below(15);
        let mut station = Station::new(
            StationConfig::paper(),
            TreeVariant::II,
            Box::new(PerfectOracle::new()),
            seed,
        )
        .expect("valid station");
        station.warm_up();
        {
            let sim = station.sim_mut();
            let fd = sim.lookup(names::FD).unwrap();
            let bus = sim.lookup(names::MBUS).unwrap();
            sim.set_link(fd, bus, false);
        }
        station.run_for(SimDuration::from_secs(partition_s));
        {
            let sim = station.sim_mut();
            let fd = sim.lookup(names::FD).unwrap();
            let bus = sim.lookup(names::MBUS).unwrap();
            sim.set_link(fd, bus, true);
        }
        // Let any partition-triggered restarts settle.
        station.run_for(SimDuration::from_secs(60));
        // The station still works: a fresh failure is detected and cured.
        let injected = station.inject_kill(names::RTU).expect("known component");
        station.run_for(SimDuration::from_secs(60));
        let m = measure_recovery(station.trace(), names::RTU, injected)
            .expect("post-partition failures still recover");
        assert!(m.recovery_s() < 45.0);
    });
}

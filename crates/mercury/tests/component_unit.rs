#![allow(clippy::disallowed_methods)]
//! Component-level unit tests: each Mercury component exercised in a
//! minimal simulation (just the actors it needs), independent of FD/REC.

use std::cell::RefCell;
use std::rc::Rc;

use mercury::components::common::{Shared, Wire};
use mercury::components::{Fedr, Mbus, Pbcom, Rtu, Ses, Str};
use mercury::config::{names, StationConfig};
use mercury_msg::{Envelope, Message};
use rr_sim::{Actor, Context, Event, Sim, SimDuration, SimTime};

/// A probe actor that records every envelope it receives.
struct Probe {
    seen: Rc<RefCell<Vec<Envelope>>>,
}

impl Actor<Wire> for Probe {
    fn on_event(&mut self, ev: Event<Wire>, _ctx: &mut Context<'_, Wire>) {
        if let Event::Message { payload, .. } = ev {
            if let Ok(env) = Envelope::parse(&payload) {
                self.seen.borrow_mut().push(env);
            }
        }
    }
}

fn probe(sim: &mut Sim<Wire>, name: &str) -> Rc<RefCell<Vec<Envelope>>> {
    let seen = Rc::new(RefCell::new(Vec::new()));
    let s = seen.clone();
    sim.spawn(name, move || Box::new(Probe { seen: s.clone() }));
    seen
}

fn send_env(sim: &mut Sim<Wire>, to: &str, env: Envelope) {
    let pid = sim.lookup(to).expect("target exists");
    sim.send_external(pid, pid, SimDuration::ZERO, env.to_xml_string());
}

fn shared() -> Shared {
    Shared::new(StationConfig::paper())
}

#[test]
fn mbus_routes_by_destination_name() {
    let mut sim: Sim<Wire> = Sim::new(1);
    let sh = shared();
    sim.spawn(names::MBUS, move || Box::new(Mbus::new(sh.clone())));
    let alpha = probe(&mut sim, "alpha");
    let beta = probe(&mut sim, "beta");
    sim.run_for(SimDuration::from_secs(10)); // mbus boots (~4.7s)

    send_env(
        &mut sim,
        names::MBUS,
        Envelope::new("alpha", "beta", 1, Message::Ack { of: 9 }),
    );
    sim.run_for(SimDuration::from_secs(1));
    assert_eq!(beta.borrow().len(), 1);
    assert_eq!(beta.borrow()[0].body, Message::Ack { of: 9 });
    assert!(alpha.borrow().is_empty(), "mbus must not broadcast");
}

#[test]
fn mbus_answers_its_own_pings_and_flags_unknown_routes() {
    let mut sim: Sim<Wire> = Sim::new(2);
    let sh = shared();
    sim.spawn(names::MBUS, move || Box::new(Mbus::new(sh.clone())));
    let fd = probe(&mut sim, names::FD);
    sim.run_for(SimDuration::from_secs(10));

    send_env(
        &mut sim,
        names::MBUS,
        Envelope::new(names::FD, names::MBUS, 1, Message::Ping { seq: 77 }),
    );
    send_env(
        &mut sim,
        names::MBUS,
        Envelope::new(names::FD, "nonexistent", 2, Message::Ack { of: 1 }),
    );
    sim.run_for(SimDuration::from_secs(1));
    let seen = fd.borrow();
    assert!(
        matches!(seen[0].body, Message::Pong { seq: 77, .. }),
        "mbus answers liveness pings itself: {:?}",
        seen[0].body
    );
    assert!(sim
        .trace()
        .mark_times("route-error:nonexistent")
        .next()
        .is_some());
}

#[test]
fn mbus_drops_traffic_while_booting() {
    let mut sim: Sim<Wire> = Sim::new(3);
    let sh = shared();
    sim.spawn(names::MBUS, move || Box::new(Mbus::new(sh.clone())));
    let beta = probe(&mut sim, "beta");
    // Send before mbus is ready (boot ≈ 4.7 s).
    sim.run_for(SimDuration::from_secs(1));
    send_env(
        &mut sim,
        names::MBUS,
        Envelope::new("alpha", "beta", 1, Message::Ack { of: 1 }),
    );
    sim.run_for(SimDuration::from_secs(10));
    assert!(
        beta.borrow().is_empty(),
        "booting bus loses traffic (fail-silent)"
    );
}

#[test]
fn ses_estimates_use_the_orbit_model() {
    let mut sim: Sim<Wire> = Sim::new(4);
    let sh = shared();
    let sh2 = sh.clone();
    let sh3 = sh.clone();
    sim.spawn(names::MBUS, move || Box::new(Mbus::new(sh.clone())));
    sim.spawn(names::SES, move || Box::new(Ses::new(sh2.clone())));
    // str present so ses's startup sync completes.
    sim.spawn(names::STR, move || Box::new(Str::new(sh3.clone())));
    let rtu = probe(&mut sim, names::RTU);
    sim.run_for(SimDuration::from_secs(15)); // boot + fresh handshake

    send_env(
        &mut sim,
        names::MBUS,
        Envelope::new(
            names::RTU,
            names::SES,
            1,
            Message::EstimateRequest {
                satellite: "opal".into(),
                at_epoch_s: 1234.0,
            },
        ),
    );
    sim.run_for(SimDuration::from_secs(1));
    let seen = rtu.borrow();
    assert_eq!(seen.len(), 1);
    match seen[0].body {
        Message::EstimateReply {
            azimuth_deg,
            elevation_deg,
            range_km,
            ..
        } => {
            // Must match the orbit model exactly.
            let cfg = StationConfig::paper();
            let sat = cfg.satellites.iter().find(|s| s.name == "opal").unwrap();
            let la = mercury::orbit::look_angle(&cfg.site, sat, 1234.0);
            assert!((azimuth_deg - la.azimuth_deg).abs() < 1e-9);
            assert!((elevation_deg - la.elevation_deg).abs() < 1e-9);
            assert!((range_km - la.range_km).abs() < 1e-9);
        }
        ref other => panic!("expected EstimateReply, got {other:?}"),
    }
}

#[test]
fn ses_ignores_unknown_satellites() {
    let mut sim: Sim<Wire> = Sim::new(5);
    let sh = shared();
    let sh2 = sh.clone();
    let sh3 = sh.clone();
    sim.spawn(names::MBUS, move || Box::new(Mbus::new(sh.clone())));
    sim.spawn(names::SES, move || Box::new(Ses::new(sh2.clone())));
    sim.spawn(names::STR, move || Box::new(Str::new(sh3.clone())));
    let rtu = probe(&mut sim, names::RTU);
    sim.run_for(SimDuration::from_secs(15));
    send_env(
        &mut sim,
        names::MBUS,
        Envelope::new(
            names::RTU,
            names::SES,
            1,
            Message::EstimateRequest {
                satellite: "sputnik".into(),
                at_epoch_s: 0.0,
            },
        ),
    );
    sim.run_for(SimDuration::from_secs(1));
    assert!(rtu.borrow().is_empty());
    assert!(sim
        .trace()
        .mark_times("unknown-satellite:sputnik")
        .next()
        .is_some());
}

#[test]
fn fedr_pbcom_connect_and_frame_flow() {
    let mut sim: Sim<Wire> = Sim::new(6);
    let sh = shared();
    let sh2 = sh.clone();
    let sh3 = sh.clone();
    sim.spawn(names::MBUS, move || Box::new(Mbus::new(sh.clone())));
    sim.spawn(names::FEDR, move || Box::new(Fedr::new(sh2.clone())));
    sim.spawn(names::PBCOM, move || Box::new(Pbcom::new(sh3.clone())));
    let strp = probe(&mut sim, names::STR);
    // pbcom boots ~20.3s; fedr retries OPEN until then.
    sim.run_for(SimDuration::from_secs(30));
    assert!(
        sim.trace()
            .mark_times(&format!("ready:{}", names::FEDR))
            .next()
            .is_some(),
        "fedr becomes ready once connected"
    );

    // Establish carrier lock: tune + point through the bus.
    for msg in [
        Message::TuneRadio {
            frequency_hz: 437e6,
            band: mercury_msg::RadioBand::Uhf,
        },
        Message::PointAntenna {
            azimuth_deg: 120.0,
            elevation_deg: 40.0,
        },
    ] {
        send_env(
            &mut sim,
            names::MBUS,
            Envelope::new(names::RTU, names::FEDR, 1, msg),
        );
    }
    sim.run_for(SimDuration::from_secs(3));
    // pbcom produces CRC-framed telemetry; fedr validates and forwards.
    let telem = strp
        .borrow()
        .iter()
        .filter(|e| matches!(e.body, Message::Telemetry { .. }))
        .count();
    assert!(telem >= 1, "telemetry should flow while locked");
    let corrupt = sim
        .trace()
        .iter()
        .filter(|e| e.label.starts_with("telemetry-corrupt"))
        .count();
    assert_eq!(corrupt, 0);
}

#[test]
fn rtu_tunes_with_doppler_correction() {
    let mut sim: Sim<Wire> = Sim::new(7);
    let sh = shared();
    let sh2 = sh.clone();
    let sh3 = sh.clone();
    let sh4 = sh.clone();
    sim.spawn(names::MBUS, move || Box::new(Mbus::new(sh.clone())));
    sim.spawn(names::SES, move || Box::new(Ses::new(sh2.clone())));
    sim.spawn(names::STR, move || Box::new(Str::new(sh3.clone())));
    sim.spawn(names::RTU, move || Box::new(Rtu::new(sh4.clone())));
    let fedr = probe(&mut sim, names::FEDR);
    sim.run_for(SimDuration::from_secs(15));

    send_env(
        &mut sim,
        names::MBUS,
        Envelope::new(
            "operator",
            names::RTU,
            1,
            Message::TrackRequest {
                satellite: "opal".into(),
            },
        ),
    );
    sim.run_for(SimDuration::from_secs(10));
    let tunes: Vec<f64> = fedr
        .borrow()
        .iter()
        .filter_map(|e| match e.body {
            Message::TuneRadio { frequency_hz, .. } => Some(frequency_hz),
            _ => None,
        })
        .collect();
    if tunes.is_empty() {
        // The satellite may simply be below the horizon at epoch 0 for this
        // geometry; the estimator still answered, which is what this test
        // pins down. Check an estimate reached rtu via trace instead.
        let est_answered = !sim.trace().is_empty();
        assert!(est_answered);
    } else {
        let cfg = StationConfig::paper();
        let downlink = cfg.satellites[0].downlink_hz;
        for f in tunes {
            assert!(
                (f - downlink).abs() < 15_000.0,
                "tuned {f} Hz must be downlink ± Doppler"
            );
        }
    }
}

#[test]
fn components_do_not_answer_pings_while_booting() {
    let mut sim: Sim<Wire> = Sim::new(8);
    let sh = shared();
    let sh2 = sh.clone();
    sim.spawn(names::MBUS, move || Box::new(Mbus::new(sh.clone())));
    sim.spawn(names::PBCOM, move || Box::new(Pbcom::new(sh2.clone())));
    let fd = probe(&mut sim, names::FD);
    sim.run_for(SimDuration::from_secs(10)); // mbus up; pbcom still booting (~20 s)

    send_env(
        &mut sim,
        names::MBUS,
        Envelope::new(names::FD, names::PBCOM, 1, Message::Ping { seq: 1 }),
    );
    sim.run_for(SimDuration::from_secs(2));
    assert!(
        fd.borrow().is_empty(),
        "a booting component is not alive yet"
    );

    sim.run_for(SimDuration::from_secs(15)); // pbcom now ready
    send_env(
        &mut sim,
        names::MBUS,
        Envelope::new(names::FD, names::PBCOM, 2, Message::Ping { seq: 2 }),
    );
    sim.run_for(SimDuration::from_secs(2));
    assert_eq!(fd.borrow().len(), 1);
}

#[test]
fn ses_str_fresh_handshake_is_fast_and_mutual() {
    let mut sim: Sim<Wire> = Sim::new(9);
    let sh = shared();
    let sh2 = sh.clone();
    let sh3 = sh.clone();
    sim.spawn(names::MBUS, move || Box::new(Mbus::new(sh.clone())));
    sim.spawn(names::SES, move || Box::new(Ses::new(sh2.clone())));
    sim.spawn(names::STR, move || Box::new(Str::new(sh3.clone())));
    sim.run_for(SimDuration::from_secs(30));
    let ses_ready = sim
        .trace()
        .mark_times(&format!("ready:{}", names::SES))
        .next()
        .expect("ses ready");
    let str_ready = sim
        .trace()
        .mark_times(&format!("ready:{}", names::STR))
        .next()
        .expect("str ready");
    // Both fresh: ready within ~7 s, no induced crashes.
    assert!(ses_ready < SimTime::from_secs(8), "{ses_ready}");
    assert!(str_ready < SimTime::from_secs(8), "{str_ready}");
    assert!(sim.trace().mark_times("induced-crash:ses").next().is_none());
    assert!(sim.trace().mark_times("induced-crash:str").next().is_none());
}

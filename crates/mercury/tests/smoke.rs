#![allow(clippy::disallowed_methods)]
//! End-to-end smoke tests: the station cold-starts, detects injected
//! failures, recovers them through the restart tree, and the measured
//! recovery times land in the paper's ballpark (exact reproduction is the
//! harness's job; these tests pin the mechanism).

use mercury::config::{names, StationConfig};
use mercury::measure::measure_recovery;
use mercury::station::{Station, TreeVariant};
use rr_core::{FaultyOracle, PerfectOracle};
use rr_sim::{SimDuration, SimRng};

fn station(variant: TreeVariant, seed: u64) -> Station {
    let mut s = Station::new(
        StationConfig::paper(),
        variant,
        Box::new(PerfectOracle::new()),
        seed,
    )
    .expect("valid station");
    s.warm_up();
    s
}

#[test]
fn tree_ii_recovers_rtu_quickly() {
    let mut s = station(TreeVariant::II, 1);
    let injected = s.inject_kill(names::RTU).expect("known component");
    s.run_for(SimDuration::from_secs(60));
    let m = measure_recovery(s.trace(), names::RTU, injected).unwrap();
    assert_eq!(m.final_restart_set, vec![names::RTU.to_string()]);
    let r = m.recovery_s();
    assert!(
        (4.5..7.0).contains(&r),
        "rtu recovery {r:.2}s (paper: 5.59)"
    );
}

#[test]
fn tree_i_restarts_everything() {
    let mut s = station(TreeVariant::I, 2);
    let injected = s.inject_kill(names::RTU).expect("known component");
    s.run_for(SimDuration::from_secs(90));
    let m = measure_recovery(s.trace(), names::RTU, injected).unwrap();
    assert_eq!(m.final_restart_set.len(), 5, "whole station restarts");
    let r = m.recovery_s();
    assert!(
        (22.0..28.0).contains(&r),
        "tree I recovery {r:.2}s (paper: 24.75)"
    );
}

#[test]
fn tree_iii_ses_failure_includes_slow_resync_and_induces_str() {
    let mut s = station(TreeVariant::III, 3);
    let injected = s.inject_kill(names::SES).expect("known component");
    s.run_for(SimDuration::from_secs(120));
    let m = measure_recovery(s.trace(), names::SES, injected).unwrap();
    let r = m.recovery_s();
    assert!(
        (8.5..11.0).contains(&r),
        "ses recovery {r:.2}s (paper: 9.50)"
    );
    // The old str serviced the resync and must then have failed and been
    // restarted (f_{ses,str} ≈ 1, §4.3).
    let induced = s
        .trace()
        .mark_times("induced-crash:str")
        .any(|t| t > injected);
    assert!(induced, "str should suffer an induced failure");
    let str_restarted = s
        .trace()
        .iter()
        .any(|e| e.label.starts_with("restart:str:") && e.time > injected);
    assert!(str_restarted, "REC should restart str afterwards");
}

#[test]
fn tree_iv_restarts_the_pair_together_and_faster() {
    let mut s = station(TreeVariant::IV, 4);
    let injected = s.inject_kill(names::SES).expect("known component");
    s.run_for(SimDuration::from_secs(60));
    let m = measure_recovery(s.trace(), names::SES, injected).unwrap();
    assert_eq!(
        m.final_restart_set,
        vec![names::SES.to_string(), names::STR.to_string()]
    );
    let r = m.recovery_s();
    assert!(
        (5.5..7.5).contains(&r),
        "consolidated recovery {r:.2}s (paper: 6.25)"
    );
    // No induced second episode: they were fresh together.
    let induced = s
        .trace()
        .mark_times("induced-crash:str")
        .any(|t| t > injected);
    assert!(!induced, "joint restart must not induce a str failure");
}

#[test]
fn correlated_pbcom_failure_escalates_with_faulty_oracle_in_tree_iv() {
    // Force the oracle to always guess too low: the episode must take two
    // attempts (pbcom alone, then the joint cell).
    let mut s = Station::new(
        StationConfig::paper(),
        TreeVariant::IV,
        Box::new(FaultyOracle::new(1.0, SimRng::new(7))),
        5,
    )
    .expect("valid station");
    s.warm_up();
    let injected = s.inject_correlated_pbcom().expect("known component");
    s.run_for(SimDuration::from_secs(180));
    let m = measure_recovery(s.trace(), names::PBCOM, injected).unwrap();
    assert!(
        m.attempts >= 2,
        "guess-too-low must escalate (attempts: {})",
        m.attempts
    );
    assert_eq!(
        m.final_restart_set,
        vec![names::FEDR.to_string(), names::PBCOM.to_string()]
    );
    let r = m.recovery_s();
    assert!(
        (40.0..55.0).contains(&r),
        "wrong-guess episode {r:.2}s (analytic ≈ 47.5)"
    );
}

#[test]
fn tree_v_makes_the_mistake_impossible() {
    let mut s = Station::new(
        StationConfig::paper(),
        TreeVariant::V,
        Box::new(FaultyOracle::new(1.0, SimRng::new(8))),
        6,
    )
    .expect("valid station");
    s.warm_up();
    let injected = s.inject_correlated_pbcom().expect("known component");
    s.run_for(SimDuration::from_secs(120));
    let m = measure_recovery(s.trace(), names::PBCOM, injected).unwrap();
    assert_eq!(m.attempts, 1, "tree V has no too-low button");
    let r = m.recovery_s();
    assert!(
        (20.0..24.0).contains(&r),
        "tree V recovery {r:.2}s (paper: 21.63)"
    );
}

#[test]
fn fd_failure_is_recovered_by_rec() {
    let mut s = station(TreeVariant::II, 9);
    let before = s.now();
    {
        let sim = s.sim_mut();
        let fd = sim.lookup(names::FD).unwrap();
        sim.kill(fd);
    }
    s.run_for(SimDuration::from_secs(120));
    let restarted = s.trace().mark_times("rec-restarts:fd").any(|t| t >= before);
    assert!(restarted, "REC must restart a dead FD");
    // FD comes back and is functional again.
    let fd_ready = s
        .trace()
        .mark_times(&format!("ready:{}", names::FD))
        .any(|t| t > before);
    assert!(fd_ready);
}

#[test]
fn rec_failure_is_recovered_by_fd() {
    let mut s = station(TreeVariant::II, 10);
    let before = s.now();
    {
        let sim = s.sim_mut();
        let rec = sim.lookup(names::REC).unwrap();
        sim.kill(rec);
    }
    s.run_for(SimDuration::from_secs(120));
    let restarted = s.trace().mark_times("fd-restarts:rec").any(|t| t >= before);
    assert!(restarted, "FD must restart a dead REC");
    // And the station still recovers component failures afterwards.
    let injected = s.inject_kill(names::RTU).expect("known component");
    s.run_for(SimDuration::from_secs(60));
    let m = measure_recovery(s.trace(), names::RTU, injected).unwrap();
    assert!(m.recovery_s() < 10.0);
}

#[test]
fn hang_is_detected_and_cured_like_a_crash() {
    let mut s = station(TreeVariant::II, 11);
    let injected = s.inject_hang(names::SES).expect("known component");
    s.run_for(SimDuration::from_secs(60));
    let m = measure_recovery(s.trace(), names::SES, injected).unwrap();
    assert!((8.5..11.5).contains(&m.recovery_s()), "{}", m.recovery_s());
}

#[test]
fn deterministic_given_seed() {
    let run = |seed| {
        let mut s = station(TreeVariant::III, seed);
        let injected = s.inject_kill(names::FEDR).expect("known component");
        s.run_for(SimDuration::from_secs(60));
        measure_recovery(s.trace(), names::FEDR, injected)
            .unwrap()
            .recovery_s()
    };
    assert_eq!(run(42), run(42));
    assert_ne!(run(42), run(43), "different seeds see different jitter");
}

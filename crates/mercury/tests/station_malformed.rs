#![allow(clippy::disallowed_methods)]
//! End-to-end malformed-input tests: garbage on the message bus must be
//! logged and dropped by the receiving component, never crash the station —
//! the panic-path counterpart of `msg`'s parser-level malformed suite — and
//! every fallible `Station` entry point must answer bad arguments with a
//! typed [`StationError`], not a panic.

use mercury::config::{names, StationConfig};
use mercury::measure::measure_recovery;
use mercury::station::{Station, StationError, TreeVariant};
use rr_core::PerfectOracle;
use rr_sim::{check, ProcessState, SimDuration};

/// The same adversarial corpus `msg/tests/malformed.rs` drives through the
/// parser, here delivered as live bus traffic.
const GARBAGE: &[&str] = &[
    "",
    "   ",
    "<",
    "<>",
    "</msg>",
    "<msg",
    "<msg>",
    "<msg></other>",
    "<msg attr></msg>",
    "<msg a=\"unterminated",
    "<msg>&bogus;</msg>",
    "<msg>\u{0}binary\u{1}</msg>",
    "<!-- just a comment -->",
    "<?xml version=\"1.0\"?>",
    "not xml at all",
    "{\"json\": \"instead\"}",
    "<a><b><c></c></b></a>",
    "<msg to=\"fd\" type=\"pong\">",
    "\u{FEFF}<msg/>",
];

fn hardened_paper_config() -> StationConfig {
    // The paper timing, with telemetry switched on so the test can observe
    // the parse-error counters the garbage provokes.
    let mut cfg = StationConfig::paper();
    cfg.telemetry_enabled = true;
    cfg
}

/// Every piece of garbage, delivered to every component, is survived: the
/// component logs a parse error and keeps running — and the station as a
/// whole still detects and cures a real fault afterwards.
#[test]
fn bus_garbage_is_logged_and_survived_end_to_end() {
    let mut station = Station::new(
        hardened_paper_config(),
        TreeVariant::III,
        Box::new(PerfectOracle::new()),
        0xBAD_F00D,
    )
    .expect("valid station");
    station.warm_up();
    let components: Vec<String> = station.components().to_vec();
    for comp in &components {
        for g in GARBAGE {
            station
                .inject_wire_garbage(comp, *g)
                .expect("known component");
        }
    }
    station.run_for(SimDuration::from_secs(10));

    // Nobody died from garbage alone: no component was restarted, every
    // process is still running.
    let telemetry = station.telemetry();
    assert_eq!(
        telemetry.counter("restarts_issued", ""),
        0,
        "garbage alone must not trigger recovery"
    );
    for comp in &components {
        assert_eq!(
            station.state_of(comp).expect("known component"),
            ProcessState::Running,
            "{comp} must survive the garbage corpus"
        );
        assert!(
            telemetry.counter("parse_errors", comp) > 0,
            "{comp} must have logged parse errors, not silently dropped"
        );
    }

    // And the station still works: a real fault is detected and cured.
    let injected = station.inject_kill(names::RTU).expect("known component");
    station.run_for(SimDuration::from_secs(60));
    let m = measure_recovery(station.trace(), names::RTU, injected)
        .expect("the station must still recover after eating garbage");
    assert!(m.recovery_s() < 45.0);
}

/// Garbage injected *during* an active recovery episode does not derail it.
#[test]
fn garbage_during_recovery_does_not_derail_the_episode() {
    check::run("garbage during recovery", 6, |rng| {
        let seed = rng.next_u64();
        let mut station = Station::new(
            hardened_paper_config(),
            TreeVariant::IV,
            Box::new(PerfectOracle::new()),
            seed,
        )
        .expect("valid station");
        station.warm_up();
        let injected = station.inject_kill(names::SES).expect("known component");
        // Pelt the survivors with garbage while the episode runs.
        for _ in 0..3 {
            station.run_for(SimDuration::from_secs(1));
            for comp in [names::MBUS, names::FD, names::REC, names::RTU] {
                let g = GARBAGE[rng.next_below(GARBAGE.len() as u64) as usize];
                station
                    .inject_wire_garbage(comp, g)
                    .expect("known component");
            }
        }
        station.run_for(SimDuration::from_secs(60));
        let m = measure_recovery(station.trace(), names::SES, injected)
            .expect("recovery must complete despite concurrent garbage");
        assert!(m.recovery_s() < 45.0);
    });
}

/// The constructor and every injection entry point answer bad arguments
/// with a typed error instead of a panic.
#[test]
fn bad_arguments_yield_typed_errors_not_panics() {
    let mut station = Station::new(
        StationConfig::paper(),
        TreeVariant::I,
        Box::new(PerfectOracle::new()),
        7,
    )
    .expect("valid station");

    // Unknown component names.
    assert!(matches!(
        station.inject_kill("nonesuch"),
        Err(StationError::UnknownComponent(_))
    ));
    assert!(matches!(
        station.inject_hang("nonesuch"),
        Err(StationError::UnknownComponent(_))
    ));
    assert!(matches!(
        station.inject_zombie("nonesuch"),
        Err(StationError::UnknownComponent(_))
    ));
    assert!(matches!(
        station.inject_hard_failure("nonesuch"),
        Err(StationError::UnknownComponent(_))
    ));
    assert!(matches!(
        station.state_of("nonesuch"),
        Err(StationError::UnknownComponent(_))
    ));
    assert!(matches!(
        station.inject_wire_garbage("nonesuch", "<x/>"),
        Err(StationError::UnknownComponent(_))
    ));

    // The correlated pbcom fault needs the split topology; tree I has the
    // monolithic fedrcom.
    assert!(matches!(
        station.inject_correlated_pbcom(),
        Err(StationError::RequiresSplit)
    ));

    // An invalid configuration is rejected with the validator's complaints.
    let mut bad = StationConfig::paper();
    bad.ping_period_s = -1.0;
    match Station::new(bad, TreeVariant::I, Box::new(PerfectOracle::new()), 7) {
        Err(StationError::InvalidConfig(problems)) => assert!(!problems.is_empty()),
        other => panic!("want InvalidConfig, got {other:?}"),
    }

    // Every error renders a non-empty human-readable message.
    for err in [
        StationError::UnknownComponent("x".into()),
        StationError::RequiresSplit,
        StationError::InvalidConfig(vec!["bad".into()]),
    ] {
        assert!(!err.to_string().is_empty());
    }
}

/// A station whose tree does not cover the component set is rejected.
#[test]
fn tree_component_mismatch_is_rejected() {
    let tree = rr_core::tree::TreeSpec::cell("root")
        .with_component("only-one")
        .build()
        .expect("tiny tree builds");
    let err = Station::with_tree(
        StationConfig::paper(),
        tree,
        vec!["only-one".to_string(), "missing".to_string()],
        Box::new(PerfectOracle::new()),
        7,
    );
    assert!(
        matches!(err, Err(StationError::TreeMismatch { .. })),
        "a tree that does not cover the component set must be rejected: {err:?}"
    );
}

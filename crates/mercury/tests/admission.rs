#![allow(clippy::disallowed_methods)]
//! Admission-control behaviour under overload: coverage preservation (a
//! faulty component's only pending request is never shed), the aging
//! guarantee (deferred restarts eventually run even with no spare capacity),
//! and the quarantine interplay (a deferred-then-quarantined component
//! leaves no stale queue entry and is never restarted again).

use mercury::config::StationConfig;
use mercury::station::{Station, TreeVariant};
use rr_core::PerfectOracle;
use rr_sim::{check, SimDuration, TraceKind};

const VARIANTS: [TreeVariant; 5] = [
    TreeVariant::I,
    TreeVariant::II,
    TreeVariant::III,
    TreeVariant::IV,
    TreeVariant::V,
];

fn mark_count(station: &Station, label: &str) -> usize {
    station.trace().mark_times(label).count()
}

/// Property: under arbitrary crash storms with admission control on, every
/// faulty component retains coverage — by the end of the settle window it is
/// either cured or quarantined, never silently dropped by shedding, and the
/// deferral queue has fully drained.
#[test]
fn storm_never_sheds_last_coverage() {
    check::run("storm_never_sheds_last_coverage", 12, |rng| {
        let variant = *rng.choose(&VARIANTS).unwrap();
        let comps = variant.components();
        let seed = rng.next_u64();
        let mut cfg = StationConfig::admission();
        // Tight capacity so storms actually defer and shed.
        cfg.admission_capacity = 1 + rng.next_below(2) as u32;
        cfg.admission_window_s = 60.0 + rng.next_below(60) as f64;
        cfg.defer_max_age_s = 240.0;
        let mut station =
            Station::new(cfg, variant, Box::new(PerfectOracle::new()), seed).expect("valid");
        station.warm_up();
        // A storm: 2–4 waves of kills over distinct components.
        let waves = 2 + rng.next_below(3);
        let mut victims: Vec<String> = Vec::new();
        for _ in 0..waves {
            let n = 1 + rng.next_below(comps.len() as u64 - 1) as usize;
            for comp in comps.iter().take(n) {
                station.inject_kill(comp).expect("known component");
                if !victims.contains(comp) {
                    victims.push(comp.clone());
                }
            }
            station.run_for(SimDuration::from_secs(10 + rng.next_below(20)));
        }
        // Settle: long enough for the queue to drain by aging alone.
        station.run_for(SimDuration::from_secs(600));
        let control = station.control().borrow();
        assert!(
            control.deferred.is_empty(),
            "{variant:?}: deferral queue did not drain: {:?}",
            control.deferred
        );
        drop(control);
        for victim in &victims {
            // A victim's own report may be legitimately absorbed by an
            // in-flight group restart that covers it, so the invariant is
            // about outcome, not attribution: the component ends healthy
            // (some restart revived it) or quarantined — never left dead
            // because its coverage was shed.
            let healthy =
                station.state_of(victim).expect("known component") == rr_sim::ProcessState::Running;
            let quarantined = mark_count(&station, &format!("quarantine:{victim}")) > 0;
            assert!(
                healthy || quarantined,
                "{variant:?}: {victim} left dead — its coverage was dropped"
            );
        }
    });
}

/// The aging guarantee: with capacity permanently exhausted (one launch per
/// hour-long window), deferred restarts still run — forced through by
/// `defer_max_age_s` — so every victim is cured.
#[test]
fn aging_forces_deferred_restarts_to_run() {
    let mut cfg = StationConfig::admission();
    cfg.admission_capacity = 1;
    cfg.admission_window_s = 3600.0;
    cfg.defer_max_age_s = 60.0;
    cfg.admission_retry_s = 5.0;
    let mut station = Station::new(cfg, TreeVariant::IV, Box::new(PerfectOracle::new()), 7)
        .expect("valid station");
    station.warm_up();
    for comp in ["rtu", "fedr", "ses"] {
        station.inject_kill(comp).expect("known component");
    }
    station.run_for(SimDuration::from_secs(300));
    let telemetry = station.telemetry();
    assert!(
        telemetry.counter("admission_deferred", "") > 0,
        "capacity 1 against three kills must defer"
    );
    for comp in ["rtu", "fedr", "ses"] {
        assert!(
            mark_count(&station, &format!("cured:{comp}")) > 0,
            "{comp} starved despite the aging guarantee"
        );
    }
    assert!(station.control().borrow().deferred.is_empty());
}

/// Regression: admission charges taken at classification time for reports
/// the recoverer then rules GiveUp on must be refunded. Before the refund,
/// a quarantine burst left its dead charges in the sliding window — two
/// quarantined components could pin `admitted_in_window` at capacity and
/// starve a later, perfectly healthy component into the deferral queue.
#[test]
fn quarantine_burst_does_not_starve_admission_of_healthy_components() {
    let mut cfg = StationConfig::admission();
    // Capacity sized so the burst's legitimate launches (one per hard-failed
    // component, storm budget 1) leave slack, but the pre-refund dead
    // charges (one more per quarantine) would exactly exhaust it.
    cfg.admission_capacity = 4;
    cfg.admission_window_s = 600.0;
    cfg.admission_retry_s = 5.0;
    cfg.defer_max_age_s = 240.0;
    cfg.max_restarts_per_window = 1;
    cfg.restart_window_s = 3600.0;
    let mut station = Station::new(cfg, TreeVariant::IV, Box::new(PerfectOracle::new()), 13)
        .expect("valid station");
    station.warm_up();
    // The burst: two hard failures that blow the 1-restart storm budget and
    // quarantine, each leaving one spent launch charge and (pre-refund) one
    // dead charge in the 600 s window.
    station.inject_hard_failure("ses").expect("known component");
    station
        .inject_hard_failure("fedr")
        .expect("known component");
    station.run_for(SimDuration::from_secs(300));
    for comp in ["ses", "fedr"] {
        assert!(
            mark_count(&station, &format!("quarantine:{comp}")) > 0,
            "{comp} should be quarantined by the storm policy"
        );
    }
    // A healthy component fails inside the same capacity window: with the
    // dead charges refunded there is spare capacity, so it must be admitted
    // immediately — not parked in the deferral queue until aging forces it.
    station.inject_kill("rtu").expect("known component");
    station.run_for(SimDuration::from_secs(120));
    assert_eq!(
        mark_count(&station, "defer:rtu"),
        0,
        "healthy rtu was starved by the quarantine burst's dead charges"
    );
    assert!(
        mark_count(&station, "cured:rtu") > 0,
        "healthy rtu did not recover"
    );
}

/// Quarantine interplay: a persistently crashing component is paced by
/// admission, eventually quarantined by the restart-storm policy, and after
/// quarantine neither restarts again nor leaks a deferral-queue entry.
#[test]
fn deferred_then_quarantined_leaves_no_stale_state() {
    let mut cfg = StationConfig::admission();
    cfg.admission_capacity = 1;
    cfg.admission_window_s = 30.0;
    cfg.defer_max_age_s = 30.0;
    cfg.admission_retry_s = 5.0;
    cfg.max_restarts_per_window = 3;
    cfg.restart_window_s = 3600.0;
    let mut station = Station::new(cfg, TreeVariant::IV, Box::new(PerfectOracle::new()), 11)
        .expect("valid station");
    station.warm_up();
    station.inject_hard_failure("ses").expect("known component");
    station.run_for(SimDuration::from_secs(900));
    let quarantine_at = station
        .trace()
        .mark_times("quarantine:ses")
        .next()
        .expect("a hard failure under a 3-restart budget must quarantine");
    // No restart covering ses is issued after the quarantine, and the
    // deferral queue holds no stale entry for it.
    let late_restarts = station
        .trace()
        .iter()
        .filter(|e| {
            e.kind == TraceKind::Mark
                && e.time > quarantine_at
                && e.label.starts_with("restart:")
                && e.label.contains("ses")
        })
        .count();
    assert_eq!(late_restarts, 0, "quarantined ses was restarted again");
    assert!(
        !station.control().borrow().deferred.contains_key("ses"),
        "stale deferral entry leaked past quarantine"
    );
    // No double-counting: the ses cell was restarted at most the storm
    // budget's 3 times (deferral must not manufacture extra attempts).
    let ses_restarts = station
        .trace()
        .iter()
        .filter(|e| e.kind == TraceKind::Mark && e.label.starts_with("restart:ses"))
        .count();
    assert!(
        ses_restarts <= 3,
        "{ses_restarts} restarts exceed the 3-per-window storm budget"
    );
}

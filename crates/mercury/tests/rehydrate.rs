#![allow(clippy::disallowed_methods)]
//! Restart-vs-rehydrate behaviour of the stateful ses/str pair: a
//! rehydrating component skips the §4.3 resync (and the induced peer
//! failure it drags along), journal damage degrades recovery gracefully,
//! and the telemetry counters account for what was replayed.

use mercury::config::StationConfig;
use mercury::station::{Station, TreeVariant};
use rr_core::PerfectOracle;
use rr_sim::{SimDuration, SimTime};
use rr_store::JournalFault;

fn station(cfg: StationConfig, seed: u64) -> Station {
    let mut s = Station::new(cfg, TreeVariant::III, Box::new(PerfectOracle::new()), seed)
        .expect("valid station");
    s.warm_up();
    s
}

/// Time from the injection mark to the component's next `ready:` mark.
fn recovery_secs(station: &Station, component: &str, injected_at: SimTime) -> f64 {
    let ready = station
        .trace()
        .mark_times(&format!("ready:{component}"))
        .find(|t| *t > injected_at)
        .expect("component must recover");
    ready.saturating_since(injected_at).as_secs_f64()
}

fn mark_count_after(station: &Station, label: &str, after: SimTime) -> usize {
    station
        .trace()
        .mark_times(label)
        .filter(|t| *t > after)
        .count()
}

#[test]
fn rehydrate_skips_resync_and_beats_cold_restart() {
    let seed = 42;
    // Cold arm: the paper's behaviour — ses resyncs against the old str,
    // which services slowly and then suffers the induced failure.
    let mut cold = station(StationConfig::paper(), seed);
    let at = cold.inject_kill("ses").expect("known component");
    cold.run_for(SimDuration::from_secs(120));
    let cold_mttr = recovery_secs(&cold, "ses", at);
    assert!(
        mark_count_after(&cold, "induced-crash:str", at) > 0,
        "cold resync must doom the old str (§4.3)"
    );

    // Rehydrate arm: same seed, ses/str journal their session state.
    let mut rehy = station(StationConfig::checkpointed(), seed);
    let at = rehy.inject_kill("ses").expect("known component");
    rehy.run_for(SimDuration::from_secs(120));
    let rehy_mttr = recovery_secs(&rehy, "ses", at);
    assert!(
        mark_count_after(&rehy, "rehydrate:ses", at) > 0,
        "ses must come back via the store"
    );
    assert_eq!(
        mark_count_after(&rehy, "induced-crash:str", at),
        0,
        "rehydration must not touch the peer"
    );
    assert!(
        rehy_mttr < cold_mttr,
        "rehydrate ({rehy_mttr:.2}s) must beat the cold resync ({cold_mttr:.2}s) \
         at the default state size"
    );

    // The telemetry counters account for the replay.
    let t = rehy.telemetry();
    assert!(t.counter("rehydrated", "ses") >= 1);
    assert!(t.counter("replayed_records", "ses") >= 1);
    assert!(t.counter("snapshot_bytes", "ses") >= 1024);
    assert!(t.counter("checkpoints", "ses") >= 1);
}

#[test]
fn torn_journal_falls_back_to_cold_start() {
    let mut s = station(StationConfig::checkpointed(), 7);
    s.run_for(SimDuration::from_secs(30));
    // Tear the whole journal away: no snapshot reference survives.
    let len = s.store().borrow_mut().component("ses").journal_len();
    s.inject_journal_fault("ses", JournalFault::TruncateTail(len))
        .expect("known component");
    let at = s.inject_kill("ses").expect("known component");
    s.run_for(SimDuration::from_secs(120));
    assert!(
        mark_count_after(&s, "rehydrate-miss:ses", at) > 0,
        "a gutted journal must be detected"
    );
    assert_eq!(mark_count_after(&s, "rehydrate:ses", at), 0);
    // The cold path still cures it — damage degrades, never wedges.
    let mttr = recovery_secs(&s, "ses", at);
    assert!(mttr > 0.0);
}

#[test]
fn corrupt_update_rehydrates_from_the_durable_prefix() {
    let mut s = station(StationConfig::checkpointed(), 11);
    // Let update records accumulate past the last checkpoint.
    s.run_for(SimDuration::from_secs(20));
    let clean = s.store().borrow().get("ses").expect("journaling").recover();
    assert!(
        !clean.updates.is_empty(),
        "updates must have accumulated for the test to bite"
    );
    // Rot a byte inside the first update record, past the snapshot frame
    // (17-byte header + 16-byte payload).
    s.inject_journal_fault("ses", JournalFault::CorruptByte(17 + 16 + 5))
        .expect("known component");
    let at = s.inject_kill("ses").expect("known component");
    s.run_for(SimDuration::from_secs(120));
    assert!(
        mark_count_after(&s, "rehydrate:ses", at) > 0,
        "the verified snapshot predates the damage and must be used"
    );
    let t = s.telemetry();
    assert!(
        t.counter("replayed_records", "ses") >= 1,
        "snapshot itself counts as a replayed record"
    );
}

#[test]
fn cold_restart_station_never_touches_the_store() {
    let mut s = station(StationConfig::paper(), 3);
    s.inject_kill("ses").expect("known component");
    s.run_for(SimDuration::from_secs(60));
    assert!(
        s.store().borrow().get("ses").is_none(),
        "ColdRestart components must not journal"
    );
    assert_eq!(s.trace().mark_times("rehydrate:ses").count(), 0);
    assert_eq!(s.trace().mark_times("rehydrate-miss:ses").count(), 0);
}

#![allow(clippy::disallowed_methods)]
//! The shipped configuration surface must lint fully clean — not merely
//! deny-free: a warning on `StationConfig::paper()` or `hardened()` would
//! nag every user on every run, so the bar for the built-in surface is zero
//! diagnostics. Also exercises the deny gate in station construction and
//! the planner-output bridge.

use mercury::config::StationConfig;
use mercury::station::{Station, StationError, TreeVariant};
use rr_core::schedule::plan_episodes;
use rr_core::schedule::Suspicion;
use rr_core::PerfectOracle;
use rr_lint::lint_plan;
use rr_sim::check;

#[test]
fn shipped_configurations_lint_fully_clean() {
    for (name, cfg) in [
        ("paper", StationConfig::paper()),
        ("hardened", StationConfig::hardened()),
    ] {
        for variant in TreeVariant::ALL {
            let tree = variant.tree().unwrap();
            let report = cfg.lint(&tree);
            assert!(
                report.is_clean(),
                "StationConfig::{name}() × tree {variant} must have zero \
                 diagnostics (warnings included):\n{}",
                report.to_human()
            );
        }
    }
}

#[test]
fn deny_diagnostic_refuses_station_construction() {
    // An escalation limit below the tree height (RRL101) means escalation
    // can never reach the whole-system restart. `validate()` only requires
    // the limit be >= 1, so this slips past dynamic validation — exactly the
    // class of mistake the static gate exists for.
    let mut cfg = StationConfig::paper();
    cfg.escalation_limit = 1;
    let err = Station::new(cfg, TreeVariant::III, Box::new(PerfectOracle::new()), 1)
        .expect_err("construction must fail");
    match &err {
        StationError::Lint(diags) => {
            assert!(
                diags.iter().any(|d| d.code() == "RRL101"),
                "expected RRL101 among {:?}",
                diags.iter().map(|d| d.code()).collect::<Vec<_>>()
            );
        }
        other => panic!("expected StationError::Lint, got {other:?}"),
    }
    let rendered = err.to_string();
    assert!(
        rendered.contains("rr-lint") && rendered.contains("RRL101"),
        "error display should carry the code: {rendered}"
    );
}

#[test]
fn warn_only_findings_do_not_block_construction() {
    // escalation_limit beyond the sane maximum is warn-severity (RRL104):
    // questionable, but the operator may know better — the station starts.
    let mut cfg = StationConfig::paper();
    cfg.escalation_limit = 100_000;
    let tree = TreeVariant::III.tree().unwrap();
    let report = cfg.lint(&tree);
    assert!(report.fired("RRL104") && !report.has_deny());
    assert!(Station::new(cfg, TreeVariant::III, Box::new(PerfectOracle::new()), 1).is_ok());
}

#[test]
fn planner_output_always_lints_clean() {
    // Whatever suspicion set the oracle produces, the episode planner's
    // output must satisfy the plan lints: live cells, antichain, no
    // duplicate origins.
    check::run("mercury::planner_output_lints_clean", 128, |rng| {
        let variant = TreeVariant::ALL[rng.next_below(TreeVariant::ALL.len() as u64) as usize];
        let tree = variant.tree().unwrap();
        let components = variant.components();
        let cells = tree.cells();
        let n = 1 + rng.next_below(6) as usize;
        let mut suspicions = Vec::new();
        for _ in 0..n {
            let component = components[rng.next_below(components.len() as u64) as usize].clone();
            // Any live cell that covers the component is a legal target;
            // walk up from the component's own cell a random distance.
            let mut cell = tree
                .cell_of_component(&component)
                .expect("variant components are attached");
            for _ in 0..rng.next_below(3) {
                match tree.parent(cell) {
                    Some(p) => cell = p,
                    None => break,
                }
            }
            assert!(cells.contains(&cell));
            suspicions.push(Suspicion { component, cell });
        }
        let plan = plan_episodes(&tree, &suspicions).expect("live cells");
        let report = lint_plan(&tree, &plan);
        assert!(
            report.is_clean(),
            "planner output must lint clean for {variant} with {suspicions:?}:\n{}",
            report.to_human()
        );
    });
}

//! EXPERIMENTS.md report generation: paper-vs-measured for every table and
//! figure.

use crate::experiments::Experiment;
use rr_sim::telemetry::Registry;

/// Renders the full experiment report as markdown, suitable for writing to
/// `EXPERIMENTS.md`.
pub fn render_markdown(experiments: &[Experiment], run_note: &str) -> String {
    let mut out = String::new();
    out.push_str("# EXPERIMENTS — paper vs. measured\n\n");
    out.push_str(
        "Reproduction of every table and figure of *Reducing Recovery Time in a \
         Small Recursively Restartable System* (DSN 2002). Absolute numbers come \
         from the calibrated simulation described in DESIGN.md §5; the claim being \
         validated is the *shape*: who wins, by what factor, and where the \
         crossovers fall.\n\n",
    );
    out.push_str(&format!("Run configuration: {run_note}\n\n"));

    out.push_str("## Summary of paper-vs-measured observations\n\n");
    out.push_str("| Experiment | Observation | Paper | Measured | Rel. error |\n");
    out.push_str("|---|---|---|---|---|\n");
    for exp in experiments {
        for (label, paper, measured) in &exp.observations {
            let rel = if *paper != 0.0 {
                format!("{:+.1}%", (measured - paper) / paper * 100.0)
            } else {
                "—".to_string()
            };
            out.push_str(&format!(
                "| {} | {} | {:.2} | {:.2} | {} |\n",
                exp.id, label, paper, measured, rel
            ));
        }
    }
    out.push('\n');

    for exp in experiments {
        out.push_str(&format!("## {} — {}\n\n", exp.id, exp.title));
        for block in &exp.blocks {
            out.push_str("```text\n");
            out.push_str(block);
            if !block.ends_with('\n') {
                out.push('\n');
            }
            out.push_str("```\n\n");
        }
        for table in &exp.tables {
            out.push_str(&table.render_markdown());
            out.push('\n');
        }
    }
    out
}

/// Renders a recovery-episode telemetry registry as a human-readable
/// timeline: one line per episode event in virtual-time order, followed by
/// the per-component recovery-time histograms and the counter totals.
///
/// The companion machine-readable exporters live on [`Registry`] itself
/// ([`Registry::to_json`] and [`Registry::to_prometheus`]); this renderer is
/// the one meant for eyeballs, e.g. a chaos campaign post-mortem.
pub fn render_timeline(registry: &Registry) -> String {
    let mut out = String::new();
    out.push_str(
        "episode timeline
",
    );
    out.push_str(
        "----------------
",
    );
    if registry.events().is_empty() {
        out.push_str(
            "(no episodes recorded)
",
        );
    }
    for ev in registry.events() {
        let detail = if ev.detail.is_empty() {
            String::new()
        } else {
            format!("  [{}]", ev.detail)
        };
        out.push_str(&format!(
            "{:>12.3}s  {:<12} {:<12}{}
",
            ev.at.as_secs_f64(),
            ev.component,
            ev.stage.name(),
            detail
        ));
    }
    let mut wrote_header = false;
    for (name, label, hist) in registry.durations() {
        if !wrote_header {
            out.push_str(
                "
duration histograms (seconds)
",
            );
            out.push_str(
                "-----------------------------
",
            );
            wrote_header = true;
        }
        let st = hist.stats();
        out.push_str(&format!(
            "{name}{{{label}}}: n={} mean={:.3} min={:.3} max={:.3}
",
            st.count(),
            st.mean(),
            st.min(),
            st.max()
        ));
    }
    let mut wrote_header = false;
    for ((name, label), v) in registry.counters() {
        if !wrote_header {
            out.push_str(
                "
counters
",
            );
            out.push_str(
                "--------
",
            );
            wrote_header = true;
        }
        if label.is_empty() {
            out.push_str(&format!(
                "{name}: {v}
"
            ));
        } else {
            out.push_str(&format!(
                "{name}{{{label}}}: {v}
"
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::Table;

    #[test]
    fn report_contains_observations_and_tables() {
        let mut t = Table::new("Demo", vec!["a".into()]);
        t.push_row(vec!["1".into()]);
        let exp = Experiment {
            id: "t1".into(),
            title: "Demo experiment".into(),
            tables: vec![t],
            blocks: vec!["tree drawing".into()],
            observations: vec![("x".into(), 10.0, 10.5)],
        };
        let md = render_markdown(&[exp], "trials=2");
        assert!(md.contains("| t1 | x | 10.00 | 10.50 | +5.0% |"));
        assert!(md.contains("### Demo"));
        assert!(md.contains("tree drawing"));
        assert!(md.contains("trials=2"));
    }
}

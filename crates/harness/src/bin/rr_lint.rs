//! `rr-lint`: static verification of the station's configuration surface
//! before anything runs.
//!
//! With no file arguments the default audit lints every restart tree variant
//! (I–V) under both shipped configurations ([`StationConfig::paper`] and
//! [`StationConfig::hardened`]), the failure models against the trees they
//! describe, a full per-component suspicion/episode-plan round trip, the
//! MTTF/MTTR algebra claims derived from the paper model, every golden
//! scenario's fault script, and the rr-abs profitability certificates for
//! the three §4 transformation decisions. Any `.fault` script files passed
//! as arguments are linted against the union of the station's component
//! names.
//!
//! ```text
//! rr-lint [--format human|json] [--deny-warnings] [script.fault ...]
//! ```
//!
//! Exit codes: `0` clean, `1` deny diagnostics present (or any diagnostic
//! with `--deny-warnings`), `2` usage or I/O error.

use std::process::ExitCode;

use mercury::config::{names, StationConfig};
use mercury::station::TreeVariant;
use rr_abs::refine::RefineConfig;
use rr_core::analysis::{group_mttf_bound_s, group_mttr_bound_s};
use rr_core::model::FailureModel;
use rr_core::schedule::{plan_episodes, Suspicion};
use rr_core::tree::RestartTree;
use rr_harness::abs::{abs_params, certify_decisions};
use rr_harness::flow::flow_params;
use rr_harness::golden::{golden_scenarios, lint_scenario};
use rr_lint::{
    catalog, lint_abs, lint_algebra, lint_fault_script, lint_flow, lint_model, lint_model_bounds,
    lint_plan, lint_suspicions, Diagnostic, GroupClaim, MemberStat, ModelBoundsParams, Report,
    ScriptContext,
};
use rr_model::{analyze, scenario, CHECKED_QUEUE_BOUND, DEFAULT_DEPTH, DEFAULT_STATE_BUDGET};

/// Output rendering for the final report.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Human,
    Json,
}

struct Options {
    format: Format,
    deny_warnings: bool,
    scripts: Vec<String>,
}

const USAGE: &str = "usage: rr-lint [--format human|json] [--deny-warnings] [script.fault ...]

Statically verifies restart trees, policies, failure models, oracle
suspicions, episode plans, MTTF/MTTR claims, and fault scripts. Exit
code 0 = clean, 1 = findings, 2 = usage or I/O error.";

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        format: Format::Human,
        deny_warnings: false,
        scripts: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => {
                let value = it.next().ok_or("--format needs a value (human|json)")?;
                opts.format = match value.as_str() {
                    "human" => Format::Human,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format {other:?} (human|json)")),
                };
            }
            "--deny-warnings" => opts.deny_warnings = true,
            "--help" | "-h" => return Err(String::new()),
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag:?}")),
            path => opts.scripts.push(path.to_string()),
        }
    }
    Ok(opts)
}

/// Re-roots every diagnostic path under `prefix` so findings from different
/// configurations and variants stay distinguishable in one merged report.
fn prefixed(report: Report, prefix: &str) -> Report {
    let mut out = Report::new();
    for mut d in report.into_diagnostics() {
        d.path = format!("{prefix}::{}", d.path);
        out.push(d);
    }
    out
}

/// The failure models that describe a given variant's component set.
fn models_for(cfg: &StationConfig, variant: TreeVariant) -> Vec<(&'static str, FailureModel)> {
    if variant.is_split() {
        vec![
            ("paper-model", cfg.paper_failure_model()),
            ("advisory-model", cfg.advisory_failure_model()),
        ]
    } else {
        vec![("unsplit-model", cfg.unsplit_failure_model())]
    }
}

/// One covering suspicion per component: the oracle's ground state. Every
/// entry must survive [`lint_suspicions`] and plan into a clean episode set.
fn ground_suspicions(tree: &RestartTree) -> Vec<Suspicion> {
    tree.components()
        .iter()
        .filter_map(|comp| Suspicion::covering(tree, comp.clone(), &[comp.as_str()]).ok())
        .collect()
}

/// §3.2 algebra claims for every multi-component cell, with member MTTFs
/// from the failure model and member MTTRs from the configuration's
/// detection + boot timing. The claims are stated at the paper's bounds, so
/// a finding here means the algebra checker and the analysis module disagree.
fn algebra_claims(
    cfg: &StationConfig,
    tree: &RestartTree,
    model: &FailureModel,
) -> Vec<GroupClaim> {
    let cost = cfg.cost_model();
    let mut claims = Vec::new();
    for cell in tree.cells() {
        let comps = tree.components_under(cell);
        if comps.len() < 2 {
            continue;
        }
        let members: Vec<MemberStat> = comps
            .iter()
            .filter_map(|c| {
                let mttf_s = model.component_mttf_s(c)?;
                let mttr_s = cfg.mean_detection_s() + cost.boot_s(c).unwrap_or(0.0);
                Some(MemberStat {
                    name: c.clone(),
                    mttf_s,
                    mttr_s,
                })
            })
            .collect();
        if members.is_empty() {
            continue;
        }
        let mttf_s = group_mttf_bound_s(&members.iter().map(|m| m.mttf_s).collect::<Vec<_>>())
            .unwrap_or_else(|e| unreachable!("members is non-empty: {e}"));
        let mttr_s = group_mttr_bound_s(&members.iter().map(|m| m.mttr_s).collect::<Vec<_>>())
            .unwrap_or_else(|e| unreachable!("members is non-empty: {e}"));
        claims.push(GroupClaim {
            group: tree.label(cell).to_string(),
            mttf_s,
            mttr_s,
            members,
        });
    }
    claims
}

/// Lints the whole built-in configuration surface.
fn lint_defaults() -> Report {
    let mut report = Report::new();
    for (cfg_name, cfg) in [
        ("paper", StationConfig::paper()),
        ("hardened", StationConfig::hardened()),
        // Exercises the RRL8xx deadline/admission feasibility lints with the
        // controller enabled (paper and hardened leave it off, so only the
        // always-on pass-feasibility check runs for them).
        ("admission", StationConfig::admission()),
    ] {
        for variant in TreeVariant::ALL {
            let prefix = format!("{cfg_name}/tree-{variant}");
            let tree = match variant.tree() {
                Ok(t) => t,
                Err(e) => {
                    report.push(Diagnostic::new(
                        &catalog::TREE_MALFORMED,
                        prefix,
                        format!("tree variant {variant} does not build: {e}"),
                    ));
                    continue;
                }
            };
            report.merge(prefixed(cfg.lint(&tree), &prefix));
            for (model_name, model) in models_for(&cfg, variant) {
                report.merge(prefixed(
                    lint_model(&model, &tree),
                    &format!("{prefix}/{model_name}"),
                ));
            }
            let suspicions = ground_suspicions(&tree);
            report.merge(prefixed(
                lint_suspicions(&tree, &suspicions),
                &format!("{prefix}/oracle"),
            ));
            match plan_episodes(&tree, &suspicions) {
                Ok(plan) => {
                    report.merge(prefixed(
                        lint_plan(&tree, &plan),
                        &format!("{prefix}/planner"),
                    ));
                    // The widest ground-suspicion plan is the deepest episode
                    // queue this variant can produce; it must stay within the
                    // bound rr-model's default scenarios verified, and those
                    // scenarios (two faults at the default depth) must
                    // themselves be explorable within the state budget.
                    report.merge(prefixed(
                        lint_model_bounds(&ModelBoundsParams {
                            faults: 2,
                            components: tree.components().len(),
                            depth: DEFAULT_DEPTH,
                            state_budget: DEFAULT_STATE_BUDGET,
                            plan_queue_depth: plan.episodes.len(),
                            checked_queue_bound: CHECKED_QUEUE_BOUND,
                        }),
                        &format!("{prefix}/model"),
                    ));
                }
                Err(e) => report.push(Diagnostic::new(
                    &catalog::PLAN_UNKNOWN_CELL,
                    format!("{prefix}/planner"),
                    format!("episode planning failed: {e}"),
                )),
            }
            // Algebra only varies with the model, not the config's FD knobs;
            // once per variant is enough. The same goes for the rr-flow
            // dependence analysis of the variant's built-in pair scenario.
            if cfg_name == "paper" {
                for (model_name, model) in models_for(&cfg, variant) {
                    report.merge(prefixed(
                        lint_algebra(&algebra_claims(&cfg, &tree, &model)),
                        &format!("{prefix}/{model_name}"),
                    ));
                }
                let pair = if variant.is_split() {
                    "fault pbcom\nfault fedr cures fedr pbcom\n"
                } else {
                    "fault rtu\nfault ses\n"
                };
                let text = format!("tree {variant}\n{pair}");
                match scenario::parse(&text)
                    .map_err(|e| e.to_string())
                    .and_then(|sc| {
                        rr_model::Model::new(tree.clone(), &sc).map_err(|e| e.to_string())
                    }) {
                    Ok(model) => report.merge(prefixed(
                        lint_flow(&flow_params(&analyze(&model))),
                        &format!("{prefix}/flow"),
                    )),
                    Err(e) => report.push(Diagnostic::new(
                        &catalog::FLOW_TABLE_UNSOUND,
                        format!("{prefix}/flow"),
                        format!("built-in pair scenario does not build: {e}"),
                    )),
                }
            }
        }
    }
    for sc in golden_scenarios() {
        report.merge(prefixed(lint_scenario(&sc), &format!("golden/{}", sc.name)));
    }
    // The rr-abs profitability certificates for the three §4 decisions: the
    // interval evidence must support each committed verdict (RRL97x).
    report.merge(prefixed(
        lint_abs(&abs_params(&certify_decisions(RefineConfig::default()))),
        "abs",
    ));
    report
}

/// Lints one fault-script file against the union of split and unsplit
/// component names under the paper configuration's detector.
fn lint_script_file(path: &str) -> Result<Report, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    let mut components: Vec<String> = names::UNSPLIT.iter().map(|s| s.to_string()).collect();
    for name in names::SPLIT {
        if !components.iter().any(|c| c == name) {
            components.push(name.to_string());
        }
    }
    let infrastructure = [names::FD.to_string(), names::REC.to_string()];
    let fd = StationConfig::paper().fd_params();
    let ctx = ScriptContext {
        components: &components,
        infrastructure: &infrastructure,
        fd: Some(&fd),
    };
    Ok(prefixed(lint_fault_script(&text, &ctx), path))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("rr-lint: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let mut report = if opts.scripts.is_empty() {
        lint_defaults()
    } else {
        Report::new()
    };
    for path in &opts.scripts {
        match lint_script_file(path) {
            Ok(r) => report.merge(r),
            Err(msg) => {
                eprintln!("rr-lint: {msg}");
                return ExitCode::from(2);
            }
        }
    }
    match opts.format {
        Format::Human => print!("{}", report.to_human()),
        Format::Json => println!("{}", report.to_json()),
    }
    let failing = report.has_deny() || (opts.deny_warnings && !report.is_clean());
    if failing {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

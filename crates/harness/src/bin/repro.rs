//! `repro` — regenerate the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! repro [EXPERIMENT]... [--trials N] [--seed S] [--report PATH] [--dot-dir DIR]
//! ```
//!
//! `EXPERIMENT` is one of `table1`, `table2`, `figures`, `table4`,
//! `headline`, `pass`, `ablation-oracle`, `ablation-ping`,
//! `ablation-learning`, `ablation-optimizer`, `chaos`, `overload`,
//! `checkpoint`, `por`, `abs`, or `all` (default).

use std::process::ExitCode;

use rr_harness::experiments::{self, Experiment, RunConfig};
use rr_harness::report;

fn usage() -> ! {
    eprintln!(
        "usage: repro [EXPERIMENT]... [--trials N] [--seed S] [--report PATH] [--dot-dir DIR]\n\
         experiments: table1 table2 figures table4 correlated headline endurance pass \
         ablation-oracle ablation-ping ablation-learning ablation-optimizer \
         ablation-rejuvenation chaos overload checkpoint por abs all"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut run = RunConfig::default();
    let mut selected: Vec<String> = Vec::new();
    let mut report_path: Option<String> = None;
    let mut dot_dir: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trials" => {
                let v = args.next().unwrap_or_else(|| usage());
                run.trials = v.parse().unwrap_or_else(|_| usage());
            }
            "--seed" => {
                let v = args.next().unwrap_or_else(|| usage());
                run.seed = v.parse().unwrap_or_else(|_| usage());
            }
            "--report" => {
                report_path = Some(args.next().unwrap_or_else(|| usage()));
            }
            "--dot-dir" => {
                dot_dir = Some(args.next().unwrap_or_else(|| usage()));
            }
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            other => selected.push(other.to_string()),
        }
    }
    if selected.is_empty() {
        selected.push("all".to_string());
    }

    let mut results: Vec<Experiment> = Vec::new();
    for name in &selected {
        match name.as_str() {
            "table1" => results.push(experiments::table1(run)),
            "table2" => results.push(experiments::table2(run)),
            "figures" | "table3" => results.push(experiments::figures(run)),
            "table4" => results.push(experiments::table4(run)),
            "correlated" => results.push(experiments::correlated_faults(run)),
            "headline" | "availability" => results.push(experiments::headline(run)),
            "endurance" => results.push(experiments::endurance(run)),
            "pass" => results.push(experiments::pass_data_loss(run)),
            "ablation-oracle" => results.push(experiments::ablation_oracle_sweep(run)),
            "ablation-ping" => results.push(experiments::ablation_ping_period(run)),
            "ablation-learning" => results.push(experiments::ablation_learning(run)),
            "ablation-optimizer" => results.push(experiments::ablation_optimizer(run)),
            "ablation-rejuvenation" => results.push(experiments::ablation_rejuvenation(run)),
            "chaos" => results.push(rr_harness::chaos::experiment(run)),
            "overload" => results.push(rr_harness::overload::experiment(run)),
            "checkpoint" => results.push(rr_harness::checkpoint::experiment(run)),
            "por" => results.push(rr_harness::flow::experiment(run)),
            "abs" => results.push(rr_harness::abs::experiment(run)),
            "all" => results.extend(experiments::all(run)),
            _ => usage(),
        }
    }

    for exp in &results {
        println!("{}", exp.render());
    }

    if let Some(dir) = dot_dir {
        // Graphviz renders of the Figure 3-6 trees.
        use mercury::station::TreeVariant;
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("failed to create {dir}: {e}");
            return ExitCode::FAILURE;
        }
        for variant in TreeVariant::ALL {
            let dot = rr_core::render::render_dot(
                &variant
                    .tree()
                    .unwrap_or_else(|e| panic!("{}: {e:?}", "paper tree builds")),
            );
            let path = format!("{dir}/tree_{variant}.dot");
            if let Err(e) = std::fs::write(&path, dot) {
                eprintln!("failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        println!("dot files written to {dir}/tree_*.dot");
    }

    if let Some(path) = report_path {
        let note = format!("trials per cell = {}, base seed = {}", run.trials, run.seed);
        let md = report::render_markdown(&results, &note);
        if let Err(e) = std::fs::write(&path, md) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("report written to {path}");
    }
    ExitCode::SUCCESS
}

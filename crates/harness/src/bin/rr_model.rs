//! `rr-model`: bounded model checking of the recovery protocol plus
//! happens-before verification of recorded telemetry streams.
//!
//! With no scenario arguments the default audit:
//!
//! 1. statically checks exploration feasibility ([`rr_lint::lint_model_bounds`])
//!    for every built-in scenario,
//! 2. exhaustively explores the recovery protocol's interleavings (fault
//!    arrival, suspicion firing, plan merge, restart start/completion, ping
//!    epoch rollover) for a solo and a correlated-pair fault on every tree
//!    variant I–V under both oracles, checking the safety invariants and
//!    liveness-under-fairness, and
//! 3. replays every golden-trace scenario with telemetry enabled and runs the
//!    recorded vector-clocked episode stream through the happens-before
//!    verifier.
//!
//! Any `.scenario` files passed as arguments are parsed
//! ([`rr_model::scenario`]), checked, and must come back violation-free; a
//! violation prints the minimized replayable counterexample in the
//! golden-trace line format.
//!
//! ```text
//! rr-model [--depth N] [--skip-hb] [--no-por] [--differential] [scenario.scenario ...]
//! ```
//!
//! `--no-por` disables rr-flow's ample-set partial-order reduction and
//! explores every interleaving (the escape hatch and the reference
//! behaviour). `--differential` runs every scenario **both** ways and
//! requires the verdicts — and any minimized counterexamples — to be
//! identical: any drift (a violation the reduced search misses, as the
//! committed por-unsound fixture provokes) is reported and rejected.
//!
//! Exit codes: `0` clean, `1` violation found (counterexample printed), `2`
//! usage, I/O, or exploration error (budget exhausted, bad scenario).

use std::process::ExitCode;

use mercury::config::names;
use mercury::station::TreeVariant;
use rr_harness::golden::{golden_scenarios, run_golden_scenario_telemetry};
use rr_lint::{lint_model_bounds, ModelBoundsParams};
use rr_model::{
    check, hb, scenario, CheckConfig, Model, OracleKind, Scenario, CHECKED_QUEUE_BOUND,
    DEFAULT_DEPTH, DEFAULT_STATE_BUDGET,
};

const USAGE: &str =
    "usage: rr-model [--depth N] [--skip-hb] [--no-por] [--differential] [scenario.scenario ...]

Exhaustively explores the recovery protocol's interleavings up to a depth
bound, checking safety invariants and liveness-under-fairness, and verifies
recorded telemetry streams for happens-before violations. Exploration is
reduced by rr-flow's static independence analysis unless --no-por is given;
--differential runs both full and reduced exploration and rejects any
verdict drift between them. Exit code 0 = clean, 1 = violation or drift
(counterexample printed), 2 = usage or exploration error.";

struct Options {
    depth: Option<usize>,
    skip_hb: bool,
    no_por: bool,
    differential: bool,
    scenarios: Vec<String>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        depth: None,
        skip_hb: false,
        no_por: false,
        differential: false,
        scenarios: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--depth" => {
                let value = it.next().ok_or("--depth needs a number")?;
                let parsed: usize = value.parse().map_err(|_| format!("bad depth {value:?}"))?;
                if parsed == 0 {
                    return Err("depth must be at least 1".to_string());
                }
                opts.depth = Some(parsed);
            }
            "--skip-hb" => opts.skip_hb = true,
            "--no-por" => opts.no_por = true,
            "--differential" => opts.differential = true,
            "--help" | "-h" => return Err(String::new()),
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag:?}")),
            path => opts.scenarios.push(path.to_string()),
        }
    }
    Ok(opts)
}

/// Resolves a scenario's tree name to a variant (`I`–`V`, or `1`–`5`).
fn resolve_variant(name: &str) -> Result<TreeVariant, String> {
    match name {
        "I" | "1" => Ok(TreeVariant::I),
        "II" | "2" => Ok(TreeVariant::II),
        "III" | "3" => Ok(TreeVariant::III),
        "IV" | "4" => Ok(TreeVariant::IV),
        "V" | "5" => Ok(TreeVariant::V),
        other => Err(format!("unknown tree {other:?} (expected I-V or 1-5)")),
    }
}

/// The built-in audit scenarios for one variant: a solo fault and a
/// correlated pair (joint cure on split variants, two independent kills on
/// unsplit ones), under the given oracle.
fn default_scenarios(variant: TreeVariant, oracle: OracleKind) -> Vec<(String, Scenario)> {
    let fault = |component: &str, cure: &[&str]| scenario::FaultSpec {
        component: component.to_string(),
        cure_set: if cure.is_empty() {
            vec![component.to_string()]
        } else {
            cure.iter().map(|s| s.to_string()).collect()
        },
    };
    let solo = Scenario {
        tree: variant.to_string(),
        oracle,
        depth: None,
        faults: vec![fault(names::RTU, &[])],
        mutation: None,
        admission: false,
        rehydrate: false,
        por_assume: None,
    };
    let pair_faults = if variant.is_split() {
        vec![
            fault(names::PBCOM, &[]),
            fault(names::FEDR, &[names::FEDR, names::PBCOM]),
        ]
    } else {
        vec![fault(names::RTU, &[]), fault(names::SES, &[])]
    };
    let pair = Scenario {
        tree: variant.to_string(),
        oracle,
        depth: None,
        faults: pair_faults,
        mutation: None,
        admission: false,
        rehydrate: false,
        por_assume: None,
    };
    // The admission flavour re-explores the correlated pair with the
    // deadline-aware controller in the loop: any report may be deferred and
    // later admitted, and the starvation invariant must hold throughout.
    let admit = Scenario {
        admission: true,
        ..pair.clone()
    };
    // The rehydrate flavour lets every in-flight restart complete either
    // cold or by checkpoint replay: the rehydrated path must preserve every
    // safety invariant across all interleavings.
    let rehy = Scenario {
        rehydrate: true,
        ..pair.clone()
    };
    vec![
        (format!("tree-{variant}/{}/solo", oracle.name()), solo),
        (format!("tree-{variant}/{}/pair", oracle.name()), pair),
        (format!("tree-{variant}/{}/admit", oracle.name()), admit),
        (format!("tree-{variant}/{}/rehydrate", oracle.name()), rehy),
    ]
}

/// Statically checks one scenario's exploration feasibility before running
/// it (the same RRL7xx lints `rr-lint` ships).
fn bounds_report(sc: &Scenario, variant: TreeVariant, cfg: &CheckConfig) -> rr_lint::Report {
    lint_model_bounds(&ModelBoundsParams {
        faults: sc.faults.len(),
        components: variant.components().len(),
        depth: cfg.max_depth,
        state_budget: cfg.state_budget,
        plan_queue_depth: sc.faults.len(),
        checked_queue_bound: CHECKED_QUEUE_BOUND,
    })
}

/// Resolves one scenario's exploration config and model, running the static
/// feasibility lints on the way.
fn build_model(
    name: &str,
    sc: &Scenario,
    depth_flag: Option<usize>,
    por: bool,
) -> Result<(Model, CheckConfig), String> {
    let variant = resolve_variant(&sc.tree).map_err(|e| format!("{name}: {e}"))?;
    let tree = variant
        .tree()
        .map_err(|e| format!("{name}: tree variant {variant} does not build: {e}"))?;
    let cfg = CheckConfig {
        max_depth: sc.depth.or(depth_flag).unwrap_or(DEFAULT_DEPTH),
        state_budget: DEFAULT_STATE_BUDGET,
        por,
    };
    let bounds = bounds_report(sc, variant, &cfg);
    if !bounds.is_clean() {
        print!("{}", bounds.to_human());
    }
    if bounds.fired("RRL701") {
        return Err(format!(
            "{name}: exploration statically infeasible, refusing to start"
        ));
    }
    let model = Model::new(tree, sc).map_err(|e| format!("{name}: {e}"))?;
    Ok((model, cfg))
}

fn print_violation(name: &str, outcome: &rr_model::CheckOutcome) {
    let Some(cex) = &outcome.violation else {
        return;
    };
    println!(
        "rr-model {name}: VIOLATION {} after {} states",
        cex.violation.kind.name(),
        outcome.states_explored
    );
    println!(
        "minimized counterexample ({} steps, replayable):",
        cex.trace.len()
    );
    print!("{}", cex.render());
}

/// Builds and explores one scenario. `Ok(true)` means clean, `Ok(false)`
/// means a violation was found (counterexample already printed).
fn check_scenario(
    name: &str,
    sc: &Scenario,
    depth_flag: Option<usize>,
    por: bool,
) -> Result<bool, String> {
    let (model, cfg) = build_model(name, sc, depth_flag, por)?;
    let outcome = check(&model, &cfg).map_err(|e| format!("{name}: {e}"))?;
    match &outcome.violation {
        None => {
            println!(
                "rr-model {name}: depth {} explored {} states ({} distinct, {} quiescent), \
                 no violations",
                outcome.depth,
                outcome.states_explored,
                outcome.distinct_states,
                outcome.quiescent_states
            );
            Ok(true)
        }
        Some(_) => {
            print_violation(name, &outcome);
            Ok(false)
        }
    }
}

/// Explores one scenario **both** fully and reduced and rejects any verdict
/// drift between the two. `Ok(true)` means clean under both; `Ok(false)`
/// means either a violation (agreed by both, counterexample printed) or
/// drift (one search's verdict differs — the unsound-reduction signature).
fn differential_scenario(
    name: &str,
    sc: &Scenario,
    depth_flag: Option<usize>,
) -> Result<bool, String> {
    let (model, full_cfg) = build_model(name, sc, depth_flag, false)?;
    let reduced_cfg = CheckConfig {
        por: true,
        ..full_cfg
    };
    let full = check(&model, &full_cfg).map_err(|e| format!("{name} (full): {e}"))?;
    let reduced = check(&model, &reduced_cfg).map_err(|e| format!("{name} (reduced): {e}"))?;
    let ratio = if reduced.distinct_states > 0 {
        full.distinct_states as f64 / reduced.distinct_states as f64
    } else {
        1.0
    };
    match (&full.violation, &reduced.violation) {
        (None, None) => {
            println!(
                "rr-model {name}: differential OK — clean both ways, {} vs {} distinct \
                 states ({ratio:.2}x reduction)",
                full.distinct_states, reduced.distinct_states
            );
            Ok(true)
        }
        (Some(f), Some(r)) if f == r => {
            println!("rr-model {name}: differential OK — both searches reject identically");
            print_violation(name, &full);
            Ok(false)
        }
        (Some(_), Some(_)) => {
            println!(
                "rr-model {name}: DIFFERENTIAL DRIFT — both reject but counterexamples \
                 differ (reduction broke minimization)"
            );
            print_violation(&format!("{name} (full)"), &full);
            print_violation(&format!("{name} (reduced)"), &reduced);
            Ok(false)
        }
        (Some(_), None) => {
            println!(
                "rr-model {name}: DIFFERENTIAL DRIFT — full exploration finds a violation \
                 the reduced search misses (unsound reduction)"
            );
            print_violation(name, &full);
            Ok(false)
        }
        (None, Some(_)) => {
            println!(
                "rr-model {name}: DIFFERENTIAL DRIFT — reduced search reports a violation \
                 full exploration refutes"
            );
            print_violation(name, &reduced);
            Ok(false)
        }
    }
}

/// Replays every golden scenario with telemetry enabled and verifies the
/// recorded episode stream's causal order.
fn verify_golden_hb() -> bool {
    let mut clean = true;
    for sc in golden_scenarios() {
        let (_trace, registry) = run_golden_scenario_telemetry(&sc);
        let violations = hb::verify_registry(&registry);
        if violations.is_empty() {
            println!(
                "rr-model hb {}: {} events, causally consistent",
                sc.name,
                registry.events().len()
            );
        } else {
            clean = false;
            println!(
                "rr-model hb {}: {} happens-before violation(s)",
                sc.name,
                violations.len()
            );
            for v in &violations {
                println!("  {v}");
            }
        }
    }
    clean
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("rr-model: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let por = !opts.no_por;
    let run = |name: &str, sc: &Scenario| {
        if opts.differential {
            differential_scenario(name, sc, opts.depth)
        } else {
            check_scenario(name, sc, opts.depth, por)
        }
    };
    let mut clean = true;
    if opts.scenarios.is_empty() {
        for variant in TreeVariant::ALL {
            for oracle in [OracleKind::Perfect, OracleKind::Naive] {
                for (name, sc) in default_scenarios(variant, oracle) {
                    match run(&name, &sc) {
                        Ok(ok) => clean &= ok,
                        Err(msg) => {
                            eprintln!("rr-model: {msg}");
                            return ExitCode::from(2);
                        }
                    }
                }
            }
        }
        if !opts.skip_hb {
            clean &= verify_golden_hb();
        }
    } else {
        for path in &opts.scenarios {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("rr-model: cannot read {path:?}: {e}");
                    return ExitCode::from(2);
                }
            };
            let sc = match scenario::parse(&text) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("rr-model: {path}: {e}");
                    return ExitCode::from(2);
                }
            };
            match run(path, &sc) {
                Ok(ok) => clean &= ok,
                Err(msg) => {
                    eprintln!("rr-model: {msg}");
                    return ExitCode::from(2);
                }
            }
        }
    }

    if clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

//! `rr-abs`: interval certification of the §4 transformation decisions.
//!
//! With no fixture arguments the default audit rebuilds the three §4
//! decisions (split fedrcom, consolidate ses/str, promote pbcom) from the
//! shipped Mercury calibration, certifies each over a ±20% drift box with
//! bisection refinement, prints the decision table, and lints the result
//! ([`rr_lint::lint_abs`], codes `RRL97x`): a verdict contradicting the
//! committed expectation or its own interval evidence is denied (RRL971), a
//! residual `depends` region is flagged (RRL972), and a malformed box is
//! denied before interpretation (RRL973). `--json PATH` additionally writes
//! the deterministic decision-table artifact CI diffs against
//! `tests/golden/abs-decisions.json`.
//!
//! Any `.abs` decision-table files passed as arguments are linted the same
//! way (see `rr_harness::abs::parse_abs_fixture` for the line format) —
//! including the deliberately broken fixture whose committed verdict its own
//! profit interval contradicts.
//!
//! ```text
//! rr-abs [--deny-warnings] [--quiet] [--json PATH] [table.abs ...]
//! ```
//!
//! Exit codes: `0` clean, `1` lint findings (deny, or any with
//! `--deny-warnings`), `2` usage or I/O error.

use std::process::ExitCode;

use rr_abs::refine::RefineConfig;
use rr_harness::abs::{abs_params, certify_decisions, decision_table_json, parse_abs_fixture};
use rr_lint::{lint_abs, AbsParams, Report};

const USAGE: &str = "usage: rr-abs [--deny-warnings] [--quiet] [--json PATH] [table.abs ...]

Certifies the paper's three 4.x tree transformations over a +/-20% parameter
drift box with interval abstract interpretation (the built-in Mercury audit
when no tables are given), prints the decision table, and lints it (RRL97x).
--json writes the deterministic decision-table artifact for golden diffing.
Exit code 0 = clean, 1 = findings, 2 = usage or I/O error.";

struct Options {
    deny_warnings: bool,
    quiet: bool,
    json: Option<String>,
    tables: Vec<String>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        deny_warnings: false,
        quiet: false,
        json: None,
        tables: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deny-warnings" => opts.deny_warnings = true,
            "--quiet" => opts.quiet = true,
            "--json" => {
                let path = it.next().ok_or("--json needs a path")?;
                opts.json = Some(path.to_string());
            }
            "--help" | "-h" => return Err(String::new()),
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag:?}")),
            path => opts.tables.push(path.to_string()),
        }
    }
    Ok(opts)
}

/// Prints one decision table's summary rows.
fn print_summary(name: &str, params: &AbsParams) {
    for d in &params.decisions {
        println!(
            "rr-abs {name}: {} expected={} certified={} profit=[{:.4}, {:.4}] s \
             over {} dims, {} split(s), {:.1}% undecided",
            d.name,
            d.expected_verdict,
            d.verdict,
            d.profit_lo_s,
            d.profit_hi_s,
            d.box_dims.len(),
            d.splits,
            d.depends_fraction * 100.0
        );
    }
}

/// Lints one decision table, merging path-prefixed findings into `report`.
fn audit(name: &str, params: &AbsParams, quiet: bool, report: &mut Report) {
    if !quiet {
        print_summary(name, params);
    }
    for mut d in lint_abs(params).into_diagnostics() {
        d.path = format!("{name}::{}", d.path);
        report.push(d);
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("rr-abs: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let mut report = Report::new();
    let result: Result<(), String> = if opts.tables.is_empty() {
        let params = abs_params(&certify_decisions(RefineConfig::default()));
        audit("mercury", &params, opts.quiet, &mut report);
        if let Some(path) = &opts.json {
            std::fs::write(path, decision_table_json(&params))
                .map_err(|e| format!("cannot write {path:?}: {e}"))
        } else {
            Ok(())
        }
    } else if opts.json.is_some() {
        Err("--json only applies to the built-in audit, not fixture tables".to_string())
    } else {
        opts.tables.iter().try_for_each(|path| {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
            let params = parse_abs_fixture(&text).map_err(|e| format!("{path}: {e}"))?;
            audit(path, &params, opts.quiet, &mut report);
            Ok(())
        })
    };
    if let Err(msg) = result {
        eprintln!("rr-abs: {msg}");
        return ExitCode::from(2);
    }

    print!("{}", report.to_human());
    let failing = report.has_deny() || (opts.deny_warnings && !report.is_clean());
    if failing {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

//! `rr-flow`: static action-independence audit for the recovery protocol.
//!
//! With no scenario arguments the default audit runs rr-flow's dependence
//! analysis ([`rr_model::analyze`]) over every tree variant I–V, both
//! oracles, and the four built-in scenario flavours (solo, pair, admission,
//! rehydrate), printing each scenario's escalation chains, fault
//! interference graph, and the fraction of action pairs the analysis proves
//! independent — the pairs the checker's partial-order reduction is allowed
//! to prune. Every report is then linted ([`rr_lint::lint_flow`], codes
//! `RRL95x`): a degenerate interference cycle, an uncurable chain, or a
//! malformed dependence table is rejected before any exploration trusts it.
//!
//! Any `.scenario` files passed as arguments are audited the same way —
//! including files carrying the deliberately unsound `por-assume` override,
//! which fails the table-shape lint (RRL953) rather than silently skewing an
//! exploration.
//!
//! ```text
//! rr-flow [--deny-warnings] [--quiet] [scenario.scenario ...]
//! ```
//!
//! Exit codes: `0` clean, `1` lint findings (deny, or any with
//! `--deny-warnings`), `2` usage or I/O error.

use std::process::ExitCode;

use mercury::station::TreeVariant;
use rr_harness::flow::flow_params;
use rr_lint::{lint_flow, Report};
use rr_model::{analyze, scenario, FlowAnalysis, Model};

const USAGE: &str = "usage: rr-flow [--deny-warnings] [--quiet] [scenario.scenario ...]

Computes rr-flow's static action-dependence analysis for each scenario (the
built-in tree I-V audit matrix when none are given), prints chains,
interference and independence statistics, and lints the result (RRL95x).
Exit code 0 = clean, 1 = findings, 2 = usage or I/O error.";

struct Options {
    deny_warnings: bool,
    quiet: bool,
    scenarios: Vec<String>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        deny_warnings: false,
        quiet: false,
        scenarios: Vec::new(),
    };
    for arg in args {
        match arg.as_str() {
            "--deny-warnings" => opts.deny_warnings = true,
            "--quiet" => opts.quiet = true,
            "--help" | "-h" => return Err(String::new()),
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag:?}")),
            path => opts.scenarios.push(path.to_string()),
        }
    }
    Ok(opts)
}

/// The built-in audit matrix: the same scenario flavours `rr-model` explores,
/// expressed as scenario text so this binary exercises the parser too.
fn default_scenarios() -> Vec<(String, String)> {
    let mut out = Vec::new();
    for variant in TreeVariant::ALL {
        let pair = if variant.is_split() {
            "fault pbcom\nfault fedr cures fedr pbcom\n"
        } else {
            "fault rtu\nfault ses\n"
        };
        for oracle in ["perfect", "naive"] {
            let base = format!("tree {variant}\noracle {oracle}\n");
            for (flavour, body) in [
                ("solo", "fault rtu\n".to_string()),
                ("pair", pair.to_string()),
                ("admit", format!("admission\n{pair}")),
                ("rehydrate", format!("rehydrate\n{pair}")),
            ] {
                out.push((
                    format!("tree-{variant}/{oracle}/{flavour}"),
                    format!("{base}{body}"),
                ));
            }
        }
    }
    out
}

/// Prints one scenario's analysis summary: chains, interference edges, and
/// how much of the action-pair space is provably independent.
fn print_summary(name: &str, analysis: &FlowAnalysis) {
    let n = analysis.templates.len();
    let total_pairs = n * (n - 1) / 2;
    let independent = (0..n)
        .flat_map(|a| ((a + 1)..n).map(move |b| (a, b)))
        .filter(|&(a, b)| !analysis.dependent[a][b] && !analysis.dependent[b][a])
        .count();
    let interfering: Vec<String> = (0..analysis.faults.len())
        .flat_map(|i| ((i + 1)..analysis.faults.len()).map(move |j| (i, j)))
        .filter(|&(i, j)| analysis.fault_interference[i][j])
        .map(|(i, j)| format!("{}~{}", analysis.faults[i], analysis.faults[j]))
        .collect();
    println!(
        "rr-flow {name}: {n} templates, {independent}/{total_pairs} pairs independent, \
         {} fault(s), interference [{}]",
        analysis.faults.len(),
        interfering.join(", ")
    );
    for (component, chain) in analysis.faults.iter().zip(&analysis.chains) {
        let rendered: Vec<String> = chain
            .iter()
            .map(|(cell, covers)| {
                if *covers {
                    format!("{cell}(cures)")
                } else {
                    cell.clone()
                }
            })
            .collect();
        println!("  chain {component}: {}", rendered.join(" -> "));
    }
}

/// Analyzes and lints one scenario, merging findings into `report`.
fn audit(name: &str, text: &str, quiet: bool, report: &mut Report) -> Result<(), String> {
    let sc = scenario::parse(text).map_err(|e| format!("{name}: {e}"))?;
    let variant = match sc.tree.as_str() {
        "I" | "1" => TreeVariant::I,
        "II" | "2" => TreeVariant::II,
        "III" | "3" => TreeVariant::III,
        "IV" | "4" => TreeVariant::IV,
        "V" | "5" => TreeVariant::V,
        other => return Err(format!("{name}: unknown tree {other:?} (expected I-V)")),
    };
    let tree = variant
        .tree()
        .map_err(|e| format!("{name}: tree variant {variant} does not build: {e}"))?;
    let model = Model::new(tree, &sc).map_err(|e| format!("{name}: {e}"))?;
    let analysis = analyze(&model);
    if !quiet {
        print_summary(name, &analysis);
    }
    for mut d in lint_flow(&flow_params(&analysis)).into_diagnostics() {
        d.path = format!("{name}::{}", d.path);
        report.push(d);
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("rr-flow: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let mut report = Report::new();
    let result: Result<(), String> = if opts.scenarios.is_empty() {
        default_scenarios()
            .iter()
            .try_for_each(|(name, text)| audit(name, text, opts.quiet, &mut report))
    } else {
        opts.scenarios.iter().try_for_each(|path| {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
            audit(path, &text, opts.quiet, &mut report)
        })
    };
    if let Err(msg) = result {
        eprintln!("rr-flow: {msg}");
        return ExitCode::from(2);
    }

    print!("{}", report.to_human());
    let failing = report.has_deny() || (opts.deny_warnings && !report.is_clean());
    if failing {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

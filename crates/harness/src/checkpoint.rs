//! Restart-vs-checkpoint campaigns: cold recovery against rehydration from
//! the crash-safe state store.
//!
//! The paper's recovery model cold-boots every restarted component; the
//! ses/str pair then pays the §4.3 resync (slow emergency service by the
//! old peer, which the rebuild dooms to an induced failure). With the
//! `rr-store` journal the pair instead *rehydrates*: replay a verified
//! snapshot plus the update tail, skip the resync, leave the peer alone.
//!
//! Neither policy dominates. Replay time scales with state size while the
//! resync cost is flat, so a large-state component recovers *slower* from
//! the store than from its peer — the first table sweeps state size with
//! both arms on the same seed and shows the MTTR crossover directly. And
//! journaling is not free even when nothing fails: every checkpoint stalls
//! the store for `state/throughput`, a steady availability tax the cold arm
//! never pays. The second table folds both effects into expected downtime
//! across failure rates: below the crossover rate the plain restart wins,
//! above it the checkpoint wins — the recursive-restartability story with a
//! price tag on state.

use mercury::config::StationConfig;
use mercury::measure::measure_recovery;
use mercury::station::{Station, TreeVariant};
use rr_core::{PerfectOracle, RecoveryMode};
use rr_sim::{SimDuration, SimTime, TraceKind};

use crate::tables::Table;

/// Campaign parameters. The defaults straddle the analytic crossover
/// (`state_kb ≈ resync_s * throughput ≈ 6.9 MiB`): the small sizes
/// rehydrate well under the cold MTTR, the 16 MiB cell loses to it.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Session-state sizes to sweep, in KiB.
    pub state_sizes_kb: Vec<f64>,
    /// Checkpoint interval for the rehydrate arm, in seconds.
    pub checkpoint_interval_s: f64,
    /// Sequential ses kills per arm (each fully recovers before the next).
    pub kills: usize,
    /// Seconds between kills (journal updates accumulate in the gap).
    pub settle_s: f64,
    /// Campaign seed.
    pub seed: u64,
}

impl Default for CheckpointConfig {
    fn default() -> Self {
        CheckpointConfig {
            state_sizes_kb: vec![64.0, 256.0, 1024.0, 4096.0, 16.0 * 1024.0],
            checkpoint_interval_s: 60.0,
            kills: 3,
            settle_s: 150.0,
            seed: 0xC8EC_0001,
        }
    }
}

/// The station configuration one arm runs: the checkpointed preset at the
/// given state size, with the rehydrate policy stripped for the cold arm so
/// both arms differ in recovery mode only.
pub fn arm_config(rehydrate: bool, state_kb: f64, interval_s: f64) -> StationConfig {
    let mut cfg = StationConfig::checkpointed();
    cfg.session_state_kb = state_kb;
    if rehydrate {
        for mode in cfg.recovery_modes.values_mut() {
            *mode = RecoveryMode::Rehydrate {
                checkpoint_interval_s: interval_s,
            };
        }
    } else {
        cfg.recovery_modes.clear();
    }
    cfg
}

/// One finished campaign arm.
#[derive(Debug, Clone)]
pub struct CheckpointReport {
    /// Session-state size this arm ran at, in KiB.
    pub state_kb: f64,
    /// Whether the ses/str pair rehydrated from the store.
    pub rehydrate: bool,
    /// Recovery time of each ses kill, in seconds.
    pub mttr_samples: Vec<f64>,
    /// `rehydrate:` completions observed (telemetry `rehydrated`).
    pub rehydrated: u64,
    /// Journal records replayed across all rehydrations.
    pub replayed_records: u64,
    /// Milliseconds the store stalled writing checkpoints (both components).
    pub checkpoint_stall_ms: u64,
    /// Induced §4.3 peer failures suffered by str.
    pub induced_str_crashes: usize,
    /// Observed campaign window, in seconds (for overhead accounting).
    pub window_s: f64,
}

impl CheckpointReport {
    /// Mean recovery time over the kills.
    pub fn mean_mttr_s(&self) -> f64 {
        if self.mttr_samples.is_empty() {
            0.0
        } else {
            self.mttr_samples.iter().sum::<f64>() / self.mttr_samples.len() as f64
        }
    }

    /// Fraction of the campaign window the store spent stalled on
    /// checkpoint writes — the availability tax journaling charges even
    /// when nothing fails.
    pub fn stall_fraction(&self) -> f64 {
        if self.window_s <= 0.0 {
            0.0
        } else {
            self.checkpoint_stall_ms as f64 / 1000.0 / self.window_s
        }
    }

    /// Expected downtime fraction at `failures_per_hour`: per-failure MTTR
    /// amortized over the failure rate, plus the steady checkpoint stall.
    pub fn expected_downtime(&self, failures_per_hour: f64) -> f64 {
        failures_per_hour / 3600.0 * self.mean_mttr_s() + self.stall_fraction()
    }
}

/// Runs one arm: sequential ses kills at one state size, cold or rehydrate.
pub fn run_arm(rehydrate: bool, state_kb: f64, cfg: &CheckpointConfig) -> CheckpointReport {
    let station_cfg = arm_config(rehydrate, state_kb, cfg.checkpoint_interval_s);
    let mut station = Station::new(
        station_cfg,
        TreeVariant::III,
        Box::new(PerfectOracle::new()),
        cfg.seed,
    )
    .unwrap_or_else(|e| panic!("{}: {e:?}", "valid station"));
    station.warm_up();
    let start = station.now();
    let settle = SimDuration::from_secs_f64(cfg.settle_s);

    let mut kills: Vec<SimTime> = Vec::new();
    for _ in 0..cfg.kills {
        station.run_for(settle);
        let at = station
            .inject_kill("ses")
            .unwrap_or_else(|e| panic!("{}: {e:?}", "known component"));
        kills.push(at);
    }
    station.run_for(settle);
    let window_s = station.now().saturating_since(start).as_secs_f64();

    let mut mttr_samples = Vec::new();
    for at in &kills {
        let m = measure_recovery(station.trace(), "ses", *at)
            .unwrap_or_else(|e| panic!("{}: {e:?}", "ses must recover"));
        mttr_samples.push(m.recovery_s());
    }
    let induced_str_crashes = station
        .trace()
        .iter()
        .filter(|e| e.kind == TraceKind::Mark && e.label == "induced-crash:str" && e.time > start)
        .count();

    let t = station.telemetry();
    let sum = |name: &'static str| t.counter(name, "ses") + t.counter(name, "str");
    CheckpointReport {
        state_kb,
        rehydrate,
        mttr_samples,
        rehydrated: sum("rehydrated"),
        replayed_records: sum("replayed_records"),
        checkpoint_stall_ms: sum("checkpoint_stall_ms"),
        induced_str_crashes,
        window_s,
    }
}

/// Runs both arms at one state size — cold, then rehydrate, same seed and
/// kill schedule — and returns `(cold, rehydrate)`.
pub fn run_pair(state_kb: f64, cfg: &CheckpointConfig) -> (CheckpointReport, CheckpointReport) {
    (run_arm(false, state_kb, cfg), run_arm(true, state_kb, cfg))
}

/// The cold-vs-rehydrate MTTR table across the state-size sweep, plus the
/// per-size reports for downstream scoring. Deterministic for a fixed
/// config — the golden suite pins its rendering.
pub fn mttr_table(cfg: &CheckpointConfig) -> (Table, Vec<(CheckpointReport, CheckpointReport)>) {
    let mut table = Table::new(
        "Cold restart vs rehydrate: MTTR across session-state size (tree III, ses kills)",
        vec![
            "state (KiB)".into(),
            "recovery".into(),
            "mean MTTR (s)".into(),
            "rehydrations".into(),
            "replayed records".into(),
            "ckpt stall (s)".into(),
            "induced str crashes".into(),
        ],
    );
    let mut pairs = Vec::new();
    for &state_kb in &cfg.state_sizes_kb {
        let (cold, rehy) = run_pair(state_kb, cfg);
        for r in [&cold, &rehy] {
            table.push_row(vec![
                format!("{state_kb:.0}"),
                if r.rehydrate { "rehydrate" } else { "cold" }.into(),
                format!("{:.2}", r.mean_mttr_s()),
                r.rehydrated.to_string(),
                r.replayed_records.to_string(),
                format!("{:.1}", r.checkpoint_stall_ms as f64 / 1000.0),
                r.induced_str_crashes.to_string(),
            ]);
        }
        pairs.push((cold, rehy));
    }
    (table, pairs)
}

/// The restart-vs-checkpoint crossover: expected downtime across failure
/// rates at one state size, folding the rehydrate arm's steady checkpoint
/// stall into its score.
pub fn crossover_table(cold: &CheckpointReport, rehy: &CheckpointReport) -> Table {
    let mut table = Table::new(
        format!(
            "Expected downtime vs failure rate at {:.0} KiB (stall tax {:.4}% of wall clock)",
            cold.state_kb,
            rehy.stall_fraction() * 100.0
        ),
        vec![
            "failures/hour".into(),
            "cold downtime (%)".into(),
            "rehydrate downtime (%)".into(),
            "winner".into(),
        ],
    );
    for rate in [0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0] {
        let c = cold.expected_downtime(rate);
        let r = rehy.expected_downtime(rate);
        table.push_row(vec![
            format!("{rate}"),
            format!("{:.4}", c * 100.0),
            format!("{:.4}", r * 100.0),
            if r < c { "rehydrate" } else { "cold" }.into(),
        ]);
    }
    table
}

/// Renders the checkpoint campaign as an experiment section: the MTTR
/// state-size sweep and the failure-rate crossover at the calibrated state
/// size.
pub fn experiment(run: crate::RunConfig) -> crate::Experiment {
    let mut exp = crate::Experiment {
        id: "checkpoint".into(),
        title: "Checkpoint — cold restart vs rehydration from the crash-safe store".into(),
        tables: Vec::new(),
        blocks: Vec::new(),
        observations: Vec::new(),
    };
    exp.blocks.push(
        "Both arms run the same seed and kill schedule on tree III; only the\n\
         recovery mode differs. Cold restarts resync against the old peer\n\
         (slow service, then the 4.3 induced failure dooms it); rehydration\n\
         replays a verified checkpoint from the store and leaves the peer\n\
         alone. Replay time scales with state size while the resync cost is\n\
         flat, so the arms cross over as state grows; and because every\n\
         checkpoint stalls the store, journaling also charges a steady\n\
         availability tax that only pays for itself above a failure-rate\n\
         threshold.\n"
            .to_string(),
    );
    let cfg = CheckpointConfig {
        seed: run.seed,
        ..CheckpointConfig::default()
    };
    let (table, pairs) = mttr_table(&cfg);
    exp.tables.push(table);

    let (small_cold, small_rehy) = &pairs[0];
    let (big_cold, big_rehy) = &pairs[pairs.len() - 1];
    exp.observations.push((
        "smallest state: rehydrate beats cold MTTR (1=yes)".into(),
        1.0,
        f64::from(u8::from(
            small_rehy.mean_mttr_s() < small_cold.mean_mttr_s(),
        )),
    ));
    exp.observations.push((
        "largest state: cold beats rehydrate MTTR (1=yes)".into(),
        1.0,
        f64::from(u8::from(big_cold.mean_mttr_s() < big_rehy.mean_mttr_s())),
    ));
    exp.observations.push((
        "rehydrate arm never suffers the induced peer crash (1=yes)".into(),
        1.0,
        f64::from(u8::from(
            pairs.iter().all(|(_, r)| r.induced_str_crashes == 0),
        )),
    ));

    // The crossover sweep runs at the calibrated 256 KiB state size: the
    // second entry of the default sweep.
    let calibrated = pairs
        .iter()
        .find(|(c, _)| (c.state_kb - 256.0).abs() < f64::EPSILON)
        .unwrap_or(&pairs[0]);
    let sweep = crossover_table(&calibrated.0, &calibrated.1);
    let wins_low = calibrated.0.expected_downtime(0.25) < calibrated.1.expected_downtime(0.25);
    let wins_high = calibrated.1.expected_downtime(20.0) < calibrated.0.expected_downtime(20.0);
    exp.tables.push(sweep);
    exp.observations.push((
        "crossover: cold wins at 0.25/hr, rehydrate wins at 20/hr (1=yes)".into(),
        1.0,
        f64::from(u8::from(wins_low && wins_high)),
    ));
    exp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arm_configs_validate_and_differ_only_in_recovery_mode() {
        let cold = arm_config(false, 512.0, 60.0);
        let rehy = arm_config(true, 512.0, 60.0);
        assert!(cold.validate().is_ok());
        assert!(rehy.validate().is_ok());
        assert!(cold.recovery_modes.is_empty());
        assert_eq!(rehy.recovery_modes.len(), 2);
        let mut recold = rehy.clone();
        recold.recovery_modes.clear();
        assert_eq!(format!("{recold:?}"), format!("{cold:?}"));
    }

    #[test]
    fn both_regimes_appear_across_the_default_sweep() {
        // One kill per arm at the two extreme sizes keeps this fast while
        // still witnessing the crossover's two regimes.
        let cfg = CheckpointConfig {
            kills: 1,
            ..CheckpointConfig::default()
        };
        let (small_cold, small_rehy) = run_pair(64.0, &cfg);
        assert!(
            small_rehy.mean_mttr_s() < small_cold.mean_mttr_s(),
            "64 KiB: rehydrate ({:.2}s) must beat cold ({:.2}s)",
            small_rehy.mean_mttr_s(),
            small_cold.mean_mttr_s()
        );
        assert!(small_rehy.rehydrated >= 1);
        assert_eq!(small_rehy.induced_str_crashes, 0);
        assert!(small_cold.induced_str_crashes >= 1);

        let (big_cold, big_rehy) = run_pair(16.0 * 1024.0, &cfg);
        assert!(
            big_cold.mean_mttr_s() < big_rehy.mean_mttr_s(),
            "16 MiB: cold ({:.2}s) must beat rehydrate ({:.2}s)",
            big_cold.mean_mttr_s(),
            big_rehy.mean_mttr_s()
        );
    }

    #[test]
    fn downtime_crossover_flips_with_failure_rate() {
        let cfg = CheckpointConfig {
            kills: 1,
            ..CheckpointConfig::default()
        };
        let (cold, rehy) = run_pair(256.0, &cfg);
        assert!(rehy.stall_fraction() > 0.0, "journaling must charge a tax");
        assert!(
            cold.expected_downtime(0.25) < rehy.expected_downtime(0.25),
            "rare failures: the checkpoint tax loses"
        );
        assert!(
            rehy.expected_downtime(20.0) < cold.expected_downtime(20.0),
            "frequent failures: the MTTR edge wins"
        );
    }
}

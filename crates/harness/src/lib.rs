//! # rr-harness — the experiment harness
//!
//! Regenerates every table and figure of *Reducing Recovery Time in a Small
//! Recursively Restartable System* (DSN 2002) against the simulated Mercury
//! ground station:
//!
//! | Experiment | Paper artifact |
//! |---|---|
//! | [`experiments::table1`] | Table 1 — per-component MTTFs |
//! | [`experiments::table2`] | Table 2 — trees I/II recovery times |
//! | [`experiments::figures`] | Table 3 + Figures 2–6 — the tree evolution |
//! | [`experiments::table4`] | Table 4 — full MTTR matrix, trees I–V |
//! | [`experiments::correlated_faults`] | beyond the paper — sequential vs parallel recovery of concurrent faults |
//! | [`experiments::headline`] | the "factor of four" claim + availability |
//! | [`experiments::pass_data_loss`] | §5.2 — science-data loss during a pass |
//! | [`experiments::ablation_oracle_sweep`] | §4.4 error-rate sweep |
//! | [`experiments::ablation_ping_period`] | §2.2 detection-period trade-off |
//! | [`experiments::ablation_learning`] | §7 learning oracle |
//! | [`experiments::ablation_optimizer`] | §7 automatic tree transformation |
//! | [`chaos::experiment`] | beyond the paper — chaos campaign under degraded links |
//! | [`overload::experiment`] | beyond the paper — admission control vs pass-window misses under overload |
//! | [`checkpoint::experiment`] | beyond the paper — cold restart vs rehydration from the crash-safe store |
//! | [`abs::experiment`] | beyond the paper — interval certification of the §4 transformation decisions |
//!
//! The `repro` binary drives the suite:
//!
//! ```text
//! repro all --trials 100 --report EXPERIMENTS.md
//! repro table4 --trials 20
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::disallowed_methods))]
#![warn(missing_docs)]

pub mod abs;
pub mod chaos;
pub mod checkpoint;
pub mod experiments;
pub mod flow;
pub mod golden;
pub mod overload;
pub mod report;
pub mod tables;

pub use abs::{abs_params, certify_decisions, decision_table_json, parse_abs_fixture};
pub use chaos::{ChaosConfig, ChaosReport};
pub use checkpoint::{CheckpointConfig, CheckpointReport};
pub use experiments::{Experiment, OracleKind, RunConfig};
pub use flow::flow_params;
pub use overload::{OverloadConfig, OverloadLoad, OverloadReport};

//! Golden-trace normalization and diffing.
//!
//! The golden-trace regression suite (`tests/golden.rs`, data under the
//! repository-level `tests/golden/`) records canonical recovery traces for
//! representative single- and multi-fault scenarios on every tree variant and
//! fails the build if recovery ordering, episode boundaries, or cure
//! attribution drift. The simulator is deterministic (seeded RNG, virtual
//! time), so a normalized trace is a *byte-exact* function of the scenario.
//!
//! Normalization keeps exactly the events that define recovery behaviour —
//! component lifecycle transitions and the recovery-protocol marks — and
//! rebases times to the scenario start so incidental warm-up drift (e.g. a
//! longer settle window in a future config) cannot invalidate every golden.

use rr_sim::{SimTime, Trace, TraceKind};

/// Mark prefixes that are part of the recovery protocol and therefore part of
/// the golden contract. Everything else (telemetry chatter, pass bookkeeping)
/// is incidental and excluded.
pub const GOLDEN_MARK_PREFIXES: &[&str] = &[
    "inject:",
    "detect:",
    "stale:",
    "alive:",
    "restart:",
    "giveup:",
    "quarantine:",
    "cured:",
    "ready:",
    "rejuvenate:",
    "merge:",
    "defer:",
    "induced-crash:",
    "aging-crash:",
    "poison-crash:",
];

/// Lifecycle kinds included in a normalized trace. `Spawned` is excluded
/// (cold-start noise) and `Dropped` is excluded (incidental routing detail);
/// `Mark` is handled separately through [`GOLDEN_MARK_PREFIXES`].
const GOLDEN_KINDS: &[TraceKind] = &[
    TraceKind::Crashed,
    TraceKind::Hung,
    TraceKind::Zombified,
    TraceKind::Restarted,
];

/// `true` if the event belongs in a normalized golden trace.
fn is_golden(kind: TraceKind, label: &str) -> bool {
    match kind {
        TraceKind::Mark => GOLDEN_MARK_PREFIXES.iter().any(|p| label.starts_with(p)),
        k => GOLDEN_KINDS.contains(&k),
    }
}

/// Renders the recovery-relevant slice of `trace` from `from` onward as a
/// canonical text form: one `"<nanos-since-from> <kind> <label>"` line per
/// event, in simulation order. Identical scenarios (same seed, same code)
/// produce byte-identical output.
pub fn normalize(trace: &Trace, from: SimTime) -> String {
    let mut out = String::new();
    for e in trace.iter() {
        if e.time < from || !is_golden(e.kind, &e.label) {
            continue;
        }
        let rebased = e.time.saturating_since(from).as_nanos();
        out.push_str(&format!("{rebased} {} {}\n", e.kind, e.label));
    }
    out
}

/// Compares an actual normalized trace against the expected golden. Returns
/// `None` on a byte-exact match, otherwise a human-readable line diff
/// suitable for a CI artifact: every divergent line is shown as
/// `-expected` / `+actual` with its line number.
pub fn diff(expected: &str, actual: &str) -> Option<String> {
    if expected == actual {
        return None;
    }
    let exp: Vec<&str> = expected.lines().collect();
    let act: Vec<&str> = actual.lines().collect();
    let mut out = String::new();
    out.push_str(&format!(
        "normalized traces differ: {} expected lines, {} actual lines\n",
        exp.len(),
        act.len()
    ));
    let mut shown = 0usize;
    for i in 0..exp.len().max(act.len()) {
        let e = exp.get(i).copied();
        let a = act.get(i).copied();
        if e == a {
            continue;
        }
        if let Some(e) = e {
            out.push_str(&format!("{:>6} -{e}\n", i + 1));
        }
        if let Some(a) = a {
            out.push_str(&format!("{:>6} +{a}\n", i + 1));
        }
        shown += 1;
        if shown >= 40 {
            out.push_str("  ... (further differences elided)\n");
            break;
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    #[test]
    fn normalize_keeps_recovery_events_only() {
        let mut tr = Trace::new();
        tr.record(t(0.0), None, TraceKind::Spawned, "ses");
        tr.record(t(5.0), None, TraceKind::Mark, "telemetry:opal:1");
        tr.record(t(10.0), None, TraceKind::Crashed, "ses");
        tr.record(t(10.9), None, TraceKind::Mark, "detect:ses");
        tr.record(t(11.0), None, TraceKind::Restarted, "ses");
        tr.record(t(16.3), None, TraceKind::Mark, "ready:ses");
        let norm = normalize(&tr, t(10.0));
        assert_eq!(
            norm,
            "0 crashed ses\n\
             900000000 mark detect:ses\n\
             1000000000 restarted ses\n\
             6300000000 mark ready:ses\n"
        );
    }

    #[test]
    fn normalize_rebases_and_filters_before_from() {
        let mut tr = Trace::new();
        tr.record(t(1.0), None, TraceKind::Crashed, "early");
        tr.record(t(2.0), None, TraceKind::Crashed, "late");
        let norm = normalize(&tr, t(2.0));
        assert_eq!(norm, "0 crashed late\n");
    }

    #[test]
    fn diff_reports_divergent_lines() {
        assert!(diff("a\nb\n", "a\nb\n").is_none());
        let d = diff("a\nb\n", "a\nc\n").unwrap();
        assert!(d.contains("-b"), "{d}");
        assert!(d.contains("+c"), "{d}");
    }
}

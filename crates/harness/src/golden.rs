//! Golden-trace normalization and diffing.
//!
//! The golden-trace regression suite (`tests/golden.rs`, data under the
//! repository-level `tests/golden/`) records canonical recovery traces for
//! representative single- and multi-fault scenarios on every tree variant and
//! fails the build if recovery ordering, episode boundaries, or cure
//! attribution drift. The simulator is deterministic (seeded RNG, virtual
//! time), so a normalized trace is a *byte-exact* function of the scenario.
//!
//! Normalization keeps exactly the events that define recovery behaviour —
//! component lifecycle transitions and the recovery-protocol marks — and
//! rebases times to the scenario start so incidental warm-up drift (e.g. a
//! longer settle window in a future config) cannot invalidate every golden.

use std::path::PathBuf;

use mercury::config::{names, StationConfig};
use mercury::station::{Station, TreeVariant};
use rr_core::PerfectOracle;
use rr_sim::{FaultKind, FaultScript, SimDuration, SimTime, Trace, TraceKind};

/// Mark prefixes that are part of the recovery protocol and therefore part of
/// the golden contract. Everything else (telemetry chatter, pass bookkeeping)
/// is incidental and excluded.
pub const GOLDEN_MARK_PREFIXES: &[&str] = &[
    "inject:",
    "detect:",
    "stale:",
    "alive:",
    "restart:",
    "giveup:",
    "quarantine:",
    "cured:",
    "ready:",
    "rejuvenate:",
    "merge:",
    "defer:",
    "shed:",
    "induced-crash:",
    "aging-crash:",
    "poison-crash:",
];

/// Lifecycle kinds included in a normalized trace. `Spawned` is excluded
/// (cold-start noise) and `Dropped` is excluded (incidental routing detail);
/// `Mark` is handled separately through [`GOLDEN_MARK_PREFIXES`].
const GOLDEN_KINDS: &[TraceKind] = &[
    TraceKind::Crashed,
    TraceKind::Hung,
    TraceKind::Zombified,
    TraceKind::Restarted,
];

/// `true` if the event belongs in a normalized golden trace.
fn is_golden(kind: TraceKind, label: &str) -> bool {
    match kind {
        TraceKind::Mark => GOLDEN_MARK_PREFIXES.iter().any(|p| label.starts_with(p)),
        k => GOLDEN_KINDS.contains(&k),
    }
}

/// Renders the recovery-relevant slice of `trace` from `from` onward as a
/// canonical text form: one `"<nanos-since-from> <kind> <label>"` line per
/// event, in simulation order. Identical scenarios (same seed, same code)
/// produce byte-identical output.
pub fn normalize(trace: &Trace, from: SimTime) -> String {
    let mut out = String::new();
    for e in trace.iter() {
        if e.time < from || !is_golden(e.kind, &e.label) {
            continue;
        }
        let rebased = e.time.saturating_since(from).as_nanos();
        out.push_str(&format!("{rebased} {} {}\n", e.kind, e.label));
    }
    out
}

/// Compares an actual normalized trace against the expected golden. Returns
/// `None` on a byte-exact match, otherwise a human-readable line diff
/// suitable for a CI artifact: every divergent line is shown as
/// `-expected` / `+actual` with its line number.
pub fn diff(expected: &str, actual: &str) -> Option<String> {
    if expected == actual {
        return None;
    }
    let exp: Vec<&str> = expected.lines().collect();
    let act: Vec<&str> = actual.lines().collect();
    let mut out = String::new();
    out.push_str(&format!(
        "normalized traces differ: {} expected lines, {} actual lines\n",
        exp.len(),
        act.len()
    ));
    let mut shown = 0usize;
    for i in 0..exp.len().max(act.len()) {
        let e = exp.get(i).copied();
        let a = act.get(i).copied();
        if e == a {
            continue;
        }
        if let Some(e) = e {
            out.push_str(&format!("{:>6} -{e}\n", i + 1));
        }
        if let Some(a) = a {
            out.push_str(&format!("{:>6} +{a}\n", i + 1));
        }
        shown += 1;
        if shown >= 40 {
            out.push_str("  ... (further differences elided)\n");
            break;
        }
    }
    Some(out)
}

/// How a golden scenario injects its fault(s).
#[derive(Debug, Clone, Copy)]
pub enum ScenarioKind {
    /// Kill one component.
    Single(&'static str),
    /// The §4.4 poisoned-fedr correlated failure (cured only by a joint
    /// \[fedr, pbcom\] restart).
    CorrelatedPbcom,
    /// Two components in independent cells killed at the same instant.
    IndependentPair(&'static str, &'static str),
    /// Kill every listed component at once with the admission controller on
    /// (see [`golden_admission_config`]): capacity 1 admits one restart, the
    /// rest are deferred, duplicate FD reports for the parked components are
    /// shed, and the queue drains as the capacity window recharges.
    OverloadBurst(&'static [&'static str]),
    /// Kill `first`; after `stagger_s`, kill `second` (optionally with a
    /// joint \[fedr, pbcom\] cure hint) while the first episode is still in
    /// flight — the overlap forces promotion to the least common ancestor.
    OverlapPair {
        /// First casualty.
        first: &'static str,
        /// Second casualty, injected `stagger_s` later.
        second: &'static str,
        /// Whether the oracle gets a joint \[fedr, pbcom\] cure hint.
        joint_hint: bool,
        /// Delay between the two kills, seconds.
        stagger_s: f64,
    },
}

/// One golden-trace scenario: a tree variant, a seed, and a fault pattern.
#[derive(Debug, Clone, Copy)]
pub struct GoldenScenario {
    /// Scenario (and golden file) name.
    pub name: &'static str,
    /// The tree variant the station operates.
    pub variant: TreeVariant,
    /// Deterministic simulation seed.
    pub seed: u64,
    /// The fault pattern injected after warm-up.
    pub kind: ScenarioKind,
}

impl GoldenScenario {
    /// The scenario's injections as a declarative [`FaultScript`], times
    /// relative to the post-warm-up injection instant. This is the form the
    /// static analyzer checks: every target must be a component of the
    /// scenario's tree variant. (The correlated-pbcom poison is scripted as
    /// its initiating fedr crash — the cure hint is oracle state, not a
    /// fault.)
    pub fn fault_script(&self) -> FaultScript {
        match self.kind {
            ScenarioKind::Single(comp) => {
                FaultScript::new().with_fault(SimTime::ZERO, comp, FaultKind::Crash)
            }
            ScenarioKind::CorrelatedPbcom => {
                FaultScript::new().with_fault(SimTime::ZERO, names::FEDR, FaultKind::Crash)
            }
            ScenarioKind::IndependentPair(a, b) => FaultScript::new()
                .with_fault(SimTime::ZERO, a, FaultKind::Crash)
                .with_fault(SimTime::ZERO, b, FaultKind::Crash),
            ScenarioKind::OverloadBurst(targets) => {
                let mut script = FaultScript::new();
                for target in targets {
                    script.push(SimTime::ZERO, *target, FaultKind::Crash);
                }
                script
            }
            ScenarioKind::OverlapPair {
                first,
                second,
                stagger_s,
                ..
            } => FaultScript::new()
                .with_fault(SimTime::ZERO, first, FaultKind::Crash)
                .with_fault(SimTime::from_secs_f64(stagger_s), second, FaultKind::Crash),
        }
    }
}

/// The canonical golden-trace scenario set: single faults on every variant
/// plus the multi-fault patterns exercising the parallel scheduler.
pub fn golden_scenarios() -> Vec<GoldenScenario> {
    use ScenarioKind::*;
    vec![
        // Single-fault scenarios: recorded before the parallel scheduler
        // landed; byte-identity here is the "paper() unchanged on single
        // faults" guarantee.
        GoldenScenario {
            name: "tree1-kill-rtu",
            variant: TreeVariant::I,
            seed: 0xD5_2002,
            kind: Single(names::RTU),
        },
        GoldenScenario {
            name: "tree2-kill-rtu",
            variant: TreeVariant::II,
            seed: 0xD5_2012,
            kind: Single(names::RTU),
        },
        GoldenScenario {
            name: "tree3-kill-rtu",
            variant: TreeVariant::III,
            seed: 0xD5_2022,
            kind: Single(names::RTU),
        },
        GoldenScenario {
            name: "tree4-kill-rtu",
            variant: TreeVariant::IV,
            seed: 0xD5_2032,
            kind: Single(names::RTU),
        },
        GoldenScenario {
            name: "tree5-kill-rtu",
            variant: TreeVariant::V,
            seed: 0xD5_2042,
            kind: Single(names::RTU),
        },
        GoldenScenario {
            name: "tree2-kill-fedrcom",
            variant: TreeVariant::II,
            seed: 0xD5_2052,
            kind: Single(names::FEDRCOM),
        },
        GoldenScenario {
            name: "tree2-kill-ses",
            variant: TreeVariant::II,
            seed: 0xD5_2062,
            kind: Single(names::SES),
        },
        GoldenScenario {
            name: "tree3-kill-pbcom",
            variant: TreeVariant::III,
            seed: 0xD5_2072,
            kind: Single(names::PBCOM),
        },
        GoldenScenario {
            name: "tree4-correlated-pbcom",
            variant: TreeVariant::IV,
            seed: 0xD5_2082,
            kind: CorrelatedPbcom,
        },
        GoldenScenario {
            name: "tree5-correlated-pbcom",
            variant: TreeVariant::V,
            seed: 0xD5_2092,
            kind: CorrelatedPbcom,
        },
        // Multi-fault scenarios: concurrent suspicions exercising the
        // parallel scheduler (independent episodes and LCA merges).
        GoldenScenario {
            name: "tree2-pair-rtu-ses",
            variant: TreeVariant::II,
            seed: 0xD5_20A2,
            kind: IndependentPair(names::RTU, names::SES),
        },
        GoldenScenario {
            name: "tree3-pair-fedr-pbcom",
            variant: TreeVariant::III,
            seed: 0xD5_20B2,
            kind: IndependentPair(names::FEDR, names::PBCOM),
        },
        GoldenScenario {
            name: "tree4-pair-rtu-fedr",
            variant: TreeVariant::IV,
            seed: 0xD5_20C2,
            kind: IndependentPair(names::RTU, names::FEDR),
        },
        GoldenScenario {
            name: "tree5-pair-rtu-ses",
            variant: TreeVariant::V,
            seed: 0xD5_20D2,
            kind: IndependentPair(names::RTU, names::SES),
        },
        GoldenScenario {
            name: "tree4-merge-fedr-pbcom",
            variant: TreeVariant::IV,
            seed: 0xD5_20E2,
            kind: OverlapPair {
                first: names::FEDR,
                second: names::PBCOM,
                joint_hint: true,
                stagger_s: 1.0,
            },
        },
        GoldenScenario {
            name: "tree5-merge-fedr-pbcom",
            variant: TreeVariant::V,
            seed: 0xD5_20F2,
            kind: OverlapPair {
                first: names::FEDR,
                second: names::PBCOM,
                joint_hint: false,
                stagger_s: 1.0,
            },
        },
        // Overload scenarios: simultaneous kills under the admission
        // controller (capacity 1), pinning the defer / shed / drain ordering.
        GoldenScenario {
            name: "tree2-overload-pair",
            variant: TreeVariant::II,
            seed: 0xD5_2102,
            kind: OverloadBurst(&[names::RTU, names::SES]),
        },
        GoldenScenario {
            name: "tree4-overload-burst",
            variant: TreeVariant::IV,
            seed: 0xD5_2112,
            kind: OverloadBurst(&[names::SES, names::STR, names::RTU]),
        },
        GoldenScenario {
            name: "tree5-overload-burst",
            variant: TreeVariant::V,
            seed: 0xD5_2122,
            kind: OverloadBurst(&[names::SES, names::STR, names::RTU]),
        },
    ]
}

/// The configuration [`ScenarioKind::OverloadBurst`] scenarios run: the
/// shipped admission preset with the pacing knobs shrunk so a full
/// defer → shed → age-out → admit → cure cycle completes inside a golden
/// window. Capacity 1 over a 20 s window keeps the admitted-restart spacing
/// under the 30 s aging bound (RRL802), so the configuration lints clean.
pub fn golden_admission_config() -> StationConfig {
    let mut cfg = StationConfig::admission();
    cfg.admission_capacity = 1;
    cfg.admission_window_s = 20.0;
    cfg.defer_max_age_s = 30.0;
    cfg.admission_retry_s = 5.0;
    cfg
}

/// Statically lints one scenario before anything runs: the station
/// configuration and tree (via [`StationConfig::lint`]) plus the scenario's
/// [fault script](GoldenScenario::fault_script) against the variant's
/// component set.
pub fn lint_scenario(sc: &GoldenScenario) -> rr_lint::Report {
    let cfg = scenario_config(sc);
    let mut report = match sc.variant.tree() {
        Ok(tree) => cfg.lint(&tree),
        Err(e) => {
            let mut r = rr_lint::Report::new();
            r.push(rr_lint::Diagnostic::new(
                &rr_lint::catalog::TREE_MALFORMED,
                sc.name,
                format!("tree variant {} does not build: {e}", sc.variant),
            ));
            r
        }
    };
    let components = sc.variant.components();
    let infrastructure = [names::FD.to_string(), names::REC.to_string()];
    let fd = cfg.fd_params();
    report.merge(rr_lint::lint_fault_script(
        &sc.fault_script().to_text(),
        &rr_lint::ScriptContext {
            components: &components,
            infrastructure: &infrastructure,
            fd: Some(&fd),
        },
    ));
    report
}

/// The configuration a scenario records its golden under: the paper
/// calibration, except that overload-burst scenarios need the admission
/// controller and so run [`golden_admission_config`].
fn scenario_config(sc: &GoldenScenario) -> StationConfig {
    match sc.kind {
        ScenarioKind::OverloadBurst(_) => golden_admission_config(),
        _ => StationConfig::paper(),
    }
}

/// Runs one scenario to completion and returns its normalized trace.
///
/// # Panics
///
/// Refuses to run (panics with the rendered report) if
/// [`lint_scenario`] produces a deny diagnostic — the golden suite must
/// never record a trace from a configuration the analyzer rejects.
pub fn run_golden_scenario(sc: &GoldenScenario) -> String {
    run_scenario_with_config(sc, scenario_config(sc)).0
}

/// Runs one scenario with recovery-episode telemetry enabled, returning the
/// normalized trace **and** the recorded telemetry registry (vector-clocked
/// episode stream, ready for the happens-before verifier). Telemetry is
/// observation-only, so the trace is byte-identical to
/// [`run_golden_scenario`]'s.
pub fn run_golden_scenario_telemetry(sc: &GoldenScenario) -> (String, rr_sim::Registry) {
    let mut cfg = scenario_config(sc);
    cfg.telemetry_enabled = true;
    run_scenario_with_config(sc, cfg)
}

/// Shared scenario driver: lints, warms up, injects per the scenario kind,
/// runs to completion, and returns the normalized trace plus the station's
/// telemetry snapshot (a no-op registry unless the config enables it).
fn run_scenario_with_config(
    sc: &GoldenScenario,
    config: StationConfig,
) -> (String, rr_sim::Registry) {
    let lint = lint_scenario(sc);
    assert!(
        !lint.has_deny(),
        "scenario {} rejected by rr-lint:\n{}",
        sc.name,
        lint.to_human()
    );
    let mut station = Station::new(config, sc.variant, Box::new(PerfectOracle::new()), sc.seed)
        .unwrap_or_else(|e| panic!("{}: {e:?}", "valid station"));
    station.warm_up();
    let start = station.now();
    match &sc.kind {
        ScenarioKind::Single(comp) => {
            station
                .inject_kill(comp)
                .unwrap_or_else(|e| panic!("{}: {e:?}", "known component"));
        }
        ScenarioKind::CorrelatedPbcom => {
            station
                .inject_correlated_pbcom()
                .unwrap_or_else(|e| panic!("{}: {e:?}", "known component"));
        }
        ScenarioKind::IndependentPair(a, b) => {
            station
                .inject_kill(a)
                .unwrap_or_else(|e| panic!("{}: {e:?}", "known component"));
            station
                .inject_kill(b)
                .unwrap_or_else(|e| panic!("{}: {e:?}", "known component"));
        }
        ScenarioKind::OverloadBurst(targets) => {
            for target in *targets {
                station
                    .inject_kill(target)
                    .unwrap_or_else(|e| panic!("{}: {e:?}", "known component"));
            }
        }
        ScenarioKind::OverlapPair {
            first,
            second,
            joint_hint,
            stagger_s,
        } => {
            station
                .inject_kill(first)
                .unwrap_or_else(|e| panic!("{}: {e:?}", "known component"));
            station.run_for(SimDuration::from_secs_f64(*stagger_s));
            if *joint_hint {
                station.set_cure_hint(second, [names::FEDR, names::PBCOM]);
            }
            station
                .inject_kill(second)
                .unwrap_or_else(|e| panic!("{}: {e:?}", "known component"));
        }
    }
    // Overload bursts drain their deferral queue at the capacity-window
    // cadence, so they need a longer settle than a single recovery episode.
    let settle_s = match sc.kind {
        ScenarioKind::OverloadBurst(_) => 120,
        _ => 80,
    };
    station.run_for(SimDuration::from_secs(settle_s));
    (normalize(station.trace(), start), station.telemetry())
}

/// The repository-level directory holding the recorded golden traces.
pub fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    #[test]
    fn every_golden_scenario_lints_clean() {
        for sc in golden_scenarios() {
            let report = lint_scenario(&sc);
            assert!(
                report.is_clean(),
                "scenario {} should lint clean:\n{}",
                sc.name,
                report.to_human()
            );
        }
    }

    #[test]
    fn scenario_fault_scripts_are_parseable_and_on_target() {
        for sc in golden_scenarios() {
            let script = sc.fault_script();
            let text = script.to_text();
            assert_eq!(FaultScript::parse(&text).expect("round-trip"), script);
            let components = sc.variant.components();
            for fault in script.faults() {
                assert!(
                    components.contains(&fault.target),
                    "{}: target {:?} not in variant {}",
                    sc.name,
                    fault.target,
                    sc.variant
                );
            }
        }
    }

    #[test]
    fn normalize_keeps_recovery_events_only() {
        let mut tr = Trace::new();
        tr.record(t(0.0), None, TraceKind::Spawned, "ses");
        tr.record(t(5.0), None, TraceKind::Mark, "telemetry:opal:1");
        tr.record(t(10.0), None, TraceKind::Crashed, "ses");
        tr.record(t(10.9), None, TraceKind::Mark, "detect:ses");
        tr.record(t(11.0), None, TraceKind::Restarted, "ses");
        tr.record(t(16.3), None, TraceKind::Mark, "ready:ses");
        let norm = normalize(&tr, t(10.0));
        assert_eq!(
            norm,
            "0 crashed ses\n\
             900000000 mark detect:ses\n\
             1000000000 restarted ses\n\
             6300000000 mark ready:ses\n"
        );
    }

    #[test]
    fn normalize_rebases_and_filters_before_from() {
        let mut tr = Trace::new();
        tr.record(t(1.0), None, TraceKind::Crashed, "early");
        tr.record(t(2.0), None, TraceKind::Crashed, "late");
        let norm = normalize(&tr, t(2.0));
        assert_eq!(norm, "0 crashed late\n");
    }

    #[test]
    fn diff_reports_divergent_lines() {
        assert!(diff("a\nb\n", "a\nb\n").is_none());
        let d = diff("a\nb\n", "a\nc\n").unwrap();
        assert!(d.contains("-b"), "{d}");
        assert!(d.contains("+c"), "{d}");
    }
}

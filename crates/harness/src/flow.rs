//! Bridge between rr-model's flow analysis and rr-lint's `RRL95x` checks.
//!
//! `rr_model::FlowAnalysis` and `rr_lint::FlowParams` describe the same
//! report — fault chains, the action-dependence table, the fault
//! interference graph — but the linter deliberately knows nothing about the
//! model checker (it stays dependency-free so configuration surfaces can be
//! linted without pulling in exploration machinery). The harness sits above
//! both, so the one-way conversion lives here, used by the `rr-flow` audit
//! binary and by `rr-lint`'s default audit.

use mercury::station::TreeVariant;
use rr_lint::{FlowFault, FlowParams};
use rr_model::{
    check, scenario, CheckConfig, FlowAnalysis, Model, DEFAULT_DEPTH, DEFAULT_STATE_BUDGET,
};

/// Converts a flow-analysis report into the linter's decoupled input.
pub fn flow_params(analysis: &FlowAnalysis) -> FlowParams {
    FlowParams {
        faults: analysis
            .faults
            .iter()
            .zip(&analysis.chains)
            .map(|(component, chain)| FlowFault {
                component: component.clone(),
                chain: chain.clone(),
            })
            .collect(),
        escalation_limit: analysis.escalation_limit,
        templates: analysis.templates.clone(),
        dependent: analysis.dependent.clone(),
        fault_interference: analysis.fault_interference.clone(),
    }
}

/// Builds the uniform pair-fault audit model (rtu and ses exist on every
/// tree variant, so the same fault set measures all five apples-to-apples).
fn pair_model(variant: TreeVariant) -> Model {
    let text = format!("tree {variant}\noracle perfect\nfault rtu\nfault ses\n");
    Model::new(
        variant
            .tree()
            .unwrap_or_else(|e| panic!("{}: {e:?}", "paper tree builds")),
        &scenario::parse(&text).unwrap_or_else(|e| panic!("{}: {e:?}", "scenario parses")),
    )
    .unwrap_or_else(|e| panic!("{}: {e:?}", "model builds"))
}

/// State budget for the depth probe: small enough that both searches exhaust
/// it quickly, large enough for several iterative-deepening bounds.
const PROBE_BUDGET: u64 = 50_000;
/// Depth ceiling for the probe — far beyond what the budget admits.
const PROBE_DEPTH: usize = 64;

/// Deepest completed iteration within `budget`. On budget exhaustion the
/// checker's error names the bound that tripped (`"depth N: state budget
/// ..."`); the deepest *completed* bound is the one before it.
fn max_feasible_depth(model: &Model, por: bool, budget: u64) -> u64 {
    let probe = CheckConfig {
        max_depth: PROBE_DEPTH,
        state_budget: budget,
        por,
    };
    match check(model, &probe) {
        Ok(outcome) => outcome.depth as u64,
        Err(e) => {
            let exhausted: u64 = e
                .message
                .strip_prefix("depth ")
                .and_then(|rest| rest.split(':').next())
                .and_then(|n| n.parse().ok())
                .unwrap_or_else(|| panic!("budget error names its depth bound: {}", e.message));
            exhausted.saturating_sub(1)
        }
    }
}

/// Renders the partial-order-reduction measurements as an experiment
/// section: per-tree distinct-state reduction on the pair-fault audit, and
/// how much deeper a fixed state budget reaches with the ample sets on.
/// Every number is a deterministic state count, so this section is exactly
/// reproducible (and `BENCH_model.json` gates the same ratios in CI).
pub fn experiment(_run: crate::RunConfig) -> crate::Experiment {
    let mut exp = crate::Experiment {
        id: "por".into(),
        title: "rr-flow static independence analysis and partial-order reduction".into(),
        tables: Vec::new(),
        blocks: Vec::new(),
        observations: Vec::new(),
    };
    exp.blocks.push(
        "Not a paper table: this measures the model checker itself. rr-flow\n\
         derives per-action footprints from the §3.2 tree algebra (escalation\n\
         chain overlap = the LCA merge promotion = interference), and the\n\
         checker explores a single ample action where footprints are disjoint\n\
         while still probing every successor for safety. Both sides of every\n\
         number below are deterministic state counts, so BENCH_model.json\n\
         gates the ratios with zero machine noise. The reduced search pays\n\
         for extra plies of depth out of the states the ample sets no longer\n\
         visit — the measurement behind raising the checker's DEFAULT_DEPTH\n\
         from 13 to 16 at an unchanged state budget.\n"
            .to_string(),
    );

    let mut table = crate::tables::Table::new(
        format!(
            "Distinct states, rtu+ses pair-fault audit at depth {DEFAULT_DEPTH} (perfect oracle)"
        ),
        vec![
            "Tree".into(),
            "Full".into(),
            "Reduced".into(),
            "Reduction".into(),
        ],
    );
    let full_cfg = CheckConfig {
        max_depth: DEFAULT_DEPTH,
        state_budget: DEFAULT_STATE_BUDGET,
        por: false,
    };
    let reduced_cfg = CheckConfig {
        por: true,
        ..full_cfg
    };
    let mut min_ratio = f64::INFINITY;
    for variant in TreeVariant::ALL {
        let model = pair_model(variant);
        let full = check(&model, &full_cfg)
            .unwrap_or_else(|e| panic!("{}: {}", "full exploration fits budget", e.message));
        let reduced = check(&model, &reduced_cfg)
            .unwrap_or_else(|e| panic!("{}: {}", "reduced exploration fits budget", e.message));
        assert!(
            full.violation.is_none() && reduced.violation.is_none(),
            "tree {variant}: the audit pair scenario must be clean"
        );
        let ratio = full.distinct_states as f64 / reduced.distinct_states as f64;
        min_ratio = min_ratio.min(ratio);
        table.push_row(vec![
            variant.to_string(),
            full.distinct_states.to_string(),
            reduced.distinct_states.to_string(),
            format!("{ratio:.2}x"),
        ]);
    }
    exp.tables.push(table);
    exp.observations.push((
        "rr-flow reduction >= 5x distinct states on every tree (1=yes)".into(),
        1.0,
        f64::from(u8::from(min_ratio >= 5.0)),
    ));

    // The probe scenario leans on the admission controller so deferral and
    // batching interleavings are in play — the worst case for depth.
    let probe_text = "tree IV\noracle perfect\nadmission\nfault rtu\nfault ses\nfault mbus\n";
    let model = Model::new(
        TreeVariant::IV
            .tree()
            .unwrap_or_else(|e| panic!("{}: {e:?}", "paper tree builds")),
        &scenario::parse(probe_text).unwrap_or_else(|e| panic!("{}: {e:?}", "scenario parses")),
    )
    .unwrap_or_else(|e| panic!("{}: {e:?}", "model builds"));
    let full_depth = max_feasible_depth(&model, false, PROBE_BUDGET);
    let reduced_depth = max_feasible_depth(&model, true, PROBE_BUDGET);
    let mut probe = crate::tables::Table::new(
        format!(
            "Depth reached under a fixed {}k-state budget (tree IV, admission, rtu+ses+mbus)",
            PROBE_BUDGET / 1000
        ),
        vec!["Exploration".into(), "Deepest completed bound".into()],
    );
    probe.push_row(vec!["full".into(), full_depth.to_string()]);
    probe.push_row(vec![
        "reduced (ample sets)".into(),
        reduced_depth.to_string(),
    ]);
    exp.tables.push(probe);
    exp.observations.push((
        "deeper audit at fixed 50k-state budget with reduction on (1=yes)".into(),
        1.0,
        f64::from(u8::from(reduced_depth > full_depth)),
    ));
    exp
}

#[cfg(test)]
mod tests {
    use super::*;
    use mercury::station::TreeVariant;
    use rr_model::{analyze, scenario, Model};

    #[test]
    fn bridged_builtin_scenarios_lint_clean() {
        for variant in TreeVariant::ALL {
            let text = format!("tree {variant}\nfault rtu\nfault ses\n");
            let model =
                Model::new(variant.tree().unwrap(), &scenario::parse(&text).unwrap()).unwrap();
            let params = flow_params(&analyze(&model));
            assert_eq!(params.faults.len(), 2);
            assert!(
                rr_lint::lint_flow(&params).is_clean(),
                "tree {variant} pair scenario should lint clean"
            );
        }
    }

    #[test]
    fn bridged_por_assume_override_is_denied() {
        let text = "tree IV\nadmission\nfault rtu\nfault ses\n\
                    por-assume suspects-independent\n";
        let model = Model::new(
            TreeVariant::IV.tree().unwrap(),
            &scenario::parse(text).unwrap(),
        )
        .unwrap();
        let report = rr_lint::lint_flow(&flow_params(&analyze(&model)));
        assert!(report.fired("RRL953"));
        assert!(report.has_deny());
    }

    #[test]
    fn por_experiment_observations_all_hold() {
        let exp = experiment(crate::RunConfig::default());
        assert_eq!(exp.id, "por");
        assert_eq!(exp.tables.len(), 2);
        for (label, paper, measured) in &exp.observations {
            assert_eq!(
                measured, paper,
                "{label}: expected {paper}, measured {measured}"
            );
        }
    }
}

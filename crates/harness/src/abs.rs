//! Bridge between rr-abs profitability certification and rr-lint's `RRL97x`
//! checks — plus the committed decision-table artifact the `rr-abs` binary
//! regenerates for CI.
//!
//! The paper commits to three tree transformations (§4.2–§4.4) on the
//! strength of *point* estimates measured on one afternoon's Mercury. rr-abs
//! re-derives each decision over a parameter **box** — every calibrated rate
//! and cost drifting ±20% independently — and certifies a three-valued
//! verdict per decision. This module builds the three scenarios from the
//! shipped Mercury configuration, runs the certification, converts the
//! result into `rr_lint::AbsParams` (the linter stays dependency-free, so
//! the one-way conversion lives here, exactly like [`crate::flow`]), and
//! renders the decision table both as an experiment section and as the
//! deterministic JSON artifact diffed against `tests/golden/abs-decisions.json`.

use rr_abs::refine::{certify, ProfitabilityMap, RefineConfig};
use rr_abs::{ParamBox, Scenario, Verdict};
use rr_core::analysis::OracleQuality;
use rr_core::tree::{RestartTree, TreeSpec};
use rr_lint::{AbsDecision, AbsParams};

use mercury::config::{names, StationConfig};
use mercury::station::TreeVariant;

/// The drift applied to every parameter dimension in the built-in audit:
/// each calibrated rate and cost may sit anywhere within ±20% of its
/// measured value, independently.
pub const DRIFT_FRAC: f64 = 0.2;

/// One §4 decision: the transformation scenario plus the verdict the paper
/// (and the committed decision table) expects the certification to produce.
#[derive(Debug, Clone)]
pub struct Decision {
    /// The before/after scenario under the Mercury calibration.
    pub scenario: Scenario,
    /// The verdict the committed table expects (`Always` for all three §4
    /// transformations).
    pub expected: Verdict,
}

/// A decision together with its certified profitability map.
#[derive(Debug, Clone)]
pub struct CertifiedDecision {
    /// The decision that was certified.
    pub decision: Decision,
    /// The drift box the certification quantified over.
    pub root: ParamBox,
    /// The certified partition of that box.
    pub map: ProfitabilityMap,
}

fn built(spec: &TreeSpec) -> RestartTree {
    spec.build()
        .unwrap_or_else(|e| unreachable!("static tree builds: {e:?}"))
}

fn variant_tree(v: TreeVariant) -> RestartTree {
    v.tree()
        .unwrap_or_else(|e| unreachable!("paper tree {v} builds: {e:?}"))
}

/// The split-station analogue of tree II with the §4.2 split *not yet
/// applied*: fedr and pbcom share one leaf cell, so either one failing
/// restarts both — the same recovery behaviour as the monolithic fedrcom,
/// but over the split component set, which lets the before/after pair share
/// one failure model.
fn joint_fedrcom_tree() -> RestartTree {
    built(
        &TreeSpec::cell("mercury")
            .with_child(TreeSpec::cell("R_mbus").with_component(names::MBUS))
            .with_child(
                TreeSpec::cell("R_fedrcom")
                    .with_component(names::FEDR)
                    .with_component(names::PBCOM),
            )
            .with_child(TreeSpec::cell("R_ses").with_component(names::SES))
            .with_child(TreeSpec::cell("R_str").with_component(names::STR))
            .with_child(TreeSpec::cell("R_rtu").with_component(names::RTU)),
    )
}

fn scenario(
    name: &str,
    before: RestartTree,
    after: RestartTree,
    quality: OracleQuality,
    cfg: &StationConfig,
    advisory: bool,
) -> Scenario {
    let model = if advisory {
        cfg.advisory_failure_model()
    } else {
        cfg.paper_failure_model()
    };
    Scenario::new(
        name,
        before,
        after,
        quality,
        model.modes().to_vec(),
        cfg.cost_model(),
    )
    .unwrap_or_else(|e| unreachable!("shipped Mercury scenario {name} is valid: {e}"))
}

/// The three §4 decisions under the shipped Mercury calibration
/// ([`StationConfig::paper`]), in paper order.
///
/// * `split-fedrcom` (§4.2): a joint \[fedr,pbcom\] leaf cell versus tree
///   III's split subtree, under the paper failure model — fedr's 6/h crash
///   rate stops dragging the stable pbcom down with it.
/// * `consolidate-ses-str` (§4.3): tree III versus tree IV under the
///   advisory correlation view (`f_{ses,str} ≈ 1`): a correlated ses/str
///   failure restarts the whole station in tree III but one small cell in
///   tree IV.
/// * `promote-pbcom` (§4.4): tree IV versus tree V under the §4.4 faulty
///   oracle (30% guess-too-low) and the advisory model — promotion deletes
///   the wrong-guess restart+re-detect+rapid-penalty path for the dominant
///   correlated mode.
pub fn paper_decisions() -> Vec<Decision> {
    let cfg = StationConfig::paper();
    vec![
        Decision {
            scenario: scenario(
                "split-fedrcom",
                joint_fedrcom_tree(),
                variant_tree(TreeVariant::III),
                OracleQuality::Perfect,
                &cfg,
                false,
            ),
            expected: Verdict::Always,
        },
        Decision {
            scenario: scenario(
                "consolidate-ses-str",
                variant_tree(TreeVariant::III),
                variant_tree(TreeVariant::IV),
                OracleQuality::Perfect,
                &cfg,
                true,
            ),
            expected: Verdict::Always,
        },
        Decision {
            scenario: scenario(
                "promote-pbcom",
                variant_tree(TreeVariant::IV),
                variant_tree(TreeVariant::V),
                OracleQuality::Faulty { undershoot: 0.3 },
                &cfg,
                true,
            ),
            expected: Verdict::Always,
        },
    ]
}

/// Certifies every built-in decision over a ±[`DRIFT_FRAC`] drift box
/// covering all of its parameter dimensions.
pub fn certify_decisions(config: RefineConfig) -> Vec<CertifiedDecision> {
    paper_decisions()
        .into_iter()
        .map(|decision| {
            let root = ParamBox::drift(decision.scenario.dim_names(), DRIFT_FRAC)
                .unwrap_or_else(|e| unreachable!("{DRIFT_FRAC} is a valid drift: {e}"));
            let map = certify(&decision.scenario, &root, config).unwrap_or_else(|e| {
                unreachable!(
                    "shipped scenario {} certifies: {e}",
                    decision.scenario.name()
                )
            });
            CertifiedDecision {
                decision,
                root,
                map,
            }
        })
        .collect()
}

/// Converts certified decisions into the linter's decoupled input.
pub fn abs_params(certified: &[CertifiedDecision]) -> AbsParams {
    AbsParams {
        decisions: certified
            .iter()
            .map(|c| {
                let hull = c
                    .map
                    .profit_hull()
                    .unwrap_or_else(|| unreachable!("certify records at least one region"));
                AbsDecision {
                    name: c.map.scenario.clone(),
                    expected_verdict: c.decision.expected.as_str().to_string(),
                    verdict: c.map.verdict().as_str().to_string(),
                    profit_lo_s: hull.lo(),
                    profit_hi_s: hull.hi(),
                    box_dims: c
                        .root
                        .dims()
                        .map(|(name, iv)| (name.to_string(), iv.lo(), iv.hi()))
                        .collect(),
                    depends_fraction: c.map.depends_fraction(),
                    splits: c.map.splits,
                    max_splits: c.map.config.max_splits,
                }
            })
            .collect(),
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|ch| match ch {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Renders a decision table as deterministic JSON (shortest-roundtrip `f64`
/// formatting, stable key order), byte-diffable against the committed
/// `tests/golden/abs-decisions.json`. All inputs are products of the static
/// calibration and directed-rounding interval arithmetic, so the bytes are
/// identical on every conforming IEEE-754 platform.
pub fn decision_table_json(params: &AbsParams) -> String {
    let mut out = String::from("{\n  \"drift\": ");
    out.push_str(&DRIFT_FRAC.to_string());
    out.push_str(",\n  \"decisions\": [\n");
    for (i, d) in params.decisions.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", json_escape(&d.name)));
        out.push_str(&format!(
            "      \"expected_verdict\": \"{}\",\n",
            json_escape(&d.expected_verdict)
        ));
        out.push_str(&format!(
            "      \"verdict\": \"{}\",\n",
            json_escape(&d.verdict)
        ));
        out.push_str(&format!("      \"profit_lo_s\": {},\n", d.profit_lo_s));
        out.push_str(&format!("      \"profit_hi_s\": {},\n", d.profit_hi_s));
        out.push_str(&format!(
            "      \"depends_fraction\": {},\n",
            d.depends_fraction
        ));
        out.push_str(&format!("      \"splits\": {},\n", d.splits));
        out.push_str(&format!("      \"max_splits\": {},\n", d.max_splits));
        out.push_str("      \"box\": [\n");
        for (j, (name, lo, hi)) in d.box_dims.iter().enumerate() {
            out.push_str(&format!(
                "        [\"{}\", {lo}, {hi}]{}\n",
                json_escape(name),
                if j + 1 < d.box_dims.len() { "," } else { "" }
            ));
        }
        out.push_str("      ]\n");
        out.push_str(&format!(
            "    }}{}\n",
            if i + 1 < params.decisions.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parses a `.abs` decision-table fixture (the line format the CI fixture
/// pair under `tests/abs-fixtures/` uses) into lint params.
///
/// ```text
/// # comment
/// decision <name>            # opens a decision
/// expected <verdict>
/// verdict <verdict>
/// profit <lo_s> <hi_s>
/// dim <name> <lo> <hi>       # repeatable
/// depends <fraction>
/// splits <used> <budget>
/// ```
///
/// # Errors
///
/// Returns a human-readable message naming the offending line. Unknown
/// verdict strings and malformed numbers *inside a well-formed line shape*
/// are deliberately let through: those are exactly what `lint_abs` exists
/// to reject, and the broken fixture exercises that path.
pub fn parse_abs_fixture(text: &str) -> Result<AbsParams, String> {
    let mut decisions: Vec<AbsDecision> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut words = line.split_whitespace();
        let keyword = words.next().unwrap_or("");
        let rest: Vec<&str> = words.collect();
        let ctx = |msg: &str| format!("line {}: {msg}: {raw:?}", lineno + 1);
        let num = |w: &str, what: &str| -> Result<f64, String> {
            w.parse::<f64>()
                .map_err(|_| ctx(&format!("{what} is not a number")))
        };
        if keyword == "decision" {
            let [name] = rest.as_slice() else {
                return Err(ctx("expected `decision <name>`"));
            };
            decisions.push(AbsDecision {
                name: (*name).to_string(),
                expected_verdict: String::new(),
                verdict: String::new(),
                profit_lo_s: 0.0,
                profit_hi_s: 0.0,
                box_dims: Vec::new(),
                depends_fraction: 0.0,
                splits: 0,
                max_splits: 0,
            });
            continue;
        }
        let Some(d) = decisions.last_mut() else {
            return Err(ctx("directive before any `decision`"));
        };
        match (keyword, rest.as_slice()) {
            ("expected", [v]) => d.expected_verdict = (*v).to_string(),
            ("verdict", [v]) => d.verdict = (*v).to_string(),
            ("profit", [lo, hi]) => {
                d.profit_lo_s = num(lo, "profit lo")?;
                d.profit_hi_s = num(hi, "profit hi")?;
            }
            ("dim", [name, lo, hi]) => {
                d.box_dims
                    .push(((*name).to_string(), num(lo, "dim lo")?, num(hi, "dim hi")?));
            }
            ("depends", [f]) => d.depends_fraction = num(f, "depends fraction")?,
            ("splits", [used, budget]) => {
                d.splits = used
                    .parse()
                    .map_err(|_| ctx("splits used is not an integer"))?;
                d.max_splits = budget
                    .parse()
                    .map_err(|_| ctx("splits budget is not an integer"))?;
            }
            _ => return Err(ctx("unknown or malformed directive")),
        }
    }
    if decisions.is_empty() {
        return Err("fixture declares no decisions".to_string());
    }
    Ok(AbsParams { decisions })
}

/// Renders the certified decision table as an experiment section.
pub fn experiment(_run: crate::RunConfig) -> crate::Experiment {
    let mut exp = crate::Experiment {
        id: "abs".into(),
        title: "rr-abs interval certification of the §4 transformation decisions".into(),
        tables: Vec::new(),
        blocks: Vec::new(),
        observations: Vec::new(),
    };
    exp.blocks.push(
        "Not a paper table: this certifies the paper's own decisions. Each\n\
         §4 transformation was committed on point estimates from one\n\
         calibration run; rr-abs re-derives the profit Δ = MTTR_before −\n\
         MTTR_after with interval arithmetic while every rate and cost\n\
         drifts ±20% independently. `always` means the certificate proves\n\
         Δ > 0 at every point of the drift box — the decision survives any\n\
         mis-calibration within the box, not just the measured afternoon.\n\
         Shared recovery terms cancel symbolically before intervals are\n\
         introduced, so the enclosures stay tight enough to decide.\n"
            .to_string(),
    );

    let certified = certify_decisions(RefineConfig::default());
    let params = abs_params(&certified);
    let mut table = crate::tables::Table::new(
        format!(
            "§4 decision certificates over a ±{:.0}% drift box",
            DRIFT_FRAC * 100.0
        ),
        vec![
            "Decision".into(),
            "Expected".into(),
            "Certified".into(),
            "Profit lo (s)".into(),
            "Profit hi (s)".into(),
            "Dims".into(),
            "Splits".into(),
        ],
    );
    for d in &params.decisions {
        table.push_row(vec![
            d.name.clone(),
            d.expected_verdict.clone(),
            d.verdict.clone(),
            format!("{:.4}", d.profit_lo_s),
            format!("{:.4}", d.profit_hi_s),
            d.box_dims.len().to_string(),
            format!("{}", d.splits),
        ]);
    }
    exp.tables.push(table);

    // Anchor the interval evidence to the concrete algebra: the base-point
    // profit (every multiplier at 1) must sit inside each certified hull.
    for c in &certified {
        let base = c.root.sample_with(|_, _, _| 1.0);
        let point = c
            .decision
            .scenario
            .concrete_profit(&base)
            .unwrap_or_else(|e| unreachable!("base point evaluates: {e}"));
        let hull = c
            .map
            .profit_hull()
            .unwrap_or_else(|| unreachable!("certify records at least one region"));
        exp.observations.push((
            format!("{}: base-point profit vs hull midpoint (s)", c.map.scenario),
            point,
            hull.midpoint(),
        ));
    }
    exp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_three_paper_decisions_certify_always() {
        let certified = certify_decisions(RefineConfig::default());
        assert_eq!(certified.len(), 3);
        for c in &certified {
            assert_eq!(
                c.map.verdict(),
                Verdict::Always,
                "{}: {:?}",
                c.map.scenario,
                c.map.profit_hull()
            );
            assert_eq!(c.map.depends_fraction(), 0.0);
        }
        let names: Vec<&str> = certified.iter().map(|c| c.map.scenario.as_str()).collect();
        assert_eq!(
            names,
            ["split-fedrcom", "consolidate-ses-str", "promote-pbcom"]
        );
    }

    #[test]
    fn certified_table_lints_clean() {
        let params = abs_params(&certify_decisions(RefineConfig::default()));
        let report = rr_lint::lint_abs(&params);
        assert!(report.is_clean(), "{}", report.to_human());
    }

    #[test]
    fn sampled_points_never_contradict_the_certificates() {
        // The hard soundness constraint: no concrete valuation inside the
        // box may disagree with an `always` certificate.
        for c in certify_decisions(RefineConfig::default()) {
            for frac in [0.0, 0.25, 0.5, 0.75, 1.0] {
                let point = c.root.sample_with(|_, lo, hi| lo + frac * (hi - lo));
                let profit = c.decision.scenario.concrete_profit(&point).unwrap();
                assert!(
                    profit > 0.0,
                    "{} unprofitable ({profit} s) at fraction {frac} of the box",
                    c.map.scenario
                );
            }
        }
    }

    #[test]
    fn json_artifact_is_stable_and_parseable_shape() {
        let params = abs_params(&certify_decisions(RefineConfig::default()));
        let a = decision_table_json(&params);
        let b = decision_table_json(&params);
        assert_eq!(a, b);
        assert!(a.contains("\"split-fedrcom\""));
        assert!(a.contains("\"verdict\": \"always\""));
    }

    #[test]
    fn fixture_roundtrip_and_errors() {
        let text = "\
# a comment
decision split-fedrcom
expected always
verdict always
profit 0.5 14.0
dim rate:fedr-crash 0.8 1.2
dim boot:pbcom 0.8 1.2
depends 0
splits 0 4096
";
        let params = parse_abs_fixture(text).unwrap();
        assert_eq!(params.decisions.len(), 1);
        let d = &params.decisions[0];
        assert_eq!(d.name, "split-fedrcom");
        assert_eq!(d.box_dims.len(), 2);
        assert_eq!(d.max_splits, 4096);
        assert!(rr_lint::lint_abs(&params).is_clean());

        assert!(parse_abs_fixture("").is_err());
        assert!(parse_abs_fixture("expected always\n").is_err());
        assert!(parse_abs_fixture("decision a\nprofit 1\n").is_err());
        assert!(parse_abs_fixture("decision a\nprofit x y\n").is_err());
        assert!(parse_abs_fixture("decision a\nfrobnicate 1\n").is_err());
    }
}

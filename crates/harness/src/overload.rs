//! Overload campaigns: flash crowds and sustained failure storms against the
//! deadline-aware admission controller.
//!
//! The paper's recovery machinery assumes failures arrive one at a time;
//! ground stations see bursts — a power sag crashing half the boards at
//! once, or a flaky bus crashing components for twenty minutes straight.
//! Under such overload an unpaced REC launches a restart per detection,
//! burns each component's restart-storm budget
//! ([`StationConfig::max_restarts_per_window`]), and quarantines components
//! that were never actually sick — leaving them down for every subsequent
//! satellite pass. The admission controller
//! ([`StationConfig::admission`]) paces launches instead: excess restart
//! requests are **deferred** (queued, aged, eventually forced through) and
//! duplicate reports for an already-queued component are **shed**, so the
//! storm budget survives the burst and the station is whole again when the
//! next pass rises.
//!
//! The campaign here drives both arms — admission off and on, same seed,
//! same fault schedule — through a flash-crowd or sustained-overload script
//! and scores them on the mission metric: **pass-window misses**, the number
//! of scheduled contact windows during which a deadline-covered (critical)
//! component was down. MTTR is reported alongside: admission deliberately
//! trades per-failure recovery latency for pass coverage, and the table
//! shows both sides of that trade.

use std::collections::BTreeSet;

use mercury::config::{names, StationConfig};
use mercury::measure::{measure_recovery, system_downtime};
use mercury::station::{Station, TreeVariant};
use rr_core::PerfectOracle;
use rr_sim::{Dist, FaultKind, FaultScript, SimDuration, SimRng, SimTime, TraceKind};

use crate::tables::Table;

/// The shape of the failure burst a campaign injects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OverloadLoad {
    /// A flash crowd: every target killed simultaneously, in `waves` waves
    /// `gap_s` apart — the power-sag shape.
    FlashCrowd {
        /// Number of simultaneous-kill waves.
        waves: usize,
        /// Seconds between waves.
        gap_s: f64,
    },
    /// Sustained overload: each target crashes with exponential inter-arrival
    /// times of mean `mean_gap_s` for `duration_s` — the flaky-bus shape.
    Sustained {
        /// Mean seconds between crashes per target.
        mean_gap_s: f64,
        /// How long the overload lasts.
        duration_s: f64,
    },
}

impl OverloadLoad {
    /// Short label for tables.
    pub fn name(self) -> &'static str {
        match self {
            OverloadLoad::FlashCrowd { .. } => "flash-crowd",
            OverloadLoad::Sustained { .. } => "sustained",
        }
    }

    /// How long the overload phase lasts.
    fn overload_s(self) -> f64 {
        match self {
            OverloadLoad::FlashCrowd { waves, gap_s } => waves as f64 * gap_s,
            OverloadLoad::Sustained { duration_s, .. } => duration_s,
        }
    }

    /// The kill schedule, in seconds relative to the campaign start.
    fn script(self, targets: &[&str], rng: &mut SimRng) -> FaultScript {
        let mut script = FaultScript::new();
        match self {
            OverloadLoad::FlashCrowd { waves, gap_s } => {
                for wave in 0..waves {
                    let at = SimTime::from_secs_f64(wave as f64 * gap_s);
                    for target in targets {
                        script.push(at, *target, FaultKind::Crash);
                    }
                }
            }
            OverloadLoad::Sustained {
                mean_gap_s,
                duration_s,
            } => {
                let horizon = SimTime::from_secs_f64(duration_s);
                let dist = Dist::exponential(mean_gap_s);
                for target in targets {
                    script.merge(FaultScript::poisson_like(target, &dist, horizon, rng));
                }
            }
        }
        script
    }
}

/// Campaign parameters. The defaults are tuned so the burst exceeds the
/// restart-storm budget if every detection launches immediately, while the
/// paced arm stays within it.
#[derive(Debug, Clone)]
pub struct OverloadConfig {
    /// The burst shape.
    pub load: OverloadLoad,
    /// Components the burst targets (must exist in every tree variant).
    pub targets: Vec<String>,
    /// Quiet tail after the overload, in which a healthy station catches its
    /// remaining passes.
    pub quiet_s: f64,
    /// First pass rises this many seconds after the campaign starts.
    pub pass_first_s: f64,
    /// Seconds between pass rises.
    pub pass_period_s: f64,
    /// Pass duration (rise to set).
    pub pass_duration_s: f64,
    /// A pass is missed when critical-component downtime inside it exceeds
    /// this many seconds.
    pub miss_threshold_s: f64,
    /// Campaign seed.
    pub seed: u64,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            load: OverloadLoad::FlashCrowd {
                waves: 8,
                gap_s: 150.0,
            },
            targets: vec![names::SES.into(), names::STR.into(), names::RTU.into()],
            // Long enough for several passes after the deferral queue drains:
            // the baseline arm's quarantines miss those too, so the margin
            // between the arms is not a single borderline pass.
            quiet_s: 2000.0,
            pass_first_s: 300.0,
            pass_period_s: 400.0,
            pass_duration_s: 120.0,
            miss_threshold_s: 0.5,
            seed: 0x0E11_0AD5,
        }
    }
}

/// The station configuration an overload arm runs: the admission preset with
/// a storm budget the default burst can exhaust, and pacing knobs that keep
/// the paced arm under it. `admission` selects the arm.
pub fn arm_config(admission: bool) -> StationConfig {
    let mut cfg = StationConfig::admission();
    cfg.admission_enabled = admission;
    cfg.max_restarts_per_window = 5;
    cfg.restart_window_s = 3600.0;
    cfg.admission_capacity = 1;
    cfg.admission_window_s = 600.0;
    cfg.defer_max_age_s = 600.0;
    cfg.admission_retry_s = 10.0;
    cfg
}

/// One finished overload campaign.
#[derive(Debug, Clone)]
pub struct OverloadReport {
    /// The tree the campaign ran against.
    pub variant: TreeVariant,
    /// Whether the admission controller was on.
    pub admission: bool,
    /// Kills actually injected (scheduled kills landing on a dead component
    /// are skipped — the component is already failing).
    pub kills: usize,
    /// `defer:` marks — restart requests queued by the controller.
    pub deferred: usize,
    /// `shed:` marks — duplicate reports dropped by the controller.
    pub shed: usize,
    /// Restart launches (`restart:` marks).
    pub restarts: usize,
    /// Components the storm policy quarantined.
    pub quarantined: BTreeSet<String>,
    /// Scheduled pass windows in the campaign.
    pub passes: usize,
    /// Passes during which a critical component was down past the threshold.
    pub misses: usize,
    /// Recovery time of every kill that cured, in seconds.
    pub mttr_samples: Vec<f64>,
}

impl OverloadReport {
    /// Fraction of scheduled passes missed.
    pub fn miss_rate(&self) -> f64 {
        if self.passes == 0 {
            0.0
        } else {
            self.misses as f64 / self.passes as f64
        }
    }

    /// Mean recovery time over the cured kills (0 when nothing cured).
    pub fn mean_mttr_s(&self) -> f64 {
        if self.mttr_samples.is_empty() {
            0.0
        } else {
            self.mttr_samples.iter().sum::<f64>() / self.mttr_samples.len() as f64
        }
    }
}

/// Runs one overload campaign arm against a fresh station on `variant`.
pub fn run_overload(variant: TreeVariant, admission: bool, cfg: &OverloadConfig) -> OverloadReport {
    let station_cfg = arm_config(admission);
    let critical: Vec<String> = station_cfg.critical_components.clone();
    let mut rng = SimRng::new(
        cfg.seed
            .wrapping_add((variant as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
    );
    let mut station = Station::new(
        station_cfg,
        variant,
        Box::new(PerfectOracle::new()),
        rng.next_u64(),
    )
    .unwrap_or_else(|e| panic!("{}: {e:?}", "valid station"));
    station.warm_up();
    let start = station.now();

    let targets: Vec<&str> = cfg.targets.iter().map(String::as_str).collect();
    let script = cfg.load.script(&targets, &mut rng);
    let mut kills: Vec<(String, SimTime)> = Vec::new();
    for fault in script.faults() {
        let at = start + fault.at.since(SimTime::ZERO);
        let wait = at.saturating_since(station.now());
        station.run_for(wait);
        // A kill landing on an already-dead component is the same failure
        // still being recovered; skip it rather than double-book.
        if station
            .state_of(&fault.target)
            .unwrap_or_else(|e| panic!("{}: {e:?}", "known component"))
            == rr_sim::ProcessState::Running
        {
            let injected = station
                .inject_kill(&fault.target)
                .unwrap_or_else(|e| panic!("{}: {e:?}", "known component"));
            kills.push((fault.target.clone(), injected));
        }
    }
    let horizon = start + SimDuration::from_secs_f64(cfg.load.overload_s() + cfg.quiet_s);
    let rest = horizon.saturating_since(station.now());
    station.run_for(rest);

    // Score the pass schedule against critical-component downtime.
    let mut passes = 0usize;
    let mut misses = 0usize;
    let mut rise_s = cfg.pass_first_s;
    while rise_s + cfg.pass_duration_s <= cfg.load.overload_s() + cfg.quiet_s {
        let rise = start + SimDuration::from_secs_f64(rise_s);
        let set = rise + SimDuration::from_secs_f64(cfg.pass_duration_s);
        let (down, _) = system_downtime(station.trace(), &critical, rise, set);
        passes += 1;
        if down.as_secs_f64() > cfg.miss_threshold_s {
            misses += 1;
        }
        rise_s += cfg.pass_period_s;
    }

    let mut mttr_samples = Vec::new();
    for (component, at) in &kills {
        if let Ok(m) = measure_recovery(station.trace(), component, *at) {
            mttr_samples.push(m.recovery_s());
        }
    }

    let mut deferred = 0usize;
    let mut shed = 0usize;
    let mut restarts = 0usize;
    let mut quarantined = BTreeSet::new();
    for e in station.trace().iter() {
        if e.kind != TraceKind::Mark || e.time < start {
            continue;
        }
        if e.label.starts_with("defer:") {
            deferred += 1;
        } else if e.label.starts_with("shed:") {
            shed += 1;
        } else if e.label.starts_with("restart:") {
            restarts += 1;
        } else if let Some(comp) = e.label.strip_prefix("quarantine:") {
            quarantined.insert(comp.to_string());
        }
    }

    OverloadReport {
        variant,
        admission,
        kills: kills.len(),
        deferred,
        shed,
        restarts,
        quarantined,
        passes,
        misses,
        mttr_samples,
    }
}

/// Runs both arms of one campaign — no admission, then admission, same seed
/// and schedule — and returns `(baseline, paced)`.
pub fn run_pair(variant: TreeVariant, cfg: &OverloadConfig) -> (OverloadReport, OverloadReport) {
    (
        run_overload(variant, false, cfg),
        run_overload(variant, true, cfg),
    )
}

/// The default sustained-overload campaign shape (the flash crowd is
/// [`OverloadConfig::default`]).
pub fn sustained_config(seed: u64) -> OverloadConfig {
    OverloadConfig {
        load: OverloadLoad::Sustained {
            mean_gap_s: 180.0,
            duration_s: 1200.0,
        },
        seed,
        ..OverloadConfig::default()
    }
}

/// Renders the overload campaign as an experiment section: flash-crowd and
/// sustained overload on trees I–V, admission off vs on, with pass-window
/// misses as the headline metric.
pub fn experiment(run: crate::RunConfig) -> crate::Experiment {
    let mut exp = crate::Experiment {
        id: "overload".into(),
        title: "Overload — admission control vs pass-window misses".into(),
        tables: Vec::new(),
        blocks: Vec::new(),
        observations: Vec::new(),
    };
    exp.blocks.push(
        "Failure bursts against trees I-V, same seed and schedule per arm.\n\
         Without admission every detection launches a restart, the burst\n\
         exhausts the per-component storm budget, and the victims are\n\
         quarantined — down for every later pass. With admission the\n\
         controller defers excess launches (aging them through within\n\
         defer_max_age_s) and sheds duplicate reports, the budget survives,\n\
         and the quiet-period passes are caught. MTTR shows the price: a\n\
         deferred restart waits in the queue, so mean per-failure recovery\n\
         rises while mission-level pass coverage improves.\n"
            .to_string(),
    );
    for (label, mk_cfg) in [
        (
            "Flash crowd: 8 waves x 3 components, 150 s apart",
            OverloadConfig {
                seed: run.seed,
                ..OverloadConfig::default()
            },
        ),
        (
            "Sustained overload: mean 180 s between crashes per component, 1200 s",
            sustained_config(run.seed),
        ),
    ] {
        let mut table = Table::new(
            label,
            vec![
                "tree".into(),
                "admission".into(),
                "kills".into(),
                "deferred".into(),
                "shed".into(),
                "restarts".into(),
                "quarantined".into(),
                "passes missed".into(),
                "miss rate".into(),
                "mean MTTR (s)".into(),
            ],
        );
        let mut strict_trees = 0usize;
        let mut never_worse = true;
        for variant in TreeVariant::ALL {
            let (base, paced) = run_pair(variant, &mk_cfg);
            strict_trees += usize::from(paced.misses < base.misses);
            never_worse &= paced.misses <= base.misses;
            for r in [&base, &paced] {
                table.push_row(vec![
                    variant.to_string(),
                    if r.admission { "on" } else { "off" }.into(),
                    r.kills.to_string(),
                    r.deferred.to_string(),
                    r.shed.to_string(),
                    r.restarts.to_string(),
                    r.quarantined.len().to_string(),
                    format!("{}/{}", r.misses, r.passes),
                    format!("{:.2}", r.miss_rate()),
                    format!("{:.1}", r.mean_mttr_s()),
                ]);
            }
        }
        // The flash crowd is the deterministic headline claim: a strict
        // reduction on every tree. The sustained schedule is Poisson, so its
        // pass alignment varies with the draw; there the claim is "never
        // worse, strictly better on at least two trees".
        let (label, ok) = match mk_cfg.load {
            OverloadLoad::FlashCrowd { .. } => (
                "flash-crowd: admission strictly reduces misses on every tree (1=yes)",
                strict_trees == TreeVariant::ALL.len(),
            ),
            OverloadLoad::Sustained { .. } => (
                "sustained: admission never worse, strictly better on >=2 trees (1=yes)",
                never_worse && strict_trees >= 2,
            ),
        };
        exp.observations
            .push((label.into(), 1.0, f64::from(u8::from(ok))));
        exp.tables.push(table);
    }
    exp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flash_crowd_script_is_dense_and_simultaneous() {
        let mut rng = SimRng::new(1);
        let load = OverloadLoad::FlashCrowd {
            waves: 3,
            gap_s: 100.0,
        };
        let script = load.script(&["ses", "rtu"], &mut rng);
        assert_eq!(script.faults().len(), 6);
        assert_eq!(script.faults()[0].at, script.faults()[1].at);
        assert_eq!(
            script.faults()[4].at,
            SimTime::from_secs_f64(200.0),
            "third wave lands at 200 s"
        );
    }

    #[test]
    fn sustained_script_stays_inside_the_overload_window() {
        let mut rng = SimRng::new(2);
        let load = OverloadLoad::Sustained {
            mean_gap_s: 60.0,
            duration_s: 600.0,
        };
        let script = load.script(&["ses", "str", "rtu"], &mut rng);
        assert!(!script.faults().is_empty());
        for f in script.faults() {
            assert!(f.at < SimTime::from_secs_f64(600.0));
        }
    }

    #[test]
    fn arm_configs_validate_and_differ_only_in_admission() {
        let mut off = arm_config(false);
        let on = arm_config(true);
        assert!(!off.admission_enabled && on.admission_enabled);
        off.admission_enabled = true;
        assert_eq!(format!("{off:?}"), format!("{on:?}"));
    }
}
